//! Windowed fairness monitoring for long-lived (streaming) clusterings.
//!
//! A streaming clusterer optimizes against the fairness reference frozen at
//! bootstrap; what an operator needs to watch is the **live** partition —
//! is it still coherent, and still fair against the distribution the stream
//! has *now*? [`WindowedFairnessMonitor`] keeps a bounded window of
//! snapshots (clustering objective via the parallel evaluators, mean AE/AW
//! from the §5.2 fairness report) and exposes windowed means and drift of
//! the newest observation against them. Evaluators run through the
//! caller's [`EvalContext`], so embedders control metric threading without
//! touching process environment.

use crate::{clustering_objective_with, fairness_report, EvalContext};
use fairkm_data::{NumericMatrix, Partition, SensitiveSpace};
use std::collections::VecDeque;

/// One observation of a live partition.
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessSnapshot {
    /// Points in the observed partition.
    pub n_points: usize,
    /// Clustering objective **CO** (Eq. 24) over the observed matrix.
    pub co: f64,
    /// Cross-attribute mean Euclidean deviation **AE** (0 when the space
    /// has no sensitive attributes).
    pub mean_ae: f64,
    /// Cross-attribute mean Wasserstein deviation **AW** (0 when the space
    /// has no sensitive attributes).
    pub mean_aw: f64,
    /// The clusterer's **active fairness objective** value (its assembled
    /// fairness term), when the caller supplied it via
    /// [`WindowedFairnessMonitor::observe_objective`]. `None` under plain
    /// [`WindowedFairnessMonitor::observe`]. AE/AW always measure Eq. 7
    /// representativity; under a non-default objective (bounded
    /// representation, group welfare) this field is the metric the
    /// optimizer actually descends on.
    pub objective_fairness: Option<f64>,
    /// Per-cluster contributions of the active objective (index `c` is
    /// cluster `c`); empty under plain `observe`.
    pub objective_contribs: Vec<f64>,
}

/// Bounded-window monitor over successive [`FairnessSnapshot`]s.
///
/// ```
/// use fairkm_metrics::{EvalContext, WindowedFairnessMonitor};
///
/// let monitor = WindowedFairnessMonitor::new(8, EvalContext::new());
/// assert_eq!(monitor.window(), 8);
/// assert!(monitor.latest().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct WindowedFairnessMonitor {
    window: usize,
    ctx: EvalContext,
    snapshots: VecDeque<FairnessSnapshot>,
}

impl WindowedFairnessMonitor {
    /// Monitor keeping the last `window` snapshots (clamped to ≥ 1),
    /// evaluating through `ctx`.
    pub fn new(window: usize, ctx: EvalContext) -> Self {
        Self {
            window: window.max(1),
            ctx,
            snapshots: VecDeque::new(),
        }
    }

    /// Evaluate the partition (CO through the context's thread choice,
    /// AE/AW from the fairness report), record the snapshot, and return it.
    /// The oldest snapshot falls out once the window is full. The
    /// objective fields stay empty — use
    /// [`Self::observe_objective`] when the clusterer's active objective
    /// is known.
    pub fn observe(
        &mut self,
        matrix: &NumericMatrix,
        space: &SensitiveSpace,
        partition: &Partition,
    ) -> FairnessSnapshot {
        self.record(matrix, space, partition, None, Vec::new())
    }

    /// Like [`Self::observe`], but additionally records the clusterer's
    /// **active objective** — its assembled fairness term and the
    /// per-cluster contributions behind it (e.g.
    /// `StreamingFairKm::fairness_term` /
    /// `StreamingFairKm::fairness_contributions` in `fairkm-core`). This
    /// is what keeps monitoring honest under a non-default objective:
    /// AE/AW always report Eq. 7 representativity, while these fields
    /// report the metric the optimizer actually descends on.
    pub fn observe_objective(
        &mut self,
        matrix: &NumericMatrix,
        space: &SensitiveSpace,
        partition: &Partition,
        fairness: f64,
        contribs: Vec<f64>,
    ) -> FairnessSnapshot {
        self.record(matrix, space, partition, Some(fairness), contribs)
    }

    fn record(
        &mut self,
        matrix: &NumericMatrix,
        space: &SensitiveSpace,
        partition: &Partition,
        objective_fairness: Option<f64>,
        objective_contribs: Vec<f64>,
    ) -> FairnessSnapshot {
        let co = clustering_objective_with(matrix, partition, &self.ctx);
        let (mean_ae, mean_aw) = if space.n_attrs() > 0 {
            let report = fairness_report(space, partition);
            (report.mean.ae, report.mean.aw)
        } else {
            (0.0, 0.0)
        };
        let snapshot = FairnessSnapshot {
            n_points: partition.n_points(),
            co,
            mean_ae,
            mean_aw,
            objective_fairness,
            objective_contribs,
        };
        if self.snapshots.len() == self.window {
            self.snapshots.pop_front();
        }
        self.snapshots.push_back(snapshot.clone());
        snapshot
    }

    /// The configured window length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Snapshots currently held (≤ window).
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// The most recent snapshot.
    pub fn latest(&self) -> Option<&FairnessSnapshot> {
        self.snapshots.back()
    }

    /// Windowed mean of the AE deviation.
    pub fn mean_ae(&self) -> Option<f64> {
        self.mean_of(|s| s.mean_ae)
    }

    /// Windowed mean of the clustering objective.
    pub fn mean_co(&self) -> Option<f64> {
        self.mean_of(|s| s.co)
    }

    /// Latest AE minus the windowed AE mean: positive when fairness is
    /// degrading relative to the recent past.
    pub fn ae_drift(&self) -> Option<f64> {
        Some(self.latest()?.mean_ae - self.mean_ae()?)
    }

    /// Windowed mean of the active-objective fairness term, over the
    /// snapshots that recorded one (`None` when no snapshot did).
    pub fn mean_objective_fairness(&self) -> Option<f64> {
        let values: Vec<f64> = self
            .snapshots
            .iter()
            .filter_map(|s| s.objective_fairness)
            .collect();
        if values.is_empty() {
            return None;
        }
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }

    /// Latest active-objective fairness minus its windowed mean: positive
    /// when the optimizer's own metric is degrading relative to the
    /// recent past. `None` until a snapshot recorded the objective.
    pub fn objective_drift(&self) -> Option<f64> {
        Some(self.latest()?.objective_fairness? - self.mean_objective_fairness()?)
    }

    fn mean_of(&self, f: impl Fn(&FairnessSnapshot) -> f64) -> Option<f64> {
        if self.snapshots.is_empty() {
            return None;
        }
        Some(self.snapshots.iter().map(f).sum::<f64>() / self.snapshots.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairkm_data::{row, DatasetBuilder, Normalization, Role};

    fn views(swap: bool) -> (NumericMatrix, SensitiveSpace, Partition) {
        let mut b = DatasetBuilder::new();
        b.numeric("x", Role::NonSensitive).unwrap();
        b.categorical("g", Role::Sensitive, &["a", "b"]).unwrap();
        for i in 0..8 {
            let g = if (i < 4) ^ swap { "a" } else { "b" };
            b.push_row(row![i as f64, g]).unwrap();
        }
        let d = b.build().unwrap();
        let m = d.task_matrix(Normalization::None).unwrap();
        let s = d.sensitive_space().unwrap();
        // clusters = halves: maximally unfair when groups align with halves
        let p = Partition::new(vec![0, 0, 0, 0, 1, 1, 1, 1], 2).unwrap();
        (m, s, p)
    }

    #[test]
    fn observe_records_and_windows() {
        let mut mon = WindowedFairnessMonitor::new(2, EvalContext::new().with_threads(1));
        assert!(mon.is_empty());
        let (m, s, p) = views(false);
        let snap = mon.observe(&m, &s, &p);
        assert_eq!(snap.n_points, 8);
        assert!(snap.co > 0.0);
        assert!(snap.mean_ae > 0.1, "aligned halves are unfair");
        mon.observe(&m, &s, &p);
        mon.observe(&m, &s, &p);
        assert_eq!(mon.len(), 2, "window caps retained snapshots");
        assert_eq!(mon.latest(), Some(&snap));
    }

    #[test]
    fn drift_is_latest_minus_window_mean() {
        let mut mon = WindowedFairnessMonitor::new(8, EvalContext::new().with_threads(1));
        let (m, s, p) = views(false);
        mon.observe(&m, &s, &p);
        assert_eq!(mon.ae_drift(), Some(0.0), "single snapshot has no drift");
        // A balanced partition observed next lowers AE below the mean.
        let balanced = Partition::new(vec![0, 1, 0, 1, 0, 1, 0, 1], 2).unwrap();
        mon.observe(&m, &s, &balanced);
        assert!(mon.ae_drift().unwrap() < 0.0, "fairness improved");
        assert!(mon.mean_ae().unwrap() > 0.0);
        assert!(mon.mean_co().unwrap() > 0.0);
    }

    #[test]
    fn observe_objective_records_the_active_metric_alongside_ae() {
        let mut mon = WindowedFairnessMonitor::new(4, EvalContext::new().with_threads(1));
        let (m, s, p) = views(false);
        // Plain observe: no objective recorded.
        let plain = mon.observe(&m, &s, &p);
        assert_eq!(plain.objective_fairness, None);
        assert!(plain.objective_contribs.is_empty());
        assert_eq!(mon.mean_objective_fairness(), None);
        assert_eq!(mon.objective_drift(), None);
        // Objective-aware observe: the active metric and its per-cluster
        // contributions ride along with the representativity report.
        let snap = mon.observe_objective(&m, &s, &p, 0.75, vec![0.5, 0.25]);
        assert_eq!(snap.objective_fairness, Some(0.75));
        assert_eq!(snap.objective_contribs, vec![0.5, 0.25]);
        assert!(snap.mean_ae > 0.0, "AE still measured independently");
        assert_eq!(mon.mean_objective_fairness(), Some(0.75));
        assert_eq!(mon.objective_drift(), Some(0.0));
        // A worse objective next shows positive drift of the active metric.
        mon.observe_objective(&m, &s, &p, 1.25, vec![1.0, 0.25]);
        assert!(mon.objective_drift().unwrap() > 0.0);
        assert_eq!(mon.latest().unwrap().objective_fairness, Some(1.25));
    }

    #[test]
    fn empty_sensitive_space_reports_zero_deviation() {
        let mut b = DatasetBuilder::new();
        b.numeric("x", Role::NonSensitive).unwrap();
        b.push_row(row![0.0]).unwrap();
        b.push_row(row![1.0]).unwrap();
        let d = b.build().unwrap();
        let m = d.task_matrix(Normalization::None).unwrap();
        let s = d.sensitive_space().unwrap();
        let p = Partition::new(vec![0, 1], 2).unwrap();
        let mut mon = WindowedFairnessMonitor::new(4, EvalContext::new());
        let snap = mon.observe(&m, &s, &p);
        assert_eq!(snap.mean_ae, 0.0);
        assert_eq!(snap.mean_aw, 0.0);
    }
}
