//! Distances between discrete distributions over an attribute's values.

/// Euclidean distance between two equal-length probability vectors — the
/// `ED(C_S, X_S)` used by the AE/ME fairness measures (Eq. 25).
pub fn euclidean_hist(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "histograms must share a domain");
    p.iter()
        .zip(q)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

/// First Wasserstein (earth-mover) distance between two histograms over the
/// same ordered domain with unit ground distance between adjacent values:
/// `W1 = Σ_i |CDF_p(i) − CDF_q(i)|`.
///
/// This is the distance the AW/MW measures use (after reference \[21\] in the paper).
/// For binary attributes it reduces to `|p₀ − q₀|`, which matches the ≈√2
/// ratio between the paper's AE and AW gender rows.
pub fn wasserstein1_hist(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "histograms must share a domain");
    let mut cdf_diff = 0.0;
    let mut total = 0.0;
    // The last CDF term is (sum p - sum q) ~ 0 for probability vectors and
    // is excluded (t values have t-1 inter-value gaps).
    for i in 0..p.len().saturating_sub(1) {
        cdf_diff += p[i] - q[i];
        total += cdf_diff.abs();
    }
    total
}

/// Exact W1 distance between two empirical 1-D distributions given as
/// unsorted samples: `∫₀¹ |F_a⁻¹(u) − F_b⁻¹(u)| du` for the step quantile
/// functions. Used for numeric sensitive attributes, where cluster and
/// dataset value distributions are sample sets of different sizes.
///
/// Returns 0 when either sample set is empty.
pub fn wasserstein1_samples(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut xs: Vec<f64> = a.to_vec();
    let mut ys: Vec<f64> = b.to_vec();
    xs.sort_by(f64::total_cmp);
    ys.sort_by(f64::total_cmp);
    let (n, m) = (xs.len() as f64, ys.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut u = 0.0f64; // quantile level covered so far
    let mut total = 0.0f64;
    while i < xs.len() && j < ys.len() {
        let next_u = ((i + 1) as f64 / n).min((j + 1) as f64 / m);
        total += (next_u - u) * (xs[i] - ys[j]).abs();
        if ((i + 1) as f64 / n) <= next_u + 1e-15 {
            i += 1;
        }
        if ((j + 1) as f64 / m) <= next_u + 1e-15 {
            j += 1;
        }
        u = next_u;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_zero_on_identical() {
        assert_eq!(euclidean_hist(&[0.3, 0.7], &[0.3, 0.7]), 0.0);
    }

    #[test]
    fn euclidean_binary_is_sqrt2_times_gap() {
        let d = euclidean_hist(&[0.6, 0.4], &[0.5, 0.5]);
        assert!((d - 0.1 * 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn w1_zero_on_identical() {
        assert_eq!(wasserstein1_hist(&[0.2, 0.5, 0.3], &[0.2, 0.5, 0.3]), 0.0);
    }

    #[test]
    fn w1_binary_is_probability_gap() {
        assert!((wasserstein1_hist(&[0.6, 0.4], &[0.5, 0.5]) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn w1_moves_mass_across_gaps() {
        // All mass at value 0 vs all at value 2: distance 2 (two unit gaps).
        assert!((wasserstein1_hist(&[1.0, 0.0, 0.0], &[0.0, 0.0, 1.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn w1_is_symmetric_and_triangle_holds_on_example() {
        let a = [0.5, 0.5, 0.0];
        let b = [0.0, 0.5, 0.5];
        let c = [0.25, 0.5, 0.25];
        assert_eq!(wasserstein1_hist(&a, &b), wasserstein1_hist(&b, &a));
        assert!(
            wasserstein1_hist(&a, &b)
                <= wasserstein1_hist(&a, &c) + wasserstein1_hist(&c, &b) + 1e-12
        );
    }

    #[test]
    fn w1_at_most_euclidean_times_domain_scale_on_binary() {
        // sanity relation used in EXPERIMENTS.md: AE = sqrt(2) * AW on
        // binary attributes.
        let p = [0.8, 0.2];
        let q = [0.65, 0.35];
        let ae = euclidean_hist(&p, &q);
        let aw = wasserstein1_hist(&p, &q);
        assert!((ae - aw * 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_single_value_domain() {
        assert_eq!(wasserstein1_hist(&[1.0], &[1.0]), 0.0);
        assert_eq!(euclidean_hist(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn w1_samples_identical_sets_is_zero() {
        let a = [3.0, 1.0, 2.0];
        assert!(wasserstein1_samples(&a, &a).abs() < 1e-12);
    }

    #[test]
    fn w1_samples_constant_shift() {
        // Shifting every sample by d moves the whole quantile function by d.
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.5, 2.5, 3.5, 4.5];
        assert!((wasserstein1_samples(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn w1_samples_different_sizes() {
        // a = {0}, b = {0, 1}: quantile diff is 0 on [0,.5], 1 on (.5,1].
        let d = wasserstein1_samples(&[0.0], &[0.0, 1.0]);
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn w1_samples_empty_is_zero() {
        assert_eq!(wasserstein1_samples(&[], &[1.0]), 0.0);
    }

    #[test]
    fn w1_samples_symmetric() {
        let a = [0.0, 5.0, 9.0];
        let b = [1.0, 2.0, 3.0, 10.0];
        assert!((wasserstein1_samples(&a, &b) - wasserstein1_samples(&b, &a)).abs() < 1e-12);
    }
}
