//! Fairness evaluation measures (§5.2.2): AE, AW, ME, MW per sensitive
//! attribute plus cross-attribute means, and the classical balance measure.

use crate::wasserstein::{euclidean_hist, wasserstein1_hist, wasserstein1_samples};
use fairkm_data::{Partition, SensitiveCat, SensitiveNum, SensitiveSpace};

/// The four deviation measures for one sensitive attribute. All are
/// deviations — lower is fairer.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrFairness {
    /// Attribute name (or `"mean"` for the cross-attribute aggregate).
    pub name: String,
    /// Average Euclidean — cluster-cardinality-weighted mean of
    /// `ED(C_S, X_S)` over non-empty clusters (Eq. 25).
    pub ae: f64,
    /// Average Wasserstein — same weighting, W1 distance.
    pub aw: f64,
    /// Max Euclidean — worst cluster's `ED(C_S, X_S)`.
    pub me: f64,
    /// Max Wasserstein — worst cluster's W1.
    pub mw: f64,
}

/// Full fairness evaluation of one clustering against the dataset
/// distributions.
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessReport {
    /// Per categorical sensitive attribute.
    pub categorical: Vec<AttrFairness>,
    /// Per numeric sensitive attribute (Euclidean slots hold the
    /// |cluster mean − dataset mean| deviation normalized by the dataset
    /// standard deviation; Wasserstein slots hold the sample-based W1).
    pub numeric: Vec<AttrFairness>,
    /// Unweighted mean of every measure across all sensitive attributes —
    /// the "Mean across S Attributes" block of Tables 6 and 8.
    pub mean: AttrFairness,
}

impl FairnessReport {
    /// Look up one attribute's row by name.
    pub fn attr(&self, name: &str) -> Option<&AttrFairness> {
        self.categorical
            .iter()
            .chain(&self.numeric)
            .find(|a| a.name == name)
    }
}

/// Normalized value distribution of a categorical attribute within one
/// cluster (`C_S` in §5.2.2). `members` must be non-empty.
pub fn cluster_distribution(attr: &SensitiveCat, members: &[usize]) -> Vec<f64> {
    debug_assert!(!members.is_empty());
    let counts = attr.counts_over(members);
    let inv = 1.0 / members.len() as f64;
    counts.into_iter().map(|c| c as f64 * inv).collect()
}

fn categorical_fairness(attr: &SensitiveCat, members: &[Vec<usize>], n: usize) -> AttrFairness {
    let dataset = attr.dataset_dist();
    let mut ae = 0.0;
    let mut aw = 0.0;
    let mut me: f64 = 0.0;
    let mut mw: f64 = 0.0;
    for cluster in members.iter().filter(|m| !m.is_empty()) {
        let dist = cluster_distribution(attr, cluster);
        let ed = euclidean_hist(&dist, dataset);
        let w1 = wasserstein1_hist(&dist, dataset);
        let weight = cluster.len() as f64 / n as f64;
        ae += weight * ed;
        aw += weight * w1;
        me = me.max(ed);
        mw = mw.max(w1);
    }
    AttrFairness {
        name: attr.name().to_string(),
        ae,
        aw,
        me,
        mw,
    }
}

fn numeric_fairness(attr: &SensitiveNum, members: &[Vec<usize>], n: usize) -> AttrFairness {
    let values = attr.values();
    let dataset_mean = attr.dataset_mean();
    let var = values
        .iter()
        .map(|v| (v - dataset_mean) * (v - dataset_mean))
        .sum::<f64>()
        / n.max(1) as f64;
    let sd = var.sqrt();
    let scale = if sd > 0.0 { 1.0 / sd } else { 0.0 };

    let mut ae = 0.0;
    let mut aw = 0.0;
    let mut me: f64 = 0.0;
    let mut mw: f64 = 0.0;
    for cluster in members.iter().filter(|m| !m.is_empty()) {
        let cluster_vals: Vec<f64> = cluster.iter().map(|&i| values[i]).collect();
        let mean = cluster_vals.iter().sum::<f64>() / cluster_vals.len() as f64;
        let ed = (mean - dataset_mean).abs() * scale;
        let w1 = wasserstein1_samples(&cluster_vals, values) * scale;
        let weight = cluster.len() as f64 / n as f64;
        ae += weight * ed;
        aw += weight * w1;
        me = me.max(ed);
        mw = mw.max(w1);
    }
    AttrFairness {
        name: attr.name().to_string(),
        ae,
        aw,
        me,
        mw,
    }
}

/// Evaluate all four fairness measures for every sensitive attribute of
/// `space` under `partition`, plus the cross-attribute mean.
///
/// # Panics
///
/// Panics if the partition does not cover `space.n_rows()` objects.
pub fn fairness_report(space: &SensitiveSpace, partition: &Partition) -> FairnessReport {
    assert_eq!(
        space.n_rows(),
        partition.n_points(),
        "partition must cover the sensitive space"
    );
    let members = partition.members();
    let n = space.n_rows();
    let categorical: Vec<AttrFairness> = space
        .categorical()
        .iter()
        .map(|attr| categorical_fairness(attr, &members, n))
        .collect();
    let numeric: Vec<AttrFairness> = space
        .numeric()
        .iter()
        .map(|attr| numeric_fairness(attr, &members, n))
        .collect();

    let all: Vec<&AttrFairness> = categorical.iter().chain(&numeric).collect();
    let count = all.len().max(1) as f64;
    let mean = AttrFairness {
        name: "mean".to_string(),
        ae: all.iter().map(|a| a.ae).sum::<f64>() / count,
        aw: all.iter().map(|a| a.aw).sum::<f64>() / count,
        me: all.iter().map(|a| a.me).sum::<f64>() / count,
        mw: all.iter().map(|a| a.mw).sum::<f64>() / count,
    };
    FairnessReport {
        categorical,
        numeric,
        mean,
    }
}

/// Generalized balance (after Chierichetti et al. / Bera et al.): the
/// minimum over non-empty clusters and attribute values of
/// `min(Fr_C(s)/Fr_X(s), Fr_X(s)/Fr_C(s))`. 1 means every cluster exactly
/// mirrors the dataset; 0 means some cluster entirely misses some value.
/// Higher is fairer (unlike the deviation measures).
pub fn balance(attr: &SensitiveCat, partition: &Partition) -> f64 {
    let dataset = attr.dataset_dist();
    let mut worst = 1.0f64;
    for cluster in partition.members().iter().filter(|m| !m.is_empty()) {
        let dist = cluster_distribution(attr, cluster);
        for (p_c, p_x) in dist.iter().zip(dataset) {
            if *p_x == 0.0 {
                continue; // value absent from the dataset entirely
            }
            let ratio = if *p_c == 0.0 {
                0.0
            } else {
                (p_c / p_x).min(p_x / p_c)
            };
            worst = worst.min(ratio);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairkm_data::{row, DatasetBuilder, Role};

    /// 8 objects, g = a,a,a,a,b,b,b,b — dataset dist (0.5, 0.5).
    fn space() -> SensitiveSpace {
        let mut b = DatasetBuilder::new();
        b.numeric("x", Role::NonSensitive).unwrap();
        b.categorical("g", Role::Sensitive, &["a", "b"]).unwrap();
        b.numeric("age", Role::Sensitive).unwrap();
        for i in 0..8 {
            let g = if i < 4 { "a" } else { "b" };
            b.push_row(row![i as f64, g, (10 * i) as f64]).unwrap();
        }
        b.build().unwrap().sensitive_space().unwrap()
    }

    #[test]
    fn perfectly_fair_partition_scores_zero() {
        let s = space();
        // alternate a/b across both clusters: each cluster is 2a+2b.
        let p = Partition::new(vec![0, 0, 1, 1, 0, 0, 1, 1], 2).unwrap();
        let r = fairness_report(&s, &p);
        let g = r.attr("g").unwrap();
        assert!(g.ae.abs() < 1e-12);
        assert!(g.aw.abs() < 1e-12);
        assert!(g.me.abs() < 1e-12);
        assert!(g.mw.abs() < 1e-12);
        assert_eq!(balance(&s.categorical()[0], &p), 1.0);
    }

    #[test]
    fn maximally_unfair_partition_scores_high() {
        let s = space();
        // cluster 0 = all a, cluster 1 = all b.
        let p = Partition::new(vec![0, 0, 0, 0, 1, 1, 1, 1], 2).unwrap();
        let r = fairness_report(&s, &p);
        let g = r.attr("g").unwrap();
        // each cluster dist is (1,0) or (0,1); ED to (0.5,0.5) = sqrt(0.5)
        assert!((g.ae - 0.5f64.sqrt()).abs() < 1e-12);
        assert!((g.aw - 0.5).abs() < 1e-12);
        assert!((g.me - 0.5f64.sqrt()).abs() < 1e-12);
        assert!((g.mw - 0.5).abs() < 1e-12);
        assert_eq!(balance(&s.categorical()[0], &p), 0.0);
    }

    #[test]
    fn ae_is_cluster_cardinality_weighted() {
        let s = space();
        // cluster 0 = {0} (all a, |C|=1), cluster 1 = the rest (3a+4b).
        let p = Partition::new(vec![0, 1, 1, 1, 1, 1, 1, 1], 2).unwrap();
        let r = fairness_report(&s, &p);
        let g = r.attr("g").unwrap();
        let d0 = euclidean_hist(&[1.0, 0.0], &[0.5, 0.5]);
        let d1 = euclidean_hist(&[3.0 / 7.0, 4.0 / 7.0], &[0.5, 0.5]);
        let expected = (1.0 * d0 + 7.0 * d1) / 8.0;
        assert!((g.ae - expected).abs() < 1e-12);
        assert!((g.me - d0).abs() < 1e-12);
    }

    #[test]
    fn numeric_attribute_deviations() {
        let s = space();
        // clusters {0..3} and {4..7}: means 15 and 45 wrt ages 0..70.
        let p = Partition::new(vec![0, 0, 0, 0, 1, 1, 1, 1], 2).unwrap();
        let r = fairness_report(&s, &p);
        let age = r.attr("age").unwrap();
        assert!(age.ae > 0.0);
        assert!(age.me >= age.ae);
        assert!(age.aw > 0.0);
        // fair split by alternating rows gives near-zero mean deviation
        let fair = Partition::new(vec![0, 1, 0, 1, 0, 1, 0, 1], 2).unwrap();
        let rf = fairness_report(&s, &fair);
        assert!(rf.attr("age").unwrap().ae < age.ae);
    }

    #[test]
    fn mean_block_averages_attributes() {
        let s = space();
        let p = Partition::new(vec![0, 0, 0, 0, 1, 1, 1, 1], 2).unwrap();
        let r = fairness_report(&s, &p);
        let expected_ae = (r.categorical[0].ae + r.numeric[0].ae) / 2.0;
        assert!((r.mean.ae - expected_ae).abs() < 1e-12);
    }

    #[test]
    fn empty_clusters_are_skipped() {
        let s = space();
        let p = Partition::new(vec![0, 0, 0, 0, 2, 2, 2, 2], 3).unwrap();
        let r = fairness_report(&s, &p);
        assert!(r.attr("g").unwrap().ae.is_finite());
    }

    #[test]
    fn max_is_at_least_average() {
        let s = space();
        for assignments in [
            vec![0, 0, 1, 1, 0, 1, 0, 1],
            vec![0, 1, 1, 1, 0, 0, 0, 1],
            vec![0, 0, 0, 1, 1, 1, 1, 1],
        ] {
            let p = Partition::new(assignments, 2).unwrap();
            let r = fairness_report(&s, &p);
            for a in r.categorical.iter().chain(&r.numeric) {
                assert!(a.me >= a.ae - 1e-12, "{}: me < ae", a.name);
                assert!(a.mw >= a.aw - 1e-12, "{}: mw < aw", a.name);
            }
        }
    }
}
