//! Clustering-quality measures over the task attributes `N` (§5.2.1).
//!
//! The O(n) and O(n²) scans here run on the `fairkm-parallel` engine with
//! fixed chunk boundaries and ordered reduction, so every measure is
//! bitwise-identical for any thread count. The `_with` variants take an
//! explicit [`EvalContext`]; the parameterless forms auto-resolve.

use crate::EvalContext;
use fairkm_data::{sq_euclidean, NumericMatrix, Partition};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Per-cluster centroids (means) of a partition over a matrix with
/// auto-resolved threading. See [`centroids_with`].
pub fn centroids(matrix: &NumericMatrix, partition: &Partition) -> Vec<Option<Vec<f64>>> {
    centroids_with(matrix, partition, &EvalContext::default())
}

/// Per-cluster centroids (means) of a partition over a matrix. Empty
/// clusters yield `None`.
///
/// Chunk-parallel on `ctx`'s workers: fixed row chunks accumulate partial
/// sums that are merged in chunk order.
pub fn centroids_with(
    matrix: &NumericMatrix,
    partition: &Partition,
    ctx: &EvalContext,
) -> Vec<Option<Vec<f64>>> {
    assert_eq!(matrix.rows(), partition.n_points(), "row count mismatch");
    let k = partition.k();
    let dim = matrix.cols();
    let threads = ctx.resolve();
    let (sums, counts) = fairkm_parallel::fold_chunks(
        threads,
        matrix.rows(),
        (vec![0.0f64; k * dim], vec![0usize; k]),
        |range| {
            let mut sums = vec![0.0f64; k * dim];
            let mut counts = vec![0usize; k];
            for i in range {
                let c = partition.assignment(i);
                counts[c] += 1;
                for (s, v) in sums[c * dim..(c + 1) * dim].iter_mut().zip(matrix.row(i)) {
                    *s += v;
                }
            }
            (sums, counts)
        },
        |(mut sums, mut counts), (part_sums, part_counts)| {
            for (total, add) in sums.iter_mut().zip(&part_sums) {
                *total += add;
            }
            for (total, add) in counts.iter_mut().zip(&part_counts) {
                *total += add;
            }
            (sums, counts)
        },
    );
    (0..k)
        .map(|c| {
            if counts[c] == 0 {
                None
            } else {
                let inv = 1.0 / counts[c] as f64;
                Some(
                    sums[c * dim..(c + 1) * dim]
                        .iter()
                        .map(|s| s * inv)
                        .collect(),
                )
            }
        })
        .collect()
}

/// The clustering objective **CO** (Eq. 24) with auto-resolved threading.
/// See [`clustering_objective_with`].
pub fn clustering_objective(matrix: &NumericMatrix, partition: &Partition) -> f64 {
    clustering_objective_with(matrix, partition, &EvalContext::default())
}

/// The clustering objective **CO** (Eq. 24): the K-Means loss
/// `Σ_C Σ_{X∈C} dist_N(X, C)` with squared Euclidean distance to each
/// cluster's mean prototype. Lower is better.
///
/// Chunk-parallel sum with ordered reduction on `ctx`'s workers.
pub fn clustering_objective_with(
    matrix: &NumericMatrix,
    partition: &Partition,
    ctx: &EvalContext,
) -> f64 {
    let cents = centroids_with(matrix, partition, ctx);
    let threads = ctx.resolve();
    fairkm_parallel::sum_chunks(threads, matrix.rows(), |range| {
        let mut total = 0.0;
        for i in range {
            let c = partition.assignment(i);
            if let Some(center) = &cents[c] {
                total += sq_euclidean(matrix.row(i), center);
            }
        }
        total
    })
}

/// Exact silhouette score **SH** ([Rousseeuw 1987]): mean over objects of
/// `(b - a) / max(a, b)` where `a` is the mean (Euclidean) distance to the
/// object's own cluster and `b` the smallest mean distance to another
/// non-empty cluster. Objects in singleton clusters score 0, matching the
/// common library convention. Range `[-1, +1]`, higher is better.
///
/// O(n²·dim) — use [`silhouette_sampled`] for large datasets.
///
/// Returns 0 when fewer than two clusters are non-empty (silhouette is
/// undefined there; 0 is the neutral value).
///
/// [Rousseeuw 1987]: https://doi.org/10.1016/0377-0427(87)90125-7
pub fn silhouette(matrix: &NumericMatrix, partition: &Partition) -> f64 {
    silhouette_with(matrix, partition, &EvalContext::default())
}

/// Exact silhouette score with an explicit [`EvalContext`]. See
/// [`silhouette`].
pub fn silhouette_with(matrix: &NumericMatrix, partition: &Partition, ctx: &EvalContext) -> f64 {
    let idx: Vec<usize> = (0..matrix.rows()).collect();
    silhouette_over(matrix, partition, &idx, ctx)
}

/// Silhouette over a deterministic subsample with auto-resolved threading.
/// See [`silhouette_sampled_with`].
pub fn silhouette_sampled(
    matrix: &NumericMatrix,
    partition: &Partition,
    max_points: usize,
    seed: u64,
) -> f64 {
    silhouette_sampled_with(matrix, partition, max_points, seed, &EvalContext::default())
}

/// Silhouette over a deterministic subsample of at most `max_points` rows
/// (both the `a` and `b` terms are computed within the subsample). The
/// paper's Adult runs need this: exact silhouette over 15k rows is O(n²).
pub fn silhouette_sampled_with(
    matrix: &NumericMatrix,
    partition: &Partition,
    max_points: usize,
    seed: u64,
    ctx: &EvalContext,
) -> f64 {
    if matrix.rows() <= max_points {
        return silhouette_with(matrix, partition, ctx);
    }
    let mut idx: Vec<usize> = (0..matrix.rows()).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x51_1b0e77e);
    idx.shuffle(&mut rng);
    idx.truncate(max_points);
    idx.sort_unstable();
    silhouette_over(matrix, partition, &idx, ctx)
}

fn silhouette_over(
    matrix: &NumericMatrix,
    partition: &Partition,
    idx: &[usize],
    ctx: &EvalContext,
) -> f64 {
    let n = idx.len();
    if n == 0 {
        return 0.0;
    }
    let k = partition.k();
    // Sizes within the subsample.
    let mut sizes = vec![0usize; k];
    for &i in idx {
        sizes[partition.assignment(i)] += 1;
    }
    if sizes.iter().filter(|&&s| s > 0).count() < 2 {
        return 0.0;
    }
    // O(n²·dim) — the hottest metric scan. Each object's silhouette width
    // only reads shared state, so chunks of objects evaluate in parallel;
    // per-chunk partial totals merge in chunk order (bitwise-stable for any
    // thread count).
    let threads = ctx.resolve();
    let sizes = &sizes;
    let total = fairkm_parallel::sum_chunks(threads, n, |range| {
        let mut partial = 0.0;
        let mut dist_sums = vec![0.0f64; k];
        for &i in &idx[range] {
            let own = partition.assignment(i);
            if sizes[own] <= 1 {
                continue; // singleton: s(i) = 0 contributes nothing
            }
            dist_sums.fill(0.0);
            let ri = matrix.row(i);
            for &j in idx {
                if i == j {
                    continue;
                }
                dist_sums[partition.assignment(j)] += sq_euclidean(ri, matrix.row(j)).sqrt();
            }
            let a = dist_sums[own] / (sizes[own] - 1) as f64;
            let mut b = f64::INFINITY;
            for c in 0..k {
                if c != own && sizes[c] > 0 {
                    b = b.min(dist_sums[c] / sizes[c] as f64);
                }
            }
            let denom = a.max(b);
            if denom > 0.0 {
                partial += (b - a) / denom;
            }
        }
        partial
    });
    total / n as f64
}

/// Compact per-partition summary used in reports and examples.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterStats {
    /// Number of clusters (including empty).
    pub k: usize,
    /// Number of objects.
    pub n_points: usize,
    /// Per-cluster sizes.
    pub sizes: Vec<usize>,
    /// Number of empty clusters.
    pub n_empty: usize,
}

impl ClusterStats {
    /// Compute from a partition.
    pub fn of(partition: &Partition) -> Self {
        let sizes = partition.cluster_sizes();
        let n_empty = sizes.iter().filter(|&&s| s == 0).count();
        Self {
            k: partition.k(),
            n_points: partition.n_points(),
            sizes,
            n_empty,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairkm_data::NumericMatrix;

    fn matrix(rows: &[&[f64]]) -> NumericMatrix {
        let cols = rows[0].len();
        let data: Vec<f64> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        let names = (0..cols).map(|i| format!("c{i}")).collect();
        NumericMatrix::from_parts(data, rows.len(), cols, names)
    }

    #[test]
    fn centroids_are_means_and_empty_is_none() {
        let m = matrix(&[&[0.0, 0.0], &[2.0, 2.0], &[10.0, 0.0]]);
        let p = Partition::new(vec![0, 0, 2], 3).unwrap();
        let c = centroids(&m, &p);
        assert_eq!(c[0], Some(vec![1.0, 1.0]));
        assert_eq!(c[1], None);
        assert_eq!(c[2], Some(vec![10.0, 0.0]));
    }

    #[test]
    fn objective_is_within_cluster_sse() {
        let m = matrix(&[&[0.0], &[2.0], &[10.0], &[12.0]]);
        let p = Partition::new(vec![0, 0, 1, 1], 2).unwrap();
        // cluster means 1 and 11; SSE = 1+1+1+1 = 4
        assert!((clustering_objective(&m, &p) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn objective_of_perfect_singletons_is_zero() {
        let m = matrix(&[&[0.0], &[5.0]]);
        let p = Partition::new(vec![0, 1], 2).unwrap();
        assert_eq!(clustering_objective(&m, &p), 0.0);
    }

    #[test]
    fn silhouette_high_for_separated_blobs() {
        let m = matrix(&[
            &[0.0, 0.0],
            &[0.1, 0.0],
            &[0.0, 0.1],
            &[10.0, 10.0],
            &[10.1, 10.0],
            &[10.0, 10.1],
        ]);
        let good = Partition::new(vec![0, 0, 0, 1, 1, 1], 2).unwrap();
        let bad = Partition::new(vec![0, 1, 0, 1, 0, 1], 2).unwrap();
        let s_good = silhouette(&m, &good);
        let s_bad = silhouette(&m, &bad);
        assert!(s_good > 0.9, "good split scored {s_good}");
        assert!(s_bad < 0.1, "bad split scored {s_bad}");
    }

    #[test]
    fn silhouette_in_range_and_single_cluster_zero() {
        let m = matrix(&[&[0.0], &[1.0], &[2.0]]);
        let p1 = Partition::new(vec![0, 0, 0], 1).unwrap();
        assert_eq!(silhouette(&m, &p1), 0.0);
        let p2 = Partition::new(vec![0, 1, 1], 2).unwrap();
        let s = silhouette(&m, &p2);
        assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn sampled_silhouette_matches_exact_when_not_sampling() {
        let m = matrix(&[&[0.0], &[0.5], &[9.0], &[9.5]]);
        let p = Partition::new(vec![0, 0, 1, 1], 2).unwrap();
        assert_eq!(silhouette_sampled(&m, &p, 100, 1), silhouette(&m, &p));
    }

    #[test]
    fn sampled_silhouette_is_deterministic_and_close() {
        // Two clear blobs, 60 points.
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                let base = if i < 30 { 0.0 } else { 20.0 };
                vec![base + (i % 5) as f64 * 0.1]
            })
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let m = matrix(&refs);
        let p = Partition::new((0..60).map(|i| usize::from(i >= 30)).collect(), 2).unwrap();
        let s1 = silhouette_sampled(&m, &p, 20, 7);
        let s2 = silhouette_sampled(&m, &p, 20, 7);
        assert_eq!(s1, s2);
        assert!((s1 - silhouette(&m, &p)).abs() < 0.05);
    }

    #[test]
    fn cluster_stats_counts_empties() {
        let p = Partition::new(vec![0, 0, 3], 4).unwrap();
        let st = ClusterStats::of(&p);
        assert_eq!(st.k, 4);
        assert_eq!(st.n_empty, 2);
        assert_eq!(st.sizes, vec![2, 0, 0, 1]);
    }
}
