//! # fairkm-metrics — clustering quality and fairness evaluation
//!
//! Implements every evaluation measure from §5.2 of the paper:
//!
//! **Clustering quality** (over the task attributes `N`):
//! * [`clustering_objective`] — the K-Means loss **CO** (Eq. 24), lower is
//!   better;
//! * [`silhouette`] / [`silhouette_sampled`] — **SH**, higher is better;
//! * [`dev_c`] — **DevC**, centroid deviation from an S-blind reference
//!   clustering (optimal centroid matching via `fairkm-flow`);
//! * [`dev_o`] — **DevO**, fraction of object pairs on which two
//!   clusterings disagree (1 − Rand index).
//!
//! **Fairness** (over the sensitive attributes `S`, all deviations — lower
//! is fairer):
//! * [`fairness_report`] — **AE / AW / ME / MW** per attribute plus the
//!   cross-attribute mean (Tables 6 and 8);
//! * [`balance`] — the classical fairness balance (higher is fairer),
//!   provided as an extra diagnostic.
//!
//! Distribution distances live in [`wasserstein`]: Euclidean and W1 over
//! histograms, and an exact sample-based W1 for numeric attributes.
//!
//! For long-lived (streaming) clusterings, [`WindowedFairnessMonitor`]
//! keeps a bounded window of CO + AE/AW snapshots over the live partition
//! and reports windowed means and fairness drift.
//!
//! ## Threading
//!
//! The O(n) and O(n²) evaluators run on the `fairkm-parallel` engine and
//! are bitwise-identical for any thread count. Embedders control the
//! worker count with an explicit [`EvalContext`] passed to the `_with`
//! variants ([`clustering_objective_with`], [`silhouette_with`],
//! [`silhouette_sampled_with`], [`centroids_with`], [`dev_c_with`]); the
//! parameterless forms default to auto-resolution (the `FAIRKM_THREADS`
//! environment variable, then available parallelism) — the environment
//! variable is a fallback inside `fairkm_parallel::resolve_threads` only,
//! never something this crate mutates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod deviation;
mod fairness;
mod monitor;
mod quality;
pub mod wasserstein;

pub use deviation::{dev_c, dev_c_with, dev_o};
pub use fairness::{balance, cluster_distribution, fairness_report, AttrFairness, FairnessReport};
pub use monitor::{FairnessSnapshot, WindowedFairnessMonitor};
pub use quality::{
    centroids, centroids_with, clustering_objective, clustering_objective_with, silhouette,
    silhouette_sampled, silhouette_sampled_with, silhouette_with, ClusterStats,
};

/// Evaluation context for the parallel metric evaluators: carries the
/// worker-thread choice so embedders never have to mutate the
/// `FAIRKM_THREADS` process environment to control metric threading.
///
/// The default context auto-resolves (environment variable, then available
/// parallelism). Results are bitwise-identical for any thread count —
/// the context changes wall-clock time, never a value.
///
/// ```
/// use fairkm_metrics::EvalContext;
///
/// let ctx = EvalContext::new().with_threads(4);
/// assert_eq!(ctx.threads(), Some(4));
/// assert_eq!(EvalContext::default().threads(), None);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalContext {
    threads: Option<usize>,
}

impl EvalContext {
    /// Auto-resolving context (equivalent to [`EvalContext::default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Pin the evaluators to `threads` workers (clamped to ≥ 1 at use).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// The explicit thread choice, if any.
    pub fn threads(&self) -> Option<usize> {
        self.threads
    }

    /// Resolve to a concrete worker count
    /// (see [`fairkm_parallel::resolve_threads`]).
    pub(crate) fn resolve(&self) -> usize {
        fairkm_parallel::resolve_threads(self.threads)
    }
}
