//! # fairkm-metrics — clustering quality and fairness evaluation
//!
//! Implements every evaluation measure from §5.2 of the paper:
//!
//! **Clustering quality** (over the task attributes `N`):
//! * [`clustering_objective`] — the K-Means loss **CO** (Eq. 24), lower is
//!   better;
//! * [`silhouette`] / [`silhouette_sampled`] — **SH**, higher is better;
//! * [`dev_c`] — **DevC**, centroid deviation from an S-blind reference
//!   clustering (optimal centroid matching via `fairkm-flow`);
//! * [`dev_o`] — **DevO**, fraction of object pairs on which two
//!   clusterings disagree (1 − Rand index).
//!
//! **Fairness** (over the sensitive attributes `S`, all deviations — lower
//! is fairer):
//! * [`fairness_report`] — **AE / AW / ME / MW** per attribute plus the
//!   cross-attribute mean (Tables 6 and 8);
//! * [`balance`] — the classical fairness balance (higher is fairer),
//!   provided as an extra diagnostic.
//!
//! Distribution distances live in [`wasserstein`]: Euclidean and W1 over
//! histograms, and an exact sample-based W1 for numeric attributes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod deviation;
mod fairness;
mod quality;
pub mod wasserstein;

pub use deviation::{dev_c, dev_o};
pub use fairness::{balance, cluster_distribution, fairness_report, AttrFairness, FairnessReport};
pub use quality::{centroids, clustering_objective, silhouette, silhouette_sampled, ClusterStats};
