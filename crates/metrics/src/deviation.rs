//! Deviation of a (fair) clustering from a reference S-blind clustering
//! (§5.2.1): **DevC** over centroids and **DevO** over object pairs.

use crate::quality::centroids_with;
use crate::EvalContext;
use fairkm_data::{sq_euclidean, NumericMatrix, Partition};
use fairkm_flow::{assignment, build_cost_matrix};

/// **DevC** — centroid-based deviation between two clusterings of the same
/// matrix.
///
/// The paper describes a centroid-pair measure that evaluates to 0 when a
/// clustering is compared against itself (Table 5). We realize it as the
/// minimum-cost bipartite matching between the two sets of *non-empty*
/// centroids under squared Euclidean distance, solved exactly with the
/// `fairkm-flow` substrate: the smaller centroid set is fully matched, and
/// the total matched cost is returned. Identical clusterings give 0;
/// larger values mean the fair clustering moved its prototypes further from
/// the reference ones. See DESIGN.md §3 for the interpretation note.
pub fn dev_c(matrix: &NumericMatrix, clustering: &Partition, reference: &Partition) -> f64 {
    dev_c_with(matrix, clustering, reference, &EvalContext::default())
}

/// **DevC** with an explicit [`EvalContext`] (threads the centroid scans
/// and the cost-matrix construction). See [`dev_c`].
pub fn dev_c_with(
    matrix: &NumericMatrix,
    clustering: &Partition,
    reference: &Partition,
    ctx: &EvalContext,
) -> f64 {
    let a: Vec<Vec<f64>> = centroids_with(matrix, clustering, ctx)
        .into_iter()
        .flatten()
        .collect();
    let b: Vec<Vec<f64>> = centroids_with(matrix, reference, ctx)
        .into_iter()
        .flatten()
        .collect();
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    // Rows must be the smaller side for a full matching.
    let (rows, cols) = if a.len() <= b.len() {
        (&a, &b)
    } else {
        (&b, &a)
    };
    let threads = ctx.resolve();
    let cost = build_cost_matrix(rows.len(), cols.len(), threads, |i, j| {
        sq_euclidean(&rows[i], &cols[j])
    });
    assignment(&cost).total_cost
}

/// **DevO** — object-pairwise deviation: the fraction of object pairs on
/// which the two clusterings disagree about "same cluster vs different
/// cluster" (1 − Rand index). Computed in O(n + k·k') via the contingency
/// table rather than enumerating the O(n²) pairs.
///
/// Returns 0 for datasets with fewer than two objects.
pub fn dev_o(clustering: &Partition, reference: &Partition) -> f64 {
    assert_eq!(
        clustering.n_points(),
        reference.n_points(),
        "partitions must cover the same objects"
    );
    let n = clustering.n_points();
    if n < 2 {
        return 0.0;
    }
    let ka = clustering.k();
    let kb = reference.k();
    let mut contingency = vec![0u64; ka * kb];
    let mut row_sums = vec![0u64; ka];
    let mut col_sums = vec![0u64; kb];
    for i in 0..n {
        let a = clustering.assignment(i);
        let b = reference.assignment(i);
        contingency[a * kb + b] += 1;
        row_sums[a] += 1;
        col_sums[b] += 1;
    }
    let choose2 = |x: u64| -> u64 { x * x.saturating_sub(1) / 2 };
    let s11: u64 = contingency.iter().map(|&x| choose2(x)).sum();
    let sa: u64 = row_sums.iter().map(|&x| choose2(x)).sum();
    let sb: u64 = col_sums.iter().map(|&x| choose2(x)).sum();
    let total = choose2(n as u64);
    // Pairs same-in-A but split-in-B: sa - s11; symmetric for B.
    ((sa - s11) + (sb - s11)) as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: &[&[f64]]) -> NumericMatrix {
        let cols = rows[0].len();
        let data: Vec<f64> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        let names = (0..cols).map(|i| format!("c{i}")).collect();
        NumericMatrix::from_parts(data, rows.len(), cols, names)
    }

    #[test]
    fn identical_clusterings_have_zero_deviation() {
        let m = matrix(&[&[0.0], &[1.0], &[10.0], &[11.0]]);
        let p = Partition::new(vec![0, 0, 1, 1], 2).unwrap();
        assert_eq!(dev_c(&m, &p, &p), 0.0);
        assert_eq!(dev_o(&p, &p), 0.0);
    }

    #[test]
    fn relabeled_clusterings_also_have_zero_deviation() {
        // Same partition, permuted cluster ids — deviation must be 0.
        let m = matrix(&[&[0.0], &[1.0], &[10.0], &[11.0]]);
        let p = Partition::new(vec![0, 0, 1, 1], 2).unwrap();
        let q = Partition::new(vec![1, 1, 0, 0], 2).unwrap();
        assert!(dev_c(&m, &p, &q).abs() < 1e-12);
        assert_eq!(dev_o(&p, &q), 0.0);
    }

    #[test]
    fn dev_o_counts_disagreeing_pairs() {
        // 4 objects; A: {0,1},{2,3}  B: {0,2},{1,3}
        // pairs: (01) same-A diff-B, (23) same-A diff-B,
        //        (02) diff-A same-B, (13) diff-A same-B, (03),(12) agree-diff
        let a = Partition::new(vec![0, 0, 1, 1], 2).unwrap();
        let b = Partition::new(vec![0, 1, 0, 1], 2).unwrap();
        assert!((dev_o(&a, &b) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn dev_o_is_symmetric() {
        let a = Partition::new(vec![0, 0, 1, 2, 2, 1], 3).unwrap();
        let b = Partition::new(vec![0, 1, 1, 0, 2, 2], 3).unwrap();
        assert_eq!(dev_o(&a, &b), dev_o(&b, &a));
    }

    #[test]
    fn dev_c_grows_with_centroid_displacement() {
        let m = matrix(&[&[0.0], &[1.0], &[10.0], &[11.0]]);
        let close = Partition::new(vec![0, 0, 1, 1], 2).unwrap();
        // Move one boundary object: centroids shift a bit.
        let shifted = Partition::new(vec![0, 1, 1, 1], 2).unwrap();
        // Totally different split: centroids shift a lot.
        let far = Partition::new(vec![0, 1, 0, 1], 2).unwrap();
        let d_shift = dev_c(&m, &shifted, &close);
        let d_far = dev_c(&m, &far, &close);
        assert!(d_shift > 0.0);
        assert!(d_far > d_shift);
    }

    #[test]
    fn dev_c_handles_empty_clusters() {
        let m = matrix(&[&[0.0], &[1.0]]);
        let a = Partition::new(vec![0, 0], 3).unwrap(); // 2 empty clusters
        let b = Partition::new(vec![0, 1], 2).unwrap();
        // a has one non-empty centroid at 0.5; best match distance is 0.25.
        assert!((dev_c(&m, &a, &b) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn dev_o_tiny_inputs() {
        let a = Partition::new(vec![0], 1).unwrap();
        assert_eq!(dev_o(&a, &a), 0.0);
        let e = Partition::new(vec![], 1).unwrap();
        assert_eq!(dev_o(&e, &e), 0.0);
    }
}
