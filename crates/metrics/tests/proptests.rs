//! Property tests for metric invariants on arbitrary data and partitions.

use fairkm_data::{AttrId, NumericMatrix, Partition, SensitiveCat, SensitiveSpace};
use fairkm_metrics::wasserstein::{euclidean_hist, wasserstein1_hist, wasserstein1_samples};
use fairkm_metrics::{balance, clustering_objective, dev_c, dev_o, fairness_report, silhouette};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Instance {
    n: usize,
    k: usize,
    dim: usize,
    points: Vec<f64>,
    values: Vec<u32>,
    t: usize,
    a: Vec<usize>,
    b: Vec<usize>,
}

fn instance() -> impl Strategy<Value = Instance> {
    (2usize..=14, 1usize..=4, 1usize..=3, 2usize..=4).prop_flat_map(|(n, k, dim, t)| {
        (
            proptest::collection::vec(-20.0f64..20.0, n * dim),
            proptest::collection::vec(0u32..t as u32, n),
            proptest::collection::vec(0usize..k, n),
            proptest::collection::vec(0usize..k, n),
        )
            .prop_map(move |(points, values, a, b)| Instance {
                n,
                k,
                dim,
                points,
                values,
                t,
                a,
                b,
            })
    })
}

fn build(inst: &Instance) -> (NumericMatrix, SensitiveSpace, Partition, Partition) {
    let names = (0..inst.dim).map(|i| format!("c{i}")).collect();
    let matrix = NumericMatrix::from_parts(inst.points.clone(), inst.n, inst.dim, names);
    let labels: Vec<String> = (0..inst.t).map(|v| format!("v{v}")).collect();
    let cat = SensitiveCat::new(AttrId(0), "g".into(), labels, inst.values.clone());
    let space = SensitiveSpace::new(inst.n, vec![cat], vec![]);
    let a = Partition::new(inst.a.clone(), inst.k).unwrap();
    let b = Partition::new(inst.b.clone(), inst.k).unwrap();
    (matrix, space, a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn silhouette_is_bounded(inst in instance()) {
        let (matrix, _, a, _) = build(&inst);
        let s = silhouette(&matrix, &a);
        prop_assert!((-1.0..=1.0).contains(&s), "silhouette {s} out of range");
    }

    #[test]
    fn clustering_objective_is_nonnegative(inst in instance()) {
        let (matrix, _, a, _) = build(&inst);
        prop_assert!(clustering_objective(&matrix, &a) >= 0.0);
    }

    #[test]
    fn dev_o_is_a_bounded_symmetric_premetric(inst in instance()) {
        let (_, _, a, b) = build(&inst);
        let d_ab = dev_o(&a, &b);
        let d_ba = dev_o(&b, &a);
        prop_assert!((d_ab - d_ba).abs() < 1e-15);
        prop_assert!((0.0..=1.0).contains(&d_ab));
        prop_assert_eq!(dev_o(&a, &a), 0.0);
    }

    #[test]
    fn dev_c_zero_on_self_and_nonnegative(inst in instance()) {
        let (matrix, _, a, b) = build(&inst);
        prop_assert!(dev_c(&matrix, &a, &a).abs() < 1e-9);
        prop_assert!(dev_c(&matrix, &a, &b) >= -1e-12);
        // symmetric: matching smaller side into larger is direction-free
        let d_ab = dev_c(&matrix, &a, &b);
        let d_ba = dev_c(&matrix, &b, &a);
        prop_assert!((d_ab - d_ba).abs() < 1e-9);
    }

    #[test]
    fn fairness_measures_are_nonnegative_and_max_dominates_avg(inst in instance()) {
        let (_, space, a, _) = build(&inst);
        let report = fairness_report(&space, &a);
        for attr in report.categorical.iter().chain(&report.numeric) {
            prop_assert!(attr.ae >= 0.0 && attr.aw >= 0.0);
            prop_assert!(attr.me >= attr.ae - 1e-12, "{}: me < ae", attr.name);
            prop_assert!(attr.mw >= attr.aw - 1e-12, "{}: mw < aw", attr.name);
        }
    }

    #[test]
    fn single_cluster_partition_is_perfectly_fair(inst in instance()) {
        let (_, space, _, _) = build(&inst);
        let one = Partition::new(vec![0; inst.n], 1).unwrap();
        let report = fairness_report(&space, &one);
        prop_assert!(report.mean.ae.abs() < 1e-12);
        prop_assert!(report.mean.mw.abs() < 1e-12);
        prop_assert!((balance(&space.categorical()[0], &one) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn balance_is_in_unit_interval(inst in instance()) {
        let (_, space, a, _) = build(&inst);
        let bal = balance(&space.categorical()[0], &a);
        prop_assert!((0.0..=1.0).contains(&bal));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn hist_distances_are_metrics_on_the_simplex(
        raw_p in proptest::collection::vec(0.01f64..1.0, 2..6),
    ) {
        // normalize into a distribution, compare with a permuted variant
        let total: f64 = raw_p.iter().sum();
        let p: Vec<f64> = raw_p.iter().map(|x| x / total).collect();
        let mut q = p.clone();
        q.rotate_left(1);
        prop_assert!(euclidean_hist(&p, &p).abs() < 1e-15);
        prop_assert!(wasserstein1_hist(&p, &p).abs() < 1e-15);
        prop_assert!((euclidean_hist(&p, &q) - euclidean_hist(&q, &p)).abs() < 1e-15);
        prop_assert!((wasserstein1_hist(&p, &q) - wasserstein1_hist(&q, &p)).abs() < 1e-12);
        // W1 on a unit-spaced domain is at most (t-1) for distributions
        prop_assert!(wasserstein1_hist(&p, &q) <= (p.len() - 1) as f64 + 1e-12);
    }

    #[test]
    fn sample_w1_triangle_inequality(
        a in proptest::collection::vec(-50.0f64..50.0, 1..8),
        b in proptest::collection::vec(-50.0f64..50.0, 1..8),
        c in proptest::collection::vec(-50.0f64..50.0, 1..8),
    ) {
        let ab = wasserstein1_samples(&a, &b);
        let bc = wasserstein1_samples(&b, &c);
        let ac = wasserstein1_samples(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-9, "triangle violated: {ac} > {ab} + {bc}");
    }

    #[test]
    fn sample_w1_translation_equivariance(
        a in proptest::collection::vec(-10.0f64..10.0, 1..8),
        shift in -5.0f64..5.0,
    ) {
        let shifted: Vec<f64> = a.iter().map(|x| x + shift).collect();
        let d = wasserstein1_samples(&a, &shifted);
        prop_assert!((d - shift.abs()).abs() < 1e-9, "shift {shift}: W1 {d}");
    }
}
