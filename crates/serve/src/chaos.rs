//! Seeded network-fault injectors: the hostile clients the chaos tests
//! and CI matrix drive against a live server, in the style of the
//! `fairkm-sim` fault schedules — every schedule derives from a seed, so
//! a failing run replays exactly.
//!
//! The injectors model the classes of peer misbehavior the server must
//! absorb without losing the acked-determinism invariant: **slow-loris**
//! byte trickles (deadline pressure), **mid-request disconnects** and
//! **torn frames** (requests that must never reach the engine), and
//! **burst floods** (admission-queue pressure answered by typed
//! load-shedding). None of them can corrupt state: a request either
//! completes its frame within the deadline and is processed, or is
//! rejected/abandoned at the transport layer.

use crate::http::{read_response, Conn, Limits};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

/// One per-request fault.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Send the request intact, read the response.
    None,
    /// Trickle the request `chunk` bytes at a time with `delay_ms`
    /// pauses. Completes (slowly) unless the server's deadline fires
    /// first — either way the request frame the server sees is intact.
    SlowLoris {
        /// Bytes per write.
        chunk: usize,
        /// Pause between writes, in milliseconds.
        delay_ms: u64,
    },
    /// Send only the first `keep` bytes, then disconnect. The frame is
    /// torn; the request must never reach the engine.
    DisconnectAfter {
        /// Bytes sent before the disconnect.
        keep: usize,
    },
}

/// Outcome of one faulted send.
#[derive(Debug)]
pub enum FaultOutcome {
    /// A response came back.
    Response {
        /// Status code.
        status: u16,
        /// Lower-cased header pairs.
        headers: Vec<(String, String)>,
        /// Response body.
        body: Vec<u8>,
    },
    /// The fault abandoned the request (disconnect) or the transport
    /// failed before a response arrived.
    NoResponse,
}

impl FaultOutcome {
    /// First value of a (lower-cased) header name, when a response came.
    pub fn header(&self, name: &str) -> Option<&str> {
        match self {
            FaultOutcome::Response { headers, .. } => headers
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.as_str()),
            FaultOutcome::NoResponse => None,
        }
    }
}

/// Send `request_bytes` (a fully framed HTTP request) under `fault`.
pub fn send_with_fault(addr: &str, request_bytes: &[u8], fault: &Fault) -> FaultOutcome {
    let Ok(stream) = TcpStream::connect(addr) else {
        return FaultOutcome::NoResponse;
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let mut conn = Conn::new(stream);
    let sent_all = match fault {
        Fault::None => conn.get_mut().write_all(request_bytes).is_ok(),
        Fault::SlowLoris { chunk, delay_ms } => {
            let chunk = (*chunk).max(1);
            let mut ok = true;
            for piece in request_bytes.chunks(chunk) {
                if conn.get_mut().write_all(piece).is_err() || conn.get_mut().flush().is_err() {
                    ok = false;
                    break;
                }
                std::thread::sleep(Duration::from_millis(*delay_ms));
            }
            ok
        }
        Fault::DisconnectAfter { keep } => {
            let keep = (*keep).min(request_bytes.len());
            let _ = conn.get_mut().write_all(&request_bytes[..keep]);
            let _ = conn.get_mut().flush();
            // Abandon: shear the connection mid-frame.
            let _ = conn.get_mut().shutdown(std::net::Shutdown::Both);
            return FaultOutcome::NoResponse;
        }
    };
    if !sent_all {
        return FaultOutcome::NoResponse;
    }
    let _ = conn.get_mut().flush();
    match read_response(&mut conn, &Limits::default()) {
        Ok((status, headers, body)) => FaultOutcome::Response {
            status,
            headers,
            body,
        },
        Err(_) => FaultOutcome::NoResponse,
    }
}

/// Open `n` connections that each send one garbage request — an
/// admission-queue burst. Returns `(shed_503, rejected_400, other)`
/// counts; every connection gets a *typed* answer or a clean close,
/// never a hang.
pub fn burst_garbage(addr: &str, n: usize) -> (usize, usize, usize) {
    let handles: Vec<_> = (0..n)
        .map(|_| {
            let addr = addr.to_string();
            std::thread::spawn(move || {
                match send_with_fault(&addr, b"XYZ notaurl HTTP/9.9\r\n\r\n", &Fault::None) {
                    FaultOutcome::Response { status: 503, .. } => (1usize, 0usize, 0usize),
                    FaultOutcome::Response { status: 400, .. } => (0, 1, 0),
                    _ => (0, 0, 1),
                }
            })
        })
        .collect();
    let mut totals = (0, 0, 0);
    for h in handles {
        if let Ok((a, b, c)) = h.join() {
            totals.0 += a;
            totals.1 += b;
            totals.2 += c;
        }
    }
    totals
}

/// A seeded per-request fault schedule. `mutating` requests only draw
/// faults that cannot half-deliver a frame the engine would act on: they
/// are either sent intact or torn before the body completes — the
/// property the acked-determinism invariant rests on.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// Fault for each request index.
    pub faults: Vec<Fault>,
}

impl ChaosPlan {
    /// Generate a schedule of `len` faults from `seed`. `body_len` bounds
    /// torn-frame cut points so a "torn" request can never contain a
    /// complete body.
    pub fn generate(seed: u64, len: usize, body_len: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let faults = (0..len)
            .map(|_| match rng.gen_range(0..10u32) {
                0..=5 => Fault::None,
                6 | 7 => Fault::SlowLoris {
                    chunk: rng.gen_range(1..8usize),
                    delay_ms: rng.gen_range(1..4u64),
                },
                _ => Fault::DisconnectAfter {
                    // Always strictly inside the head+body frame.
                    keep: rng.gen_range(0..body_len.max(1)),
                },
            })
            .collect();
        Self { faults }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_seed_deterministic() {
        let a = ChaosPlan::generate(42, 64, 100);
        let b = ChaosPlan::generate(42, 64, 100);
        assert_eq!(a.faults, b.faults);
        let c = ChaosPlan::generate(43, 64, 100);
        assert_ne!(a.faults, c.faults);
        assert!(a.faults.iter().any(|f| *f != Fault::None));
        assert!(a.faults.contains(&Fault::None));
    }
}
