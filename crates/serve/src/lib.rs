//! # fairkm-serve — fault-tolerant multi-tenant model serving
//!
//! A long-lived TCP/HTTP serving layer over the streaming engine: many
//! named [`fairkm_core::streaming::StreamingFairKm`] tenants, each backed
//! by its own crash-safe `DurableStream` state directory, behind a
//! hardened request lifecycle. Dependency-free — std TCP plus a minimal,
//! bounded HTTP/1.1 subset ([`http`]).
//!
//! The design splits each tenant into two halves:
//!
//! - **Lock-free read path.** Every successful (journaled) mutation
//!   captures a [`fairkm_core::streaming::ServingView`] — frozen encoder +
//!   rowless aggregate replica — and swaps it behind an `Arc`. `assign`
//!   requests clone the `Arc` and score without touching the writer lock,
//!   so reads never block behind writes and always see a fully acked
//!   state.
//! - **Journal-then-ack write path.** Mutations go through the tenant's
//!   `DurableStream`: applied in memory, appended to the WAL, fsynced —
//!   only then acked and republished. A journal failure wedges the tenant
//!   into **degraded read-only mode**: the last published view keeps
//!   serving reads while writes return typed 503s ([`registry`]).
//!
//! The robustness machinery is the headline ([`server`]): per-connection
//! read/write deadlines, bounded request framing, a bounded admission
//! queue with typed load-shedding (`503`/`429` + `Retry-After`), and
//! graceful drain on shutdown. Faulted requests — torn frames, deadline
//! expiries, shed bursts — are rejected before they reach the engine,
//! which is what makes the chaos invariant hold: under every seeded fault
//! schedule ([`chaos`]), acked responses are bitwise-identical to the
//! fault-free run, and a killed server recovers every tenant bitwise from
//! its state directory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod http;
pub mod registry;
pub mod server;

pub use client::{Client, ClientConfig, ClientError, Response};
pub use http::{HttpError, Limits, Request};
pub use registry::{MutationOutcome, Registry, ServeError, TenantStats};
pub use server::{decode_rows, encode_rows, serve, ServerConfig, ServerHandle};
