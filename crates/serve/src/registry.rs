//! The multi-tenant model registry: named [`DurableStream`] tenants, each
//! with a lock-free read path.
//!
//! Every tenant pairs a `Mutex`-guarded writer (the durable engine) with a
//! published [`ServingView`] behind an `Arc`: reads clone the current
//! `Arc` and score against it without ever touching the writer lock, and
//! each *successful* (journaled) mutation captures and swaps in a fresh
//! view. A wedged writer never republishes — the last published view is
//! exactly the last acked state, which is what **degraded read-only mode**
//! keeps serving while mutations get typed [`ServeError::Wedged`]
//! rejections.

use fairkm_core::persist::{DurableStream, PersistError};
use fairkm_core::streaming::{IngestReport, ServingView};
use fairkm_core::FairKmError;
use fairkm_data::Value;
use fairkm_store::StorageBackend;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Typed registry failure; [`Self::status`] gives the HTTP mapping.
#[derive(Debug)]
pub enum ServeError {
    /// No tenant with that name (→ 404).
    UnknownTenant(String),
    /// A tenant with that name already exists (→ 409).
    TenantExists(String),
    /// The tenant's journal wedged: reads keep serving the last acked
    /// view, mutations are refused (→ 503, degraded read-only mode).
    Wedged {
        /// Tenant name.
        tenant: String,
        /// The storage failure that wedged it.
        cause: String,
    },
    /// Too many writes already queued on this tenant (→ 429; retryable).
    Busy {
        /// Tenant name.
        tenant: String,
    },
    /// The engine rejected the rows (validation; → 422, not retryable).
    Model(FairKmError),
    /// Another persistence failure (→ 500).
    Persist(PersistError),
}

impl ServeError {
    /// `(status, reason, retryable)` for the HTTP layer. Retryable means
    /// the server attaches `Retry-After` and a well-behaved client backs
    /// off and retries.
    pub fn status(&self) -> (u16, &'static str, bool) {
        match self {
            ServeError::UnknownTenant(_) => (404, "Not Found", false),
            ServeError::TenantExists(_) => (409, "Conflict", false),
            ServeError::Wedged { .. } => (503, "Service Unavailable", false),
            ServeError::Busy { .. } => (429, "Too Many Requests", true),
            ServeError::Model(_) => (422, "Unprocessable Entity", false),
            ServeError::Persist(_) => (500, "Internal Server Error", false),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownTenant(t) => write!(f, "unknown tenant: {t}"),
            ServeError::TenantExists(t) => write!(f, "tenant already exists: {t}"),
            ServeError::Wedged { tenant, cause } => write!(
                f,
                "tenant {tenant} is wedged (degraded read-only mode): {cause}; \
                 reads still serve the last acked state"
            ),
            ServeError::Busy { tenant } => {
                write!(f, "tenant {tenant} has too many pending writes")
            }
            ServeError::Model(e) => write!(f, "engine rejected the request: {e}"),
            ServeError::Persist(e) => write!(f, "persistence failure: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Outcome of a durable mutation, including whether the cadence snapshot
/// that followed the committed op failed (the op itself is acked).
#[derive(Debug)]
pub struct MutationOutcome<R> {
    /// The engine's report for the committed operation.
    pub report: R,
    /// `Some` when the post-commit cadence snapshot failed — the caller's
    /// data is durable in the WAL, only snapshot lag grew.
    pub snapshot_deferred: Option<String>,
}

/// Read-only tenant statistics (served by `GET /tenants/{t}/stats`).
#[derive(Debug, Clone)]
pub struct TenantStats {
    /// Tenant name.
    pub name: String,
    /// Number of clusters.
    pub k: usize,
    /// Live point count.
    pub live: usize,
    /// Backing-store slots, tombstones included.
    pub n_slots: usize,
    /// Objective bits (exact, for bitwise comparison).
    pub objective_bits: u64,
    /// Points ingested since bootstrap.
    pub inserted: usize,
    /// Points evicted.
    pub evicted: usize,
    /// Re-optimizations run.
    pub reopts: usize,
    /// Whether the journal is wedged (degraded read-only mode).
    pub wedged: bool,
}

struct Tenant<B: StorageBackend> {
    writer: Mutex<DurableStream<B>>,
    view: RwLock<Arc<ServingView>>,
    pending_writes: AtomicUsize,
}

impl<B: StorageBackend> Tenant<B> {
    fn current_view(&self) -> Arc<ServingView> {
        match self.view.read() {
            Ok(guard) => Arc::clone(&guard),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    fn publish(&self, view: ServingView) {
        let view = Arc::new(view);
        match self.view.write() {
            Ok(mut guard) => *guard = view,
            Err(poisoned) => *poisoned.into_inner() = view,
        }
    }
}

/// Named [`DurableStream`] tenants with per-tenant write admission caps
/// and a published lock-free serving view each (see the module docs).
pub struct Registry<B: StorageBackend> {
    tenants: RwLock<BTreeMap<String, Arc<Tenant<B>>>>,
    max_pending_writes: usize,
}

impl<B: StorageBackend> Registry<B> {
    /// An empty registry; `max_pending_writes` caps writes queued behind
    /// each tenant's writer lock before further writes shed with
    /// [`ServeError::Busy`].
    pub fn new(max_pending_writes: usize) -> Self {
        Self {
            tenants: RwLock::new(BTreeMap::new()),
            max_pending_writes: max_pending_writes.max(1),
        }
    }

    fn tenant(&self, name: &str) -> Result<Arc<Tenant<B>>, ServeError> {
        let map = match self.tenants.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        map.get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownTenant(name.to_string()))
    }

    /// Register an already-created or recovered durable stream under
    /// `name`. The initial serving view is captured here.
    pub fn register(&self, name: &str, stream: DurableStream<B>) -> Result<(), ServeError> {
        let view = stream.stream().serving_view();
        let mut map = match self.tenants.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if map.contains_key(name) {
            return Err(ServeError::TenantExists(name.to_string()));
        }
        map.insert(
            name.to_string(),
            Arc::new(Tenant {
                writer: Mutex::new(stream),
                view: RwLock::new(Arc::new(view)),
                pending_writes: AtomicUsize::new(0),
            }),
        );
        Ok(())
    }

    /// Tenant names in sorted order.
    pub fn names(&self) -> Vec<String> {
        let map = match self.tenants.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        map.keys().cloned().collect()
    }

    /// The tenant's current serving view — never blocks behind writes.
    pub fn view(&self, name: &str) -> Result<Arc<ServingView>, ServeError> {
        Ok(self.tenant(name)?.current_view())
    }

    /// Score `rows` against the tenant's published view: the lock-free
    /// read path. Returns `(cluster, score)` per row.
    pub fn assign(&self, name: &str, rows: &[Vec<Value>]) -> Result<Vec<(usize, f64)>, ServeError> {
        let view = self.view(name)?;
        rows.iter()
            .map(|row| view.assign_scored(row).map_err(ServeError::Model))
            .collect()
    }

    /// Run a mutation through the tenant's writer under the admission cap,
    /// publishing a fresh view iff the op was journaled (acked).
    fn mutate<R>(
        &self,
        name: &str,
        op: impl FnOnce(&mut DurableStream<B>) -> Result<R, PersistError>,
    ) -> Result<MutationOutcome<R>, ServeError> {
        let tenant = self.tenant(name)?;
        // Admission: count ourselves in before blocking on the writer
        // lock, so a stalled writer sheds queued work instead of growing
        // an unbounded convoy.
        let queued = tenant.pending_writes.fetch_add(1, Ordering::SeqCst);
        if queued >= self.max_pending_writes {
            tenant.pending_writes.fetch_sub(1, Ordering::SeqCst);
            return Err(ServeError::Busy {
                tenant: name.to_string(),
            });
        }
        let result = Self::mutate_locked(&tenant, name, op);
        tenant.pending_writes.fetch_sub(1, Ordering::SeqCst);
        result
    }

    fn mutate_locked<R>(
        tenant: &Tenant<B>,
        name: &str,
        op: impl FnOnce(&mut DurableStream<B>) -> Result<R, PersistError>,
    ) -> Result<MutationOutcome<R>, ServeError> {
        let mut writer = match tenant.writer.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        match op(&mut writer) {
            Ok(report) => {
                // The op is journaled: republish the read view and
                // surface (without failing the ack) any deferred
                // cadence-snapshot failure.
                tenant.publish(writer.stream().serving_view());
                let snapshot_deferred = writer.take_snapshot_failure().map(|e| e.to_string());
                Ok(MutationOutcome {
                    report,
                    snapshot_deferred,
                })
            }
            Err(PersistError::Wedged) => Err(ServeError::Wedged {
                tenant: name.to_string(),
                cause: writer
                    .wedge_cause()
                    .unwrap_or("journal write failed")
                    .to_string(),
            }),
            Err(e) => {
                if writer.is_wedged() {
                    // This op wedged the stream: memory is ahead of
                    // the log and the op is NOT acked. The published
                    // view stays at the last acked state.
                    Err(ServeError::Wedged {
                        tenant: name.to_string(),
                        cause: e.to_string(),
                    })
                } else if let PersistError::Model(e) = e {
                    Err(ServeError::Model(e))
                } else {
                    Err(ServeError::Persist(e))
                }
            }
        }
    }

    /// Durable ingest through the tenant's writer (journal-then-ack).
    pub fn ingest(
        &self,
        name: &str,
        rows: &[Vec<Value>],
    ) -> Result<MutationOutcome<IngestReport>, ServeError> {
        self.mutate(name, |writer| writer.ingest(rows))
    }

    /// Durable oldest-first eviction.
    pub fn evict_oldest(
        &self,
        name: &str,
        count: usize,
    ) -> Result<MutationOutcome<fairkm_core::streaming::EvictReport>, ServeError> {
        self.mutate(name, |writer| writer.evict_oldest(count))
    }

    /// Explicit snapshot; returns the new snapshot sequence number.
    pub fn snapshot(&self, name: &str) -> Result<u64, ServeError> {
        let tenant = self.tenant(name)?;
        let mut writer = match tenant.writer.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        match writer.snapshot_now() {
            Ok(seq) => Ok(seq),
            Err(PersistError::Wedged) => Err(ServeError::Wedged {
                tenant: name.to_string(),
                cause: writer
                    .wedge_cause()
                    .unwrap_or("journal write failed")
                    .to_string(),
            }),
            Err(e) => Err(ServeError::Persist(e)),
        }
    }

    /// Read-only statistics for one tenant.
    pub fn stats(&self, name: &str) -> Result<TenantStats, ServeError> {
        let tenant = self.tenant(name)?;
        let writer = match tenant.writer.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let s = writer.stream();
        Ok(TenantStats {
            name: name.to_string(),
            k: s.k(),
            live: s.live(),
            n_slots: s.n_slots(),
            objective_bits: s.objective().to_bits(),
            inserted: s.inserted(),
            evicted: s.evicted(),
            reopts: s.reopts(),
            wedged: writer.is_wedged(),
        })
    }

    /// Whether the tenant's writer is wedged (degraded read-only mode).
    pub fn is_wedged(&self, name: &str) -> Result<bool, ServeError> {
        let tenant = self.tenant(name)?;
        let writer = match tenant.writer.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        Ok(writer.is_wedged())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairkm_core::streaming::StreamingConfig;
    use fairkm_core::{FairKmConfig, Lambda};
    use fairkm_data::{row, DatasetBuilder, Role};
    use fairkm_store::{FaultPlan, SyncMemBackend, TornWrite};

    fn corpus(n_per_side: usize) -> fairkm_data::Dataset {
        let mut b = DatasetBuilder::new();
        b.numeric("x", Role::NonSensitive).unwrap();
        b.numeric("y", Role::NonSensitive).unwrap();
        b.categorical("g", Role::Sensitive, &["a", "b"]).unwrap();
        for i in 0..n_per_side {
            let jitter = (i % 7) as f64 * 0.05;
            b.push_row(row![jitter, jitter, "a"]).unwrap();
            b.push_row(row![5.0 + jitter, 5.0 - jitter, "b"]).unwrap();
        }
        b.build().unwrap()
    }

    fn arrival(i: usize) -> Vec<Value> {
        let jitter = (i % 5) as f64 * 0.04;
        if i.is_multiple_of(2) {
            row![jitter, jitter, "b"]
        } else {
            row![5.0 - jitter, 5.0 + jitter, "a"]
        }
    }

    fn config(seed: u64) -> StreamingConfig {
        StreamingConfig::from_base(
            FairKmConfig::new(2)
                .with_seed(seed)
                .with_lambda(Lambda::Fixed(50.0))
                .with_threads(1),
        )
    }

    fn registry_with(name: &str, backend: SyncMemBackend) -> Registry<SyncMemBackend> {
        let registry = Registry::new(8);
        let stream = DurableStream::create(backend, corpus(12), config(4), None).unwrap();
        registry.register(name, stream).unwrap();
        registry
    }

    #[test]
    fn reads_and_writes_agree_with_the_standalone_engine() {
        let registry = registry_with("t", SyncMemBackend::new());
        let mut reference =
            fairkm_core::streaming::StreamingFairKm::bootstrap(corpus(12), config(4)).unwrap();
        for i in 0..8 {
            let r = arrival(i);
            let served = registry.assign("t", std::slice::from_ref(&r)).unwrap()[0].0;
            assert_eq!(served, reference.assign_frozen(&r).unwrap());
            let out = registry.ingest("t", std::slice::from_ref(&r)).unwrap();
            let expect = reference.ingest(std::slice::from_ref(&r)).unwrap();
            assert_eq!(out.report.clusters, expect.clusters);
            assert!(out.snapshot_deferred.is_none());
        }
        let stats = registry.stats("t").unwrap();
        assert_eq!(stats.objective_bits, reference.objective().to_bits());
        assert!(matches!(
            registry.assign("missing", &[arrival(0)]),
            Err(ServeError::UnknownTenant(_))
        ));
    }

    #[test]
    fn wedged_tenant_serves_reads_from_the_last_acked_view() {
        let backend = SyncMemBackend::new();
        let registry = registry_with("t", backend.clone());
        registry.ingest("t", &[arrival(0)]).unwrap();
        let before = registry.view("t").unwrap();

        // Wedge the journal: the next write fails and is NOT acked
        // (`at_op` is 1-based — the very next mutating backend op).
        backend.set_faults(FaultPlan {
            torn: Some(TornWrite { at_op: 1, keep: 0 }),
            flips: Vec::new(),
        });
        let err = registry.ingest("t", &[arrival(1)]).unwrap_err();
        assert!(matches!(err, ServeError::Wedged { .. }), "got {err:?}");
        assert!(registry.is_wedged("t").unwrap());

        // Degraded read-only mode: the published view is unchanged and
        // still answers assigns; further writes stay typed 503s.
        let after = registry.view("t").unwrap();
        assert!(Arc::ptr_eq(&before, &after), "wedge must not republish");
        let probe = arrival(3);
        assert_eq!(
            after.assign(&probe).unwrap(),
            before.assign(&probe).unwrap()
        );
        assert!(matches!(
            registry.ingest("t", &[arrival(2)]),
            Err(ServeError::Wedged { .. })
        ));
        assert!(matches!(
            registry.snapshot("t"),
            Err(ServeError::Wedged { .. })
        ));
        assert!(registry.stats("t").unwrap().wedged);
    }

    #[test]
    fn invalid_rows_reject_without_republishing() {
        let registry = registry_with("t", SyncMemBackend::new());
        let before = registry.view("t").unwrap();
        let bad = vec![row![1.0, 1.0, "zzz"]];
        assert!(matches!(
            registry.ingest("t", &bad),
            Err(ServeError::Model(_))
        ));
        let after = registry.view("t").unwrap();
        assert!(Arc::ptr_eq(&before, &after));
        assert!(!registry.is_wedged("t").unwrap());
    }
}
