//! Minimal, hardened HTTP/1.1 framing over any [`Read`]/[`Write`] pair.
//!
//! This is deliberately not a general HTTP implementation: it parses
//! exactly the subset the serving layer speaks (request line, a bounded
//! header block, `Content-Length` bodies, keep-alive) and treats every
//! violation as a typed, non-panicking error. Every length is bounded
//! *before* allocation — a hostile peer can neither balloon memory with a
//! huge `Content-Length` nor stall the worker past its socket deadline:
//! timeouts surface as [`HttpError::Timeout`], byte shortfalls as
//! [`HttpError::Disconnected`]. The never-panics property over arbitrary
//! mutated byte streams is pinned by `tests/never_panics.rs`.

use std::io::{Read, Write};

/// Hard ceilings on request framing, applied before any allocation.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Longest accepted request line (method + path + version).
    pub max_request_line: usize,
    /// Longest accepted single header line.
    pub max_header_line: usize,
    /// Most headers accepted per request.
    pub max_headers: usize,
    /// Largest accepted `Content-Length` body.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_request_line: 1024,
            max_header_line: 1024,
            max_headers: 32,
            max_body_bytes: 4 << 20,
        }
    }
}

/// Typed request-read failure; [`Self::status`] gives the response code
/// the server answers with (when the peer is still there to hear it).
#[derive(Debug)]
pub enum HttpError {
    /// The bytes violate the HTTP subset this server speaks (→ 400).
    Malformed(&'static str),
    /// A framing limit was exceeded (→ 413).
    TooLarge {
        /// Which limit tripped.
        what: &'static str,
        /// The configured ceiling.
        limit: usize,
    },
    /// The socket deadline expired mid-request (→ 408).
    Timeout,
    /// The peer closed the connection before completing a request; there
    /// is nobody left to answer.
    Disconnected,
    /// Any other transport failure.
    Io(std::io::Error),
}

impl HttpError {
    /// Response status for this failure, `None` when the peer is gone.
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::Malformed(_) => Some((400, "Bad Request")),
            HttpError::TooLarge { .. } => Some((413, "Payload Too Large")),
            HttpError::Timeout => Some((408, "Request Timeout")),
            HttpError::Disconnected | HttpError::Io(_) => None,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::TooLarge { what, limit } => {
                write!(f, "request exceeds limit: {what} > {limit}")
            }
            HttpError::Timeout => write!(f, "socket deadline expired mid-request"),
            HttpError::Disconnected => write!(f, "peer disconnected mid-request"),
            HttpError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::Timeout,
            std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe => HttpError::Disconnected,
            _ => HttpError::Io(e),
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (no percent-decoding; targets are ASCII).
    pub path: String,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Decoded body (`Content-Length` framing only).
    pub body: Vec<u8>,
    /// Whether the connection may serve another request afterwards.
    pub keep_alive: bool,
}

impl Request {
    /// First value of a (lower-cased) header name, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A small owned read buffer so header scanning never over-reads past the
/// end of one request: leftover bytes stay buffered for the next request
/// on a keep-alive connection.
#[derive(Debug)]
pub struct Conn<S> {
    stream: S,
    buf: Vec<u8>,
    start: usize,
}

impl<S: Read> Conn<S> {
    /// Wrap a transport (a `TcpStream`, or any `Read` in tests).
    pub fn new(stream: S) -> Self {
        Self {
            stream,
            buf: Vec::with_capacity(1024),
            start: 0,
        }
    }

    /// The wrapped transport (to write responses on).
    pub fn get_mut(&mut self) -> &mut S {
        &mut self.stream
    }

    fn buffered(&self) -> &[u8] {
        &self.buf[self.start..]
    }

    /// Pull more bytes from the transport; `Ok(false)` on clean EOF.
    fn fill(&mut self) -> Result<bool, HttpError> {
        if self.start > 0 && self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        let mut chunk = [0u8; 1024];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(false);
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(true)
    }

    /// Read one CRLF- (or bare-LF-) terminated line of at most `max`
    /// bytes, excluding the terminator.
    fn read_line(&mut self, max: usize, what: &'static str) -> Result<Vec<u8>, HttpError> {
        let mut scanned = 0usize;
        loop {
            let buffered = self.buffered();
            if let Some(nl) = buffered[scanned..].iter().position(|&b| b == b'\n') {
                let end = scanned + nl;
                if end > max {
                    return Err(HttpError::TooLarge { what, limit: max });
                }
                let mut line = buffered[..end].to_vec();
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                self.start += end + 1;
                return Ok(line);
            }
            scanned = buffered.len();
            if scanned > max {
                return Err(HttpError::TooLarge { what, limit: max });
            }
            if !self.fill()? {
                return Err(HttpError::Disconnected);
            }
        }
    }

    /// Read exactly `n` body bytes.
    fn read_exact_n(&mut self, n: usize) -> Result<Vec<u8>, HttpError> {
        while self.buffered().len() < n {
            if !self.fill()? {
                return Err(HttpError::Disconnected);
            }
        }
        let body = self.buffered()[..n].to_vec();
        self.start += n;
        Ok(body)
    }

    /// Whether at least one byte of a next request is already buffered.
    pub fn has_buffered_input(&self) -> bool {
        !self.buffered().is_empty()
    }

    /// Read one full request under `limits`. [`HttpError::Disconnected`]
    /// before the first byte is the normal end of a keep-alive
    /// connection; mid-request it is a torn frame.
    pub fn read_request(&mut self, limits: &Limits) -> Result<Request, HttpError> {
        let line = self.read_line(limits.max_request_line, "request line")?;
        let line = std::str::from_utf8(&line)
            .map_err(|_| HttpError::Malformed("request line is not UTF-8"))?;
        let mut parts = line.split(' ').filter(|p| !p.is_empty());
        let method = parts
            .next()
            .ok_or(HttpError::Malformed("empty request line"))?;
        let path = parts
            .next()
            .ok_or(HttpError::Malformed("request line lacks a target"))?;
        let version = parts
            .next()
            .ok_or(HttpError::Malformed("request line lacks a version"))?;
        if parts.next().is_some() {
            return Err(HttpError::Malformed("request line has trailing tokens"));
        }
        if version != "HTTP/1.1" && version != "HTTP/1.0" {
            return Err(HttpError::Malformed("unsupported HTTP version"));
        }
        if !method.bytes().all(|b| b.is_ascii_uppercase()) || method.is_empty() {
            return Err(HttpError::Malformed("invalid method token"));
        }
        if !path.starts_with('/') {
            return Err(HttpError::Malformed("target must be origin-form"));
        }

        let mut headers = Vec::new();
        loop {
            let line = self.read_line(limits.max_header_line, "header line")?;
            if line.is_empty() {
                break;
            }
            if headers.len() >= limits.max_headers {
                return Err(HttpError::TooLarge {
                    what: "header count",
                    limit: limits.max_headers,
                });
            }
            let line = std::str::from_utf8(&line)
                .map_err(|_| HttpError::Malformed("header is not UTF-8"))?;
            let (name, value) = line
                .split_once(':')
                .ok_or(HttpError::Malformed("header lacks a colon"))?;
            if name.is_empty() || name.contains(' ') {
                return Err(HttpError::Malformed("invalid header name"));
            }
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }

        let mut keep_alive = version == "HTTP/1.1";
        if let Some(conn) = headers
            .iter()
            .find(|(n, _)| n == "connection")
            .map(|(_, v)| v.to_ascii_lowercase())
        {
            if conn == "close" {
                keep_alive = false;
            } else if conn == "keep-alive" {
                keep_alive = true;
            }
        }

        if headers.iter().any(|(n, _)| n == "transfer-encoding") {
            return Err(HttpError::Malformed("chunked transfer is not supported"));
        }

        let body = match headers.iter().find(|(n, _)| n == "content-length") {
            None => {
                if method == "POST" || method == "PUT" {
                    return Err(HttpError::Malformed("body methods require Content-Length"));
                }
                Vec::new()
            }
            Some((_, v)) => {
                let n: usize = v
                    .parse()
                    .map_err(|_| HttpError::Malformed("unparsable Content-Length"))?;
                if n > limits.max_body_bytes {
                    return Err(HttpError::TooLarge {
                        what: "body bytes",
                        limit: limits.max_body_bytes,
                    });
                }
                self.read_exact_n(n)?
            }
        };

        Ok(Request {
            method: method.to_string(),
            path: path.to_string(),
            headers,
            body,
            keep_alive,
        })
    }
}

/// Write one response with `Content-Length` framing. `extra` headers come
/// after the defaults; `close` controls the `Connection` header.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    extra: &[(&str, String)],
    body: &[u8],
    close: bool,
) -> std::io::Result<()> {
    let mut out = Vec::with_capacity(128 + body.len());
    out.extend_from_slice(format!("HTTP/1.1 {status} {reason}\r\n").as_bytes());
    out.extend_from_slice(b"Content-Type: text/plain\r\n");
    out.extend_from_slice(format!("Content-Length: {}\r\n", body.len()).as_bytes());
    out.extend_from_slice(if close {
        b"Connection: close\r\n"
    } else {
        b"Connection: keep-alive\r\n"
    });
    for (name, value) in extra {
        out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
    w.write_all(&out)?;
    w.flush()
}

/// `(status, headers, body)` of a parsed response.
pub type ResponseTriple = (u16, Vec<(String, String)>, Vec<u8>);

/// Read one response (client side) under `limits` (the body ceiling also
/// bounds response bodies).
pub fn read_response<S: Read>(
    conn: &mut Conn<S>,
    limits: &Limits,
) -> Result<ResponseTriple, HttpError> {
    let line = conn.read_line(limits.max_request_line, "status line")?;
    let line =
        std::str::from_utf8(&line).map_err(|_| HttpError::Malformed("status line not UTF-8"))?;
    let mut parts = line.splitn(3, ' ');
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("empty status line"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("bad response version"));
    }
    let status: u16 = parts
        .next()
        .ok_or(HttpError::Malformed("status line lacks a code"))?
        .parse()
        .map_err(|_| HttpError::Malformed("unparsable status code"))?;
    let mut headers = Vec::new();
    loop {
        let line = conn.read_line(limits.max_header_line, "header line")?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::TooLarge {
                what: "header count",
                limit: limits.max_headers,
            });
        }
        let line =
            std::str::from_utf8(&line).map_err(|_| HttpError::Malformed("header not UTF-8"))?;
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header lacks a colon"))?;
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    let body = match headers.iter().find(|(n, _)| n == "content-length") {
        None => Vec::new(),
        Some((_, v)) => {
            let n: usize = v
                .parse()
                .map_err(|_| HttpError::Malformed("unparsable Content-Length"))?;
            if n > limits.max_body_bytes {
                return Err(HttpError::TooLarge {
                    what: "body bytes",
                    limit: limits.max_body_bytes,
                });
            }
            conn.read_exact_n(n)?
        }
    };
    Ok((status, headers, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        Conn::new(bytes).read_request(&Limits::default())
    }

    #[test]
    fn parses_a_get_and_a_post() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.keep_alive);
        assert!(req.body.is_empty());

        let req = parse(b"POST /t HTTP/1.1\r\nContent-Length: 3\r\nConnection: close\r\n\r\nabc")
            .unwrap();
        assert_eq!(req.body, b"abc");
        assert!(!req.keep_alive);
    }

    #[test]
    fn keep_alive_does_not_over_read_the_next_request() {
        let two = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let mut conn = Conn::new(&two[..]);
        let limits = Limits::default();
        assert_eq!(conn.read_request(&limits).unwrap().path, "/a");
        assert_eq!(conn.read_request(&limits).unwrap().path, "/b");
        assert!(matches!(
            conn.read_request(&limits),
            Err(HttpError::Disconnected)
        ));
    }

    #[test]
    fn violations_are_typed() {
        assert!(matches!(
            parse(b"GET /x\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n"),
            Err(HttpError::TooLarge { .. })
        ));
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(5000));
        assert!(matches!(
            parse(long.as_bytes()),
            Err(HttpError::TooLarge { .. })
        ));
        // Truncated mid-body: a torn frame, not a panic.
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nab"),
            Err(HttpError::Disconnected)
        ));
    }

    #[test]
    fn response_round_trips() {
        let mut wire = Vec::new();
        write_response(
            &mut wire,
            200,
            "OK",
            &[("x-extra", "7".to_string())],
            b"hello",
            false,
        )
        .unwrap();
        let mut conn = Conn::new(&wire[..]);
        let (status, headers, body) = read_response(&mut conn, &Limits::default()).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"hello");
        assert!(headers.iter().any(|(n, v)| n == "x-extra" && v == "7"));
    }
}
