//! The hardened TCP server: bounded admission, per-connection deadlines,
//! typed load-shedding, graceful drain.
//!
//! Life of a request: the acceptor thread takes connections off a
//! nonblocking listener and pushes them onto a **bounded admission
//! queue** — when the queue is full the connection is answered `503 +
//! Retry-After` and closed instead of growing an unbounded backlog.
//! Worker threads pop connections, arm socket read/write deadlines, and
//! serve keep-alive requests until the peer leaves, misbehaves (typed
//! 400/408/413 responses, then close), or shutdown begins. Shutdown is a
//! drain: the acceptor stops admitting, workers finish every in-flight
//! and already-admitted connection (answering `Connection: close`), and
//! `ServerHandle::shutdown` joins them all.
//!
//! Faulted requests never reach the engine — a torn frame, deadline
//! expiry, or shed connection is rejected at this layer, which is what
//! makes the chaos invariant hold: the acked request stream (and thus
//! every response bit) is identical to a fault-free run.

use crate::http::{write_response, Conn, Limits, Request};
use crate::registry::{MutationOutcome, Registry, ServeError};
use fairkm_data::{wire, wire_io, Value};
use fairkm_store::StorageBackend;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Tunables of one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads serving admitted connections.
    pub workers: usize,
    /// Admission-queue depth; beyond it connections shed with 503.
    pub queue_depth: usize,
    /// Socket read deadline (slow senders get a typed 408).
    pub read_timeout: Duration,
    /// Socket write deadline (slow readers are disconnected).
    pub write_timeout: Duration,
    /// Request framing limits.
    pub limits: Limits,
    /// `Retry-After` seconds attached to shed (503/429) responses.
    pub retry_after_secs: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_depth: 64,
            read_timeout: Duration::from_millis(2_000),
            write_timeout: Duration::from_millis(2_000),
            limits: Limits::default(),
            retry_after_secs: 1,
        }
    }
}

struct AdmissionQueue {
    queue: Mutex<std::collections::VecDeque<TcpStream>>,
    ready: Condvar,
    depth: usize,
}

impl AdmissionQueue {
    fn push(&self, conn: TcpStream) -> Result<(), TcpStream> {
        let mut q = match self.queue.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if q.len() >= self.depth {
            return Err(conn);
        }
        q.push_back(conn);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    fn pop(&self, timeout: Duration) -> Option<TcpStream> {
        let mut q = match self.queue.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(conn) = q.pop_front() {
            return Some(conn);
        }
        let (mut q, _) = match self.ready.wait_timeout(q, timeout) {
            Ok(r) => r,
            Err(poisoned) => {
                let (guard, timeout_result) = poisoned.into_inner();
                (guard, timeout_result)
            }
        };
        q.pop_front()
    }
}

/// A running server; dropping it without [`Self::shutdown`] aborts the
/// threads non-gracefully when the process exits.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop admitting, drain every in-flight and
    /// admitted connection, join all threads.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Bind `addr` and serve `registry` until [`ServerHandle::shutdown`].
pub fn serve<B: StorageBackend + Send + 'static>(
    addr: &str,
    config: ServerConfig,
    registry: Arc<Registry<B>>,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let queue = Arc::new(AdmissionQueue {
        queue: Mutex::new(std::collections::VecDeque::new()),
        ready: Condvar::new(),
        depth: config.queue_depth.max(1),
    });

    let mut threads = Vec::with_capacity(config.workers + 1);
    {
        let queue = Arc::clone(&queue);
        let shutdown = Arc::clone(&shutdown);
        let retry_after = config.retry_after_secs;
        threads.push(std::thread::spawn(move || {
            accept_loop(listener, queue, shutdown, retry_after)
        }));
    }
    for _ in 0..config.workers.max(1) {
        let queue = Arc::clone(&queue);
        let shutdown = Arc::clone(&shutdown);
        let registry = Arc::clone(&registry);
        let config = config.clone();
        threads.push(std::thread::spawn(move || {
            worker_loop(queue, shutdown, registry, config)
        }));
    }
    Ok(ServerHandle {
        addr: local,
        shutdown,
        threads,
    })
}

fn accept_loop(
    listener: TcpListener,
    queue: Arc<AdmissionQueue>,
    shutdown: Arc<AtomicBool>,
    retry_after_secs: u32,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((conn, _)) => {
                if let Err(mut shed) = queue.push(conn) {
                    // Bounded admission: answer the overload explicitly
                    // instead of queueing without limit.
                    let _ = shed.set_write_timeout(Some(Duration::from_millis(250)));
                    let _ = write_response(
                        &mut shed,
                        503,
                        "Service Unavailable",
                        &[("Retry-After", retry_after_secs.to_string())],
                        b"admission queue full\n",
                        true,
                    );
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn worker_loop<B: StorageBackend>(
    queue: Arc<AdmissionQueue>,
    shutdown: Arc<AtomicBool>,
    registry: Arc<Registry<B>>,
    config: ServerConfig,
) {
    loop {
        match queue.pop(Duration::from_millis(50)) {
            Some(conn) => serve_connection(conn, &registry, &config, &shutdown),
            // Drain discipline: exit only once shutdown began AND the
            // admitted backlog is empty.
            None => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

fn serve_connection<B: StorageBackend>(
    stream: TcpStream,
    registry: &Registry<B>,
    config: &ServerConfig,
    shutdown: &AtomicBool,
) {
    if stream.set_read_timeout(Some(config.read_timeout)).is_err()
        || stream
            .set_write_timeout(Some(config.write_timeout))
            .is_err()
    {
        return;
    }
    let mut conn = Conn::new(stream);
    loop {
        let request = match conn.read_request(&config.limits) {
            Ok(request) => request,
            Err(e) => {
                // Typed rejection when the peer can still hear it; a torn
                // or slow request never reaches the engine either way.
                if let Some((status, reason)) = e.status() {
                    let body = format!("{e}\n");
                    let _ =
                        write_response(conn.get_mut(), status, reason, &[], body.as_bytes(), true);
                }
                return;
            }
        };
        // Drain: finish this request, then close instead of keeping alive.
        let close = !request.keep_alive || shutdown.load(Ordering::SeqCst);
        let (status, reason, extra, body) = dispatch(registry, &request, config);
        let extra_refs: Vec<(&str, String)> = extra.iter().map(|(n, v)| (*n, v.clone())).collect();
        if write_response(conn.get_mut(), status, reason, &extra_refs, &body, close).is_err() {
            return;
        }
        if close {
            let _ = conn.get_mut().flush();
            return;
        }
    }
}

type ResponseParts = (u16, &'static str, Vec<(&'static str, String)>, Vec<u8>);

fn ok(body: Vec<u8>) -> ResponseParts {
    (200, "OK", Vec::new(), body)
}

fn error_response(e: &ServeError, retry_after_secs: u32) -> ResponseParts {
    let (status, reason, retryable) = e.status();
    let mut extra = Vec::new();
    if retryable {
        extra.push(("Retry-After", retry_after_secs.to_string()));
    }
    (status, reason, extra, format!("{e}\n").as_bytes().to_vec())
}

/// Decode a `[count][row]*` wire body (the same fuzz-hardened row codec
/// the WAL uses).
pub fn decode_rows(body: &[u8]) -> Result<Vec<Vec<Value>>, wire::WireError> {
    let mut r = wire::Reader::new(body);
    // A row costs at least its 8-byte length prefix.
    let n = r.get_len(8)?;
    let rows = (0..n)
        .map(|_| wire_io::get_row(&mut r))
        .collect::<Result<Vec<_>, _>>()?;
    r.expect_empty()?;
    Ok(rows)
}

/// Encode rows for a request body; inverse of [`decode_rows`].
pub fn encode_rows(rows: &[Vec<Value>]) -> Vec<u8> {
    let mut out = Vec::new();
    wire::put_usize(&mut out, rows.len());
    for row in rows {
        wire_io::put_row(&mut out, row);
    }
    out
}

fn dispatch<B: StorageBackend>(
    registry: &Registry<B>,
    request: &Request,
    config: &ServerConfig,
) -> ResponseParts {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => ok(b"ok\n".to_vec()),
        ("GET", ["tenants"]) => {
            let mut body = String::new();
            for name in registry.names() {
                body.push_str(&name);
                body.push('\n');
            }
            ok(body.into_bytes())
        }
        ("GET", ["tenants", tenant, "stats"]) => match registry.stats(tenant) {
            Ok(stats) => {
                let body = format!(
                    "k {}\nlive {}\nn_slots {}\nobjective_bits {:016x}\n\
                     inserted {}\nevicted {}\nreopts {}\nwedged {}\n",
                    stats.k,
                    stats.live,
                    stats.n_slots,
                    stats.objective_bits,
                    stats.inserted,
                    stats.evicted,
                    stats.reopts,
                    u8::from(stats.wedged),
                );
                ok(body.into_bytes())
            }
            Err(e) => error_response(&e, config.retry_after_secs),
        },
        ("POST", ["tenants", tenant, "assign"]) => match decode_rows(&request.body) {
            Err(e) => (
                400,
                "Bad Request",
                Vec::new(),
                format!("undecodable rows: {e}\n").into_bytes(),
            ),
            Ok(rows) => match registry.assign(tenant, &rows) {
                Ok(scored) => {
                    let mut body = String::new();
                    for (cluster, score) in scored {
                        body.push_str(&format!("{cluster} {:016x}\n", score.to_bits()));
                    }
                    ok(body.into_bytes())
                }
                Err(e) => error_response(&e, config.retry_after_secs),
            },
        },
        ("POST", ["tenants", tenant, "ingest"]) => match decode_rows(&request.body) {
            Err(e) => (
                400,
                "Bad Request",
                Vec::new(),
                format!("undecodable rows: {e}\n").into_bytes(),
            ),
            Ok(rows) => match registry.ingest(tenant, &rows) {
                Ok(MutationOutcome {
                    report,
                    snapshot_deferred,
                }) => {
                    let mut body = String::new();
                    for cluster in &report.clusters {
                        body.push_str(&format!("{cluster}\n"));
                    }
                    body.push_str(&format!(
                        "objective_bits {:016x}\nreoptimized {}\n",
                        report.objective.to_bits(),
                        u8::from(report.reoptimized),
                    ));
                    let mut extra = Vec::new();
                    if snapshot_deferred.is_some() {
                        // The rows are durable in the WAL; only the
                        // cadence snapshot lagged. Acked, with a warning.
                        extra.push(("X-Snapshot-Deferred", "1".to_string()));
                    }
                    (200, "OK", extra, body.into_bytes())
                }
                Err(e) => error_response(&e, config.retry_after_secs),
            },
        },
        ("POST", ["tenants", tenant, "evict_oldest"]) => {
            let mut r = wire::Reader::new(&request.body);
            let count = match r.get_usize().and_then(|c| r.expect_empty().map(|_| c)) {
                Ok(count) => count,
                Err(e) => {
                    return (
                        400,
                        "Bad Request",
                        Vec::new(),
                        format!("undecodable count: {e}\n").into_bytes(),
                    )
                }
            };
            match registry.evict_oldest(tenant, count) {
                Ok(MutationOutcome {
                    report,
                    snapshot_deferred,
                }) => {
                    let body = format!(
                        "evicted {}\nobjective_bits {:016x}\n",
                        report.evicted,
                        report.objective.to_bits(),
                    );
                    let mut extra = Vec::new();
                    if snapshot_deferred.is_some() {
                        extra.push(("X-Snapshot-Deferred", "1".to_string()));
                    }
                    (200, "OK", extra, body.into_bytes())
                }
                Err(e) => error_response(&e, config.retry_after_secs),
            }
        }
        ("POST", ["tenants", tenant, "snapshot"]) => match registry.snapshot(tenant) {
            Ok(seq) => ok(format!("seq {seq}\n").into_bytes()),
            Err(e) => error_response(&e, config.retry_after_secs),
        },
        _ => (404, "Not Found", Vec::new(), b"no such route\n".to_vec()),
    }
}
