//! A small blocking client with deadline-bounded requests and seeded
//! retry/backoff + jitter — the well-behaved peer the server's
//! load-shedding contract assumes: on 429/503-with-`Retry-After` or a
//! transport failure it backs off exponentially (with deterministic,
//! seeded jitter so tests replay schedules bitwise) and retries; on any
//! other response it returns immediately.

use crate::http::{read_response, Conn, HttpError, Limits};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

/// Client tunables.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Retries after the first attempt (0 = fail fast).
    pub retries: u32,
    /// Base backoff; attempt `i` waits `backoff * 2^i` plus jitter.
    pub backoff: Duration,
    /// Socket read/write deadline per attempt.
    pub timeout: Duration,
    /// Seed of the jitter stream (replayable schedules).
    pub seed: u64,
    /// Response framing limits.
    pub limits: Limits,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            retries: 4,
            backoff: Duration::from_millis(20),
            timeout: Duration::from_millis(2_000),
            seed: 0,
            limits: Limits::default(),
        }
    }
}

/// One parsed response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Lower-cased header pairs.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// First value of a (lower-cased) header name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Client failure after all retries were spent.
#[derive(Debug)]
pub enum ClientError {
    /// No attempt produced a response.
    Transport(HttpError),
    /// The final attempt was still shed (429/503).
    Shed {
        /// The last shed status.
        status: u16,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "request failed: {e}"),
            ClientError::Shed { status } => {
                write!(f, "request shed with {status} after all retries")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// A connection-per-request client (the server's keep-alive path is
/// exercised by the integration tests directly).
#[derive(Debug)]
pub struct Client {
    addr: String,
    config: ClientConfig,
    rng: StdRng,
}

impl Client {
    /// A client for `addr` (`host:port`).
    pub fn new(addr: &str, config: ClientConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            addr: addr.to_string(),
            config,
            rng,
        }
    }

    fn attempt(&self, method: &str, path: &str, body: &[u8]) -> Result<Response, HttpError> {
        let stream = TcpStream::connect(&self.addr).map_err(HttpError::from)?;
        stream.set_read_timeout(Some(self.config.timeout))?;
        stream.set_write_timeout(Some(self.config.timeout))?;
        let mut conn = Conn::new(stream);
        let mut head = format!("{method} {path} HTTP/1.1\r\nConnection: close\r\n");
        if !body.is_empty() || method == "POST" {
            head.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        head.push_str("\r\n");
        conn.get_mut().write_all(head.as_bytes())?;
        conn.get_mut().write_all(body)?;
        conn.get_mut().flush()?;
        let (status, headers, body) = read_response(&mut conn, &self.config.limits)?;
        Ok(Response {
            status,
            headers,
            body,
        })
    }

    /// Issue one request, retrying shed responses and transport failures
    /// with exponential backoff + seeded jitter.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Result<Response, ClientError> {
        let mut last_err: Option<HttpError> = None;
        let mut last_shed: Option<u16> = None;
        for attempt in 0..=self.config.retries {
            if attempt > 0 {
                let base = self.config.backoff.as_millis() as u64;
                let exp = base.saturating_mul(1u64 << (attempt - 1).min(10));
                let jitter = self.rng.gen_range(0..=exp.max(1) / 2);
                std::thread::sleep(Duration::from_millis(exp + jitter));
            }
            match self.attempt(method, path, body) {
                Ok(resp) if resp.status == 429 || resp.status == 503 => {
                    last_shed = Some(resp.status);
                    last_err = None;
                }
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    last_err = Some(e);
                }
            }
        }
        match (last_err, last_shed) {
            (Some(e), _) => Err(ClientError::Transport(e)),
            (None, Some(status)) => Err(ClientError::Shed { status }),
            (None, None) => unreachable!("loop ran at least once"),
        }
    }
}
