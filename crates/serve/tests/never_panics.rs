//! Parse-never-panics property for the serving layer's request framing,
//! mirroring `crates/data/tests/wire_never_panics.rs`: the HTTP request
//! parser, the response parser, and the request-body row decoder must
//! return `Ok` or a typed error on *arbitrary* input — mutated valid
//! frames, truncations, and raw byte soup. A panic (or an attempt to
//! allocate a corrupt length prefix) fails the test.

use fairkm_data::{row, Value};
use fairkm_serve::http::{read_response, Conn, Limits};
use fairkm_serve::{decode_rows, encode_rows};
use proptest::prelude::*;

fn sample_request() -> Vec<u8> {
    let rows: Vec<Vec<Value>> = vec![row![1.0, 2.0, "a"], row![3.0, 4.0, "b"]];
    let body = encode_rows(&rows);
    let mut bytes = format!(
        "POST /tenants/t/ingest HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    bytes.extend_from_slice(&body);
    bytes
}

fn sample_response() -> Vec<u8> {
    b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: 4\r\n\r\n0\n1\n".to_vec()
}

/// Apply a mutation plan to a valid frame: truncate, then flip bytes.
fn mutate(mut bytes: Vec<u8>, cut_frac: u16, edits: &[(u16, u8)]) -> Vec<u8> {
    if !bytes.is_empty() {
        let keep = (cut_frac as usize * bytes.len()) / (u16::MAX as usize);
        bytes.truncate(keep.min(bytes.len()));
    }
    for &(pos, val) in edits {
        if !bytes.is_empty() {
            let i = pos as usize % bytes.len();
            bytes[i] ^= val;
        }
    }
    bytes
}

/// Run every parser in the serving layer over the bytes. Reaching the end
/// without panicking IS the property; a `Content-Length` larger than the
/// limit must be rejected before allocation, which `Limits` guarantees.
fn parse_everything(bytes: &[u8]) {
    let limits = Limits::default();
    let mut conn = Conn::new(bytes);
    if let Ok(req) = conn.read_request(&limits) {
        // A successfully parsed request's body runs the row decoder too.
        let _ = decode_rows(&req.body);
    }
    let mut conn = Conn::new(bytes);
    let _ = read_response(&mut conn, &limits);
    let _ = decode_rows(bytes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn mutated_requests_never_panic(
        cut_frac in 0u16..=u16::MAX,
        edits in proptest::collection::vec((0u16..=u16::MAX, 1u8..=255), 0..8),
    ) {
        parse_everything(&mutate(sample_request(), cut_frac, &edits));
    }

    #[test]
    fn mutated_responses_never_panic(
        cut_frac in 0u16..=u16::MAX,
        edits in proptest::collection::vec((0u16..=u16::MAX, 1u8..=255), 0..8),
    ) {
        parse_everything(&mutate(sample_response(), cut_frac, &edits));
    }

    #[test]
    fn raw_byte_soup_never_panics(
        bytes in proptest::collection::vec(0u8..=255, 0..512),
    ) {
        parse_everything(&bytes);
    }
}
