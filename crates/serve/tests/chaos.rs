//! The chaos matrix: seeded network-fault schedules against a live
//! server, with the repo's acceptance bar — **acked determinism**. For
//! every schedule, each acked (HTTP 200) response must be bitwise
//! identical to the fault-free run's response for the same request:
//! faulted requests either complete intact (slow-loris within deadline)
//! or are rejected/abandoned before they reach the engine, and unacked
//! writes are retried until acked so the committed operation sequence is
//! exactly the fault-free one. Plus: burst floods get typed answers,
//! a wedged tenant degrades to read-only over HTTP, and an abruptly
//! stopped server recovers every tenant bitwise from its state dir.

mod common;

use common::{arrival, build_request, config, corpus, count_body};
use fairkm_core::persist::DurableStream;
use fairkm_serve::chaos::{burst_garbage, send_with_fault, ChaosPlan, Fault, FaultOutcome};
use fairkm_serve::{encode_rows, serve, Registry, ServerConfig};
use fairkm_store::{FaultPlan, SyncMemBackend, TornWrite};
use std::sync::Arc;

/// A deterministic mixed read/write request trace against tenant `t`.
/// Writes must be retried until acked; reads are fire-and-forget.
fn request_trace() -> Vec<(bool, Vec<u8>)> {
    let mut trace = Vec::new();
    for step in 0..10usize {
        let probes: Vec<Vec<fairkm_data::Value>> = (100 + step..103 + step).map(arrival).collect();
        trace.push((
            false,
            build_request("POST", "/tenants/t/assign", &encode_rows(&probes)),
        ));
        let batch: Vec<Vec<fairkm_data::Value>> = (step * 2..step * 2 + 2).map(arrival).collect();
        trace.push((
            true,
            build_request("POST", "/tenants/t/ingest", &encode_rows(&batch)),
        ));
        if step == 4 || step == 8 {
            trace.push((
                true,
                build_request("POST", "/tenants/t/evict_oldest", &count_body(1)),
            ));
        }
        trace.push((false, build_request("GET", "/tenants/t/stats", &[])));
    }
    trace
}

fn start_server(
    backend: SyncMemBackend,
) -> (fairkm_serve::ServerHandle, Arc<Registry<SyncMemBackend>>) {
    let registry = Arc::new(Registry::new(8));
    let stream = DurableStream::create(backend, corpus(12), config(4), Some(5)).unwrap();
    registry.register("t", stream).unwrap();
    let handle = serve(
        "127.0.0.1:0",
        ServerConfig::default(),
        Arc::clone(&registry),
    )
    .unwrap();
    (handle, registry)
}

/// Drive the trace, applying `faults[i]` to request `i`. Writes retry
/// intact until acked. Returns the acked (200) body per trace index
/// (`None` when a read went unacked under its fault).
fn drive(addr: &str, faults: &[Fault]) -> Vec<Option<Vec<u8>>> {
    let trace = request_trace();
    let mut acked = Vec::with_capacity(trace.len());
    for (i, (is_write, request)) in trace.iter().enumerate() {
        let fault = faults.get(i).cloned().unwrap_or(Fault::None);
        let mut outcome = send_with_fault(addr, request, &fault);
        if *is_write {
            // A faulted write may be torn (never reached the engine) or
            // shed; retry intact until the journal-then-ack path acks it,
            // so the committed op sequence matches the fault-free run.
            let mut tries = 0;
            while !matches!(outcome, FaultOutcome::Response { status: 200, .. }) {
                tries += 1;
                assert!(tries < 20, "write {i} never acked");
                outcome = send_with_fault(addr, request, &Fault::None);
            }
        }
        acked.push(match outcome {
            FaultOutcome::Response {
                status: 200, body, ..
            } => Some(body),
            _ => None,
        });
    }
    acked
}

#[test]
fn acked_responses_are_bitwise_identical_under_every_fault_schedule() {
    // Fault-free reference run.
    let (handle, _) = start_server(SyncMemBackend::new());
    let addr = handle.addr().to_string();
    let reference = drive(&addr, &[]);
    handle.shutdown();
    assert!(
        reference.iter().all(|r| r.is_some()),
        "fault-free run must ack everything"
    );

    let trace_len = request_trace().len();
    for seed in [1u64, 2, 3, 4] {
        let plan = ChaosPlan::generate(seed, trace_len, 64);
        let (handle, _) = start_server(SyncMemBackend::new());
        let addr = handle.addr().to_string();
        let acked = drive(&addr, &plan.faults);
        handle.shutdown();
        let mut compared = 0usize;
        for (i, body) in acked.iter().enumerate() {
            if let Some(body) = body {
                assert_eq!(
                    body,
                    reference[i].as_ref().unwrap(),
                    "seed {seed}: acked response {i} diverged from the fault-free run"
                );
                compared += 1;
            }
        }
        // Every write is acked by construction; most reads survive too.
        assert!(
            compared * 2 >= trace_len,
            "seed {seed}: too few acked responses ({compared}/{trace_len})"
        );
    }
}

#[test]
fn burst_floods_get_typed_answers_and_leave_the_server_healthy() {
    let (handle, _) = start_server(SyncMemBackend::new());
    let addr = handle.addr().to_string();

    let before = drive(&addr, &[]);
    let (shed_503, rejected_400, other) = burst_garbage(&addr, 32);
    assert_eq!(
        shed_503 + rejected_400 + other,
        32,
        "every flood connection must resolve"
    );
    assert!(
        rejected_400 + shed_503 >= 24,
        "garbage bursts must overwhelmingly get typed rejections \
         (got {rejected_400} x 400, {shed_503} x 503, {other} other)"
    );

    // The flood never reached the engine: a healthz probe answers and a
    // fresh read matches what the same read returned before the burst.
    let probe = build_request("GET", "/healthz", &[]);
    let FaultOutcome::Response { status: 200, .. } = send_with_fault(&addr, &probe, &Fault::None)
    else {
        panic!("healthz failed after flood")
    };
    let stats = build_request("GET", "/tenants/t/stats", &[]);
    let FaultOutcome::Response {
        status: 200, body, ..
    } = send_with_fault(&addr, &stats, &Fault::None)
    else {
        panic!("stats failed after flood")
    };
    assert_eq!(&body, before.last().unwrap().as_ref().unwrap());
    handle.shutdown();
}

#[test]
fn wedged_tenant_degrades_to_read_only_over_http() {
    let backend = SyncMemBackend::new();
    let (handle, _) = start_server(backend.clone());
    let addr = handle.addr().to_string();

    // Ack one write, remember the read the acked state serves.
    let rows = vec![arrival(0)];
    let ingest = build_request("POST", "/tenants/t/ingest", &encode_rows(&rows));
    let FaultOutcome::Response { status: 200, .. } = send_with_fault(&addr, &ingest, &Fault::None)
    else {
        panic!("priming ingest failed")
    };
    let probes = vec![arrival(50), arrival(51)];
    let assign = build_request("POST", "/tenants/t/assign", &encode_rows(&probes));
    let FaultOutcome::Response {
        status: 200,
        body: assign_before,
        ..
    } = send_with_fault(&addr, &assign, &Fault::None)
    else {
        panic!("priming assign failed")
    };

    // Wedge the journal: the next write op tears.
    backend.set_faults(FaultPlan {
        torn: Some(TornWrite { at_op: 1, keep: 0 }),
        flips: Vec::new(),
    });
    let rows = vec![arrival(1)];
    let ingest = build_request("POST", "/tenants/t/ingest", &encode_rows(&rows));
    let FaultOutcome::Response { status, body, .. } = send_with_fault(&addr, &ingest, &Fault::None)
    else {
        panic!("wedging ingest got no response")
    };
    assert_eq!(status, 503, "write on a wedged tenant is a typed 503");
    let text = String::from_utf8_lossy(&body);
    assert!(text.contains("degraded read-only"), "got: {text}");

    // Degraded read-only mode: reads still serve the last acked state.
    for _ in 0..3 {
        let FaultOutcome::Response {
            status: 200, body, ..
        } = send_with_fault(&addr, &assign, &Fault::None)
        else {
            panic!("degraded read failed")
        };
        assert_eq!(body, assign_before, "degraded reads serve the acked view");
    }
    // And writes keep getting typed 503s, not hangs or panics.
    let FaultOutcome::Response { status, .. } = send_with_fault(&addr, &ingest, &Fault::None)
    else {
        panic!("second wedged write got no response")
    };
    assert_eq!(status, 503);
    let stats = build_request("GET", "/tenants/t/stats", &[]);
    let FaultOutcome::Response {
        status: 200, body, ..
    } = send_with_fault(&addr, &stats, &Fault::None)
    else {
        panic!("stats on wedged tenant failed")
    };
    assert!(String::from_utf8_lossy(&body).contains("wedged 1"));
    handle.shutdown();
}

#[test]
fn abrupt_stop_recovers_every_tenant_bitwise() {
    // Two tenants over shared in-memory "disks"; drive acked writes, then
    // crash the disks (shearing unsynced bytes) WITHOUT graceful engine
    // teardown, and reopen from storage alone.
    let backend_a = SyncMemBackend::new();
    let backend_b = SyncMemBackend::new();
    let registry = Arc::new(Registry::new(8));
    registry
        .register(
            "a",
            DurableStream::create(backend_a.clone(), corpus(12), config(4), Some(3)).unwrap(),
        )
        .unwrap();
    registry
        .register(
            "b",
            DurableStream::create(backend_b.clone(), corpus(10), config(7), Some(3)).unwrap(),
        )
        .unwrap();
    let handle = serve(
        "127.0.0.1:0",
        ServerConfig::default(),
        Arc::clone(&registry),
    )
    .unwrap();
    let addr = handle.addr().to_string();

    let mut acked_stats = Vec::new();
    for step in 0..6usize {
        for tenant in ["a", "b"] {
            let batch: Vec<Vec<fairkm_data::Value>> =
                (step * 2..step * 2 + 2).map(arrival).collect();
            let req = build_request(
                "POST",
                &format!("/tenants/{tenant}/ingest"),
                &encode_rows(&batch),
            );
            let FaultOutcome::Response { status: 200, .. } =
                send_with_fault(&addr, &req, &Fault::None)
            else {
                panic!("ingest failed")
            };
        }
    }
    for tenant in ["a", "b"] {
        let req = build_request("GET", &format!("/tenants/{tenant}/stats"), &[]);
        let FaultOutcome::Response {
            status: 200, body, ..
        } = send_with_fault(&addr, &req, &Fault::None)
        else {
            panic!("stats failed")
        };
        acked_stats.push(body);
    }
    handle.shutdown();
    drop(registry);

    // Crash both disks and recover from storage alone.
    backend_a.crash();
    backend_b.crash();
    let registry = Arc::new(Registry::new(8));
    let (ra, _) = DurableStream::open(backend_a, Some(1), Some(3)).unwrap();
    let (rb, _) = DurableStream::open(backend_b, Some(1), Some(3)).unwrap();
    registry.register("a", ra).unwrap();
    registry.register("b", rb).unwrap();
    let handle = serve(
        "127.0.0.1:0",
        ServerConfig::default(),
        Arc::clone(&registry),
    )
    .unwrap();
    let addr = handle.addr().to_string();
    for (i, tenant) in ["a", "b"].iter().enumerate() {
        let req = build_request("GET", &format!("/tenants/{tenant}/stats"), &[]);
        let FaultOutcome::Response {
            status: 200, body, ..
        } = send_with_fault(&addr, &req, &Fault::None)
        else {
            panic!("post-recovery stats failed")
        };
        assert_eq!(
            body, acked_stats[i],
            "tenant {tenant} must recover bitwise (stats incl. objective bits)"
        );
    }
    handle.shutdown();
}

#[test]
fn slow_loris_past_the_deadline_gets_a_typed_408() {
    let registry = Arc::new(Registry::new(8));
    let stream = DurableStream::create(SyncMemBackend::new(), corpus(12), config(4), None).unwrap();
    registry.register("t", stream).unwrap();
    let cfg = ServerConfig {
        read_timeout: std::time::Duration::from_millis(150),
        ..ServerConfig::default()
    };
    let handle = serve("127.0.0.1:0", cfg, Arc::clone(&registry)).unwrap();
    let addr = handle.addr().to_string();

    let rows = vec![arrival(0)];
    let request = build_request("POST", "/tenants/t/ingest", &encode_rows(&rows));
    // Trickling slower than the deadline: the server must answer 408 (or
    // cut the socket) — and the engine must not have seen the write.
    let outcome = send_with_fault(
        &addr,
        &request,
        &Fault::SlowLoris {
            chunk: 8,
            delay_ms: 400,
        },
    );
    match outcome {
        FaultOutcome::Response { status, .. } => assert_eq!(status, 408),
        FaultOutcome::NoResponse => {}
    }
    let stats = registry.stats("t").unwrap();
    assert_eq!(stats.inserted, 0, "the torn-slow write must not be applied");
    handle.shutdown();
}
