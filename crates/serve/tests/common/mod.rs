//! Shared fixtures for the serving-layer integration tests: the same
//! two-blob corpus and deterministic arrival stream the core/persist
//! tests use, plus raw HTTP frame builders for the chaos injectors.

use fairkm_core::streaming::StreamingConfig;
use fairkm_core::{FairKmConfig, Lambda};
use fairkm_data::{row, Dataset, DatasetBuilder, Role, Value};

pub fn corpus(n_per_side: usize) -> Dataset {
    let mut b = DatasetBuilder::new();
    b.numeric("x", Role::NonSensitive).unwrap();
    b.numeric("y", Role::NonSensitive).unwrap();
    b.categorical("g", Role::Sensitive, &["a", "b"]).unwrap();
    for i in 0..n_per_side {
        let jitter = (i % 7) as f64 * 0.05;
        b.push_row(row![jitter, jitter, "a"]).unwrap();
        b.push_row(row![5.0 + jitter, 5.0 - jitter, "b"]).unwrap();
    }
    b.build().unwrap()
}

pub fn arrival(i: usize) -> Vec<Value> {
    let jitter = (i % 5) as f64 * 0.04;
    if i.is_multiple_of(2) {
        row![jitter, jitter, "b"]
    } else {
        row![5.0 - jitter, 5.0 + jitter, "a"]
    }
}

pub fn config(seed: u64) -> StreamingConfig {
    StreamingConfig::from_base(
        FairKmConfig::new(2)
            .with_seed(seed)
            .with_lambda(Lambda::Fixed(50.0))
            .with_threads(1),
    )
}

/// Frame a full HTTP/1.1 request with `Connection: close`.
pub fn build_request(method: &str, path: &str, body: &[u8]) -> Vec<u8> {
    let mut out = format!(
        "{method} {path} HTTP/1.1\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

/// Encode an `evict_oldest` count body.
#[allow(dead_code)] // each integration-test binary uses a subset of these helpers
pub fn count_body(count: usize) -> Vec<u8> {
    let mut out = Vec::new();
    fairkm_core::wire::put_usize(&mut out, count);
    out
}
