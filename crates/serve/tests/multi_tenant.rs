//! Registry isolation proof: tenants in one registry (and behind one
//! live server) are bitwise-independent. Two tenants bootstrapped from
//! the same seed and fed the same trace must each equal a standalone
//! `StreamingFairKm` run — same ingest decisions, same objective bits,
//! same trace bits — and a tenant with a different seed sharing the
//! process must not perturb either.

mod common;

use common::{arrival, build_request, config, corpus};
use fairkm_core::persist::DurableStream;
use fairkm_core::streaming::StreamingFairKm;
use fairkm_serve::chaos::{send_with_fault, Fault, FaultOutcome};
use fairkm_serve::{encode_rows, serve, Registry, ServerConfig};
use fairkm_store::SyncMemBackend;
use std::sync::Arc;

fn fingerprint(s: &StreamingFairKm) -> (Vec<Option<usize>>, u64, Vec<u64>) {
    let assignments = (0..s.n_slots()).map(|i| s.assignment_of(i)).collect();
    let objective = s.objective().to_bits();
    let trace = s.trace().iter().map(|v| v.to_bits()).collect();
    (assignments, objective, trace)
}

#[test]
fn twin_tenants_match_the_standalone_engine_bitwise() {
    let mut reference = StreamingFairKm::bootstrap(corpus(12), config(4)).unwrap();
    let registry: Registry<SyncMemBackend> = Registry::new(8);
    for name in ["twin-a", "twin-b"] {
        let stream =
            DurableStream::create(SyncMemBackend::new(), corpus(12), config(4), None).unwrap();
        registry.register(name, stream).unwrap();
    }
    // A differently-seeded neighbor sharing the registry: isolation means
    // its presence and its own writes change nothing for the twins.
    registry
        .register(
            "other",
            DurableStream::create(SyncMemBackend::new(), corpus(9), config(11), None).unwrap(),
        )
        .unwrap();

    for step in 0..8usize {
        let batch: Vec<Vec<fairkm_data::Value>> = (step * 2..step * 2 + 2).map(arrival).collect();
        let expect = reference.ingest(&batch).unwrap();
        for name in ["twin-a", "twin-b"] {
            let out = registry.ingest(name, &batch).unwrap();
            assert_eq!(out.report.clusters, expect.clusters, "{name} step {step}");
            assert_eq!(
                out.report.objective.to_bits(),
                expect.objective.to_bits(),
                "{name} step {step}"
            );
        }
        registry.ingest("other", &[arrival(step + 31)]).unwrap();
        // Reads agree too, between every write.
        let probe = arrival(200 + step);
        let expect_read = reference.assign_frozen(&probe).unwrap();
        for name in ["twin-a", "twin-b"] {
            let got = registry.assign(name, std::slice::from_ref(&probe)).unwrap()[0].0;
            assert_eq!(got, expect_read, "{name} step {step}");
        }
    }
    let expect = fingerprint(&reference);
    for name in ["twin-a", "twin-b"] {
        let stats = registry.stats(name).unwrap();
        assert_eq!(stats.objective_bits, expect.1, "{name}");
        assert_eq!(stats.live, reference.live(), "{name}");
        assert_eq!(stats.n_slots, reference.n_slots(), "{name}");
    }
}

#[test]
fn twin_tenants_match_through_a_live_server() {
    let mut reference = StreamingFairKm::bootstrap(corpus(12), config(4)).unwrap();
    let registry = Arc::new(Registry::new(8));
    for name in ["a", "b"] {
        let stream =
            DurableStream::create(SyncMemBackend::new(), corpus(12), config(4), None).unwrap();
        registry.register(name, stream).unwrap();
    }
    let handle = serve(
        "127.0.0.1:0",
        ServerConfig::default(),
        Arc::clone(&registry),
    )
    .unwrap();
    let addr = handle.addr().to_string();

    for step in 0..6usize {
        let batch: Vec<Vec<fairkm_data::Value>> = (step * 2..step * 2 + 2).map(arrival).collect();
        let expect = reference.ingest(&batch).unwrap();
        let mut expect_body = String::new();
        for cluster in &expect.clusters {
            expect_body.push_str(&format!("{cluster}\n"));
        }
        expect_body.push_str(&format!(
            "objective_bits {:016x}\nreoptimized {}\n",
            expect.objective.to_bits(),
            u8::from(expect.reoptimized),
        ));
        for tenant in ["a", "b"] {
            let req = build_request(
                "POST",
                &format!("/tenants/{tenant}/ingest"),
                &encode_rows(&batch),
            );
            let FaultOutcome::Response {
                status: 200, body, ..
            } = send_with_fault(&addr, &req, &Fault::None)
            else {
                panic!("ingest failed for {tenant} at step {step}")
            };
            assert_eq!(
                String::from_utf8(body).unwrap(),
                expect_body,
                "tenant {tenant} step {step}"
            );
        }
    }
    handle.shutdown();
}

#[test]
fn concurrent_write_pressure_is_shed_with_429_and_retries_succeed() {
    let registry = Arc::new(Registry::new(1));
    let stream = DurableStream::create(SyncMemBackend::new(), corpus(12), config(4), None).unwrap();
    registry.register("t", stream).unwrap();
    let handle = serve(
        "127.0.0.1:0",
        ServerConfig::default(),
        Arc::clone(&registry),
    )
    .unwrap();
    let addr = handle.addr().to_string();

    // Hold the tenant's writer busy with a large direct ingest (it counts
    // against the same pending-write cap the HTTP path uses)...
    let big: Vec<Vec<fairkm_data::Value>> = (0..60_000).map(arrival).collect();
    let busy_done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let busy = {
        let registry = Arc::clone(&registry);
        let done = Arc::clone(&busy_done);
        std::thread::spawn(move || {
            registry.ingest("t", &big).unwrap();
            done.store(true, std::sync::atomic::Ordering::SeqCst);
        })
    };

    // ...so HTTP writes concurrent with it shed with a typed, retryable
    // 429. When the probe lands relative to the busy ingest is up to the
    // scheduler, so probe until the busy writer drains and require that
    // at least one probe was shed while it held the cap.
    let rows = vec![arrival(0)];
    let req = build_request("POST", "/tenants/t/ingest", &encode_rows(&rows));
    let mut shed = None;
    while !busy_done.load(std::sync::atomic::Ordering::SeqCst) {
        let outcome = send_with_fault(&addr, &req, &Fault::None);
        if matches!(outcome, FaultOutcome::Response { status: 429, .. }) {
            shed = Some(outcome);
            break;
        }
    }
    let shed = shed.expect("a write concurrent with the busy ingest sheds with 429");
    assert!(
        shed.header("retry-after").is_some(),
        "shed responses carry Retry-After"
    );
    busy.join().unwrap();
    // After the writer drains, a retrying client succeeds.
    let mut client = fairkm_serve::Client::new(
        &addr,
        fairkm_serve::ClientConfig {
            retries: 6,
            seed: 7,
            ..Default::default()
        },
    );
    let resp = client
        .request("POST", "/tenants/t/ingest", &encode_rows(&rows))
        .unwrap();
    assert_eq!(resp.status, 200);
    handle.shutdown();
}
