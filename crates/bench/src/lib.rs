//! # fairkm-bench — the reproduction harness
//!
//! One function per table/figure of the paper's evaluation (§5), shared by
//! the `repro` binary and the Criterion benches. Each experiment follows
//! the paper's protocol: multiple random restarts, mean over seeds, the
//! §5.4 λ heuristic, and the §5.5.1 evaluation setup (including the
//! "synthetically favorable" per-attribute ZGYA comparison of Table 6/8).
//!
//! See DESIGN.md §6 for the experiment index and EXPERIMENTS.md for
//! paper-vs-measured numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod methods;
pub mod report;

/// Global knobs for a reproduction run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Random restarts per configuration (paper: 100; default here is 3 to
    /// keep a laptop run in minutes — raise with `--seeds`).
    pub seeds: usize,
    /// Raw census rows before undersampling (paper: 32 561).
    pub census_rows: usize,
    /// Sample cap for silhouette (exact silhouette is O(n²)).
    pub silhouette_sample: usize,
    /// Base seed; restart r uses `base_seed + r`.
    pub base_seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            seeds: 3,
            census_rows: 32_561,
            silhouette_sample: 2_000,
            base_seed: 100,
        }
    }
}

impl RunConfig {
    /// Fast smoke-test configuration (`--quick`): small census, 2 seeds.
    pub fn quick() -> Self {
        Self {
            seeds: 2,
            census_rows: 6_000,
            silhouette_sample: 1_000,
            base_seed: 100,
        }
    }
}
