//! Method runners and per-run evaluation shared by all experiments.

use fairkm_baselines::kmeans::{KMeans, KMeansConfig};
use fairkm_baselines::zgya::{Zgya, ZgyaConfig};
use fairkm_core::{FairKm, FairKmConfig, Lambda};
use fairkm_data::{AttrId, Dataset, Normalization, NumericMatrix, Partition, SensitiveSpace};
use fairkm_metrics::{
    clustering_objective, dev_c, dev_o, fairness_report, silhouette_sampled, FairnessReport,
};

/// Which encoded space a dataset's task attributes live in. The λ
/// heuristic assumes `dist_N` is on the natural data scale: census
/// attributes are heterogeneous and min-max scaled to `[0,1]` — this
/// matches the paper's absolute CO range on Adult (their Table 5 reports
/// CO ≈ 1121 for 15.7k rows, i.e. ≈ 0.07 per object, which is a unit-box
/// scale, not a z-scored one) — while embeddings are already isotropic
/// (leave raw).
pub fn normalization_for(dataset_kind: DatasetKind) -> Normalization {
    match dataset_kind {
        DatasetKind::Census => Normalization::MinMax,
        DatasetKind::Kinematics => Normalization::None,
    }
}

/// The two evaluation workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// Adult stand-in.
    Census,
    /// Word-problem corpus.
    Kinematics,
}

/// The λ values the paper actually runs with (§5.4): 10⁶ for Adult at both
/// k values and 10³ for Kinematics. Note the paper *rounds down* from its
/// own (|X|/k)² formula at k = 5 (which gives ≈10⁷ on Adult); we follow the
/// stated values.
pub fn paper_lambda(kind: DatasetKind) -> fairkm_core::Lambda {
    match kind {
        DatasetKind::Census => fairkm_core::Lambda::Fixed(1e6),
        DatasetKind::Kinematics => fairkm_core::Lambda::Fixed(1e3),
    }
}

/// ZGYA's fairness weight: its KL penalty is per-cluster while distances
/// are per-point, so it must scale with both `n/k` **and** the distance
/// scale of the encoded space. We use `0.25 · (n/k) · v̄` where `v̄` is the
/// mean squared distance of points to the global centroid (the per-point
/// variance); the constant was picked once on the census workload so that
/// ZGYA visibly trades coherence for fairness, and is used everywhere.
pub fn zgya_lambda(matrix: &NumericMatrix, k: usize) -> f64 {
    let n = matrix.rows();
    if n == 0 {
        return 0.0;
    }
    let center = matrix.col_means();
    let variance: f64 = (0..n).map(|i| matrix.sq_dist_to(i, &center)).sum::<f64>() / n as f64;
    0.25 * (n as f64 / k as f64) * variance
}

/// Quality measures of one run (Table 5/7 columns).
#[derive(Debug, Clone, Copy, Default)]
pub struct QualityRow {
    /// K-Means objective (CO), lower better.
    pub co: f64,
    /// Silhouette (SH), higher better.
    pub sh: f64,
    /// Centroid deviation from the S-blind reference (DevC).
    pub dev_c: f64,
    /// Object-pair deviation from the S-blind reference (DevO).
    pub dev_o: f64,
}

impl QualityRow {
    /// Element-wise accumulate (for seed averaging).
    pub fn add(&mut self, other: &QualityRow) {
        self.co += other.co;
        self.sh += other.sh;
        self.dev_c += other.dev_c;
        self.dev_o += other.dev_o;
    }

    /// Element-wise divide by a count.
    pub fn scale(&mut self, inv: f64) {
        self.co *= inv;
        self.sh *= inv;
        self.dev_c *= inv;
        self.dev_o *= inv;
    }
}

/// Evaluate one partition against the blind reference.
pub fn quality_row(
    matrix: &NumericMatrix,
    partition: &Partition,
    reference: &Partition,
    silhouette_sample: usize,
    seed: u64,
) -> QualityRow {
    QualityRow {
        co: clustering_objective(matrix, partition),
        sh: silhouette_sampled(matrix, partition, silhouette_sample, seed),
        dev_c: dev_c(matrix, partition, reference),
        dev_o: dev_o(partition, reference),
    }
}

/// S-blind K-Means baseline.
pub fn run_kmeans(matrix: &NumericMatrix, k: usize, seed: u64) -> Partition {
    KMeans::new(KMeansConfig::new(k).with_seed(seed))
        .fit(matrix)
        .expect("valid k for workload")
        .partition
}

/// ZGYA on a single sensitive attribute.
pub fn run_zgya(
    matrix: &NumericMatrix,
    space: &SensitiveSpace,
    attr_index: usize,
    k: usize,
    seed: u64,
) -> Partition {
    let attr = &space.categorical()[attr_index];
    Zgya::new(ZgyaConfig::new(k, zgya_lambda(matrix, k)).with_seed(seed))
        .fit(matrix, attr)
        .expect("valid k for workload")
        .partition
}

/// FairKM over all sensitive attributes (`FairKM (All)`).
pub fn run_fairkm_all(
    dataset: &Dataset,
    kind: DatasetKind,
    k: usize,
    lambda: Lambda,
    seed: u64,
) -> Partition {
    FairKm::new(
        FairKmConfig::new(k)
            .with_lambda(lambda)
            .with_seed(seed)
            .with_normalization(normalization_for(kind)),
    )
    .fit(dataset)
    .expect("valid configuration")
    .partition()
    .clone()
}

/// FairKM restricted to a single sensitive attribute (`FairKM(S)`).
pub fn run_fairkm_single(
    dataset: &Dataset,
    kind: DatasetKind,
    attr: AttrId,
    k: usize,
    lambda: Lambda,
    seed: u64,
) -> Partition {
    let matrix = dataset
        .task_matrix(normalization_for(kind))
        .expect("dataset has task attributes");
    let space = dataset
        .sensitive_space_for(&[attr])
        .expect("attribute exists");
    FairKm::new(FairKmConfig::new(k).with_lambda(lambda).with_seed(seed))
        .fit_views(&matrix, &space)
        .expect("valid configuration")
        .partition()
        .clone()
}

/// Fairness report of a partition over the **full** sensitive space.
pub fn fairness_of(space: &SensitiveSpace, partition: &Partition) -> FairnessReport {
    fairness_report(space, partition)
}
