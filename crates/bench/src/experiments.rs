//! One function per table/figure of the paper (§5). See DESIGN.md §6.

use crate::methods::{
    fairness_of, normalization_for, paper_lambda, quality_row, run_fairkm_all, run_fairkm_single,
    run_kmeans, run_zgya, DatasetKind, QualityRow,
};
use crate::report::{fmt, improvement_pct, Table};
use crate::RunConfig;
use fairkm_core::Lambda;
use fairkm_data::{AttrId, Dataset, Partition};
use fairkm_metrics::{clustering_objective, dev_c, dev_o, silhouette_sampled, AttrFairness};
use fairkm_synth::census::{CensusConfig, CensusGenerator};
use fairkm_synth::kinematics::{KinematicsCorpus, KinematicsGenerator};

/// The two evaluation workloads, generated once per run.
pub struct Workloads {
    /// Balanced census dataset (Adult stand-in).
    pub census: Dataset,
    /// Kinematics corpus (dataset + problem texts).
    pub kinematics: KinematicsCorpus,
}

/// Generate both workloads from the run configuration.
pub fn load_workloads(cfg: &RunConfig) -> Workloads {
    let census = CensusGenerator::new(CensusConfig::with_rows(cfg.census_rows, cfg.base_seed))
        .generate_balanced();
    let kinematics = KinematicsGenerator::paper_scale(cfg.base_seed).generate();
    Workloads { census, kinematics }
}

fn dataset_of(w: &Workloads, kind: DatasetKind) -> &Dataset {
    match kind {
        DatasetKind::Census => &w.census,
        DatasetKind::Kinematics => &w.kinematics.dataset,
    }
}

/// Per-attribute fairness of the three contenders, seed-averaged.
#[derive(Debug, Clone)]
pub struct AttrComparison {
    /// Attribute name.
    pub name: String,
    /// S-blind K-Means evaluated on this attribute.
    pub kmeans: AttrFairness,
    /// ZGYA invoked on exactly this attribute (the paper's favorable
    /// setting) and evaluated on it.
    pub zgya_s: AttrFairness,
    /// The single FairKM run over ALL attributes, evaluated on this one.
    pub fairkm_all: AttrFairness,
    /// FairKM restricted to this attribute (for Figures 1–4).
    pub fairkm_s: Option<AttrFairness>,
}

/// Everything Tables 5–8 and Figures 1–4 need for one (dataset, k) pair.
pub struct Suite {
    /// Cluster count.
    pub k: usize,
    /// Seed-averaged quality of K-Means(N) (reference = itself ⇒ Dev* = 0).
    pub kmeans_quality: QualityRow,
    /// Seed-averaged quality of ZGYA, averaged across per-attribute runs
    /// ("Avg. ZGYA" in Tables 5/7).
    pub zgya_quality: QualityRow,
    /// Seed-averaged quality of FairKM (all attributes).
    pub fairkm_quality: QualityRow,
    /// Per-attribute fairness comparisons plus the cross-attribute mean
    /// (last entry, named "mean").
    pub attrs: Vec<AttrComparison>,
}

fn zero_attr(name: &str) -> AttrFairness {
    AttrFairness {
        name: name.to_string(),
        ae: 0.0,
        aw: 0.0,
        me: 0.0,
        mw: 0.0,
    }
}

fn acc(into: &mut AttrFairness, from: &AttrFairness) {
    into.ae += from.ae;
    into.aw += from.aw;
    into.me += from.me;
    into.mw += from.mw;
}

fn scale_attr(a: &mut AttrFairness, inv: f64) {
    a.ae *= inv;
    a.aw *= inv;
    a.me *= inv;
    a.mw *= inv;
}

/// Run the full §5.5 protocol for one dataset and k: all methods, all
/// seeds, quality + per-attribute fairness. `with_singles` additionally
/// runs `FairKM(S)` per attribute (needed by Figures 1–4 only — it roughly
/// doubles the FairKM work).
pub fn run_suite(
    cfg: &RunConfig,
    w: &Workloads,
    kind: DatasetKind,
    k: usize,
    with_singles: bool,
) -> Suite {
    let dataset = dataset_of(w, kind);
    let matrix = dataset
        .task_matrix(normalization_for(kind))
        .expect("workload has task attributes");
    let space = dataset
        .sensitive_space()
        .expect("workload has S attributes");
    let cat_ids: Vec<AttrId> = space.categorical().iter().map(|a| a.attr()).collect();
    let attr_names: Vec<String> = space
        .categorical()
        .iter()
        .map(|a| a.name().to_string())
        .collect();
    let n_attrs = attr_names.len();

    let mut kmeans_quality = QualityRow::default();
    let mut zgya_quality = QualityRow::default();
    let mut fairkm_quality = QualityRow::default();
    let mut km_fair: Vec<AttrFairness> = attr_names.iter().map(|n| zero_attr(n)).collect();
    let mut zg_fair: Vec<AttrFairness> = attr_names.iter().map(|n| zero_attr(n)).collect();
    let mut fk_fair: Vec<AttrFairness> = attr_names.iter().map(|n| zero_attr(n)).collect();
    let mut fk_single_fair: Vec<AttrFairness> = attr_names.iter().map(|n| zero_attr(n)).collect();

    for r in 0..cfg.seeds {
        let seed = cfg.base_seed + r as u64;
        let blind = run_kmeans(&matrix, k, seed);
        kmeans_quality.add(&quality_row(
            &matrix,
            &blind,
            &blind,
            cfg.silhouette_sample,
            seed,
        ));
        let blind_report = fairness_of(&space, &blind);
        for (i, name) in attr_names.iter().enumerate() {
            acc(
                &mut km_fair[i],
                blind_report.attr(name).expect("attr present"),
            );
        }

        // One ZGYA run per attribute; quality averaged across them, and
        // each run's fairness read on its own target attribute.
        for (i, name) in attr_names.iter().enumerate() {
            let zgya = run_zgya(&matrix, &space, i, k, seed);
            let mut q = quality_row(&matrix, &zgya, &blind, cfg.silhouette_sample, seed);
            q.scale(1.0 / n_attrs as f64);
            zgya_quality.add(&q);
            let report = fairness_of(&space, &zgya);
            acc(&mut zg_fair[i], report.attr(name).expect("attr present"));
        }

        // One FairKM run over all attributes, at the paper's λ (§5.4).
        let fairkm = run_fairkm_all(dataset, kind, k, paper_lambda(kind), seed);
        fairkm_quality.add(&quality_row(
            &matrix,
            &fairkm,
            &blind,
            cfg.silhouette_sample,
            seed,
        ));
        let report = fairness_of(&space, &fairkm);
        for (i, name) in attr_names.iter().enumerate() {
            acc(&mut fk_fair[i], report.attr(name).expect("attr present"));
        }

        if with_singles {
            for (i, &attr) in cat_ids.iter().enumerate() {
                let single = run_fairkm_single(dataset, kind, attr, k, paper_lambda(kind), seed);
                let report = fairness_of(&space, &single);
                acc(
                    &mut fk_single_fair[i],
                    report.attr(&attr_names[i]).expect("attr present"),
                );
            }
        }
    }

    let inv = 1.0 / cfg.seeds as f64;
    kmeans_quality.scale(inv);
    zgya_quality.scale(inv);
    fairkm_quality.scale(inv);
    for list in [
        &mut km_fair,
        &mut zg_fair,
        &mut fk_fair,
        &mut fk_single_fair,
    ] {
        for a in list.iter_mut() {
            scale_attr(a, inv);
        }
    }

    let mut attrs: Vec<AttrComparison> = (0..n_attrs)
        .map(|i| AttrComparison {
            name: attr_names[i].clone(),
            kmeans: km_fair[i].clone(),
            zgya_s: zg_fair[i].clone(),
            fairkm_all: fk_fair[i].clone(),
            fairkm_s: with_singles.then(|| fk_single_fair[i].clone()),
        })
        .collect();

    // Cross-attribute mean block ("Mean across S Attributes").
    let mean_of = |pick: &dyn Fn(&AttrComparison) -> &AttrFairness| -> AttrFairness {
        let mut m = zero_attr("mean");
        for a in &attrs {
            acc(&mut m, pick(a));
        }
        scale_attr(&mut m, 1.0 / n_attrs as f64);
        m
    };
    let mean = AttrComparison {
        name: "mean".to_string(),
        kmeans: mean_of(&|a| &a.kmeans),
        zgya_s: mean_of(&|a| &a.zgya_s),
        fairkm_all: mean_of(&|a| &a.fairkm_all),
        fairkm_s: with_singles.then(|| {
            let mut m = zero_attr("mean");
            for a in &attrs {
                acc(&mut m, a.fairkm_s.as_ref().expect("singles requested"));
            }
            scale_attr(&mut m, 1.0 / n_attrs as f64);
            m
        }),
    };
    attrs.push(mean);

    Suite {
        k,
        kmeans_quality,
        zgya_quality,
        fairkm_quality,
        attrs,
    }
}

/// Table 3: census sensitive-attribute cardinalities.
pub fn table3(w: &Workloads) -> Table {
    let space = w.census.sensitive_space().expect("census has S attributes");
    let mut t = Table::new(
        "Table 3 — Adult (census): number of values per sensitive attribute",
        &["attribute", "no. of values"],
    );
    for attr in space.categorical() {
        t.push_row(vec![
            attr.name().to_string(),
            attr.cardinality().to_string(),
        ]);
    }
    t
}

/// Table 4: kinematics problem counts per type.
pub fn table4(w: &Workloads) -> Table {
    let mut counts = [0usize; 5];
    for p in &w.kinematics.problems {
        counts[p.problem_type.index()] += 1;
    }
    let mut t = Table::new(
        "Table 4 — Kinematics: problems of each type",
        &["type", "count"],
    );
    for (ty, count) in fairkm_synth::kinematics::ProblemType::ALL
        .iter()
        .zip(counts)
    {
        t.push_row(vec![
            format!("{} ({})", ty.attr_name(), ty.description()),
            count.to_string(),
        ]);
    }
    t
}

/// Tables 5 / 7: clustering quality (CO, SH, DevC, DevO) per method.
pub fn quality_table(title: &str, suites: &[&Suite]) -> Table {
    let mut header = vec!["measure".to_string()];
    for s in suites {
        for m in ["K-Means(N)", "Avg. ZGYA", "FairKM"] {
            header.push(format!("{m} (k={})", s.k));
        }
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(title, &header_refs);
    type QualityPick = fn(&QualityRow) -> f64;
    let measures: [(&str, QualityPick, usize); 4] = [
        ("CO ↓", |q| q.co, 1),
        ("SH ↑", |q| q.sh, 4),
        ("DevC ↓", |q| q.dev_c, 4),
        ("DevO ↓", |q| q.dev_o, 4),
    ];
    for (name, pick, decimals) in measures {
        let mut row = vec![name.to_string()];
        for s in suites {
            row.push(fmt(pick(&s.kmeans_quality), decimals));
            row.push(fmt(pick(&s.zgya_quality), decimals));
            row.push(fmt(pick(&s.fairkm_quality), decimals));
        }
        t.push_row(row);
    }
    t
}

/// Tables 6 / 8: per-attribute fairness with the paper's Impr(%) column
/// (FairKM vs the best of K-Means(N) and ZGYA(S)).
pub fn fairness_table(title: &str, suite: &Suite) -> Table {
    let mut t = Table::new(
        title,
        &[
            "attribute",
            "measure",
            "K-Means(N)",
            "ZGYA(S)",
            "FairKM",
            "Impr(%)",
        ],
    );
    for attr in &suite.attrs {
        type FairnessPick = fn(&AttrFairness) -> f64;
        let measures: [(&str, FairnessPick); 4] = [
            ("AE", |a| a.ae),
            ("AW", |a| a.aw),
            ("ME", |a| a.me),
            ("MW", |a| a.mw),
        ];
        for (mname, pick) in measures {
            let km = pick(&attr.kmeans);
            let zg = pick(&attr.zgya_s);
            let fk = pick(&attr.fairkm_all);
            let best_other = km.min(zg);
            t.push_row(vec![
                attr.name.clone(),
                mname.to_string(),
                fmt(km, 4),
                fmt(zg, 4),
                fmt(fk, 4),
                fmt(improvement_pct(fk, best_other), 2),
            ]);
        }
    }
    t
}

/// Figures 1–4: per-attribute comparison of ZGYA(S), FairKM(All) and
/// FairKM(S) on one measure (AW or MW).
pub fn single_attr_figure(title: &str, suite: &Suite, pick: fn(&AttrFairness) -> f64) -> Table {
    let mut t = Table::new(
        title,
        &["attribute", "ZGYA(S)", "FairKM (All)", "FairKM(S)"],
    );
    for attr in &suite.attrs {
        if attr.name == "mean" {
            continue;
        }
        let single = attr
            .fairkm_s
            .as_ref()
            .expect("figures need with_singles = true");
        t.push_row(vec![
            attr.name.clone(),
            fmt(pick(&attr.zgya_s), 4),
            fmt(pick(&attr.fairkm_all), 4),
            fmt(pick(single), 4),
        ]);
    }
    t
}

/// One row of the λ-sensitivity study (Figures 5–7).
#[derive(Debug, Clone)]
pub struct LambdaPoint {
    /// λ value.
    pub lambda: f64,
    /// Quality measures against the same-seed blind reference.
    pub quality: QualityRow,
    /// Cross-attribute mean fairness.
    pub fairness: AttrFairness,
}

/// The §5.7 λ sweep on Kinematics (λ from 1000 to 10000, as in the paper).
pub fn lambda_sweep(cfg: &RunConfig, w: &Workloads, lambdas: &[f64]) -> Vec<LambdaPoint> {
    let kind = DatasetKind::Kinematics;
    let dataset = &w.kinematics.dataset;
    let matrix = dataset
        .task_matrix(normalization_for(kind))
        .expect("kinematics has embeddings");
    let space = dataset.sensitive_space().expect("kinematics has types");
    lambdas
        .iter()
        .map(|&lambda| {
            let mut quality = QualityRow::default();
            let mut fairness = zero_attr("mean");
            for r in 0..cfg.seeds {
                let seed = cfg.base_seed + r as u64;
                let blind = run_kmeans(&matrix, 5, seed);
                let model = run_fairkm_all(dataset, kind, 5, Lambda::Fixed(lambda), seed);
                quality.add(&QualityRow {
                    co: clustering_objective(&matrix, &model),
                    sh: silhouette_sampled(&matrix, &model, cfg.silhouette_sample, seed),
                    dev_c: dev_c(&matrix, &model, &blind),
                    dev_o: dev_o(&model, &blind),
                });
                let report = fairness_of(&space, &model);
                acc(&mut fairness, &report.mean);
            }
            let inv = 1.0 / cfg.seeds as f64;
            quality.scale(inv);
            scale_attr(&mut fairness, inv);
            LambdaPoint {
                lambda,
                quality,
                fairness,
            }
        })
        .collect()
}

/// Figure 5 (CO & SH vs λ), Figure 6 (DevC & DevO vs λ) and Figure 7
/// (fairness vs λ) rendered from one sweep.
pub fn lambda_tables(points: &[LambdaPoint]) -> (Table, Table, Table) {
    let mut fig5 = Table::new(
        "Figure 5 — Kinematics: CO and SH vs λ",
        &["lambda", "CO ↓", "SH ↑"],
    );
    let mut fig6 = Table::new(
        "Figure 6 — Kinematics: DevC and DevO vs λ",
        &["lambda", "DevC ↓", "DevO ↓"],
    );
    let mut fig7 = Table::new(
        "Figure 7 — Kinematics: fairness measures vs λ",
        &["lambda", "AE ↓", "AW ↓", "ME ↓", "MW ↓"],
    );
    for p in points {
        fig5.push_row(vec![
            fmt(p.lambda, 0),
            fmt(p.quality.co, 2),
            fmt(p.quality.sh, 4),
        ]);
        fig6.push_row(vec![
            fmt(p.lambda, 0),
            fmt(p.quality.dev_c, 4),
            fmt(p.quality.dev_o, 4),
        ]);
        fig7.push_row(vec![
            fmt(p.lambda, 0),
            fmt(p.fairness.ae, 4),
            fmt(p.fairness.aw, 4),
            fmt(p.fairness.me, 4),
            fmt(p.fairness.mw, 4),
        ]);
    }
    (fig5, fig6, fig7)
}

/// Appendix experiment: stabilized vs raw ZGYA updates (see DESIGN.md §3).
///
/// The raw closed-form transcription of the method overshoots: with the
/// same λ it destroys coherence and lands on degenerate assignments —
/// the behavior pattern the paper reports for its ZGYA runs. The
/// stabilized solver used in the headline tables is a strictly stronger
/// baseline.
pub fn zgya_modes(cfg: &RunConfig, w: &Workloads) -> Table {
    use fairkm_baselines::zgya::{Zgya, ZgyaConfig};
    let kind = DatasetKind::Census;
    let dataset = &w.census;
    let matrix = dataset
        .task_matrix(normalization_for(kind))
        .expect("census has task attributes");
    let space = dataset.sensitive_space().expect("census has S attributes");
    let k = 5;
    let lambda = crate::methods::zgya_lambda(&matrix, k);

    let mut t = Table::new(
        "Appendix — ZGYA update modes on Adult (census stand-in), k=5, gender",
        &[
            "mode",
            "CO ↓",
            "AE(gender) ↓",
            "KL(hard) ↓",
            "non-empty clusters",
        ],
    );
    let gender_idx = 3;
    for raw in [false, true] {
        let mut co = 0.0;
        let mut ae = 0.0;
        let mut kl = 0.0;
        let mut non_empty = 0.0;
        for r in 0..cfg.seeds {
            let seed = cfg.base_seed + r as u64;
            let model = Zgya::new(
                ZgyaConfig::new(k, lambda)
                    .with_seed(seed)
                    .with_raw_updates(raw),
            )
            .fit(&matrix, &space.categorical()[gender_idx])
            .expect("valid configuration");
            co += clustering_objective(&matrix, &model.partition);
            ae += fairness_of(&space, &model.partition).categorical[gender_idx].ae;
            kl += model.kl_term;
            non_empty += model.partition.n_non_empty() as f64;
        }
        let inv = 1.0 / cfg.seeds as f64;
        t.push_row(vec![
            if raw {
                "raw (paper-like)"
            } else {
                "stabilized"
            }
            .to_string(),
            fmt(co * inv, 1),
            fmt(ae * inv, 4),
            fmt(kl * inv, 3),
            fmt(non_empty * inv, 1),
        ]);
    }
    t
}

/// Partition type re-export used by figure helpers.
pub type Clustering = Partition;
