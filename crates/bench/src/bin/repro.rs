//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro <experiment>... [--seeds N] [--census-rows N] [--quick] [--json FILE]
//!
//! experiments: all | table3 | table4 | table5 | table6 | table7 | table8
//!            | fig1 | fig2 | fig3 | fig4 | fig5 | fig6 | fig7
//! ```
//!
//! Absolute numbers come from synthetic stand-ins of the paper's datasets
//! (see DESIGN.md §4), so they differ from the published values; the
//! orderings, trade-off shapes and per-attribute patterns are the
//! reproduction targets (recorded in EXPERIMENTS.md).

use fairkm_bench::experiments::{
    fairness_table, lambda_sweep, lambda_tables, load_workloads, quality_table, run_suite,
    single_attr_figure, table3, table4, zgya_modes, Suite, Workloads,
};
use fairkm_bench::methods::DatasetKind;
use fairkm_bench::report::Table;
use fairkm_bench::RunConfig;
use std::collections::BTreeMap;
use std::process::ExitCode;

const USAGE: &str = "usage: repro <experiment>... [--seeds N] [--census-rows N] [--quick] [--json FILE]
experiments: all table3 table4 table5 table6 table7 table8 fig1 fig2 fig3 fig4 fig5 fig6 fig7 zgya-modes";

const ALL: [&str; 14] = [
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "zgya-modes",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiments: Vec<String> = Vec::new();
    let mut cfg = RunConfig::default();
    let mut json_path: Option<String> = None;

    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => cfg = RunConfig::quick(),
            "--seeds" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.seeds = v,
                None => return usage_error("--seeds needs a number"),
            },
            "--census-rows" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.census_rows = v,
                None => return usage_error("--census-rows needs a number"),
            },
            "--json" => match it.next() {
                Some(v) => json_path = Some(v.clone()),
                None => return usage_error("--json needs a path"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "all" => experiments.extend(ALL.iter().map(|s| s.to_string())),
            name if ALL.contains(&name) => experiments.push(name.to_string()),
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    if experiments.is_empty() {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    experiments.dedup();

    eprintln!(
        "# generating workloads (census raw rows = {}, seeds = {}) ...",
        cfg.census_rows, cfg.seeds
    );
    let workloads = load_workloads(&cfg);
    eprintln!(
        "# census balanced rows = {}, kinematics problems = {}",
        workloads.census.n_rows(),
        workloads.kinematics.dataset.n_rows()
    );

    // Suites are expensive; compute each (dataset, k, singles) at most once.
    let mut suites: BTreeMap<(u8, usize, bool), Suite> = BTreeMap::new();
    let mut get_suite =
        |cfg: &RunConfig, w: &Workloads, kind: DatasetKind, k: usize, singles: bool| -> Suite {
            let key = (matches!(kind, DatasetKind::Kinematics) as u8, k, singles);
            // A suite computed *with* singles also serves requests without.
            if let Some(s) = suites
                .get(&key)
                .or_else(|| suites.get(&(key.0, key.1, true)))
            {
                return clone_suite(s);
            }
            eprintln!(
                "# running suite: {:?} k={k} singles={singles} ({} seeds) ...",
                kind, cfg.seeds
            );
            let s = run_suite(cfg, w, kind, k, singles);
            let out = clone_suite(&s);
            suites.insert(key, s);
            out
        };

    let mut tables: Vec<Table> = Vec::new();
    let mut lambda_cache: Option<(Table, Table, Table)> = None;
    for exp in &experiments {
        match exp.as_str() {
            "table3" => tables.push(table3(&workloads)),
            "table4" => tables.push(table4(&workloads)),
            "zgya-modes" => tables.push(zgya_modes(&cfg, &workloads)),
            "table5" => {
                let s5 = get_suite(&cfg, &workloads, DatasetKind::Census, 5, false);
                let s15 = get_suite(&cfg, &workloads, DatasetKind::Census, 15, false);
                tables.push(quality_table(
                    "Table 5 — clustering quality on Adult (census stand-in)",
                    &[&s5, &s15],
                ));
            }
            "table6" => {
                for k in [5usize, 15] {
                    let s = get_suite(&cfg, &workloads, DatasetKind::Census, k, false);
                    tables.push(fairness_table(
                        &format!("Table 6 — fairness on Adult (census stand-in), k={k}"),
                        &s,
                    ));
                }
            }
            "table7" => {
                let s = get_suite(&cfg, &workloads, DatasetKind::Kinematics, 5, false);
                tables.push(quality_table(
                    "Table 7 — clustering quality on Kinematics",
                    &[&s],
                ));
            }
            "table8" => {
                let s = get_suite(&cfg, &workloads, DatasetKind::Kinematics, 5, false);
                tables.push(fairness_table("Table 8 — fairness on Kinematics, k=5", &s));
            }
            "fig1" | "fig2" => {
                let s = get_suite(&cfg, &workloads, DatasetKind::Census, 5, true);
                if exp == "fig1" {
                    tables.push(single_attr_figure(
                        "Figure 1 — Adult: AW comparison (k=5)",
                        &s,
                        |a| a.aw,
                    ));
                } else {
                    tables.push(single_attr_figure(
                        "Figure 2 — Adult: MW comparison (k=5)",
                        &s,
                        |a| a.mw,
                    ));
                }
            }
            "fig3" | "fig4" => {
                let s = get_suite(&cfg, &workloads, DatasetKind::Kinematics, 5, true);
                if exp == "fig3" {
                    tables.push(single_attr_figure(
                        "Figure 3 — Kinematics: AW comparison (k=5)",
                        &s,
                        |a| a.aw,
                    ));
                } else {
                    tables.push(single_attr_figure(
                        "Figure 4 — Kinematics: MW comparison (k=5)",
                        &s,
                        |a| a.mw,
                    ));
                }
            }
            "fig5" | "fig6" | "fig7" => {
                if lambda_cache.is_none() {
                    eprintln!("# running λ sweep on Kinematics ...");
                    let lambdas: Vec<f64> = (1..=10).map(|i| i as f64 * 1000.0).collect();
                    let points = lambda_sweep(&cfg, &workloads, &lambdas);
                    lambda_cache = Some(lambda_tables(&points));
                }
                let (f5, f6, f7) = lambda_cache.as_ref().expect("just filled");
                tables.push(match exp.as_str() {
                    "fig5" => f5.clone(),
                    "fig6" => f6.clone(),
                    _ => f7.clone(),
                });
            }
            _ => unreachable!("validated above"),
        }
    }

    for t in &tables {
        t.print();
    }
    if let Some(path) = json_path {
        let doc = serde_json::json!({
            "config": {
                "seeds": cfg.seeds,
                "census_rows": cfg.census_rows,
                "base_seed": cfg.base_seed,
            },
            "tables": tables.iter().map(Table::to_json).collect::<Vec<_>>(),
        });
        match std::fs::write(
            &path,
            serde_json::to_string_pretty(&doc).expect("serializable"),
        ) {
            Ok(()) => eprintln!("# wrote {path}"),
            Err(e) => {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn clone_suite(s: &Suite) -> Suite {
    Suite {
        k: s.k,
        kmeans_quality: s.kmeans_quality,
        zgya_quality: s.zgya_quality,
        fairkm_quality: s.fairkm_quality,
        attrs: s.attrs.clone(),
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("error: {message}\n{USAGE}");
    ExitCode::FAILURE
}
