//! Plain-text table rendering and JSON export for experiment results.

use serde_json::{json, Value};

/// A rendered experiment result: a title, a header row, and data rows.
#[derive(Debug, Clone)]
pub struct Table {
    /// Human-readable title (e.g. "Table 5 — clustering quality, Adult").
    pub title: String,
    /// Column names.
    pub header: Vec<String>,
    /// Data rows (already stringified).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a data row.
    pub fn push_row(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.header.len());
        self.rows.push(row);
    }

    /// Render to stdout with aligned columns.
    pub fn print(&self) {
        println!("\n== {} ==", self.title);
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let render = |cells: &[String]| {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("  {cell:>w$}"));
                }
            }
            line
        };
        println!("{}", render(&self.header));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            println!("{}", render(row));
        }
    }

    /// Machine-readable form.
    pub fn to_json(&self) -> Value {
        json!({
            "title": self.title,
            "header": self.header,
            "rows": self.rows,
        })
    }
}

/// Format a float with the given number of decimals.
pub fn fmt(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

/// Percentage improvement of `ours` over `best_other` for
/// lower-is-better measures, as the paper's `Impr(%)` column:
/// `(other − ours) / other × 100`.
pub fn improvement_pct(ours: f64, best_other: f64) -> f64 {
    if best_other == 0.0 {
        return 0.0;
    }
    (best_other - ours) / best_other * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_matches_paper_convention() {
        // deviation 0.0278 vs next-best 0.0459 → ~39.4% improvement
        let impr = improvement_pct(0.0278, 0.0459);
        assert!((impr - 39.43).abs() < 0.1);
        // negative when we are worse
        assert!(improvement_pct(0.02, 0.01) < 0.0);
    }

    #[test]
    fn table_json_roundtrip_shape() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let v = t.to_json();
        assert_eq!(v["title"], "demo");
        assert_eq!(v["rows"][0][1], "2");
    }

    #[test]
    fn fmt_decimals() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(-0.5, 4), "-0.5000");
    }
}
