//! Streaming-subsystem benches: what the delta-ingestion design buys over
//! refitting from scratch.
//!
//! * **bootstrap** — the one-time cost of standing the stream up;
//! * **state_clone** — deep-copying the bootstrapped stream. The `ingest`
//!   and `evict` groups clone per iteration (they mutate), so subtract
//!   this baseline to read their delta-path cost in isolation;
//! * **ingest** — clone + delta ingestion of the whole arrival stream in
//!   256-row batches (frozen-prototype scoring + O(dim + Σ|Values(S)|)
//!   aggregate deltas per point, drift-checked per batch);
//! * **assign_frozen** — the read-only single-point serve path;
//! * **evict** — clone + sliding-window eviction of the oldest quarter;
//! * **refit_full** — the non-streaming baseline: a batch fit over
//!   bootstrap + arrivals, i.e. the work a batch system would redo.
//!
//! Set `FAIRKM_BENCH_SMOKE=1` for the CI smoke variant (smaller stream,
//! fewer samples); the run emits `BENCH_streaming.json` either way.

use criterion::{criterion_group, criterion_main, Criterion};
use fairkm_core::{FairKm, FairKmConfig, Lambda, StreamingConfig, StreamingFairKm};
use fairkm_data::{Dataset, Value};
use fairkm_synth::planted::{PlantedConfig, PlantedGenerator};
use std::hint::black_box;

fn smoke() -> bool {
    std::env::var("FAIRKM_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn workload(n: usize) -> Dataset {
    PlantedGenerator::new(PlantedConfig {
        n_rows: n,
        n_blobs: 5,
        dim: 8,
        n_sensitive_attrs: 3,
        cardinality: 4,
        alignment: 0.8,
        separation: 6.0,
        spread: 1.0,
        seed: 7,
    })
    .generate()
    .dataset
}

/// Materialize rows `range` of a dataset as raw ingestion rows.
fn raw_rows(dataset: &Dataset, range: std::ops::Range<usize>) -> Vec<Vec<Value>> {
    range
        .map(|r| dataset.row_values(r).expect("valid row"))
        .collect()
}

fn config() -> StreamingConfig {
    StreamingConfig::from_base(
        FairKmConfig::new(5)
            .with_seed(7)
            .with_threads(1)
            .with_lambda(Lambda::Heuristic),
    )
}

fn bench_streaming(c: &mut Criterion) {
    let total = if smoke() { 2_000 } else { 8_000 };
    let boot_n = total / 2;
    let data = workload(total);
    let boot_idx: Vec<usize> = (0..boot_n).collect();
    let boot = data.select_rows(&boot_idx).unwrap();
    let arrivals = raw_rows(&data, boot_n..total);

    let mut group = c.benchmark_group("streaming");
    group.sample_size(if smoke() { 3 } else { 10 });

    group.bench_function("bootstrap", |b| {
        b.iter(|| StreamingFairKm::bootstrap(black_box(boot.clone()), config()).unwrap())
    });

    let base = StreamingFairKm::bootstrap(boot.clone(), config()).unwrap();

    group.bench_function("state_clone", |b| b.iter(|| black_box(base.clone())));

    group.bench_function("ingest", |b| {
        b.iter(|| {
            let mut stream = base.clone();
            for chunk in arrivals.chunks(256) {
                stream.ingest(black_box(chunk)).unwrap();
            }
            black_box(stream.objective())
        })
    });

    group.bench_function("assign_frozen", |b| {
        let row = &arrivals[0];
        b.iter(|| base.assign_frozen(black_box(row)).unwrap())
    });

    group.bench_function("evict", |b| {
        b.iter(|| {
            let mut stream = base.clone();
            stream.evict_oldest(black_box(boot_n / 4)).unwrap();
            black_box(stream.objective())
        })
    });

    group.bench_function("refit_full", |b| {
        b.iter(|| {
            FairKm::new(FairKmConfig::new(5).with_seed(7).with_threads(1))
                .fit(black_box(&data))
                .unwrap()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
