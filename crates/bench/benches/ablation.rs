//! Ablation benches for the design choices DESIGN.md calls out and the
//! paper's §6.1 future-work studies:
//!
//! * `delta_engine` — incremental closed-form vs literal Eq. 12/14 deltas
//!   at a fixed size (the speedup that removes the quadratic term);
//! * `schedule` — per-move updates vs §6.1 mini-batch prototype updates;
//! * `n_attrs` — cost growth with the number of sensitive attributes;
//! * `cardinality` — cost growth with values-per-attribute (the `m` of the
//!   §4.3.1 complexity analysis).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fairkm_core::{DeltaEngine, FairKm, FairKmConfig, Lambda, UpdateSchedule};
use fairkm_data::Dataset;
use fairkm_synth::planted::{PlantedConfig, PlantedGenerator};
use std::hint::black_box;

fn workload(n_attrs: usize, cardinality: usize) -> Dataset {
    PlantedGenerator::new(PlantedConfig {
        n_rows: 800,
        n_blobs: 5,
        dim: 8,
        n_sensitive_attrs: n_attrs,
        cardinality,
        alignment: 0.8,
        separation: 6.0,
        spread: 1.0,
        seed: 13,
    })
    .generate()
    .dataset
}

fn fit(data: &Dataset, engine: DeltaEngine, schedule: UpdateSchedule) {
    FairKm::new(
        FairKmConfig::new(5)
            .with_seed(1)
            .with_lambda(Lambda::Heuristic)
            .with_delta_engine(engine)
            .with_schedule(schedule)
            .with_max_iters(5),
    )
    .fit(black_box(data))
    .unwrap();
}

fn bench_delta_engine(c: &mut Criterion) {
    let data = workload(3, 4);
    let mut group = c.benchmark_group("delta_engine");
    group.sample_size(10);
    group.bench_function("incremental", |b| {
        b.iter(|| fit(&data, DeltaEngine::Incremental, UpdateSchedule::PerMove))
    });
    group.bench_function("literal", |b| {
        b.iter(|| fit(&data, DeltaEngine::Literal, UpdateSchedule::PerMove))
    });
    group.finish();
}

fn bench_schedule(c: &mut Criterion) {
    let data = workload(3, 4);
    let mut group = c.benchmark_group("schedule");
    group.sample_size(10);
    group.bench_function("per_move", |b| {
        b.iter(|| fit(&data, DeltaEngine::Incremental, UpdateSchedule::PerMove))
    });
    for batch in [32usize, 128, 512] {
        group.bench_with_input(
            BenchmarkId::new("mini_batch", batch),
            &batch,
            |b, &batch| {
                b.iter(|| {
                    fit(
                        &data,
                        DeltaEngine::Incremental,
                        UpdateSchedule::MiniBatch(batch),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_n_attrs(c: &mut Criterion) {
    let mut group = c.benchmark_group("n_sensitive_attrs");
    group.sample_size(10);
    for n_attrs in [1usize, 2, 4, 8, 16] {
        let data = workload(n_attrs, 4);
        group.bench_with_input(BenchmarkId::from_parameter(n_attrs), &n_attrs, |b, _| {
            b.iter(|| fit(&data, DeltaEngine::Incremental, UpdateSchedule::PerMove))
        });
    }
    group.finish();
}

fn bench_cardinality(c: &mut Criterion) {
    let mut group = c.benchmark_group("values_per_attr");
    group.sample_size(10);
    for cardinality in [2usize, 8, 32, 64] {
        let data = workload(3, cardinality);
        group.bench_with_input(
            BenchmarkId::from_parameter(cardinality),
            &cardinality,
            |b, _| b.iter(|| fit(&data, DeltaEngine::Incremental, UpdateSchedule::PerMove)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_delta_engine,
    bench_schedule,
    bench_n_attrs,
    bench_cardinality
);
criterion_main!(benches);
