//! Runtime scaling benches backing the paper's §4.3.1 complexity analysis:
//!
//! * FairKM with the **incremental** δ engine scales ~linearly in |X| per
//!   iteration (O(|X|·k·(|N| + |S|m)));
//! * FairKM with the paper's **literal** Eq. 12/14 engine is quadratic in
//!   |X| — the cost the paper's own analysis assigns to the method;
//! * K-Means and ZGYA are the baseline cost anchors;
//! * the **thread sweep** measures the parallel execution engine on the
//!   n=20k planted workload under the windowed mini-batch schedule, after
//!   asserting that every thread count produces a bitwise-identical model;
//! * the **scoring_cache** group times one full best-move scoring scan at
//!   n=20k, threads=1, through the cached dot-product kernel vs. the
//!   literal pre-cache per-pair kernel (equivalence asserted first).
//!
//! Set `FAIRKM_BENCH_SMOKE=1` for the CI smoke variant: the expensive
//! full-fit groups shrink while the `scoring_cache` comparison keeps its
//! n=20k shape, and the run still emits `BENCH_scaling.json` (per-group
//! median ns) for cross-PR tracking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fairkm_core::bench_support::ScoringFixture;
use fairkm_core::{DeltaEngine, FairKm, FairKmConfig, Lambda, MiniBatchFairKm};
use fairkm_data::{Dataset, Normalization};
use fairkm_synth::planted::{PlantedConfig, PlantedGenerator};
use std::hint::black_box;

/// CI smoke mode: shrink the full-fit groups so the bench finishes in
/// seconds while still exercising every code path and emitting the JSON
/// report.
fn smoke() -> bool {
    std::env::var("FAIRKM_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn workload(n: usize) -> Dataset {
    PlantedGenerator::new(PlantedConfig {
        n_rows: n,
        n_blobs: 5,
        dim: 8,
        n_sensitive_attrs: 3,
        cardinality: 4,
        alignment: 0.8,
        separation: 6.0,
        spread: 1.0,
        seed: 7,
    })
    .generate()
    .dataset
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(if smoke() { 3 } else { 10 });
    let sizes: &[usize] = if smoke() {
        &[250, 500]
    } else {
        &[250, 500, 1000, 2000]
    };
    for &n in sizes {
        let data = workload(n);
        let matrix = data.task_matrix(Normalization::ZScore).unwrap();
        let space = data.sensitive_space().unwrap();

        group.bench_with_input(BenchmarkId::new("kmeans", n), &n, |b, _| {
            b.iter(|| {
                fairkm_baselines::kmeans::KMeans::new(
                    fairkm_baselines::kmeans::KMeansConfig::new(5).with_seed(1),
                )
                .fit(black_box(&matrix))
                .unwrap()
            })
        });

        group.bench_with_input(BenchmarkId::new("zgya", n), &n, |b, _| {
            b.iter(|| {
                fairkm_baselines::zgya::Zgya::new(
                    fairkm_baselines::zgya::ZgyaConfig::new(5, 2.0 * n as f64 / 5.0).with_seed(1),
                )
                .fit(black_box(&matrix), &space.categorical()[0])
                .unwrap()
            })
        });

        group.bench_with_input(BenchmarkId::new("fairkm_incremental", n), &n, |b, _| {
            b.iter(|| {
                FairKm::new(
                    FairKmConfig::new(5)
                        .with_seed(1)
                        .with_lambda(Lambda::Heuristic)
                        .with_max_iters(10),
                )
                .fit(black_box(&data))
                .unwrap()
            })
        });

        // The literal engine is O(|X|²) per pass — bench only the smaller
        // sizes to keep wall-clock sane; the quadratic growth is already
        // unmistakable between 250 and 1000.
        if n <= 1000 {
            group.bench_with_input(BenchmarkId::new("fairkm_literal", n), &n, |b, _| {
                b.iter(|| {
                    FairKm::new(
                        FairKmConfig::new(5)
                            .with_seed(1)
                            .with_lambda(Lambda::Heuristic)
                            .with_delta_engine(DeltaEngine::Literal)
                            .with_max_iters(3),
                    )
                    .fit(black_box(&data))
                    .unwrap()
                })
            });
        }
    }
    group.finish();
}

/// Thread-count sweep of the parallel engine: same seed, same windowed
/// schedule, threads ∈ {1, 2, 4, 8}. Determinism is asserted up front —
/// every thread count must yield the single-thread model bit for bit — so
/// the timings below compare identical computations, not lucky schedules.
fn bench_thread_sweep(c: &mut Criterion) {
    let n: usize = if smoke() { 4_000 } else { 20_000 };
    let data = workload(n);
    let matrix = data.task_matrix(Normalization::ZScore).unwrap();
    let space = data.sensitive_space().unwrap();

    let fit = |threads: usize| {
        MiniBatchFairKm::new(
            FairKmConfig::new(5)
                .with_seed(1)
                .with_lambda(Lambda::Heuristic)
                .with_max_iters(5)
                .with_threads(threads),
            4096,
        )
        .fit_views(&matrix, &space)
        .unwrap()
    };

    let reference = fit(1);
    for threads in [2usize, 4, 8] {
        let model = fit(threads);
        assert_eq!(
            reference.assignments(),
            model.assignments(),
            "thread count {threads} changed the clustering"
        );
        assert_eq!(
            reference.objective().to_bits(),
            model.objective().to_bits(),
            "thread count {threads} changed the objective"
        );
    }

    let mut group = c.benchmark_group("thread_scaling");
    group.sample_size(if smoke() { 2 } else { 10 });
    let sweep: &[usize] = if smoke() { &[1, 2] } else { &[1, 2, 4, 8] };
    for &threads in sweep {
        group.bench_with_input(
            BenchmarkId::new(format!("fairkm_minibatch_{n}"), threads),
            &threads,
            |b, &threads| b.iter(|| black_box(fit(threads))),
        );
    }
    group.finish();
}

/// Cached vs. literal scoring kernels over one full best-move scan of the
/// n=20k planted workload at threads=1 — the per-unit-work comparison the
/// incremental scoring engine is about, isolated from the fit loop. The
/// two kernels are asserted equivalent before any timing, and this group
/// keeps its full n=20k shape even in smoke mode so `BENCH_scaling.json`
/// always carries the tracked comparison.
fn bench_scoring_cache(c: &mut Criterion) {
    const N: usize = 20_000;
    let data = workload(N);
    let matrix = data.task_matrix(Normalization::ZScore).unwrap();
    let space = data.sensitive_space().unwrap();
    let lambda = Lambda::Heuristic.resolve(N, 5);
    let fixture = ScoringFixture::new(&matrix, &space, 5, lambda, 7);

    let cached = fixture.scan_cached();
    let literal = fixture.scan_literal();
    assert!(
        (cached - literal).abs() <= 1e-9 * (1.0 + literal.abs()),
        "scoring kernels diverged: cached {cached} vs literal {literal}"
    );

    let mut group = c.benchmark_group("scoring_cache");
    group.sample_size(if smoke() { 5 } else { 10 });
    group.bench_with_input(BenchmarkId::new("cached", N), &N, |b, _| {
        b.iter(|| black_box(fixture.scan_cached()))
    });
    group.bench_with_input(BenchmarkId::new("literal", N), &N, |b, _| {
        b.iter(|| black_box(fixture.scan_literal()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_scaling,
    bench_thread_sweep,
    bench_scoring_cache
);
criterion_main!(benches);
