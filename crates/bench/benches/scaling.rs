//! Runtime scaling benches backing the paper's §4.3.1 complexity analysis:
//!
//! * FairKM with the **incremental** δ engine scales ~linearly in |X| per
//!   iteration (O(|X|·k·(|N| + |S|m)));
//! * FairKM with the paper's **literal** Eq. 12/14 engine is quadratic in
//!   |X| — the cost the paper's own analysis assigns to the method;
//! * K-Means and ZGYA are the baseline cost anchors;
//! * the **thread sweep** measures the parallel execution engine on the
//!   n=20k planted workload under the windowed mini-batch schedule, after
//!   asserting that every thread count produces a bitwise-identical model;
//! * the **scoring_cache** group times one full best-move scoring scan at
//!   n=20k, threads=1, through the cached dot-product kernel vs. the
//!   literal pre-cache per-pair kernel (equivalence asserted first);
//! * the **objective_dispatch** group times the same scan per pluggable
//!   `FairnessObjective`, after gating the trait-dispatched Eq. 7 path to
//!   within 2% of the committed `scoring_cache` median;
//! * the **snapshot_io** group times durability: snapshot write/restore
//!   of a streamed engine's serialized state and WAL append + fsync /
//!   suffix replay, with a bitwise round-trip gate before any timing.
//!
//! Set `FAIRKM_BENCH_SMOKE=1` for the CI smoke variant: the expensive
//! full-fit groups shrink while the `scoring_cache` comparison keeps its
//! n=20k shape, and the run still emits `BENCH_scaling.json` (per-group
//! median ns) for cross-PR tracking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fairkm_core::bench_support::ScoringFixture;
use fairkm_core::{
    DeltaEngine, FairKm, FairKmConfig, Lambda, MiniBatchFairKm, ObjectiveKind, StreamingConfig,
    StreamingFairKm,
};
use fairkm_data::{Dataset, Normalization};
use fairkm_shard::{ShardPlan, ShardedFairKm};
use fairkm_synth::planted::{PlantedConfig, PlantedGenerator};
use std::hint::black_box;

/// CI smoke mode: shrink the full-fit groups so the bench finishes in
/// seconds while still exercising every code path and emitting the JSON
/// report.
fn smoke() -> bool {
    std::env::var("FAIRKM_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn workload(n: usize) -> Dataset {
    PlantedGenerator::new(PlantedConfig {
        n_rows: n,
        n_blobs: 5,
        dim: 8,
        n_sensitive_attrs: 3,
        cardinality: 4,
        alignment: 0.8,
        separation: 6.0,
        spread: 1.0,
        seed: 7,
    })
    .generate()
    .dataset
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(if smoke() { 3 } else { 10 });
    let sizes: &[usize] = if smoke() {
        &[250, 500]
    } else {
        &[250, 500, 1000, 2000]
    };
    for &n in sizes {
        let data = workload(n);
        let matrix = data.task_matrix(Normalization::ZScore).unwrap();
        let space = data.sensitive_space().unwrap();

        group.bench_with_input(BenchmarkId::new("kmeans", n), &n, |b, _| {
            b.iter(|| {
                fairkm_baselines::kmeans::KMeans::new(
                    fairkm_baselines::kmeans::KMeansConfig::new(5).with_seed(1),
                )
                .fit(black_box(&matrix))
                .unwrap()
            })
        });

        group.bench_with_input(BenchmarkId::new("zgya", n), &n, |b, _| {
            b.iter(|| {
                fairkm_baselines::zgya::Zgya::new(
                    fairkm_baselines::zgya::ZgyaConfig::new(5, 2.0 * n as f64 / 5.0).with_seed(1),
                )
                .fit(black_box(&matrix), &space.categorical()[0])
                .unwrap()
            })
        });

        group.bench_with_input(BenchmarkId::new("fairkm_incremental", n), &n, |b, _| {
            b.iter(|| {
                FairKm::new(
                    FairKmConfig::new(5)
                        .with_seed(1)
                        .with_lambda(Lambda::Heuristic)
                        .with_max_iters(10),
                )
                .fit(black_box(&data))
                .unwrap()
            })
        });

        // The literal engine is O(|X|²) per pass — bench only the smaller
        // sizes to keep wall-clock sane; the quadratic growth is already
        // unmistakable between 250 and 1000.
        if n <= 1000 {
            group.bench_with_input(BenchmarkId::new("fairkm_literal", n), &n, |b, _| {
                b.iter(|| {
                    FairKm::new(
                        FairKmConfig::new(5)
                            .with_seed(1)
                            .with_lambda(Lambda::Heuristic)
                            .with_delta_engine(DeltaEngine::Literal)
                            .with_max_iters(3),
                    )
                    .fit(black_box(&data))
                    .unwrap()
                })
            });
        }
    }
    group.finish();
}

/// Thread-count sweep of the parallel engine: same seed, same windowed
/// schedule, threads ∈ {1, 2, 4, 8}. Determinism is asserted up front —
/// every thread count must yield the single-thread model bit for bit — so
/// the timings below compare identical computations, not lucky schedules.
fn bench_thread_sweep(c: &mut Criterion) {
    let n: usize = if smoke() { 4_000 } else { 20_000 };
    let data = workload(n);
    let matrix = data.task_matrix(Normalization::ZScore).unwrap();
    let space = data.sensitive_space().unwrap();

    let fit = |threads: usize| {
        MiniBatchFairKm::new(
            FairKmConfig::new(5)
                .with_seed(1)
                .with_lambda(Lambda::Heuristic)
                .with_max_iters(5)
                .with_threads(threads),
            4096,
        )
        .fit_views(&matrix, &space)
        .unwrap()
    };

    let reference = fit(1);
    for threads in [2usize, 4, 8] {
        let model = fit(threads);
        assert_eq!(
            reference.assignments(),
            model.assignments(),
            "thread count {threads} changed the clustering"
        );
        assert_eq!(
            reference.objective().to_bits(),
            model.objective().to_bits(),
            "thread count {threads} changed the objective"
        );
    }

    let mut group = c.benchmark_group("thread_scaling");
    group.sample_size(if smoke() { 2 } else { 10 });
    let sweep: &[usize] = if smoke() { &[1, 2] } else { &[1, 2, 4, 8] };
    for &threads in sweep {
        group.bench_with_input(
            BenchmarkId::new(format!("fairkm_minibatch_{n}"), threads),
            &threads,
            |b, &threads| b.iter(|| black_box(fit(threads))),
        );
    }
    group.finish();
}

/// Cached vs. literal scoring kernels over one full best-move scan of the
/// n=20k planted workload at threads=1 — the per-unit-work comparison the
/// incremental scoring engine is about, isolated from the fit loop. The
/// two kernels are asserted equivalent before any timing, and this group
/// keeps its full n=20k shape even in smoke mode so `BENCH_scaling.json`
/// always carries the tracked comparison.
fn bench_scoring_cache(c: &mut Criterion) {
    const N: usize = 20_000;
    let data = workload(N);
    let matrix = data.task_matrix(Normalization::ZScore).unwrap();
    let space = data.sensitive_space().unwrap();
    let lambda = Lambda::Heuristic.resolve(N, 5);
    let fixture = ScoringFixture::new(&matrix, &space, 5, lambda, 7);

    let cached = fixture.scan_cached();
    let literal = fixture.scan_literal();
    assert!(
        (cached - literal).abs() <= 1e-9 * (1.0 + literal.abs()),
        "scoring kernels diverged: cached {cached} vs literal {literal}"
    );

    let mut group = c.benchmark_group("scoring_cache");
    group.sample_size(if smoke() { 5 } else { 10 });
    group.bench_with_input(BenchmarkId::new("cached", N), &N, |b, _| {
        b.iter(|| black_box(fixture.scan_cached()))
    });
    group.bench_with_input(BenchmarkId::new("literal", N), &N, |b, _| {
        b.iter(|| black_box(fixture.scan_literal()))
    });
    group.finish();
}

/// The committed `scoring_cache → cached/20000` median from
/// `BENCH_scaling.json` next to this crate — the perf baseline the
/// trait-dispatch gate ratchets against. `None` when the file is absent
/// (first bless on a fresh corpus) or doesn't carry the entry.
fn committed_cached_median_ns() -> Option<u64> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_scaling.json");
    let report = std::fs::read_to_string(path).ok()?;
    // The report is emitted by the workspace's own criterion shim with a
    // fixed `"bench": {"median_ns": N, ...}` shape, so positional string
    // scanning is exact here (the vendored serde_json has no parser).
    let entry = report
        .split("\"scoring_cache\"")
        .nth(1)?
        .split("\"cached/20000\"")
        .nth(1)?
        .split("\"median_ns\":")
        .nth(1)?;
    let digits: String = entry
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// The pluggable-objective scoring scan at n=20k, threads=1: Eq. 7 through
/// the `FairnessObjective` trait plus the bounded-representation and both
/// multi-group objectives, all over the same frozen state as the
/// `scoring_cache` group. Before any timing, the Eq. 7 path is gated
/// against the **committed** `scoring_cache` median: the monomorphized
/// dispatch must stay within 2% of the kernel it replaced. Full n=20k
/// shape even in smoke mode, same as `scoring_cache`.
fn bench_objective_dispatch(c: &mut Criterion) {
    const N: usize = 20_000;
    const TOLERANCE_PCT: u64 = 2;
    let data = workload(N);
    let matrix = data.task_matrix(Normalization::ZScore).unwrap();
    let space = data.sensitive_space().unwrap();
    let lambda = Lambda::Heuristic.resolve(N, 5);
    let fixture = |kind| ScoringFixture::with_objective(&matrix, &space, 5, lambda, 7, kind);

    let eq7 = fixture(ObjectiveKind::Representativity);
    if let Some(committed) = committed_cached_median_ns() {
        // Median of enough scans to be robust against scheduler noise on a
        // shared runner; one warm-up scan first, like the bench harness.
        black_box(eq7.scan_cached());
        let mut samples: Vec<u64> = (0..15)
            .map(|_| {
                let start = std::time::Instant::now();
                black_box(eq7.scan_cached());
                start.elapsed().as_nanos() as u64
            })
            .collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let ceiling = committed + committed * TOLERANCE_PCT / 100;
        println!(
            "objective_dispatch gate: eq7 median {median} ns vs committed \
             scoring_cache {committed} ns (ceiling {ceiling} ns)"
        );
        assert!(
            median <= ceiling,
            "trait-dispatched Eq. 7 scan regressed: median {median} ns is more than \
             {TOLERANCE_PCT}% over the committed scoring_cache median {committed} ns"
        );
    }

    let mut group = c.benchmark_group("objective_dispatch");
    group.sample_size(if smoke() { 5 } else { 10 });
    let kinds = [
        ("eq7", ObjectiveKind::Representativity),
        ("bounded", ObjectiveKind::bounded()),
        ("utilitarian", ObjectiveKind::Utilitarian),
        ("egalitarian", ObjectiveKind::Egalitarian),
    ];
    for (label, kind) in kinds {
        let fx = fixture(kind);
        group.bench_with_input(BenchmarkId::new(label, N), &N, |b, _| {
            b.iter(|| black_box(fx.scan_cached()))
        });
    }
    group.finish();
}

/// The coordinator/shard merge path vs. the single-node streaming driver:
/// the same bootstrap → ingest → evict lifecycle once through
/// `StreamingFairKm` and once through `ShardedFairKm` at S ∈ {1, 2, 4}
/// shards (in-process queue, so the timing isolates protocol + ordered
/// merge overhead, not network latency). Bitwise agreement between every
/// leg is asserted before any timing — the group benchmarks identical
/// computations by construction.
fn bench_shard_merge(c: &mut Criterion) {
    let n: usize = if smoke() { 1_200 } else { 6_000 };
    let data = workload(n);
    let boot = n / 2;
    let boot_idx: Vec<usize> = (0..boot).collect();
    let arrivals: Vec<Vec<fairkm_data::Value>> =
        (boot..n).map(|r| data.row_values(r).unwrap()).collect();
    let config = || {
        StreamingConfig::from_base(
            FairKmConfig::new(5)
                .with_seed(1)
                .with_lambda(Lambda::Heuristic)
                .with_max_iters(5),
        )
        .with_drift_threshold(0.03)
    };
    let retain = boot + (n - boot) / 2;

    let run_single = || {
        let mut s =
            StreamingFairKm::bootstrap(data.select_rows(&boot_idx).unwrap(), config()).unwrap();
        for chunk in arrivals.chunks(256) {
            s.ingest(chunk).unwrap();
            if s.live() > retain {
                s.evict_oldest(s.live() - retain).unwrap();
            }
        }
        s.objective()
    };
    let run_sharded = |shards: usize| {
        let mut s = ShardedFairKm::bootstrap(
            data.select_rows(&boot_idx).unwrap(),
            config(),
            shards,
            ShardPlan::DEFAULT_BLOCK,
        )
        .unwrap();
        for chunk in arrivals.chunks(256) {
            s.ingest(chunk).unwrap();
            if s.live() > retain {
                s.evict_oldest(s.live() - retain).unwrap();
            }
        }
        assert!(s.replicas_agree(), "replica drift at {shards} shards");
        s.objective()
    };

    let reference = run_single();
    for shards in [1usize, 2, 4] {
        assert_eq!(
            run_sharded(shards).to_bits(),
            reference.to_bits(),
            "sharded lifecycle diverged at {shards} shards"
        );
    }

    let mut group = c.benchmark_group("shard_merge");
    group.sample_size(if smoke() { 2 } else { 10 });
    group.bench_with_input(BenchmarkId::new("single_node", n), &n, |b, _| {
        b.iter(|| black_box(run_single()))
    });
    for shards in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new(format!("sharded_{n}"), shards),
            &shards,
            |b, &shards| b.iter(|| black_box(run_sharded(shards))),
        );
    }
    group.finish();
}

/// Durability cost through `fairkm-store`: snapshot write and restore of
/// a streamed engine's full serialized state, and WAL append + fsync /
/// suffix replay for journaled ingest batches. The in-memory backend
/// keeps the numbers allocation-and-CRC-bound (no disk latency noise);
/// a write → restore round trip is asserted bitwise before any timing.
fn bench_snapshot_io(c: &mut Criterion) {
    use fairkm_core::persist::{DurableStream, StreamOp};
    use fairkm_store::{DurableStore, SharedMemBackend};

    let n: usize = if smoke() { 1_200 } else { 6_000 };
    let data = workload(n);
    let boot = n / 2;
    let boot_idx: Vec<usize> = (0..boot).collect();
    let arrivals: Vec<Vec<fairkm_data::Value>> =
        (boot..n).map(|r| data.row_values(r).unwrap()).collect();
    let config = || {
        StreamingConfig::from_base(
            FairKmConfig::new(5)
                .with_seed(1)
                .with_lambda(Lambda::Heuristic)
                .with_max_iters(5),
        )
        .with_drift_threshold(0.03)
    };

    let mut stream =
        StreamingFairKm::bootstrap(data.select_rows(&boot_idx).unwrap(), config()).unwrap();
    for chunk in arrivals.chunks(256) {
        stream.ingest(chunk).unwrap();
    }
    let snapshot = stream.to_snapshot_bytes();

    // Parity gate: restoring the written snapshot reproduces the bytes.
    {
        let disk = SharedMemBackend::new();
        let (mut store, _) = DurableStore::open(disk.clone()).unwrap();
        store.snapshot(&snapshot).unwrap();
        let (restored, _) = DurableStream::open(disk, Some(1), None).unwrap();
        assert_eq!(
            restored.stream().to_snapshot_bytes(),
            snapshot,
            "snapshot round trip drifted"
        );
    }

    // Replay fixture: bootstrap snapshot + the whole arrival stream
    // journaled as 32-row ingest records.
    let replay_disk = SharedMemBackend::new();
    let replay_ops = arrivals.chunks(32).count();
    {
        let boot_stream =
            StreamingFairKm::bootstrap(data.select_rows(&boot_idx).unwrap(), config()).unwrap();
        let (mut store, _) = DurableStore::open(replay_disk.clone()).unwrap();
        store.snapshot(&boot_stream.to_snapshot_bytes()).unwrap();
        for chunk in arrivals.chunks(32) {
            store
                .append(&StreamOp::Ingest(chunk.to_vec()).to_bytes())
                .unwrap();
        }
        store.sync().unwrap();
    }
    let restore_disk = SharedMemBackend::new();
    {
        let (mut store, _) = DurableStore::open(restore_disk.clone()).unwrap();
        store.snapshot(&snapshot).unwrap();
    }
    let op_bytes = StreamOp::Ingest(arrivals[..32.min(arrivals.len())].to_vec()).to_bytes();

    let mut group = c.benchmark_group("snapshot_io");
    group.sample_size(if smoke() { 3 } else { 10 });
    group.bench_with_input(BenchmarkId::new("snapshot_write", n), &n, |b, _| {
        b.iter(|| {
            let (mut store, _) = DurableStore::open(SharedMemBackend::new()).unwrap();
            store.snapshot(black_box(&snapshot)).unwrap();
            black_box(store);
        })
    });
    group.bench_with_input(BenchmarkId::new("snapshot_restore", n), &n, |b, _| {
        b.iter(|| black_box(DurableStream::open(restore_disk.clone(), Some(1), None).unwrap()))
    });
    group.bench_with_input(BenchmarkId::new("wal_append_fsync", 32), &n, |b, _| {
        let (mut store, _) = DurableStore::open(SharedMemBackend::new()).unwrap();
        store.snapshot(&snapshot).unwrap();
        b.iter(|| {
            store.append(black_box(&op_bytes)).unwrap();
            store.sync().unwrap();
        })
    });
    group.bench_with_input(
        BenchmarkId::new("wal_replay", replay_ops),
        &replay_ops,
        |b, _| {
            b.iter(|| black_box(DurableStream::open(replay_disk.clone(), Some(1), None).unwrap()))
        },
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_scaling,
    bench_thread_sweep,
    bench_scoring_cache,
    bench_objective_dispatch,
    bench_shard_merge,
    bench_snapshot_io
);
criterion_main!(benches);
