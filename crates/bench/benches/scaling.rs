//! Runtime scaling benches backing the paper's §4.3.1 complexity analysis:
//!
//! * FairKM with the **incremental** δ engine scales ~linearly in |X| per
//!   iteration (O(|X|·k·(|N| + |S|m)));
//! * FairKM with the paper's **literal** Eq. 12/14 engine is quadratic in
//!   |X| — the cost the paper's own analysis assigns to the method;
//! * K-Means and ZGYA are the baseline cost anchors;
//! * the **thread sweep** measures the parallel execution engine on the
//!   n=20k planted workload under the windowed mini-batch schedule, after
//!   asserting that every thread count produces a bitwise-identical model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fairkm_core::{DeltaEngine, FairKm, FairKmConfig, Lambda, MiniBatchFairKm};
use fairkm_data::{Dataset, Normalization};
use fairkm_synth::planted::{PlantedConfig, PlantedGenerator};
use std::hint::black_box;

fn workload(n: usize) -> Dataset {
    PlantedGenerator::new(PlantedConfig {
        n_rows: n,
        n_blobs: 5,
        dim: 8,
        n_sensitive_attrs: 3,
        cardinality: 4,
        alignment: 0.8,
        separation: 6.0,
        spread: 1.0,
        seed: 7,
    })
    .generate()
    .dataset
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    for &n in &[250usize, 500, 1000, 2000] {
        let data = workload(n);
        let matrix = data.task_matrix(Normalization::ZScore).unwrap();
        let space = data.sensitive_space().unwrap();

        group.bench_with_input(BenchmarkId::new("kmeans", n), &n, |b, _| {
            b.iter(|| {
                fairkm_baselines::kmeans::KMeans::new(
                    fairkm_baselines::kmeans::KMeansConfig::new(5).with_seed(1),
                )
                .fit(black_box(&matrix))
                .unwrap()
            })
        });

        group.bench_with_input(BenchmarkId::new("zgya", n), &n, |b, _| {
            b.iter(|| {
                fairkm_baselines::zgya::Zgya::new(
                    fairkm_baselines::zgya::ZgyaConfig::new(5, 2.0 * n as f64 / 5.0).with_seed(1),
                )
                .fit(black_box(&matrix), &space.categorical()[0])
                .unwrap()
            })
        });

        group.bench_with_input(BenchmarkId::new("fairkm_incremental", n), &n, |b, _| {
            b.iter(|| {
                FairKm::new(
                    FairKmConfig::new(5)
                        .with_seed(1)
                        .with_lambda(Lambda::Heuristic)
                        .with_max_iters(10),
                )
                .fit(black_box(&data))
                .unwrap()
            })
        });

        // The literal engine is O(|X|²) per pass — bench only the smaller
        // sizes to keep wall-clock sane; the quadratic growth is already
        // unmistakable between 250 and 1000.
        if n <= 1000 {
            group.bench_with_input(BenchmarkId::new("fairkm_literal", n), &n, |b, _| {
                b.iter(|| {
                    FairKm::new(
                        FairKmConfig::new(5)
                            .with_seed(1)
                            .with_lambda(Lambda::Heuristic)
                            .with_delta_engine(DeltaEngine::Literal)
                            .with_max_iters(3),
                    )
                    .fit(black_box(&data))
                    .unwrap()
                })
            });
        }
    }
    group.finish();
}

/// Thread-count sweep of the parallel engine: same seed, same windowed
/// schedule, threads ∈ {1, 2, 4, 8}. Determinism is asserted up front —
/// every thread count must yield the single-thread model bit for bit — so
/// the timings below compare identical computations, not lucky schedules.
fn bench_thread_sweep(c: &mut Criterion) {
    const N: usize = 20_000;
    let data = workload(N);
    let matrix = data.task_matrix(Normalization::ZScore).unwrap();
    let space = data.sensitive_space().unwrap();

    let fit = |threads: usize| {
        MiniBatchFairKm::new(
            FairKmConfig::new(5)
                .with_seed(1)
                .with_lambda(Lambda::Heuristic)
                .with_max_iters(5)
                .with_threads(threads),
            4096,
        )
        .fit_views(&matrix, &space)
        .unwrap()
    };

    let reference = fit(1);
    for threads in [2usize, 4, 8] {
        let model = fit(threads);
        assert_eq!(
            reference.assignments(),
            model.assignments(),
            "thread count {threads} changed the clustering"
        );
        assert_eq!(
            reference.objective().to_bits(),
            model.objective().to_bits(),
            "thread count {threads} changed the objective"
        );
    }

    let mut group = c.benchmark_group("thread_scaling");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("fairkm_minibatch_20k", threads),
            &threads,
            |b, &threads| b.iter(|| black_box(fit(threads))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling, bench_thread_sweep);
criterion_main!(benches);
