//! Serving-layer latency benches: end-to-end request latency through a
//! live `fairkm-serve` endpoint (loopback TCP, HTTP/1.1 keep-alive), by
//! request class:
//!
//! * **read_assign** — the lock-free read path: one probe row scored
//!   against the published [`ServingView`] snapshot. No writer lock, no
//!   journal; this is the floor the serving layer puts under reads even
//!   while writes are in flight.
//! * **write_ingest** — the journal-then-ack write path: one arrival row
//!   applied to the engine and appended (with checksum) to the WAL of an
//!   in-memory backend before the 200 is written. Subtract `read_assign`
//!   to see what durability costs per acked write.
//! * **mixed_80_20** — four reads to one write, the shape of a serving
//!   workload; its p99 shows how much write tail leaks into read latency
//!   on one connection.
//!
//! The JSON report records `median_ns` (p50) and `p99_ns` per class —
//! `BENCH_serving.json` is the committed reference. Set
//! `FAIRKM_BENCH_SMOKE=1` for the CI smoke variant (fewer samples).
//!
//! [`ServingView`]: fairkm_core::ServingView

use criterion::{criterion_group, criterion_main, Criterion};
use fairkm_core::persist::DurableStream;
use fairkm_core::{FairKmConfig, Lambda, StreamingConfig};
use fairkm_data::Value;
use fairkm_serve::http::{read_response, Conn, Limits};
use fairkm_serve::{encode_rows, serve, Registry, ServerConfig, ServerHandle};
use fairkm_store::SyncMemBackend;
use fairkm_synth::planted::{PlantedConfig, PlantedGenerator};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;

fn smoke() -> bool {
    std::env::var("FAIRKM_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Stand up a one-tenant server over an in-memory durable backend (WAL
/// checksumming and framing without disk noise) and return the arrival
/// rows the write benches feed it.
fn start_server() -> (ServerHandle, String, Vec<Vec<Value>>) {
    let dataset = PlantedGenerator::new(PlantedConfig {
        n_rows: 512,
        n_blobs: 5,
        dim: 8,
        n_sensitive_attrs: 3,
        cardinality: 4,
        alignment: 0.8,
        separation: 6.0,
        spread: 1.0,
        seed: 7,
    })
    .generate()
    .dataset;
    let boot_idx: Vec<usize> = (0..256).collect();
    let boot = dataset.select_rows(&boot_idx).expect("valid rows");
    let arrivals: Vec<Vec<Value>> = (256..dataset.n_rows())
        .map(|r| dataset.row_values(r).expect("valid row"))
        .collect();
    let config = StreamingConfig::from_base(
        FairKmConfig::new(5)
            .with_seed(7)
            .with_threads(1)
            .with_lambda(Lambda::Heuristic),
    );
    let stream = DurableStream::create(SyncMemBackend::new(), boot, config, None)
        .expect("create durable stream");
    let registry: Registry<SyncMemBackend> = Registry::new(64);
    registry.register("bench", stream).expect("register tenant");
    let handle = serve("127.0.0.1:0", ServerConfig::default(), Arc::new(registry))
        .expect("bind loopback server");
    let addr = handle.addr().to_string();
    (handle, addr, arrivals)
}

/// One persistent keep-alive connection, so each sample times a request
/// round trip and not a TCP handshake.
struct KeepAlive {
    conn: Conn<TcpStream>,
    limits: Limits,
}

impl KeepAlive {
    fn connect(addr: &str) -> Self {
        let stream = TcpStream::connect(addr).expect("connect to bench server");
        stream.set_nodelay(true).expect("set TCP_NODELAY");
        KeepAlive {
            conn: Conn::new(stream),
            limits: Limits::default(),
        }
    }

    fn request(&mut self, path: &str, body: &[u8]) -> Vec<u8> {
        let head = format!(
            "POST {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        let w = self.conn.get_mut();
        w.write_all(head.as_bytes()).expect("write request head");
        w.write_all(body).expect("write request body");
        w.flush().expect("flush request");
        let (status, _headers, resp) =
            read_response(&mut self.conn, &self.limits).expect("read response");
        assert_eq!(status, 200, "bench request must succeed");
        resp
    }
}

fn serve_latency(c: &mut Criterion) {
    let (handle, addr, arrivals) = start_server();
    let mut group = c.benchmark_group("serve_latency");
    group.sample_size(if smoke() { 30 } else { 300 });

    let probe = encode_rows(&arrivals[..1]);
    let mut conn = KeepAlive::connect(&addr);
    group.bench_function("read_assign", |b| {
        b.iter(|| conn.request("/tenants/bench/assign", &probe))
    });

    let mut i = 0usize;
    group.bench_function("write_ingest", |b| {
        b.iter(|| {
            let body = encode_rows(std::slice::from_ref(&arrivals[i % arrivals.len()]));
            i += 1;
            conn.request("/tenants/bench/ingest", &body)
        })
    });

    let mut j = 0usize;
    group.bench_function("mixed_80_20", |b| {
        b.iter(|| {
            j += 1;
            if j.is_multiple_of(5) {
                let body = encode_rows(std::slice::from_ref(&arrivals[j % arrivals.len()]));
                conn.request("/tenants/bench/ingest", &body)
            } else {
                conn.request("/tenants/bench/assign", &probe)
            }
        })
    });
    group.finish();
    drop(conn);
    handle.shutdown();
}

criterion_group!(benches, serve_latency);
criterion_main!(benches);
