//! Fair k-center data summarization (Kleindessner, Awasthi, Morgenstern
//! 2019 — reference \[13\] in the paper’s Table 1: "the clustering should produce
//! pre-specified number of cluster centers belonging to each specific
//! protected class").
//!
//! Selects `k` representative points (the *summary*) such that each
//! protected group contributes a prescribed number of representatives —
//! e.g. a 70:30 male:female dataset summarized by 7 male and 3 female
//! exemplars. Implemented as Gonzalez's greedy farthest-point k-center
//! heuristic with per-group quotas: each round picks the point farthest
//! from the current summary whose group still has quota. Quota-free
//! Gonzalez is a 2-approximation; the quota constraint keeps the same
//! greedy guarantee per admissible candidate set.

use crate::error::BaselineError;
use fairkm_data::{sq_euclidean, NumericMatrix, Partition, SensitiveCat};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`FairKCenter`].
#[derive(Debug, Clone)]
pub struct FairKCenterConfig {
    /// Representatives required per attribute value (indexed by value).
    pub quotas: Vec<usize>,
    /// Seed for the initial center choice.
    pub seed: u64,
}

impl FairKCenterConfig {
    /// Explicit quotas.
    pub fn new(quotas: Vec<usize>, seed: u64) -> Self {
        Self { quotas, seed }
    }

    /// Quotas proportional to the dataset distribution of `attr` (largest
    /// remainder method), totaling exactly `k` — the "fair summary"
    /// setting of reference \[13\].
    pub fn proportional(k: usize, attr: &SensitiveCat, seed: u64) -> Self {
        let dist = attr.dataset_dist();
        let mut quotas: Vec<usize> = dist
            .iter()
            .map(|p| (p * k as f64).floor() as usize)
            .collect();
        let assigned: usize = quotas.iter().sum();
        // Distribute the remainder by largest fractional part.
        let mut remainders: Vec<(usize, f64)> = dist
            .iter()
            .enumerate()
            .map(|(i, p)| (i, p * k as f64 - quotas[i] as f64))
            .collect();
        remainders.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        for &(i, _) in remainders.iter().take(k - assigned) {
            quotas[i] += 1;
        }
        Self { quotas, seed }
    }
}

/// A fair summary plus the induced clustering.
#[derive(Debug, Clone)]
pub struct KCenterModel {
    /// Row indices of the chosen representatives, in selection order.
    pub centers: Vec<usize>,
    /// Every point assigned to its nearest representative.
    pub partition: Partition,
    /// k-center objective: the largest point-to-nearest-center distance
    /// (Euclidean).
    pub radius: f64,
}

/// Greedy fair k-center.
#[derive(Debug, Clone)]
pub struct FairKCenter {
    config: FairKCenterConfig,
}

impl FairKCenter {
    /// New instance with the given configuration.
    pub fn new(config: FairKCenterConfig) -> Self {
        Self { config }
    }

    /// Select the summary and cluster around it.
    pub fn fit(
        &self,
        matrix: &NumericMatrix,
        attr: &SensitiveCat,
    ) -> Result<KCenterModel, BaselineError> {
        let n = matrix.rows();
        if n == 0 {
            return Err(BaselineError::EmptyInput);
        }
        let quotas = &self.config.quotas;
        if quotas.len() != attr.cardinality() {
            return Err(BaselineError::NotBinary {
                attribute: attr.name().to_string(),
                cardinality: attr.cardinality(),
            });
        }
        let k: usize = quotas.iter().sum();
        if k == 0 || k > n {
            return Err(BaselineError::InvalidK { k, n });
        }
        // Per-group availability check.
        let mut group_counts = vec![0usize; attr.cardinality()];
        for &v in attr.values() {
            group_counts[v as usize] += 1;
        }
        for (g, (&quota, &have)) in quotas.iter().zip(&group_counts).enumerate() {
            if quota > have {
                return Err(BaselineError::InfeasibleBalance {
                    minority: have,
                    majority: quota,
                    t: g,
                });
            }
        }

        let mut remaining = quotas.clone();
        let mut centers: Vec<usize> = Vec::with_capacity(k);
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        // First center: random point among groups with quota.
        let first = loop {
            let candidate = rng.gen_range(0..n);
            if remaining[attr.value(candidate) as usize] > 0 {
                break candidate;
            }
        };
        centers.push(first);
        remaining[attr.value(first) as usize] -= 1;

        // dist2[i] = squared distance to the nearest chosen center.
        let mut dist2: Vec<f64> = (0..n)
            .map(|i| sq_euclidean(matrix.row(i), matrix.row(first)))
            .collect();
        while centers.len() < k {
            let next = (0..n)
                .filter(|&i| remaining[attr.value(i) as usize] > 0 && !centers.contains(&i))
                .max_by(|&a, &b| dist2[a].total_cmp(&dist2[b]))
                .expect("quota feasibility checked above");
            centers.push(next);
            remaining[attr.value(next) as usize] -= 1;
            for (i, d) in dist2.iter_mut().enumerate() {
                *d = d.min(sq_euclidean(matrix.row(i), matrix.row(next)));
            }
        }

        // Assign to nearest center; the radius falls out of dist2.
        let mut assignments = vec![0usize; n];
        for (i, assignment) in assignments.iter_mut().enumerate() {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (c, &center) in centers.iter().enumerate() {
                let d = sq_euclidean(matrix.row(i), matrix.row(center));
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            *assignment = best;
        }
        let radius = dist2.iter().copied().fold(0.0f64, f64::max).sqrt();
        Ok(KCenterModel {
            centers,
            partition: Partition::new(assignments, k).expect("assignments < k"),
            radius,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairkm_data::AttrId;

    fn matrix(rows: &[&[f64]]) -> NumericMatrix {
        let cols = rows[0].len();
        let data: Vec<f64> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        let names = (0..cols).map(|i| format!("c{i}")).collect();
        NumericMatrix::from_parts(data, rows.len(), cols, names)
    }

    fn skewed() -> (NumericMatrix, SensitiveCat) {
        // 7 'a' points spread widely, 3 'b' points in one corner.
        let rows: Vec<Vec<f64>> = vec![
            vec![0.0],
            vec![10.0],
            vec![20.0],
            vec![30.0],
            vec![40.0],
            vec![50.0],
            vec![60.0],
            vec![100.0],
            vec![100.5],
            vec![101.0],
        ];
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let vals = vec![0, 0, 0, 0, 0, 0, 0, 1, 1, 1];
        (
            matrix(&refs),
            SensitiveCat::new(AttrId(0), "g".into(), vec!["a".into(), "b".into()], vals),
        )
    }

    #[test]
    fn quotas_are_respected() {
        let (m, attr) = skewed();
        let model = FairKCenter::new(FairKCenterConfig::new(vec![2, 2], 1))
            .fit(&m, &attr)
            .unwrap();
        let mut per_group = [0usize; 2];
        for &c in &model.centers {
            per_group[attr.value(c) as usize] += 1;
        }
        assert_eq!(per_group, [2, 2]);
        assert_eq!(model.centers.len(), 4);
        assert_eq!(model.partition.n_points(), 10);
    }

    #[test]
    fn proportional_quotas_mirror_the_dataset() {
        let (_, attr) = skewed();
        let cfg = FairKCenterConfig::proportional(10, &attr, 0);
        assert_eq!(cfg.quotas, vec![7, 3]);
        let cfg5 = FairKCenterConfig::proportional(5, &attr, 0);
        assert_eq!(cfg5.quotas.iter().sum::<usize>(), 5);
        assert!(cfg5.quotas[0] > cfg5.quotas[1]);
    }

    #[test]
    fn radius_covers_every_point() {
        let (m, attr) = skewed();
        let model = FairKCenter::new(FairKCenterConfig::new(vec![3, 1], 2))
            .fit(&m, &attr)
            .unwrap();
        for i in 0..m.rows() {
            let nearest = model
                .centers
                .iter()
                .map(|&c| sq_euclidean(m.row(i), m.row(c)).sqrt())
                .fold(f64::INFINITY, f64::min);
            assert!(nearest <= model.radius + 1e-9);
        }
    }

    #[test]
    fn infeasible_quota_rejected() {
        let (m, attr) = skewed();
        // only 3 'b' points exist, quota of 4 is infeasible
        assert!(matches!(
            FairKCenter::new(FairKCenterConfig::new(vec![0, 4], 0)).fit(&m, &attr),
            Err(BaselineError::InfeasibleBalance { .. })
        ));
    }

    #[test]
    fn quota_length_must_match_cardinality() {
        let (m, attr) = skewed();
        assert!(FairKCenter::new(FairKCenterConfig::new(vec![1, 1, 1], 0))
            .fit(&m, &attr)
            .is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let (m, attr) = skewed();
        let a = FairKCenter::new(FairKCenterConfig::new(vec![2, 1], 9))
            .fit(&m, &attr)
            .unwrap();
        let b = FairKCenter::new(FairKCenterConfig::new(vec![2, 1], 9))
            .fit(&m, &attr)
            .unwrap();
        assert_eq!(a.centers, b.centers);
    }

    #[test]
    fn greedy_spreads_centers() {
        // With quota (3,0) on the wide group, greedy must span the range:
        // the three 'a' centers cannot all be adjacent.
        let (m, attr) = skewed();
        let model = FairKCenter::new(FairKCenterConfig::new(vec![3, 0], 4))
            .fit(&m, &attr)
            .unwrap();
        let mut xs: Vec<f64> = model.centers.iter().map(|&c| m.row(c)[0]).collect();
        xs.sort_by(f64::total_cmp);
        assert!(xs[2] - xs[0] > 30.0, "centers too close: {xs:?}");
    }
}
