//! Fairlet decomposition (Chierichetti et al., NIPS 2017) — the
//! space-transformation fair-clustering family from §2.1 of the paper,
//! provided as an additional comparator.
//!
//! For a **binary** sensitive attribute, a `(1, t)`-fairlet decomposition
//! groups the points into *fairlets*, each containing exactly one point of
//! the minority color and between 1 and `t` points of the majority color,
//! minimizing the total distance from majority points to their fairlet's
//! minority point (the fairlet center). Clustering is then performed on the
//! fairlet centers, and every point inherits the cluster of its center —
//! so every cluster's balance is at least `1/t`.
//!
//! The optimal decomposition is computed exactly as a min-cost flow on the
//! `fairkm-flow` substrate:
//!
//! ```text
//! source ──(cap 1, cost −M)──▶ minority_i   (forces ≥ 1 majority each)
//! source ──(cap t−1, cost 0)──▶ minority_i
//! minority_i ──(cap 1, cost dist(i,j))──▶ majority_j
//! majority_j ──(cap 1, cost 0)──▶ sink
//! ```
//!
//! with `M` larger than any achievable total distance, so every minority
//! point is used as a center before any center takes a second majority
//! point. Feasibility requires `|minority| ≤ |majority| ≤ t·|minority|`.

use crate::error::BaselineError;
use crate::kmeans::{KMeans, KMeansConfig};
use fairkm_data::{NumericMatrix, Partition, SensitiveCat};
use fairkm_flow::MinCostFlow;

/// Configuration for [`FairletDecomposer`].
#[derive(Debug, Clone)]
pub struct FairletConfig {
    /// Maximum majority points per fairlet (`t ≥ 1`); the resulting
    /// clusters have balance ≥ `1/t`.
    pub t: usize,
}

impl FairletConfig {
    /// Balance parameter `t`.
    pub fn new(t: usize) -> Self {
        assert!(t >= 1, "t must be at least 1");
        Self { t }
    }
}

/// One fairlet: a minority-color center and its assigned majority points.
#[derive(Debug, Clone, PartialEq)]
pub struct Fairlet {
    /// Row index of the minority point acting as the fairlet center.
    pub center: usize,
    /// Row indices of all members (center included).
    pub members: Vec<usize>,
}

/// The result of a decomposition.
#[derive(Debug, Clone)]
pub struct FairletDecomposition {
    /// All fairlets; together they cover every row exactly once.
    pub fairlets: Vec<Fairlet>,
    /// Total Euclidean distance from majority points to their centers.
    pub cost: f64,
}

/// Exact `(1, t)`-fairlet decomposition via min-cost flow.
#[derive(Debug, Clone)]
pub struct FairletDecomposer {
    config: FairletConfig,
}

impl FairletDecomposer {
    /// New decomposer with the given balance parameter.
    pub fn new(config: FairletConfig) -> Self {
        Self { config }
    }

    /// Decompose the dataset into fairlets over a binary attribute.
    pub fn decompose(
        &self,
        matrix: &NumericMatrix,
        attr: &SensitiveCat,
    ) -> Result<FairletDecomposition, BaselineError> {
        if matrix.rows() == 0 {
            return Err(BaselineError::EmptyInput);
        }
        if attr.cardinality() != 2 {
            return Err(BaselineError::NotBinary {
                attribute: attr.name().to_string(),
                cardinality: attr.cardinality(),
            });
        }
        let mut color0: Vec<usize> = Vec::new();
        let mut color1: Vec<usize> = Vec::new();
        for (i, &v) in attr.values().iter().enumerate() {
            if v == 0 {
                color0.push(i);
            } else {
                color1.push(i);
            }
        }
        let (minority, majority) = if color0.len() <= color1.len() {
            (color0, color1)
        } else {
            (color1, color0)
        };
        let t = self.config.t;
        if minority.is_empty() || majority.len() > t * minority.len() {
            return Err(BaselineError::InfeasibleBalance {
                minority: minority.len(),
                majority: majority.len(),
                t,
            });
        }

        // Pairwise Euclidean distances minority x majority, in the same
        // cached dot-product form as the core scoring engine: row squared
        // norms are materialized once, so each of the |minority|·|majority|
        // pairs costs a single dot product — ‖a−b‖² = ‖a‖² − 2·a·b + ‖b‖²,
        // clamped at 0 against float cancellation before the square root.
        let sqnorm = |r: &[f64]| r.iter().map(|v| v * v).sum::<f64>();
        let min_sqnorm: Vec<f64> = minority.iter().map(|&i| sqnorm(matrix.row(i))).collect();
        let maj_sqnorm: Vec<f64> = majority.iter().map(|&j| sqnorm(matrix.row(j))).collect();
        let dist: Vec<Vec<f64>> = minority
            .iter()
            .zip(&min_sqnorm)
            .map(|(&mi, &na)| {
                let a = matrix.row(mi);
                majority
                    .iter()
                    .zip(&maj_sqnorm)
                    .map(|(&mj, &nb)| {
                        let dot: f64 = a.iter().zip(matrix.row(mj)).map(|(x, y)| x * y).sum();
                        (na - 2.0 * dot + nb).max(0.0).sqrt()
                    })
                    .collect()
            })
            .collect();
        let max_d = dist
            .iter()
            .flat_map(|r| r.iter().copied())
            .fold(0.0f64, f64::max);
        let big_m = (max_d + 1.0) * (matrix.rows() as f64 + 1.0);

        // Flow network.
        let s = 0;
        let min0 = 1;
        let maj0 = min0 + minority.len();
        let sink = maj0 + majority.len();
        let mut g = MinCostFlow::new(sink + 1);
        for (a, _) in minority.iter().enumerate() {
            g.add_edge(s, min0 + a, 1, -big_m);
            if t > 1 {
                g.add_edge(s, min0 + a, (t - 1) as i64, 0.0);
            }
        }
        let mut mid = vec![Vec::with_capacity(majority.len()); minority.len()];
        for (a, row) in dist.iter().enumerate() {
            for (b, &d) in row.iter().enumerate() {
                mid[a].push(g.add_edge(min0 + a, maj0 + b, 1, d));
            }
        }
        for (b, _) in majority.iter().enumerate() {
            g.add_edge(maj0 + b, sink, 1, 0.0);
        }
        let result = g
            .solve(s, sink, majority.len() as i64)
            .expect("fairlet network is well-formed");
        debug_assert_eq!(
            result.flow,
            majority.len() as i64,
            "feasibility checked above"
        );

        // Extract fairlets; undo the -M incentives in the reported cost.
        let mut fairlets: Vec<Fairlet> = minority
            .iter()
            .map(|&c| Fairlet {
                center: c,
                members: vec![c],
            })
            .collect();
        let mut cost = 0.0;
        for (a, edges) in mid.iter().enumerate() {
            for (b, &e) in edges.iter().enumerate() {
                if g.edge_flow(e) > 0 {
                    fairlets[a].members.push(majority[b]);
                    cost += dist[a][b];
                }
            }
        }
        Ok(FairletDecomposition { fairlets, cost })
    }

    /// Full fairlet pipeline: decompose, run K-Means over the fairlet
    /// centers, and assign every point the cluster of its fairlet center.
    pub fn cluster(
        &self,
        matrix: &NumericMatrix,
        attr: &SensitiveCat,
        kmeans: KMeansConfig,
    ) -> Result<(Partition, FairletDecomposition), BaselineError> {
        let decomposition = self.decompose(matrix, attr)?;
        let centers: Vec<usize> = decomposition.fairlets.iter().map(|f| f.center).collect();
        let dim = matrix.cols();
        let mut data = Vec::with_capacity(centers.len() * dim);
        for &c in &centers {
            data.extend_from_slice(matrix.row(c));
        }
        let center_matrix =
            NumericMatrix::from_parts(data, centers.len(), dim, matrix.col_names().to_vec());
        let k = kmeans.k;
        let model = KMeans::new(kmeans).fit(&center_matrix)?;
        let mut assignments = vec![0usize; matrix.rows()];
        for (fi, fairlet) in decomposition.fairlets.iter().enumerate() {
            let cluster = model.partition.assignment(fi);
            for &m in &fairlet.members {
                assignments[m] = cluster;
            }
        }
        let partition = Partition::new(assignments, k).expect("assignments < k");
        Ok((partition, decomposition))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairkm_data::{sq_euclidean, AttrId};

    fn matrix(rows: &[&[f64]]) -> NumericMatrix {
        let cols = rows[0].len();
        let data: Vec<f64> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        let names = (0..cols).map(|i| format!("c{i}")).collect();
        NumericMatrix::from_parts(data, rows.len(), cols, names)
    }

    fn attr(values: Vec<u32>) -> SensitiveCat {
        SensitiveCat::new(AttrId(0), "g".into(), vec!["a".into(), "b".into()], values)
    }

    #[test]
    fn pairs_up_balanced_binary_data() {
        // 2 minority at x=0,10; 2 majority at x=0.1,10.1 — obvious pairing.
        let m = matrix(&[&[0.0], &[10.0], &[0.1], &[10.1]]);
        let a = attr(vec![0, 0, 1, 1]);
        let d = FairletDecomposer::new(FairletConfig::new(1))
            .decompose(&m, &a)
            .unwrap();
        assert_eq!(d.fairlets.len(), 2);
        assert!((d.cost - 0.2).abs() < 1e-9);
        for f in &d.fairlets {
            assert_eq!(f.members.len(), 2);
        }
    }

    #[test]
    fn every_point_covered_exactly_once() {
        let m = matrix(&[&[0.0], &[1.0], &[2.0], &[3.0], &[4.0], &[5.0]]);
        let a = attr(vec![0, 1, 1, 0, 1, 1]);
        let d = FairletDecomposer::new(FairletConfig::new(2))
            .decompose(&m, &a)
            .unwrap();
        let mut seen = [false; 6];
        for f in &d.fairlets {
            for &p in &f.members {
                assert!(!seen[p], "point {p} covered twice");
                seen[p] = true;
            }
            // 1 minority + 1..=2 majority
            assert!(f.members.len() >= 2 && f.members.len() <= 3);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn infeasible_balance_rejected() {
        let m = matrix(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let a = attr(vec![0, 1, 1, 1]); // 1 minority, 3 majority, t = 2
        assert!(matches!(
            FairletDecomposer::new(FairletConfig::new(2)).decompose(&m, &a),
            Err(BaselineError::InfeasibleBalance { .. })
        ));
    }

    #[test]
    fn non_binary_attribute_rejected() {
        let m = matrix(&[&[0.0]]);
        let a = SensitiveCat::new(
            AttrId(0),
            "g".into(),
            vec!["a".into(), "b".into(), "c".into()],
            vec![0],
        );
        assert!(matches!(
            FairletDecomposer::new(FairletConfig::new(1)).decompose(&m, &a),
            Err(BaselineError::NotBinary { .. })
        ));
    }

    #[test]
    fn decomposition_is_cost_optimal_on_small_instance() {
        // minority {0: x=0, 1: x=10}, majority {2: x=1, 3: x=9}.
        // Optimal pairing: 0-2 (1.0) + 1-3 (1.0) = 2.0; the crossed pairing
        // costs 9+9=18.
        let m = matrix(&[&[0.0], &[10.0], &[1.0], &[9.0]]);
        let a = attr(vec![0, 0, 1, 1]);
        let d = FairletDecomposer::new(FairletConfig::new(1))
            .decompose(&m, &a)
            .unwrap();
        assert!((d.cost - 2.0).abs() < 1e-9);
    }

    /// Deterministic multivariate test bed: two loose blobs, colors
    /// interleaved so the pairing is non-trivial.
    fn testbed(n_per_side: usize) -> (NumericMatrix, SensitiveCat) {
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut vals = Vec::new();
        for i in 0..n_per_side {
            let j = i as f64;
            rows.push(vec![j * 0.37, (j * 1.3).sin() * 2.0, j % 5.0]);
            vals.push((i % 2) as u32);
            rows.push(vec![
                20.0 - j * 0.21,
                (j * 0.7).cos() * 3.0,
                (j + 2.0) % 4.0,
            ]);
            vals.push(((i + 1) % 2) as u32);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (matrix(&refs), attr(vals))
    }

    #[test]
    fn cached_kernel_matches_literal_pair_distances() {
        // The decomposition cost is a sum of dot-product-form distances;
        // recomputing it pair-by-pair with the literal ‖a−b‖ must agree to
        // float tolerance, on every chosen (center, member) pair.
        let (m, a) = testbed(12);
        let d = FairletDecomposer::new(FairletConfig::new(2))
            .decompose(&m, &a)
            .unwrap();
        let mut literal = 0.0;
        for f in &d.fairlets {
            for &p in &f.members {
                if p != f.center {
                    literal += sq_euclidean(m.row(f.center), m.row(p)).sqrt();
                }
            }
        }
        assert!(
            (d.cost - literal).abs() <= 1e-9 * (1.0 + literal),
            "cached-kernel cost {} vs literal {}",
            d.cost,
            literal
        );
    }

    #[test]
    fn pipeline_is_deterministic_per_seed() {
        let (m, a) = testbed(10);
        let run = |seed: u64| {
            let (partition, d) = FairletDecomposer::new(FairletConfig::new(2))
                .cluster(&m, &a, KMeansConfig::new(3).with_seed(seed))
                .unwrap();
            (partition.assignments().to_vec(), d.cost.to_bits())
        };
        assert_eq!(run(7), run(7), "same seed, same clustering, bitwise");
        let (assign, _) = run(7);
        assert_eq!(assign.len(), 20);
    }

    #[test]
    fn cluster_pipeline_guarantees_minimum_balance() {
        // Two geometric blobs, each single-colored; t = 1 forces perfectly
        // balanced fairlets, so every output cluster is balanced even
        // though geometry says otherwise.
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut vals = Vec::new();
        for i in 0..8 {
            rows.push(vec![0.0 + 0.1 * i as f64]);
            vals.push(0u32);
        }
        for i in 0..8 {
            rows.push(vec![100.0 + 0.1 * i as f64]);
            vals.push(1u32);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let m = matrix(&refs);
        let a = attr(vals);
        let (partition, _) = FairletDecomposer::new(FairletConfig::new(1))
            .cluster(&m, &a, KMeansConfig::new(2).with_seed(5))
            .unwrap();
        // Every cluster must contain an equal number of each color.
        for members in partition.members() {
            if members.is_empty() {
                continue;
            }
            let ones = members.iter().filter(|&&p| a.value(p) == 1).count();
            assert_eq!(ones * 2, members.len());
        }
    }
}
