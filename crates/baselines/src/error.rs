//! Error type shared by the baseline algorithms.

use std::fmt;

/// Errors raised by baseline clustering algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// `k` was zero or exceeded the number of points.
    InvalidK {
        /// Requested cluster count.
        k: usize,
        /// Number of points available.
        n: usize,
    },
    /// The input matrix has no rows.
    EmptyInput,
    /// An algorithm that needs a binary sensitive attribute received one
    /// with a different cardinality.
    NotBinary {
        /// Attribute name.
        attribute: String,
        /// Its actual cardinality.
        cardinality: usize,
    },
    /// Fairlet decomposition is infeasible: the majority color cannot be
    /// covered with the requested balance.
    InfeasibleBalance {
        /// Points of the minority color.
        minority: usize,
        /// Points of the majority color.
        majority: usize,
        /// Maximum majority points per fairlet.
        t: usize,
    },
    /// An algorithm needing at least one sensitive attribute received none.
    NoSensitiveAttribute,
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::InvalidK { k, n } => {
                write!(f, "k = {k} is invalid for {n} points")
            }
            BaselineError::EmptyInput => write!(f, "input has no rows"),
            BaselineError::NotBinary {
                attribute,
                cardinality,
            } => write!(
                f,
                "attribute `{attribute}` has {cardinality} values; a binary attribute is required"
            ),
            BaselineError::InfeasibleBalance {
                minority,
                majority,
                t,
            } => write!(
                f,
                "infeasible fairlet balance: {majority} majority points cannot be covered by \
                 {minority} fairlets of at most {t} majority points each"
            ),
            BaselineError::NoSensitiveAttribute => {
                write!(f, "at least one sensitive attribute is required")
            }
        }
    }
}

impl std::error::Error for BaselineError {}
