//! # fairkm-baselines — the clustering algorithms FairKM is evaluated against
//!
//! Implements the baselines of §5.3 of the paper, plus one representative of
//! the space-transformation family from §2.1:
//!
//! * [`kmeans`] — Lloyd's K-Means with k-means++ init: the S-blind
//!   **K-Means(N)** reference that upper-bounds cluster coherence and
//!   anchors the DevC/DevO deviation measures;
//! * [`zgya`] — **ZGYA** (Ziko et al. 2019), K-Means with a KL-divergence
//!   fairness penalty for a single multi-valued sensitive attribute — the
//!   paper's primary comparator;
//! * [`fairlet`] — exact `(1, t)`-fairlet decomposition (Chierichetti et
//!   al. 2017) over the `fairkm-flow` min-cost-flow substrate, with a
//!   cluster-over-fairlet-centers pipeline;
//! * [`perturb`] — cluster-perturbation fairness (Bera et al. 2019):
//!   vanilla clustering followed by an exactly-optimal bounded
//!   reassignment (min-cost flow with lower bounds), §2.3's third family;
//! * [`summary`] — fair k-center data summarization (Kleindessner et al.
//!   2019): greedy farthest-point selection under per-group center quotas.
//!
//! All algorithms consume `fairkm-data` views ([`fairkm_data::NumericMatrix`],
//! [`fairkm_data::SensitiveCat`]) and produce [`fairkm_data::Partition`]s, so
//! every metric in `fairkm-metrics` applies uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod fairlet;
pub mod kmeans;
pub mod perturb;
pub mod summary;
pub mod zgya;

pub use error::BaselineError;
