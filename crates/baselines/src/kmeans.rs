//! Lloyd's K-Means with k-means++ initialization — the paper's S-blind
//! baseline "K-Means(N)" (§5.3).

use crate::error::BaselineError;
use fairkm_data::{sq_euclidean, NumericMatrix, Partition};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Centroid initialization strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Init {
    /// k-means++ seeding (D² sampling) — the default.
    #[default]
    KMeansPlusPlus,
    /// k distinct data points chosen uniformly at random (Forgy).
    Random,
}

/// Configuration for [`KMeans`].
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Stop when the objective improves by less than this fraction.
    pub tol: f64,
    /// Initialization strategy.
    pub init: Init,
    /// Seed for initialization.
    pub seed: u64,
}

impl KMeansConfig {
    /// Defaults: k-means++ init, 100 iterations, 1e-6 relative tolerance.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iters: 100,
            tol: 1e-6,
            init: Init::KMeansPlusPlus,
            seed: 0,
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style init override.
    pub fn with_init(mut self, init: Init) -> Self {
        self.init = init;
        self
    }
}

/// A fitted K-Means model.
#[derive(Debug, Clone)]
pub struct KMeansModel {
    /// Final hard assignments.
    pub partition: Partition,
    /// Final centroids (length `k`; empty clusters keep their last
    /// position).
    pub centroids: Vec<Vec<f64>>,
    /// Final within-cluster sum of squared distances (the CO measure).
    pub objective: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
    /// Whether the run stopped on tolerance rather than the iteration cap.
    pub converged: bool,
}

/// Lloyd's algorithm.
#[derive(Debug, Clone)]
pub struct KMeans {
    config: KMeansConfig,
}

impl KMeans {
    /// New instance with the given configuration.
    pub fn new(config: KMeansConfig) -> Self {
        Self { config }
    }

    /// Fit on a dense matrix.
    pub fn fit(&self, matrix: &NumericMatrix) -> Result<KMeansModel, BaselineError> {
        let n = matrix.rows();
        let k = self.config.k;
        if n == 0 {
            return Err(BaselineError::EmptyInput);
        }
        if k == 0 || k > n {
            return Err(BaselineError::InvalidK { k, n });
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut centroids = init_centroids(matrix, k, self.config.init, &mut rng);
        let dim = matrix.cols();

        let mut assignments = vec![0usize; n];
        let mut objective = f64::INFINITY;
        let mut iterations = 0;
        let mut converged = false;

        for iter in 0..self.config.max_iters {
            iterations = iter + 1;
            // Assignment step.
            let mut new_objective = 0.0;
            for (i, row) in matrix.iter_rows().enumerate() {
                let (best, dist) = nearest_centroid(row, &centroids);
                assignments[i] = best;
                new_objective += dist;
            }
            // Update step.
            let mut sums = vec![vec![0.0f64; dim]; k];
            let mut counts = vec![0usize; k];
            for (i, row) in matrix.iter_rows().enumerate() {
                let c = assignments[i];
                counts[c] += 1;
                for (s, v) in sums[c].iter_mut().zip(row) {
                    *s += v;
                }
            }
            // Empty-cluster repair: seize the point farthest from its
            // centroid. Do this before normalizing means.
            for c in 0..k {
                if counts[c] > 0 {
                    continue;
                }
                if let Some(victim) = farthest_point(matrix, &assignments, &centroids, &counts) {
                    let old = assignments[victim];
                    counts[old] -= 1;
                    for (s, v) in sums[old].iter_mut().zip(matrix.row(victim)) {
                        *s -= v;
                    }
                    assignments[victim] = c;
                    counts[c] = 1;
                    sums[c].copy_from_slice(matrix.row(victim));
                }
            }
            for c in 0..k {
                if counts[c] > 0 {
                    let inv = 1.0 / counts[c] as f64;
                    for (ctr, s) in centroids[c].iter_mut().zip(&sums[c]) {
                        *ctr = s * inv;
                    }
                }
            }
            // Convergence on relative objective improvement.
            if objective.is_finite() {
                let improvement = (objective - new_objective) / objective.abs().max(1e-12);
                if improvement.abs() < self.config.tol {
                    converged = true;
                    break;
                }
            }
            objective = new_objective;
        }

        // Final consistent objective for the final centroids/assignments.
        let mut final_objective = 0.0;
        for (i, row) in matrix.iter_rows().enumerate() {
            let (best, dist) = nearest_centroid(row, &centroids);
            assignments[i] = best;
            final_objective += dist;
        }
        Ok(KMeansModel {
            partition: Partition::new(assignments, k).expect("assignments < k"),
            centroids,
            objective: final_objective,
            iterations,
            converged,
        })
    }
}

/// Index and squared distance of the nearest centroid.
#[inline]
pub(crate) fn nearest_centroid(row: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, center) in centroids.iter().enumerate() {
        let d = sq_euclidean(row, center);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// Point farthest from its current centroid among clusters with > 1 member.
fn farthest_point(
    matrix: &NumericMatrix,
    assignments: &[usize],
    centroids: &[Vec<f64>],
    counts: &[usize],
) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, row) in matrix.iter_rows().enumerate() {
        let c = assignments[i];
        if counts[c] <= 1 {
            continue;
        }
        let d = sq_euclidean(row, &centroids[c]);
        if best.is_none_or(|(_, bd)| d > bd) {
            best = Some((i, d));
        }
    }
    best.map(|(i, _)| i)
}

/// Shared initializer, also used by ZGYA and FairKM.
pub(crate) fn init_centroids(
    matrix: &NumericMatrix,
    k: usize,
    init: Init,
    rng: &mut StdRng,
) -> Vec<Vec<f64>> {
    let n = matrix.rows();
    match init {
        Init::Random => {
            // Sample k distinct row indices (Floyd's algorithm would be
            // fancier; n is small relative to memory, so shuffle a prefix).
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = rng.gen_range(i..n);
                idx.swap(i, j);
            }
            idx[..k].iter().map(|&i| matrix.row(i).to_vec()).collect()
        }
        Init::KMeansPlusPlus => {
            let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
            let first = rng.gen_range(0..n);
            centroids.push(matrix.row(first).to_vec());
            let mut dist2: Vec<f64> = (0..n)
                .map(|i| sq_euclidean(matrix.row(i), &centroids[0]))
                .collect();
            while centroids.len() < k {
                let total: f64 = dist2.iter().sum();
                let next = if total <= 0.0 {
                    // All points coincide with chosen centroids; any row works.
                    rng.gen_range(0..n)
                } else {
                    let mut target = rng.gen::<f64>() * total;
                    let mut chosen = n - 1;
                    for (i, &d) in dist2.iter().enumerate() {
                        if target < d {
                            chosen = i;
                            break;
                        }
                        target -= d;
                    }
                    chosen
                };
                centroids.push(matrix.row(next).to_vec());
                let newest = centroids.last().expect("just pushed");
                for (i, d) in dist2.iter_mut().enumerate() {
                    *d = d.min(sq_euclidean(matrix.row(i), newest));
                }
            }
            centroids
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: &[&[f64]]) -> NumericMatrix {
        let cols = rows[0].len();
        let data: Vec<f64> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        let names = (0..cols).map(|i| format!("c{i}")).collect();
        NumericMatrix::from_parts(data, rows.len(), cols, names)
    }

    fn two_blobs() -> NumericMatrix {
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for i in 0..10 {
            rows.push(vec![0.0 + 0.01 * i as f64, 0.0]);
            rows.push(vec![10.0 + 0.01 * i as f64, 10.0]);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        matrix(&refs)
    }

    #[test]
    fn recovers_two_blobs() {
        let m = two_blobs();
        let model = KMeans::new(KMeansConfig::new(2).with_seed(1))
            .fit(&m)
            .unwrap();
        // Points alternate blob membership by construction.
        let a = model.partition.assignment(0);
        for i in 0..m.rows() {
            let expect = if i % 2 == 0 { a } else { 1 - a };
            assert_eq!(model.partition.assignment(i), expect);
        }
        assert!(model.objective < 1.0);
        assert!(model.converged);
    }

    #[test]
    fn invalid_k_rejected() {
        let m = two_blobs();
        assert!(matches!(
            KMeans::new(KMeansConfig::new(0)).fit(&m),
            Err(BaselineError::InvalidK { .. })
        ));
        assert!(matches!(
            KMeans::new(KMeansConfig::new(99)).fit(&m),
            Err(BaselineError::InvalidK { .. })
        ));
    }

    #[test]
    fn deterministic_per_seed() {
        let m = two_blobs();
        let a = KMeans::new(KMeansConfig::new(3).with_seed(7))
            .fit(&m)
            .unwrap();
        let b = KMeans::new(KMeansConfig::new(3).with_seed(7))
            .fit(&m)
            .unwrap();
        assert_eq!(a.partition, b.partition);
        assert_eq!(a.objective, b.objective);
    }

    #[test]
    fn random_init_also_works() {
        let m = two_blobs();
        let model = KMeans::new(KMeansConfig::new(2).with_seed(3).with_init(Init::Random))
            .fit(&m)
            .unwrap();
        assert!(model.objective < 1.0);
    }

    #[test]
    fn no_empty_clusters_on_degenerate_data() {
        // 5 identical points, k = 3: repair must still fill clusters or at
        // minimum keep the partition valid.
        let m = matrix(&[&[1.0], &[1.0], &[1.0], &[1.0], &[1.0]]);
        let model = KMeans::new(KMeansConfig::new(3).with_seed(2))
            .fit(&m)
            .unwrap();
        assert_eq!(model.partition.n_points(), 5);
        assert!(model.objective.abs() < 1e-18);
    }

    #[test]
    fn k_equals_n_gives_zero_objective() {
        let m = matrix(&[&[0.0], &[5.0], &[9.0]]);
        let model = KMeans::new(KMeansConfig::new(3).with_seed(4))
            .fit(&m)
            .unwrap();
        assert!(model.objective.abs() < 1e-18);
        assert_eq!(model.partition.n_non_empty(), 3);
    }

    #[test]
    fn objective_never_increases_with_more_clusters_on_average() {
        let m = two_blobs();
        let o2 = KMeans::new(KMeansConfig::new(2).with_seed(5))
            .fit(&m)
            .unwrap()
            .objective;
        let o4 = KMeans::new(KMeansConfig::new(4).with_seed(5))
            .fit(&m)
            .unwrap()
            .objective;
        assert!(o4 <= o2 + 1e-9);
    }

    #[test]
    fn kmeanspp_spreads_initial_centroids() {
        let m = two_blobs();
        let mut rng = StdRng::seed_from_u64(11);
        let c = init_centroids(&m, 2, Init::KMeansPlusPlus, &mut rng);
        // The two seeds should land in different blobs almost surely.
        assert!((c[0][0] - c[1][0]).abs() > 5.0);
    }
}
