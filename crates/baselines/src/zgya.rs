//! ZGYA — the paper's primary fair-clustering baseline (§5.3).
//!
//! Ziko, Granger, Yuan and Ben Ayed, *"Clustering with Fairness
//! Constraints: A Flexible and Scalable Approach"* (2019), referred to as
//! ZGYA in the FairKM paper, augments K-Means with a KL-divergence fairness
//! penalty for a **single multi-valued** sensitive attribute:
//!
//! ```text
//! E(s) = Σ_p Σ_k s_pk · d_pk  +  λ · Σ_k KL(U ‖ P_k)
//! ```
//!
//! where `s` are soft assignments on the simplex, `U` is the dataset-level
//! group distribution and `P_k(j) = Σ_p s_pk v_jp / Σ_p s_pk` the (soft)
//! group distribution of cluster `k`. Optimization alternates:
//!
//! 1. an inner majorize–minimize loop over `s`: the KL term is linearized
//!    at the current iterate (gradient
//!    `g_pk = −(λ/n_k)(u_{j(p)}/P_{k,j(p)} − 1)`), and the entropic
//!    prox-bound yields the closed-form update
//!    `s_pk ∝ exp(−d_pk − g_pk)` — each point independently, which is what
//!    makes the method scalable;
//! 2. a centroid update from the soft assignments.
//!
//! Final assignments are hardened by `argmax_k s_pk`. The implementation
//! reproduces the qualitative behaviors the FairKM paper reports for ZGYA:
//! much poorer cluster coherence than FairKM, and degradation on
//! high-cardinality attributes (small `P_kj` blows up the KL gradient —
//! cf. native-country in Table 6).

use crate::error::BaselineError;
use crate::kmeans::{init_centroids, Init};
use fairkm_data::{sq_euclidean, NumericMatrix, Partition, SensitiveCat};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Floor for soft counts and probabilities.
const EPS: f64 = 1e-9;

/// Configuration for [`Zgya`].
#[derive(Debug, Clone)]
pub struct ZgyaConfig {
    /// Number of clusters.
    pub k: usize,
    /// Fairness weight λ (the trade-off between `d` and the KL term).
    pub lambda: f64,
    /// Outer (centroid) iterations.
    pub max_outer: usize,
    /// Inner (assignment MM) iterations per outer step.
    pub max_inner: usize,
    /// Inner-loop convergence threshold on `max |Δs|`.
    pub tol: f64,
    /// Centroid initialization.
    pub init: Init,
    /// Seed.
    pub seed: u64,
    /// Run the *raw* closed-form updates of the original formulation:
    /// fresh softmax of `−(d + g)` with an ε-clamped `P_kj` and no
    /// best-energy tracking. This is what a direct transcription of the
    /// method produces; with large λ or high-cardinality attributes it
    /// overshoots and oscillates — precisely the degraded ZGYA behavior
    /// the FairKM paper reports (CO ≈ 10× K-Means, fairness worse than
    /// S-blind clustering on skewed attributes). The default `false`
    /// enables the stabilized solver (Laplace smoothing + normalized
    /// mirror-descent steps + best-energy tracking).
    pub raw_updates: bool,
}

impl ZgyaConfig {
    /// Defaults: 30 outer iterations, 50 inner, tol 1e-4, k-means++.
    pub fn new(k: usize, lambda: f64) -> Self {
        Self {
            k,
            lambda,
            max_outer: 30,
            max_inner: 50,
            tol: 1e-4,
            init: Init::KMeansPlusPlus,
            seed: 0,
            raw_updates: false,
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style raw-update-mode override (see
    /// [`ZgyaConfig::raw_updates`]).
    pub fn with_raw_updates(mut self, raw: bool) -> Self {
        self.raw_updates = raw;
        self
    }
}

/// A fitted ZGYA model.
#[derive(Debug, Clone)]
pub struct ZgyaModel {
    /// Hardened assignments.
    pub partition: Partition,
    /// Final (soft-assignment) centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Hard K-Means objective of the final partition.
    pub objective: f64,
    /// Final fairness penalty `Σ_k KL(U ‖ P_k)` over hard assignments.
    pub kl_term: f64,
    /// Outer iterations executed.
    pub iterations: usize,
}

/// The ZGYA algorithm (single sensitive attribute).
#[derive(Debug, Clone)]
pub struct Zgya {
    config: ZgyaConfig,
}

impl Zgya {
    /// New instance with the given configuration.
    pub fn new(config: ZgyaConfig) -> Self {
        Self { config }
    }

    /// Fit on a matrix and **one** sensitive attribute (the method does not
    /// generalize to several; the paper invokes it once per attribute).
    pub fn fit(
        &self,
        matrix: &NumericMatrix,
        attr: &SensitiveCat,
    ) -> Result<ZgyaModel, BaselineError> {
        let n = matrix.rows();
        let k = self.config.k;
        if n == 0 {
            return Err(BaselineError::EmptyInput);
        }
        if k == 0 || k > n {
            return Err(BaselineError::InvalidK { k, n });
        }
        assert_eq!(
            attr.values().len(),
            n,
            "sensitive attribute must cover the matrix rows"
        );
        let u = attr.dataset_dist();
        let t = attr.cardinality();
        let values = attr.values();
        let lambda = self.config.lambda;

        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut centroids = init_centroids(matrix, k, self.config.init, &mut rng);
        let dim = matrix.cols();

        // Soft assignments, row-major n x k.
        let mut s = vec![0.0f64; n * k];
        let mut s_next = vec![0.0f64; n * k];
        let mut d = vec![0.0f64; n * k];
        let mut hard = vec![usize::MAX; n];
        let mut iterations = 0;

        for outer in 0..self.config.max_outer {
            iterations = outer + 1;
            // Distances to current centroids.
            for (i, row) in matrix.iter_rows().enumerate() {
                for (c, center) in centroids.iter().enumerate() {
                    d[i * k + c] = sq_euclidean(row, center);
                }
            }
            if outer == 0 {
                // Initialize s as a *tempered* softmax of −d: dividing by
                // the mean distance keeps the initial assignments soft so
                // the fairness gradient can act (a saturated softmax starts
                // in a flat region of s-space).
                let mean_d = d.iter().sum::<f64>() / d.len() as f64;
                let temp = mean_d.max(EPS);
                for i in 0..n {
                    softmax_into(&d[i * k..(i + 1) * k], temp, &mut s[i * k..(i + 1) * k]);
                }
            }

            // Inner MM loop on assignments. Convergence is checked on the
            // soft objective E(s): when the softmax saturates, probability
            // deltas are tiny long before the iterate has stopped moving in
            // log space, so a Δs test would fire spuriously.
            let mut prev_energy = f64::INFINITY;
            let mut best_energy = f64::INFINITY;
            let mut s_best = s.clone();
            let mut calm_streak = 0usize;
            for inner in 0..self.config.max_inner {
                // Soft cluster masses and group distributions.
                let mut n_k = vec![0.0f64; k];
                let mut p_kj = vec![0.0f64; k * t];
                for i in 0..n {
                    let j = values[i] as usize;
                    for c in 0..k {
                        let w = s[i * k + c];
                        n_k[c] += w;
                        p_kj[c * t + j] += w;
                    }
                }
                // Laplace-smoothed cluster distributions: a distribution
                // estimated from n_k soft points is floored at
                // ~1/(n_k + t), which keeps the KL gradient bounded (a raw
                // ε-clamp makes u/P explode and the updates oscillate).
                // Raw mode keeps the ε-clamp of a direct transcription.
                for c in 0..k {
                    let mass = n_k[c].max(EPS);
                    for j in 0..t {
                        p_kj[c * t + j] = if self.config.raw_updates {
                            (p_kj[c * t + j] / mass).max(EPS)
                        } else {
                            (p_kj[c * t + j] + 1.0) / (mass + t as f64)
                        };
                    }
                }
                // Soft objective with the smoothed distributions.
                let mut energy = 0.0;
                for i in 0..n {
                    for c in 0..k {
                        energy += s[i * k + c] * d[i * k + c];
                    }
                }
                for c in 0..k {
                    for (j, &uj) in u.iter().enumerate() {
                        if uj > 0.0 {
                            energy += lambda * uj * (uj / p_kj[c * t + j]).ln();
                        }
                    }
                }
                if energy < best_energy {
                    best_energy = energy;
                    s_best.copy_from_slice(&s);
                }
                // Break only after a burn-in and two consecutive calm
                // iterations — single small deltas occur while the iterate
                // is still traversing saturated softmax regions.
                if (prev_energy - energy).abs() <= self.config.tol * (1.0 + energy.abs()) {
                    calm_streak += 1;
                    if inner >= 5 && calm_streak >= 2 {
                        break;
                    }
                } else {
                    calm_streak = 0;
                }
                prev_energy = energy;

                // Per-point mirror-descent (multiplicative-weights) step:
                // s ∝ s_old · exp(−η (d + g)). A fresh softmax of the raw
                // logits would best-respond and cycle when λ is large; the
                // multiplicative form with a normalized step is the
                // entropic prox update of Ziko et al.'s bound optimization.
                let mut grad = vec![0.0f64; n * k];
                let mut grad_scale = 0.0f64;
                for i in 0..n {
                    let j = values[i] as usize;
                    let row_d = &d[i * k..(i + 1) * k];
                    for c in 0..k {
                        let g = -(lambda / n_k[c].max(EPS)) * (u[j] / p_kj[c * t + j] - 1.0);
                        grad[i * k + c] = row_d[c] + g;
                        grad_scale = grad_scale.max(grad[i * k + c].abs());
                    }
                }
                // Cap the largest logit move per iteration at ±4 (raw mode
                // takes the full step: s ∝ exp(−(d + g)) with no memory).
                let eta = if grad_scale > 0.0 {
                    4.0 / grad_scale
                } else {
                    1.0
                };
                let mut logits = vec![0.0f64; k];
                for i in 0..n {
                    for c in 0..k {
                        logits[c] = if self.config.raw_updates {
                            -grad[i * k + c]
                        } else {
                            (s[i * k + c] + EPS).ln() - eta * grad[i * k + c]
                        };
                    }
                    softmax_logits_into(&logits, &mut s_next[i * k..(i + 1) * k]);
                }
                std::mem::swap(&mut s, &mut s_next);
            }
            // Large-λ steps can overshoot and oscillate between symmetric
            // configurations; continue from the best iterate seen instead
            // of whatever the last step produced. Raw mode keeps the last
            // iterate, as a direct transcription would.
            if !self.config.raw_updates {
                s.copy_from_slice(&s_best);
            }

            // Centroid update from soft assignments.
            let mut sums = vec![vec![0.0f64; dim]; k];
            let mut masses = vec![0.0f64; k];
            for (i, row) in matrix.iter_rows().enumerate() {
                for c in 0..k {
                    let w = s[i * k + c];
                    if w > 0.0 {
                        masses[c] += w;
                        for (acc, v) in sums[c].iter_mut().zip(row) {
                            *acc += w * v;
                        }
                    }
                }
            }
            for c in 0..k {
                if masses[c] > EPS {
                    let inv = 1.0 / masses[c];
                    for (ctr, acc) in centroids[c].iter_mut().zip(&sums[c]) {
                        *ctr = acc * inv;
                    }
                }
            }

            // Outer convergence: hardened assignments stable.
            let mut changed = false;
            for i in 0..n {
                let mut best = 0;
                let mut best_s = f64::NEG_INFINITY;
                for c in 0..k {
                    if s[i * k + c] > best_s {
                        best_s = s[i * k + c];
                        best = c;
                    }
                }
                if hard[i] != best {
                    hard[i] = best;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Final hard metrics.
        let mut objective = 0.0;
        for (i, row) in matrix.iter_rows().enumerate() {
            objective += sq_euclidean(row, &centroids[hard[i]]);
        }
        let kl_term = hard_kl(&hard, values, u, k, t);
        Ok(ZgyaModel {
            partition: Partition::new(hard, k).expect("assignments < k"),
            centroids,
            objective,
            kl_term,
            iterations,
        })
    }
}

/// `Σ_k KL(U ‖ P_k)` over hard assignments; empty clusters contribute 0.
fn hard_kl(hard: &[usize], values: &[u32], u: &[f64], k: usize, t: usize) -> f64 {
    let mut counts = vec![0.0f64; k * t];
    let mut sizes = vec![0.0f64; k];
    for (i, &c) in hard.iter().enumerate() {
        counts[c * t + values[i] as usize] += 1.0;
        sizes[c] += 1.0;
    }
    let mut total = 0.0;
    for c in 0..k {
        if sizes[c] == 0.0 {
            continue;
        }
        for (j, &uj) in u.iter().enumerate() {
            if uj <= 0.0 {
                continue;
            }
            let p = (counts[c * t + j] / sizes[c]).max(EPS);
            total += uj * (uj / p).ln();
        }
    }
    total
}

/// `out = softmax(-d / temperature)` — the tempered initialization.
fn softmax_into(d: &[f64], temperature: f64, out: &mut [f64]) {
    let inv_t = 1.0 / temperature.max(f64::MIN_POSITIVE);
    let logits: Vec<f64> = d.iter().map(|&x| -x * inv_t).collect();
    softmax_logits_into(&logits, out);
}

/// Numerically stable softmax of arbitrary logits.
fn softmax_logits_into(logits: &[f64], out: &mut [f64]) {
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut total = 0.0;
    for (o, &l) in out.iter_mut().zip(logits) {
        let e = (l - max).exp();
        *o = e;
        total += e;
    }
    let inv = 1.0 / total;
    for o in out.iter_mut() {
        *o *= inv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairkm_data::AttrId;

    fn matrix(rows: &[&[f64]]) -> NumericMatrix {
        let cols = rows[0].len();
        let data: Vec<f64> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        let names = (0..cols).map(|i| format!("c{i}")).collect();
        NumericMatrix::from_parts(data, rows.len(), cols, names)
    }

    /// Two blobs; sensitive group == blob (worst case for blind k-means).
    fn aligned_instance() -> (NumericMatrix, SensitiveCat) {
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut vals: Vec<u32> = Vec::new();
        for i in 0..20 {
            let blob = i % 2;
            let base = blob as f64 * 8.0;
            rows.push(vec![base + 0.05 * (i / 2) as f64, base]);
            vals.push(blob as u32);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let m = matrix(&refs);
        let attr = SensitiveCat::new(AttrId(0), "g".into(), vec!["a".into(), "b".into()], vals);
        (m, attr)
    }

    #[test]
    fn lambda_zero_behaves_like_kmeans() {
        let (m, attr) = aligned_instance();
        let model = Zgya::new(ZgyaConfig::new(2, 0.0).with_seed(1))
            .fit(&m, &attr)
            .unwrap();
        // Perfect geometric split: each blob its own cluster.
        let first = model.partition.assignment(0);
        for i in 0..20 {
            let expect = if i % 2 == 0 { first } else { 1 - first };
            assert_eq!(model.partition.assignment(i), expect);
        }
        assert!(model.kl_term > 1.0, "blind split is maximally unfair");
    }

    #[test]
    fn large_lambda_improves_fairness_at_coherence_cost() {
        let (m, attr) = aligned_instance();
        let blind = Zgya::new(ZgyaConfig::new(2, 0.0).with_seed(1))
            .fit(&m, &attr)
            .unwrap();
        let fair = Zgya::new(ZgyaConfig::new(2, 2000.0).with_seed(1))
            .fit(&m, &attr)
            .unwrap();
        assert!(
            fair.kl_term < blind.kl_term * 0.5,
            "fair KL {} vs blind KL {}",
            fair.kl_term,
            blind.kl_term
        );
        assert!(fair.objective >= blind.objective);
    }

    #[test]
    fn deterministic_per_seed() {
        let (m, attr) = aligned_instance();
        let a = Zgya::new(ZgyaConfig::new(3, 5.0).with_seed(9))
            .fit(&m, &attr)
            .unwrap();
        let b = Zgya::new(ZgyaConfig::new(3, 5.0).with_seed(9))
            .fit(&m, &attr)
            .unwrap();
        assert_eq!(a.partition, b.partition);
    }

    #[test]
    fn rejects_bad_k() {
        let (m, attr) = aligned_instance();
        assert!(Zgya::new(ZgyaConfig::new(0, 1.0)).fit(&m, &attr).is_err());
        assert!(Zgya::new(ZgyaConfig::new(21, 1.0)).fit(&m, &attr).is_err());
    }

    #[test]
    fn kl_term_is_nonnegative() {
        let (m, attr) = aligned_instance();
        for lambda in [0.0, 1.0, 50.0] {
            let model = Zgya::new(ZgyaConfig::new(2, lambda).with_seed(3))
                .fit(&m, &attr)
                .unwrap();
            assert!(model.kl_term >= 0.0);
        }
    }
}
