//! Cluster-perturbation fair clustering (the third technique family of the
//! paper's §2.3, after Bera, Chakrabarty and Negahbani 2019).
//!
//! A vanilla clustering is computed first; its centers are then kept fixed
//! and the **assignment** of points to centers is re-solved under fairness
//! constraints: for every cluster `C` and protected value `s`, the count of
//! `s`-points in `C` must lie within
//!
//! ```text
//! [⌊β · Fr_X(s) · |C|⌋ , ⌈α · Fr_X(s) · |C|⌉]
//! ```
//!
//! where `Fr_X(s)` is the dataset-level proportion and `β ≤ 1 ≤ α` control
//! the allowed under/over-representation (reference \[4\] in the paper’s Table 1:
//! "the proportional representation of a protected class in a cluster
//! should be within the specified lower and upper bounds").
//!
//! Bera et al. solve an LP and round it. For a **single** sensitive
//! attribute with *fixed cluster sizes* (each cluster keeps the size the
//! vanilla clustering gave it, so the bounds are constants) the optimal
//! integral reassignment is exactly a min-cost flow with edge lower
//! bounds, which `fairkm-flow` solves directly — no LP, no rounding gap.
//! The fixed-size restriction is the one simplification versus the LP
//! formulation and is documented in DESIGN.md §4.

use crate::error::BaselineError;
use crate::kmeans::{KMeans, KMeansConfig};
use fairkm_data::{sq_euclidean, NumericMatrix, Partition, SensitiveCat};
use fairkm_flow::BoundedMinCostFlow;

/// Configuration for [`FairPerturbation`].
#[derive(Debug, Clone)]
pub struct PerturbConfig {
    /// Over-representation multiplier `α ≥ 1`: a cluster may hold at most
    /// `⌈α · Fr_X(s) · |C|⌉` points of value `s`.
    pub alpha: f64,
    /// Under-representation multiplier `β ≤ 1`: a cluster must hold at
    /// least `⌊β · Fr_X(s) · |C|⌋` points of value `s`.
    pub beta: f64,
}

impl PerturbConfig {
    /// New config; panics unless `0 ≤ β ≤ 1 ≤ α` (caller bug).
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&beta) && alpha >= 1.0,
            "need 0 <= beta <= 1 <= alpha"
        );
        Self { alpha, beta }
    }
}

/// Result of a fair reassignment.
#[derive(Debug, Clone)]
pub struct PerturbedClustering {
    /// The fair assignment.
    pub partition: Partition,
    /// Total squared distance of the fair assignment to the fixed centers.
    pub cost: f64,
    /// Same for the vanilla assignment (cost of the unfair optimum) — the
    /// gap is the "price of fairness" for this instance.
    pub vanilla_cost: f64,
}

/// The perturbation pipeline: vanilla K-Means, then bounded reassignment.
#[derive(Debug, Clone)]
pub struct FairPerturbation {
    config: PerturbConfig,
}

impl FairPerturbation {
    /// New instance with the given bounds.
    pub fn new(config: PerturbConfig) -> Self {
        Self { config }
    }

    /// Run vanilla K-Means, then re-assign fairly against its centers.
    pub fn cluster(
        &self,
        matrix: &NumericMatrix,
        attr: &SensitiveCat,
        kmeans: KMeansConfig,
    ) -> Result<PerturbedClustering, BaselineError> {
        let model = KMeans::new(kmeans).fit(matrix)?;
        let centers: Vec<&[f64]> = model.centroids.iter().map(Vec::as_slice).collect();
        let sizes = model.partition.cluster_sizes();
        self.reassign(matrix, attr, &centers, &sizes, model.objective)
    }

    /// Fair partial-assignment step against **fixed** centers with fixed
    /// per-cluster sizes.
    pub fn reassign(
        &self,
        matrix: &NumericMatrix,
        attr: &SensitiveCat,
        centers: &[&[f64]],
        sizes: &[usize],
        vanilla_cost: f64,
    ) -> Result<PerturbedClustering, BaselineError> {
        let n = matrix.rows();
        let k = centers.len();
        if n == 0 {
            return Err(BaselineError::EmptyInput);
        }
        assert_eq!(sizes.len(), k, "one size per center");
        assert_eq!(
            sizes.iter().sum::<usize>(),
            n,
            "sizes must cover every point"
        );
        assert_eq!(attr.values().len(), n, "attribute must cover the matrix");
        let t = attr.cardinality();
        let dist = attr.dataset_dist();

        // Nodes: source | points (n) | (cluster, value) cells (k*t) |
        // clusters (k) | sink.
        let source = 0;
        let point0 = 1;
        let cell0 = point0 + n;
        let cluster0 = cell0 + k * t;
        let sink = cluster0 + k;
        let mut g = BoundedMinCostFlow::new(sink + 1);

        for p in 0..n {
            g.add_edge(source, point0 + p, 1, 1, 0.0);
        }
        let mut point_edges = vec![Vec::with_capacity(k); n];
        for (p, edges) in point_edges.iter_mut().enumerate() {
            let v = attr.value(p) as usize;
            let row = matrix.row(p);
            for (c, center) in centers.iter().enumerate() {
                let cost = sq_euclidean(row, center);
                edges.push(g.add_edge(point0 + p, cell0 + c * t + v, 0, 1, cost));
            }
        }
        for (c, &size) in sizes.iter().enumerate() {
            for (s, &fr) in dist.iter().enumerate() {
                let expected = fr * size as f64;
                let lower = (self.config.beta * expected).floor() as i64;
                let upper = ((self.config.alpha * expected).ceil() as i64).min(size as i64);
                // A value can never demand more slots than the cluster has;
                // keep lower <= upper even under aggressive β.
                let lower = lower.min(upper);
                g.add_edge(cell0 + c * t + s, cluster0 + c, lower, upper, 0.0);
            }
            g.add_edge(cluster0 + c, sink, size as i64, size as i64, 0.0);
        }

        let solution =
            g.solve(source, sink, n as i64)
                .map_err(|_| BaselineError::InfeasibleBalance {
                    minority: 0,
                    majority: n,
                    t: k,
                })?;

        let mut assignments = vec![usize::MAX; n];
        let mut cost = 0.0;
        for (p, edges) in point_edges.iter().enumerate() {
            for (c, &e) in edges.iter().enumerate() {
                if solution.edge_flow(e) > 0 {
                    assignments[p] = c;
                    cost += sq_euclidean(matrix.row(p), centers[c]);
                }
            }
        }
        debug_assert!(assignments.iter().all(|&a| a < k), "every point assigned");
        Ok(PerturbedClustering {
            partition: Partition::new(assignments, k).expect("assignments < k"),
            cost,
            vanilla_cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairkm_data::AttrId;

    fn matrix(rows: &[&[f64]]) -> NumericMatrix {
        let cols = rows[0].len();
        let data: Vec<f64> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        let names = (0..cols).map(|i| format!("c{i}")).collect();
        NumericMatrix::from_parts(data, rows.len(), cols, names)
    }

    /// Two blobs of 4, each single-colored (worst case).
    fn aligned() -> (NumericMatrix, SensitiveCat) {
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut vals = Vec::new();
        for i in 0..4 {
            rows.push(vec![0.0 + i as f64 * 0.01]);
            vals.push(0u32);
        }
        for i in 0..4 {
            rows.push(vec![10.0 + i as f64 * 0.01]);
            vals.push(1u32);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (
            matrix(&refs),
            SensitiveCat::new(AttrId(0), "g".into(), vec!["a".into(), "b".into()], vals),
        )
    }

    #[test]
    fn tight_bounds_force_exact_proportions() {
        let (m, attr) = aligned();
        // α = β = 1: every cluster must carry exactly the dataset 50/50.
        let result = FairPerturbation::new(PerturbConfig::new(1.0, 1.0))
            .cluster(&m, &attr, KMeansConfig::new(2).with_seed(1))
            .unwrap();
        for members in result.partition.members() {
            let ones = members.iter().filter(|&&p| attr.value(p) == 1).count();
            assert_eq!(2 * ones, members.len(), "cluster not balanced");
        }
        assert!(result.cost > result.vanilla_cost);
    }

    #[test]
    fn loose_bounds_recover_the_vanilla_assignment() {
        let (m, attr) = aligned();
        // α huge, β = 0: constraints never bind; min-cost assignment to
        // fixed centers IS the vanilla nearest-center assignment.
        let result = FairPerturbation::new(PerturbConfig::new(100.0, 0.0))
            .cluster(&m, &attr, KMeansConfig::new(2).with_seed(1))
            .unwrap();
        assert!((result.cost - result.vanilla_cost).abs() < 1e-9);
        for members in result.partition.members() {
            let ones = members.iter().filter(|&&p| attr.value(p) == 1).count();
            assert!(ones == 0 || ones == members.len());
        }
    }

    #[test]
    fn intermediate_bounds_give_intermediate_mixes() {
        let (m, attr) = aligned();
        let result = FairPerturbation::new(PerturbConfig::new(1.5, 0.5))
            .cluster(&m, &attr, KMeansConfig::new(2).with_seed(1))
            .unwrap();
        // each cluster of size 4: value share must be within [1, 3]
        for members in result.partition.members() {
            let ones = members.iter().filter(|&&p| attr.value(p) == 1).count();
            assert!((1..=3).contains(&ones), "ones = {ones}");
        }
    }

    #[test]
    fn multi_valued_attribute_works() {
        // 9 points, 3 values, 3 geometric blobs aligned with values.
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut vals = Vec::new();
        for blob in 0..3 {
            for i in 0..3 {
                rows.push(vec![blob as f64 * 5.0 + i as f64 * 0.01]);
                vals.push(blob as u32);
            }
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let m = matrix(&refs);
        let attr = SensitiveCat::new(
            AttrId(0),
            "g".into(),
            vec!["a".into(), "b".into(), "c".into()],
            vals,
        );
        let result = FairPerturbation::new(PerturbConfig::new(1.0, 1.0))
            .cluster(&m, &attr, KMeansConfig::new(3).with_seed(2))
            .unwrap();
        for members in result.partition.members() {
            let mut counts = [0usize; 3];
            for p in members {
                counts[attr.value(p) as usize] += 1;
            }
            assert_eq!(counts, [1, 1, 1]);
        }
    }

    #[test]
    fn empty_input_rejected() {
        let m = NumericMatrix::from_parts(vec![], 0, 1, vec!["x".into()]);
        let attr = SensitiveCat::new(AttrId(0), "g".into(), vec!["a".into()], vec![]);
        assert!(matches!(
            FairPerturbation::new(PerturbConfig::new(1.0, 1.0)).reassign(&m, &attr, &[], &[], 0.0),
            Err(BaselineError::EmptyInput)
        ));
    }
}
