//! Black-box invariants of the fitted FairKM model, checked through the
//! public API only.

use fairkm_core::{DeltaEngine, FairKm, FairKmConfig, Lambda};
use fairkm_data::{Dataset, Normalization, Partition, SensitiveSpace};
use fairkm_synth::planted::{PlantedConfig, PlantedGenerator};
use proptest::prelude::*;

/// Recompute Eq. 7 independently of the algorithm's internal state.
fn fairness_term_reference(space: &SensitiveSpace, partition: &Partition) -> f64 {
    let n = space.n_rows() as f64;
    let members = partition.members();
    let mut total = 0.0;
    for cluster in members.iter().filter(|m| !m.is_empty()) {
        let frac = cluster.len() as f64 / n;
        let mut dev = 0.0;
        for attr in space.categorical() {
            let counts = attr.counts_over(cluster);
            let mut attr_dev = 0.0;
            for (count, fr_x) in counts.iter().zip(attr.dataset_dist()) {
                let diff = *count as f64 / cluster.len() as f64 - fr_x;
                attr_dev += diff * diff;
            }
            dev += attr_dev / attr.cardinality() as f64;
        }
        for attr in space.numeric() {
            let mean: f64 =
                cluster.iter().map(|&i| attr.value(i)).sum::<f64>() / cluster.len() as f64;
            let diff = mean - attr.dataset_mean();
            dev += diff * diff;
        }
        total += frac * frac * dev;
    }
    total
}

/// Recompute the K-Means term from the partition.
fn kmeans_term_reference(data: &Dataset, partition: &Partition) -> f64 {
    let m = data.task_matrix(Normalization::ZScore).unwrap();
    fairkm_metrics::clustering_objective(&m, partition)
}

fn small_planted(seed: u64, n: usize, k: usize) -> Dataset {
    PlantedGenerator::new(PlantedConfig {
        n_rows: n,
        n_blobs: k,
        dim: 3,
        n_sensitive_attrs: 2,
        cardinality: 3,
        alignment: 0.8,
        separation: 4.0,
        spread: 1.0,
        seed,
    })
    .generate()
    .dataset
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn reported_terms_match_independent_recomputation(
        seed in 0u64..500,
        k in 2usize..5,
        lambda in 0.0f64..2000.0,
    ) {
        let data = small_planted(seed, 60, k);
        let model = FairKm::new(
            FairKmConfig::new(k)
                .with_lambda(Lambda::Fixed(lambda))
                .with_seed(seed),
        )
        .fit(&data)
        .unwrap();
        let space = data.sensitive_space().unwrap();
        let ref_fair = fairness_term_reference(&space, model.partition());
        let ref_km = kmeans_term_reference(&data, model.partition());
        prop_assert!((model.fairness_term() - ref_fair).abs() < 1e-6 * (1.0 + ref_fair),
            "fairness {} vs reference {}", model.fairness_term(), ref_fair);
        prop_assert!((model.kmeans_term() - ref_km).abs() < 1e-6 * (1.0 + ref_km),
            "kmeans {} vs reference {}", model.kmeans_term(), ref_km);
    }

    #[test]
    fn trace_is_monotone_under_per_move_schedule(
        seed in 0u64..200,
        k in 2usize..5,
    ) {
        let data = small_planted(seed, 50, k);
        let model = FairKm::new(FairKmConfig::new(k).with_seed(seed)).fit(&data).unwrap();
        for w in model.objective_trace().windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-6 * (1.0 + w[0].abs()),
                "objective increased {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn engines_agree_on_random_instances(seed in 0u64..100) {
        let data = small_planted(seed, 40, 3);
        let inc = FairKm::new(
            FairKmConfig::new(3)
                .with_seed(seed)
                .with_delta_engine(DeltaEngine::Incremental),
        )
        .fit(&data)
        .unwrap();
        let lit = FairKm::new(
            FairKmConfig::new(3)
                .with_seed(seed)
                .with_delta_engine(DeltaEngine::Literal),
        )
        .fit(&data)
        .unwrap();
        prop_assert_eq!(inc.assignments(), lit.assignments());
    }

    #[test]
    fn partitions_are_always_valid(seed in 0u64..200, k in 2usize..6) {
        let data = small_planted(seed, 45, 3);
        let model = FairKm::new(FairKmConfig::new(k).with_seed(seed)).fit(&data).unwrap();
        prop_assert_eq!(model.partition().n_points(), 45);
        prop_assert_eq!(model.partition().k(), k);
        let sizes = model.partition().cluster_sizes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), 45);
    }
}
