//! The §6.1 skew-aware extension: on an attribute where one value holds
//! almost all the mass (the paper's race attribute, 87% single-valued),
//! the uniform per-value weighting of Eq. 4 lets the rare value's
//! representation drift; inverse-variance weighting protects it.
//!
//! Note: on *binary* attributes the two weightings coincide — the two
//! values' deviations are complementary, so no reweighting can matter.
//! The effect needs domain cardinality ≥ 3, as here.

use fairkm_core::{FairKm, FairKmConfig, FairnessNorm, Lambda};
use fairkm_data::{row, Dataset, DatasetBuilder, Normalization, Role};

/// 3-valued skewed attribute: rare value C (5%) lives entirely in blob 0;
/// B (30%) is balanced; A (65%) is the rest.
fn skewed3() -> Dataset {
    let mut b = DatasetBuilder::new();
    b.numeric("x", Role::NonSensitive).unwrap();
    b.numeric("y", Role::NonSensitive).unwrap();
    b.categorical("g", Role::Sensitive, &["a_common", "b_mid", "c_rare"])
        .unwrap();
    for i in 0..300 {
        let blob = i % 2;
        let jitter = (i % 9) as f64 * 0.02;
        let g = if blob == 0 && i % 20 == 0 {
            "c_rare" // 15 points = 5%, all in blob 0
        } else if i % 10 < 3 {
            "b_mid" // ~30%, balanced across blobs
        } else {
            "a_common"
        };
        b.push_row(row![blob as f64 + jitter, blob as f64 - jitter, g])
            .unwrap();
    }
    b.build().unwrap()
}

/// Worst-cluster relative misrepresentation of the rare value:
/// `max_C |Fr_C(rare) − Fr_X(rare)| / Fr_X(rare)`.
fn rare_misrepresentation(data: &Dataset, assignments: &[usize]) -> f64 {
    let space = data.sensitive_space().unwrap();
    let attr = &space.categorical()[0];
    let fr_x = attr.dataset_dist()[2];
    let k = assignments.iter().max().unwrap() + 1;
    let mut worst = 0.0f64;
    for c in 0..k {
        let members: Vec<usize> = (0..data.n_rows())
            .filter(|&i| assignments[i] == c)
            .collect();
        if members.is_empty() {
            continue;
        }
        let rare = members.iter().filter(|&&i| attr.value(i) == 2).count();
        let fr_c = rare as f64 / members.len() as f64;
        worst = worst.max((fr_c - fr_x).abs() / fr_x);
    }
    worst
}

fn run(data: &Dataset, norm: FairnessNorm, lambda: f64) -> (f64, f64) {
    let model = FairKm::new(
        FairKmConfig::new(2)
            .with_seed(5)
            .with_lambda(Lambda::Fixed(lambda))
            .with_fairness_norm(norm)
            .with_normalization(Normalization::None),
    )
    .fit(data)
    .unwrap();
    (
        rare_misrepresentation(data, model.assignments()),
        model.kmeans_term(),
    )
}

#[test]
fn skew_aware_norm_protects_the_rare_value() {
    let data = skewed3();
    // Mid-λ regime: skew-aware starts correcting the rare value while the
    // uniform weighting has not moved at all.
    let (uni_mid, _) = run(&data, FairnessNorm::DomainCardinality, 8_000.0);
    let (skew_mid, _) = run(&data, FairnessNorm::SkewAware, 8_000.0);
    assert!(
        skew_mid < uni_mid - 0.05,
        "λ=8000: skew-aware {skew_mid} vs uniform {uni_mid}"
    );

    // High-λ regime: skew-aware reaches better rare-value representation
    // at no higher coherence cost.
    let (uni_hi, uni_km) = run(&data, FairnessNorm::DomainCardinality, 20_000.0);
    let (skew_hi, skew_km) = run(&data, FairnessNorm::SkewAware, 20_000.0);
    assert!(
        skew_hi < uni_hi,
        "λ=20000: skew-aware {skew_hi} vs uniform {uni_hi}"
    );
    assert!(
        skew_km <= uni_km * 1.05,
        "λ=20000: skew-aware km {skew_km} vs uniform km {uni_km}"
    );
}

#[test]
fn norms_agree_on_balanced_attributes() {
    // With a perfectly balanced binary attribute both weightings are the
    // uniform 1/2 each, so the optimizer follows identical trajectories.
    let mut b = DatasetBuilder::new();
    b.numeric("x", Role::NonSensitive).unwrap();
    b.categorical("g", Role::Sensitive, &["a", "b"]).unwrap();
    for i in 0..80 {
        let blob = i % 2;
        b.push_row(row![
            blob as f64 * 4.0 + (i % 5) as f64 * 0.03,
            if blob == 0 { "a" } else { "b" }
        ])
        .unwrap();
    }
    let data = b.build().unwrap();
    let fit = |norm| {
        FairKm::new(FairKmConfig::new(2).with_seed(3).with_fairness_norm(norm))
            .fit(&data)
            .unwrap()
    };
    let a = fit(FairnessNorm::DomainCardinality);
    let b2 = fit(FairnessNorm::SkewAware);
    assert_eq!(a.assignments(), b2.assignments());
    assert!((a.fairness_term() - b2.fairness_term()).abs() < 1e-9);
}
