//! Pluggable fairness objectives: the cached-engine contract that
//! [`State`](crate::state::State) optimizes against, extracted behind the
//! [`FairnessObjective`] trait.
//!
//! The contract has four parts, mirroring what the scoring cache needs:
//!
//! * **contribution** — [`FairnessObjective::contrib_adjusted`] evaluates
//!   one cluster's summand of the fairness term from the running
//!   aggregates in O(dim + Σ_S |Values(S)|), optionally as if a point were
//!   added/removed (the Eqs. 16–18 move deltas fall out of two such
//!   calls);
//! * **insertion delta** — [`FairnessObjective::insertion_contrib`] plus
//!   [`FairnessObjective::insertion_rescale`] give the exact objective
//!   change of admitting an external point (`|X| → |X|+1` re-weights every
//!   cluster, which the rescale factor applies to the cached
//!   contributions);
//! * **dirty-set semantics** — [`FairnessObjective::dirties_all_on_move`]
//!   / [`FairnessObjective::dirties_all_on_live_change`] declare which
//!   cached contributions a mutation invalidates. Every shipped objective
//!   weights clusters by `(|C|/|X|)²`, so moves touch two clusters but
//!   insert/remove invalidates all of them;
//! * **assembly** — [`FairnessObjective::assemble`] folds the per-cluster
//!   cached contributions into the fairness term in O(k). All shipped
//!   objectives are additive across clusters, which is what lets the
//!   windowed optimizer and the streaming driver reuse one cache protocol.
//!
//! Dispatch is through the [`Objective`] enum: each variant holds a
//! concrete objective and every call site is an `#[inline]` match whose
//! arms are monomorphized trait-impl calls — no `dyn` indirection in the
//! hot loop, and the Eq. 7 arithmetic is byte-for-byte the pre-trait code,
//! so default-objective results are bitwise-identical to the hard-wired
//! engine (the golden-trace corpus pins this).

use crate::config::{FairKmError, ObjectiveKind};
use crate::state::{CatAttr, NumAttr};
use fairkm_flow::{BoundedFlowError, BoundedMinCostFlow};

/// Borrowed view of the running aggregates an objective evaluates against:
/// everything [`crate::state::State`] delta-maintains, minus the task
/// matrix (objectives see sensitive aggregates only).
pub(crate) struct FairView<'s> {
    /// Per-cluster member counts `|C|`.
    pub size: &'s [usize],
    /// Live point count `|X|` (assigned slots only).
    pub live: usize,
    /// Categorical sensitive attributes (frozen reference distributions).
    pub cat: &'s [CatAttr],
    /// Per categorical attribute: flat k×t member counts.
    pub cat_counts: &'s [Vec<i64>],
    /// Numeric sensitive attributes (frozen reference means).
    pub num: &'s [NumAttr],
    /// Per numeric attribute: per-cluster value sums.
    pub num_sums: &'s [Vec<f64>],
}

/// How the adjusted point of [`FairnessObjective::contrib_adjusted`] is
/// addressed. `Slot` resolves sensitive values through the attribute
/// columns (the batch/streaming engine, which stores every point);
/// `Row` carries the values inline (the sharded replica, whose attribute
/// columns are empty — it only ever sees rows inside protocol messages).
/// Both resolve to the same `u32`/`f64`, so the arithmetic downstream is
/// identical either way.
#[derive(Clone, Copy)]
pub(crate) enum PointRef<'p> {
    /// No adjusted point (`delta = 0`): the unadjusted cached contribution.
    None,
    /// A stored slot: values live in `CatAttr::values` / `NumAttr::values`.
    Slot(usize),
    /// Inline sensitive values, indexed by attribute position.
    Row(&'p [u32], &'p [f64]),
}

impl PointRef<'_> {
    /// Categorical value of attribute `a` for the adjusted point.
    #[inline]
    fn cat(self, a: usize, attr: &CatAttr) -> u32 {
        match self {
            PointRef::None => unreachable!("PointRef::None consulted with nonzero delta"),
            PointRef::Slot(x) => attr.values[x],
            PointRef::Row(cat_vals, _) => cat_vals[a],
        }
    }

    /// Numeric value of attribute `a` for the adjusted point.
    #[inline]
    fn num(self, a: usize, attr: &NumAttr) -> f64 {
        match self {
            PointRef::None => unreachable!("PointRef::None consulted with nonzero delta"),
            PointRef::Slot(x) => attr.values[x],
            PointRef::Row(_, num_vals) => num_vals[a],
        }
    }
}

/// The cached-engine contract a fairness objective must satisfy (module
/// docs explain the four parts). Implementations must be pure functions of
/// the view — the engine caches their outputs and replays them under the
/// dirty-set rules the objective itself declares.
pub(crate) trait FairnessObjective {
    /// Cluster `c`'s fairness contribution, evaluated as if point `p` were
    /// added to (`delta = +1`) or removed from (`delta = -1`) the cluster.
    /// `p = PointRef::None, delta = 0` gives the unadjusted contribution
    /// (the value the engine caches per cluster).
    fn contrib_adjusted(&self, v: &FairView<'_>, c: usize, p: PointRef<'_>, delta: i64) -> f64;

    /// Cluster `c`'s contribution as if an external point with the given
    /// sensitive values joined it, with `|X| + 1` live points.
    fn insertion_contrib(
        &self,
        v: &FairView<'_>,
        c: usize,
        cat_vals: &[u32],
        num_vals: &[f64],
    ) -> f64;

    /// Factor by which an untouched cluster's cached contribution changes
    /// when the live count grows by one. Exact for every objective whose
    /// contribution is `(|C|/|X|)² · dev(aggregates)` with `dev`
    /// independent of `|X|` — which is all of the shipped ones.
    #[inline]
    fn insertion_rescale(&self, live: f64) -> f64 {
        let r = live / (live + 1.0);
        r * r
    }

    /// Fold the per-cluster cached contributions into the fairness term.
    /// O(k); the default is the additive assembly every shipped objective
    /// uses.
    #[inline]
    fn assemble(&self, contribs: &[f64]) -> f64 {
        contribs.iter().sum()
    }

    /// Whether a move (`live` unchanged) invalidates every cluster's
    /// cached contribution, rather than only the two touched ones.
    #[inline]
    fn dirties_all_on_move(&self) -> bool {
        false
    }

    /// Whether an insert/remove (`live` changes) invalidates every
    /// cluster's cached contribution. True for all shipped objectives:
    /// `|X|` enters every cluster's `(|C|/|X|)²` weight.
    #[inline]
    fn dirties_all_on_live_change(&self) -> bool {
        true
    }
}

/// Eq. 7 representativity (+ Eq. 22 numeric terms, Eq. 23 weights): per
/// cluster `(|C|/|X|)² · [Σ_S w_S Σ_s scale_s (Fr_C(s) − Fr_X(s))² +
/// Σ_S w_S (C.S̄ − X̄.S)²]`. The paper's objective and the engine
/// default; the arithmetic below is the pre-trait engine code, moved
/// verbatim so results stay bitwise-identical.
#[derive(Clone, Debug)]
pub(crate) struct Representativity;

impl FairnessObjective for Representativity {
    fn contrib_adjusted(&self, v: &FairView<'_>, c: usize, p: PointRef<'_>, delta: i64) -> f64 {
        let new_size = (v.size[c] as i64 + delta) as f64;
        if new_size <= 0.0 {
            return 0.0; // Eq. 3: empty clusters contribute nothing
        }
        let inv_size = 1.0 / new_size;
        // |X| is the live point count — identical to `n` for batch fits,
        // smaller when streaming has evicted slots.
        let frac = new_size / v.live as f64;
        let cluster_weight = frac * frac;

        let mut dev = 0.0;
        for (a, (attr, counts)) in v.cat.iter().zip(v.cat_counts).enumerate() {
            if attr.weight == 0.0 {
                continue;
            }
            let base = c * attr.t;
            let moved = if delta != 0 {
                p.cat(a, attr) as usize
            } else {
                usize::MAX
            };
            let mut attr_dev = 0.0;
            for s in 0..attr.t {
                let mut count = counts[base + s];
                if s == moved {
                    count += delta;
                }
                let diff = count as f64 * inv_size - attr.dist[s];
                attr_dev += attr.value_scale[s] * diff * diff;
            }
            dev += attr.weight * attr_dev;
        }
        for (a, (attr, sums)) in v.num.iter().zip(v.num_sums).enumerate() {
            if attr.weight == 0.0 {
                continue;
            }
            let mut sum = sums[c];
            if delta != 0 {
                sum += delta as f64 * p.num(a, attr);
            }
            let diff = sum * inv_size - attr.mean;
            dev += attr.weight * diff * diff;
        }
        cluster_weight * dev
    }

    fn insertion_contrib(
        &self,
        v: &FairView<'_>,
        c: usize,
        cat_vals: &[u32],
        num_vals: &[f64],
    ) -> f64 {
        let new_size = v.size[c] as f64 + 1.0;
        let inv_size = 1.0 / new_size;
        let frac = new_size / (v.live as f64 + 1.0);
        let cluster_weight = frac * frac;

        let mut dev = 0.0;
        for ((attr, counts), &added) in v.cat.iter().zip(v.cat_counts).zip(cat_vals) {
            if attr.weight == 0.0 {
                continue;
            }
            let base = c * attr.t;
            let mut attr_dev = 0.0;
            for s in 0..attr.t {
                let mut count = counts[base + s];
                if s == added as usize {
                    count += 1;
                }
                let diff = count as f64 * inv_size - attr.dist[s];
                attr_dev += attr.value_scale[s] * diff * diff;
            }
            dev += attr.weight * attr_dev;
        }
        for ((attr, sums), &value) in v.num.iter().zip(v.num_sums).zip(num_vals) {
            if attr.weight == 0.0 {
                continue;
            }
            let diff = (sums[c] + value) * inv_size - attr.mean;
            dev += attr.weight * diff * diff;
        }
        cluster_weight * dev
    }
}

/// Bounded representation (Bera et al. 2019, as a soft penalty): every
/// group's cluster share must sit inside `[lower·Fr_X(s), upper·Fr_X(s)]`;
/// shares inside the band cost nothing, violations cost their squared
/// hinge distance to the nearest bound, with the same per-value scales,
/// Eq. 23 attribute weights and `(|C|/|X|)²` cluster weight as Eq. 7.
/// Numeric sensitive attributes keep their Eq. 22 mean-parity form (a
/// share band is not defined for them). The batch-exact hard-constraint
/// form is [`bounded_exact_assignment`].
#[derive(Clone, Debug)]
pub(crate) struct BoundedRep {
    /// Per categorical attribute, per value: the allowed share interval,
    /// resolved against the frozen dataset distribution at construction.
    bounds: Vec<Vec<(f64, f64)>>,
}

impl BoundedRep {
    /// Resolve the `(lower, upper)` multipliers against the frozen
    /// per-value dataset shares. Bounds are clamped into `[0, 1]` — a
    /// share can never leave that range, so anything outside is slack.
    pub fn new(cat: &[CatAttr], lower: f64, upper: f64) -> Self {
        let bounds = cat
            .iter()
            .map(|attr| {
                attr.dist
                    .iter()
                    .map(|&p| ((lower * p).clamp(0.0, 1.0), (upper * p).clamp(0.0, 1.0)))
                    .collect()
            })
            .collect();
        Self { bounds }
    }

    /// Squared hinge violation of share `f` against band `(lo, hi)`.
    #[inline]
    fn violation(f: f64, lo: f64, hi: f64) -> f64 {
        let v = (lo - f).max(0.0) + (f - hi).max(0.0);
        v * v
    }

    fn contrib(
        &self,
        v: &FairView<'_>,
        new_size: f64,
        live: f64,
        cat_count: impl Fn(usize, usize) -> i64,
        num_sum: impl Fn(usize) -> f64,
    ) -> f64 {
        if new_size <= 0.0 {
            return 0.0; // empty clusters violate no bound
        }
        let inv_size = 1.0 / new_size;
        let frac = new_size / live;
        let cluster_weight = frac * frac;

        let mut dev = 0.0;
        for (a, (attr, bounds)) in v.cat.iter().zip(&self.bounds).enumerate() {
            if attr.weight == 0.0 {
                continue;
            }
            let mut attr_dev = 0.0;
            for (s, &(lo, hi)) in bounds.iter().enumerate() {
                let share = cat_count(a, s) as f64 * inv_size;
                attr_dev += attr.value_scale[s] * Self::violation(share, lo, hi);
            }
            dev += attr.weight * attr_dev;
        }
        for (a, attr) in v.num.iter().enumerate() {
            if attr.weight == 0.0 {
                continue;
            }
            let diff = num_sum(a) * inv_size - attr.mean;
            dev += attr.weight * diff * diff;
        }
        cluster_weight * dev
    }
}

impl FairnessObjective for BoundedRep {
    fn contrib_adjusted(&self, v: &FairView<'_>, c: usize, p: PointRef<'_>, delta: i64) -> f64 {
        let new_size = (v.size[c] as i64 + delta) as f64;
        self.contrib(
            v,
            new_size,
            v.live as f64,
            |a, s| {
                let mut count = v.cat_counts[a][c * v.cat[a].t + s];
                if delta != 0 && p.cat(a, &v.cat[a]) as usize == s {
                    count += delta;
                }
                count
            },
            |a| {
                let mut sum = v.num_sums[a][c];
                if delta != 0 {
                    sum += delta as f64 * p.num(a, &v.num[a]);
                }
                sum
            },
        )
    }

    fn insertion_contrib(
        &self,
        v: &FairView<'_>,
        c: usize,
        cat_vals: &[u32],
        num_vals: &[f64],
    ) -> f64 {
        let new_size = v.size[c] as f64 + 1.0;
        self.contrib(
            v,
            new_size,
            v.live as f64 + 1.0,
            |a, s| {
                let mut count = v.cat_counts[a][c * v.cat[a].t + s];
                if cat_vals[a] as usize == s {
                    count += 1;
                }
                count
            },
            |a| v.num_sums[a][c] + num_vals[a],
        )
    }
}

/// How [`GroupLoss`] folds the per-group deviations of one cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum GroupAggregation {
    /// Mean deviation over the group pool — total welfare.
    Utilitarian,
    /// Worst single group's deviation — max-min welfare.
    Egalitarian,
}

/// Multiple-groups welfare objective: every (attribute, value) pair — and
/// every numeric sensitive attribute — is one *group* with loss
/// `ℓ_g = w_S (Fr_C(g) − Fr_X(g))²` (numeric: the Eq. 22 mean-parity
/// deviation). A cluster contributes `(|C|/|X|)²` times the utilitarian
/// mean or the egalitarian max of its group losses. Unlike Eq. 7 this
/// weighs every group equally regardless of its attribute's cardinality
/// (utilitarian), or chases the single worst-represented group
/// (egalitarian).
#[derive(Clone, Debug)]
pub(crate) struct GroupLoss {
    agg: GroupAggregation,
    /// `1 / |group pool|` over the positively-weighted attributes
    /// (0 when the pool is empty). Frozen at construction.
    inv_groups: f64,
}

impl GroupLoss {
    /// Count the group pool over the weighted attributes.
    pub fn new(agg: GroupAggregation, cat: &[CatAttr], num: &[NumAttr]) -> Self {
        let groups: usize = cat
            .iter()
            .filter(|a| a.weight != 0.0)
            .map(|a| a.t)
            .sum::<usize>()
            + num.iter().filter(|a| a.weight != 0.0).count();
        let inv_groups = if groups > 0 { 1.0 / groups as f64 } else { 0.0 };
        Self { agg, inv_groups }
    }

    fn fold(
        &self,
        v: &FairView<'_>,
        new_size: f64,
        live: f64,
        cat_count: impl Fn(usize, usize) -> i64,
        num_sum: impl Fn(usize) -> f64,
    ) -> f64 {
        if new_size <= 0.0 {
            return 0.0;
        }
        let inv_size = 1.0 / new_size;
        let frac = new_size / live;
        let cluster_weight = frac * frac;

        let mut sum = 0.0;
        let mut worst = 0.0f64;
        for (a, attr) in v.cat.iter().enumerate() {
            if attr.weight == 0.0 {
                continue;
            }
            for s in 0..attr.t {
                let diff = cat_count(a, s) as f64 * inv_size - attr.dist[s];
                let loss = attr.weight * (diff * diff);
                sum += loss;
                worst = worst.max(loss);
            }
        }
        for (a, attr) in v.num.iter().enumerate() {
            if attr.weight == 0.0 {
                continue;
            }
            let diff = num_sum(a) * inv_size - attr.mean;
            let loss = attr.weight * (diff * diff);
            sum += loss;
            worst = worst.max(loss);
        }
        let agg = match self.agg {
            GroupAggregation::Utilitarian => sum * self.inv_groups,
            GroupAggregation::Egalitarian => worst,
        };
        cluster_weight * agg
    }
}

impl FairnessObjective for GroupLoss {
    fn contrib_adjusted(&self, v: &FairView<'_>, c: usize, p: PointRef<'_>, delta: i64) -> f64 {
        let new_size = (v.size[c] as i64 + delta) as f64;
        self.fold(
            v,
            new_size,
            v.live as f64,
            |a, s| {
                let attr = &v.cat[a];
                let mut count = v.cat_counts[a][c * attr.t + s];
                if delta != 0 && p.cat(a, attr) as usize == s {
                    count += delta;
                }
                count
            },
            |a| {
                let mut sum = v.num_sums[a][c];
                if delta != 0 {
                    sum += delta as f64 * p.num(a, &v.num[a]);
                }
                sum
            },
        )
    }

    fn insertion_contrib(
        &self,
        v: &FairView<'_>,
        c: usize,
        cat_vals: &[u32],
        num_vals: &[f64],
    ) -> f64 {
        let new_size = v.size[c] as f64 + 1.0;
        self.fold(
            v,
            new_size,
            v.live as f64 + 1.0,
            |a, s| {
                let attr = &v.cat[a];
                let mut count = v.cat_counts[a][c * attr.t + s];
                if cat_vals[a] as usize == s {
                    count += 1;
                }
                count
            },
            |a| v.num_sums[a][c] + num_vals[a],
        )
    }
}

/// Runtime-selected objective: one variant per implementation, dispatched
/// by an `#[inline]` match. The enum (not a `dyn` trait) keeps every call
/// monomorphized — the hot loop pays one predicted branch, no vtable hop.
#[derive(Clone, Debug)]
pub(crate) enum Objective {
    /// The paper's Eq. 7 representativity (default).
    Representativity(Representativity),
    /// Bounded-representation penalty.
    Bounded(BoundedRep),
    /// Multiple-groups utilitarian/egalitarian welfare.
    Group(GroupLoss),
}

macro_rules! dispatch {
    ($self:expr, $o:ident => $body:expr) => {
        match $self {
            Objective::Representativity($o) => $body,
            Objective::Bounded($o) => $body,
            Objective::Group($o) => $body,
        }
    };
}

impl Objective {
    /// Instantiate the configured objective against the frozen sensitive
    /// reference (dataset distributions / means are already inside the
    /// attribute structs).
    pub fn from_kind(kind: ObjectiveKind, cat: &[CatAttr], num: &[NumAttr]) -> Self {
        match kind {
            ObjectiveKind::Representativity => Objective::Representativity(Representativity),
            ObjectiveKind::BoundedRepresentation { lower, upper } => {
                Objective::Bounded(BoundedRep::new(cat, lower, upper))
            }
            ObjectiveKind::Utilitarian => {
                Objective::Group(GroupLoss::new(GroupAggregation::Utilitarian, cat, num))
            }
            ObjectiveKind::Egalitarian => {
                Objective::Group(GroupLoss::new(GroupAggregation::Egalitarian, cat, num))
            }
        }
    }

    /// See [`FairnessObjective::contrib_adjusted`].
    #[inline]
    pub fn contrib_adjusted(&self, v: &FairView<'_>, c: usize, p: PointRef<'_>, delta: i64) -> f64 {
        dispatch!(self, o => o.contrib_adjusted(v, c, p, delta))
    }

    /// See [`FairnessObjective::insertion_contrib`].
    #[inline]
    pub fn insertion_contrib(
        &self,
        v: &FairView<'_>,
        c: usize,
        cat_vals: &[u32],
        num_vals: &[f64],
    ) -> f64 {
        dispatch!(self, o => o.insertion_contrib(v, c, cat_vals, num_vals))
    }

    /// See [`FairnessObjective::insertion_rescale`].
    #[inline]
    pub fn insertion_rescale(&self, live: f64) -> f64 {
        dispatch!(self, o => o.insertion_rescale(live))
    }

    /// See [`FairnessObjective::assemble`].
    #[inline]
    pub fn assemble(&self, contribs: &[f64]) -> f64 {
        dispatch!(self, o => o.assemble(contribs))
    }

    /// See [`FairnessObjective::dirties_all_on_move`].
    #[inline]
    pub fn dirties_all_on_move(&self) -> bool {
        dispatch!(self, o => o.dirties_all_on_move())
    }

    /// See [`FairnessObjective::dirties_all_on_live_change`].
    #[inline]
    pub fn dirties_all_on_live_change(&self) -> bool {
        dispatch!(self, o => o.dirties_all_on_live_change())
    }
}

/// Batch-exact bounded representation (Bera et al. 2019) as a min-cost
/// flow on [`fairkm_flow::BoundedMinCostFlow`]: assign every point to a
/// cluster minimizing total assignment cost subject to per-(cluster,
/// group) member-count bounds `lower[c][g] ≤ |{i ∈ c : group(i) = g}| ≤
/// upper[c][g]`.
///
/// Network: source → point (capacity 1) → (cluster, point's group) node
/// (capacity 1, cost `costs[i][c]`) → sink (bounds `[lower, upper]`).
/// Routing exactly `n` units yields the optimal feasible assignment;
/// returns [`FairKmError::InfeasibleBounds`] when no assignment satisfies
/// the bounds.
///
/// This is the hard-constraint companion of the soft
/// `ObjectiveKind::BoundedRepresentation` penalty: points the optimizer
/// serves incrementally descend on the penalty, while batch callers (and
/// the parity tests) can demand exact feasibility.
///
/// `costs` is one row per point with one entry per cluster (e.g. squared
/// prototype distances); `groups[i] < n_groups` is each point's group id.
pub fn bounded_exact_assignment(
    costs: &[Vec<f64>],
    groups: &[usize],
    n_groups: usize,
    lower: &[Vec<i64>],
    upper: &[Vec<i64>],
) -> Result<Vec<usize>, FairKmError> {
    let n = costs.len();
    assert_eq!(groups.len(), n, "one group id per point");
    let k = lower.len();
    assert_eq!(upper.len(), k, "bound matrices must agree on k");
    assert!(
        groups.iter().all(|&g| g < n_groups),
        "group id outside the declared pool"
    );
    if n == 0 || k == 0 {
        return Err(FairKmError::EmptyInput);
    }

    // Node layout: 0 = source, 1..=n points, then k×n_groups cluster-group
    // nodes, then the sink.
    let source = 0usize;
    let point = |i: usize| 1 + i;
    let cg = |c: usize, g: usize| 1 + n + c * n_groups + g;
    let sink = 1 + n + k * n_groups;

    let mut net = BoundedMinCostFlow::new(sink + 1);
    let mut point_edges = Vec::with_capacity(n * k);
    for (i, row) in costs.iter().enumerate() {
        assert_eq!(row.len(), k, "one cost per cluster");
        net.add_edge(source, point(i), 0, 1, 0.0);
        for (c, &cost) in row.iter().enumerate() {
            point_edges.push((i, c, net.add_edge(point(i), cg(c, groups[i]), 0, 1, cost)));
        }
    }
    for (c, (lo_row, hi_row)) in lower.iter().zip(upper).enumerate() {
        assert_eq!(lo_row.len(), n_groups, "one lower bound per group");
        assert_eq!(hi_row.len(), n_groups, "one upper bound per group");
        for g in 0..n_groups {
            net.add_edge(cg(c, g), sink, lo_row[g], hi_row[g], 0.0);
        }
    }

    let solution = net.solve(source, sink, n as i64).map_err(|e| match e {
        BoundedFlowError::Infeasible { unroutable } => FairKmError::InfeasibleBounds { unroutable },
        // The network is well-formed by construction, so a plain flow
        // error can only mean the n units cannot be routed at all.
        BoundedFlowError::Flow(_) => FairKmError::InfeasibleBounds {
            unroutable: n as i64,
        },
    })?;

    let mut assignment = vec![usize::MAX; n];
    for &(i, c, id) in &point_edges {
        if solution.edge_flow(id) > 0 {
            assignment[i] = c;
        }
    }
    debug_assert!(assignment.iter().all(|&c| c < k));
    Ok(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Owned aggregates a test can hand out as a [`FairView`]: two
    /// clusters over one binary categorical attribute (uniform dataset
    /// distribution) and one numeric attribute with dataset mean 0.
    struct Aggregates {
        size: Vec<usize>,
        live: usize,
        cat: Vec<CatAttr>,
        cat_counts: Vec<Vec<i64>>,
        num: Vec<NumAttr>,
        num_sums: Vec<Vec<f64>>,
    }

    impl Aggregates {
        /// `counts[c]` are cluster `c`'s per-value member counts;
        /// `sums[c]` its numeric value sum.
        fn new(counts: [[i64; 2]; 2], sums: [f64; 2], num_weight: f64) -> Self {
            let size: Vec<usize> = counts
                .iter()
                .map(|row| row.iter().sum::<i64>() as usize)
                .collect();
            let live = size.iter().sum();
            let values: Vec<u32> = counts
                .iter()
                .flat_map(|row| {
                    std::iter::repeat_n(0u32, row[0] as usize)
                        .chain(std::iter::repeat_n(1u32, row[1] as usize))
                })
                .collect();
            Self {
                size,
                live,
                cat: vec![CatAttr {
                    values,
                    t: 2,
                    dist: vec![0.5, 0.5],
                    value_scale: vec![0.5, 0.5],
                    weight: 1.0,
                }],
                cat_counts: vec![counts.iter().flatten().copied().collect()],
                num: vec![NumAttr {
                    values: vec![0.0; live],
                    mean: 0.0,
                    weight: num_weight,
                }],
                num_sums: vec![sums.to_vec()],
            }
        }

        fn view(&self) -> FairView<'_> {
            FairView {
                size: &self.size,
                live: self.live,
                cat: &self.cat,
                cat_counts: &self.cat_counts,
                num: &self.num,
                num_sums: &self.num_sums,
            }
        }
    }

    #[test]
    fn bounded_bands_resolve_against_dataset_shares_and_clamp() {
        let agg = Aggregates::new([[2, 2], [2, 2]], [0.0, 0.0], 0.0);
        let b = BoundedRep::new(&agg.cat, 0.8, 1.25);
        assert_eq!(b.bounds, vec![vec![(0.4, 0.625), (0.4, 0.625)]]);
        let wide = BoundedRep::new(&agg.cat, 0.0, 3.0);
        assert_eq!(wide.bounds, vec![vec![(0.0, 1.0), (0.0, 1.0)]]);
    }

    #[test]
    fn bounded_violation_is_a_squared_hinge() {
        assert_eq!(BoundedRep::violation(0.5, 0.4, 0.6), 0.0);
        assert_eq!(BoundedRep::violation(0.4, 0.4, 0.6), 0.0);
        assert_eq!(BoundedRep::violation(0.6, 0.4, 0.6), 0.0);
        assert!((BoundedRep::violation(0.2, 0.4, 0.6) - 0.04).abs() < 1e-15);
        assert!((BoundedRep::violation(0.8, 0.4, 0.6) - 0.04).abs() < 1e-15);
    }

    #[test]
    fn bounded_contrib_is_zero_inside_the_band_and_positive_outside() {
        // Cluster 0 is all value 0, cluster 1 all value 1: shares 1.0 / 0.0
        // against a 50/50 dataset.
        let agg = Aggregates::new([[3, 0], [0, 3]], [0.0, 0.0], 0.0);
        let v = agg.view();

        let wide = BoundedRep::new(&agg.cat, 0.0, 2.0); // band [0, 1]: slack
        assert_eq!(wide.contrib_adjusted(&v, 0, PointRef::None, 0), 0.0);
        assert_eq!(wide.contrib_adjusted(&v, 1, PointRef::None, 0), 0.0);

        let tight = BoundedRep::new(&agg.cat, 1.0, 1.0); // band {0.5}
                                                         // Each cluster: weight (3/6)² · [0.5·(1−0.5)² + 0.5·(0−0.5)²]
        let expected = 0.25 * (0.5 * 0.25 + 0.5 * 0.25);
        for c in 0..2 {
            let got = tight.contrib_adjusted(&v, c, PointRef::None, 0);
            assert!((got - expected).abs() < 1e-15, "cluster {c}: {got}");
        }
    }

    #[test]
    fn empty_clusters_contribute_nothing_under_every_objective() {
        let mut agg = Aggregates::new([[2, 2], [0, 0]], [0.0, 0.0], 1.0);
        agg.size[1] = 0;
        let v = agg.view();
        let objectives = [
            Objective::from_kind(ObjectiveKind::bounded(), &agg.cat, &agg.num),
            Objective::from_kind(ObjectiveKind::Utilitarian, &agg.cat, &agg.num),
            Objective::from_kind(ObjectiveKind::Egalitarian, &agg.cat, &agg.num),
        ];
        for o in &objectives {
            assert_eq!(o.contrib_adjusted(&v, 1, PointRef::None, 0), 0.0);
        }
    }

    #[test]
    fn group_loss_folds_mean_vs_worst_group() {
        // Cluster 0: shares (3/4, 1/4) against dist (1/2, 1/2) → both
        // categorical groups lose 1/16; numeric sum 2 over size 4 against
        // mean 0 → loss 1/4. Pool = 3 groups.
        let agg = Aggregates::new([[3, 1], [1, 3]], [2.0, 0.0], 1.0);
        let v = agg.view();

        let util = GroupLoss::new(GroupAggregation::Utilitarian, &agg.cat, &agg.num);
        let egal = GroupLoss::new(GroupAggregation::Egalitarian, &agg.cat, &agg.num);
        assert_eq!(util.inv_groups, 1.0 / 3.0);

        let weight = 0.25; // (4/8)²
        let mean = (1.0 / 16.0 + 1.0 / 16.0 + 0.25) / 3.0;
        let got_u = util.contrib_adjusted(&v, 0, PointRef::None, 0);
        assert!((got_u - weight * mean).abs() < 1e-15, "utilitarian {got_u}");
        let got_e = egal.contrib_adjusted(&v, 0, PointRef::None, 0);
        assert!((got_e - weight * 0.25).abs() < 1e-15, "egalitarian {got_e}");
        // The worst group dominates the mean whenever losses differ.
        assert!(got_e > got_u);
    }

    #[test]
    fn group_pool_skips_muted_attributes() {
        let agg = Aggregates::new([[2, 2], [2, 2]], [0.0, 0.0], 0.0);
        let g = GroupLoss::new(GroupAggregation::Utilitarian, &agg.cat, &agg.num);
        assert_eq!(g.inv_groups, 0.5); // 2 categorical groups, numeric muted
        let none = GroupLoss::new(GroupAggregation::Utilitarian, &[], &[]);
        assert_eq!(none.inv_groups, 0.0);
    }

    /// Brute-force minimum over all feasible assignments of a tiny
    /// bounded instance.
    fn brute_force(
        costs: &[Vec<f64>],
        groups: &[usize],
        n_groups: usize,
        lower: &[Vec<i64>],
        upper: &[Vec<i64>],
    ) -> Option<f64> {
        let n = costs.len();
        let k = lower.len();
        let mut best: Option<f64> = None;
        for code in 0..k.pow(n as u32) {
            let mut counts = vec![vec![0i64; n_groups]; k];
            let mut cost = 0.0;
            let mut rem = code;
            for i in 0..n {
                let c = rem % k;
                rem /= k;
                counts[c][groups[i]] += 1;
                cost += costs[i][c];
            }
            let feasible = (0..k).all(|c| {
                (0..n_groups).all(|g| counts[c][g] >= lower[c][g] && counts[c][g] <= upper[c][g])
            });
            if feasible && best.is_none_or(|b| cost < b) {
                best = Some(cost);
            }
        }
        best
    }

    #[test]
    fn bounded_exact_assignment_is_cost_optimal_among_feasible() {
        // Every point prefers cluster 0, but each cluster must hold
        // exactly one point of each group — the flow must pay for the
        // cheapest feasible split, not the greedy one.
        let costs = vec![
            vec![0.0, 5.0],
            vec![1.0, 3.0],
            vec![0.0, 9.0],
            vec![2.0, 2.0],
        ];
        let groups = vec![0, 0, 1, 1];
        let lower = vec![vec![1, 1], vec![1, 1]];
        let upper = vec![vec![1, 1], vec![1, 1]];

        let got = bounded_exact_assignment(&costs, &groups, 2, &lower, &upper).unwrap();
        let mut counts = vec![vec![0i64; 2]; 2];
        let mut total = 0.0;
        for (i, &c) in got.iter().enumerate() {
            counts[c][groups[i]] += 1;
            total += costs[i][c];
        }
        assert_eq!(counts, vec![vec![1, 1], vec![1, 1]], "bounds respected");
        let best = brute_force(&costs, &groups, 2, &lower, &upper).unwrap();
        assert!(
            (total - best).abs() < 1e-9,
            "flow cost {total} vs brute force {best}"
        );
    }

    #[test]
    fn bounded_exact_assignment_matches_brute_force_with_slack_bands() {
        let costs = vec![
            vec![0.0, 1.0, 4.0],
            vec![3.0, 0.0, 1.0],
            vec![1.0, 2.0, 0.0],
            vec![0.0, 0.0, 2.0],
            vec![2.0, 1.0, 0.0],
        ];
        let groups = vec![0, 1, 0, 1, 0];
        let lower = vec![vec![0, 0], vec![0, 0], vec![0, 0]];
        let upper = vec![vec![2, 1], vec![1, 1], vec![2, 2]];

        let got = bounded_exact_assignment(&costs, &groups, 2, &lower, &upper).unwrap();
        let mut counts = vec![vec![0i64; 2]; 3];
        let mut total = 0.0;
        for (i, &c) in got.iter().enumerate() {
            counts[c][groups[i]] += 1;
            total += costs[i][c];
        }
        for c in 0..3 {
            for g in 0..2 {
                assert!(counts[c][g] >= lower[c][g] && counts[c][g] <= upper[c][g]);
            }
        }
        let best = brute_force(&costs, &groups, 2, &lower, &upper).unwrap();
        assert!(
            (total - best).abs() < 1e-9,
            "flow cost {total} vs brute force {best}"
        );
    }

    #[test]
    fn infeasible_bounds_are_reported() {
        // Two group-0 points, but cluster bounds demand one group-1 point
        // in each of the two clusters.
        let costs = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let groups = vec![0, 0];
        let lower = vec![vec![0, 1], vec![0, 1]];
        let upper = vec![vec![2, 2], vec![2, 2]];
        match bounded_exact_assignment(&costs, &groups, 2, &lower, &upper) {
            Err(FairKmError::InfeasibleBounds { unroutable }) => assert!(unroutable > 0),
            other => panic!("expected InfeasibleBounds, got {other:?}"),
        }
    }

    #[test]
    fn empty_instances_are_rejected() {
        assert!(matches!(
            bounded_exact_assignment(&[], &[], 1, &[vec![0]], &[vec![1]]),
            Err(FairKmError::EmptyInput)
        ));
    }

    #[test]
    fn zero_clusters_are_rejected_as_empty() {
        // k = 0 (no bound rows) is the other degenerate shape: nothing to
        // assign points into, reported as EmptyInput — not a panic, not a
        // bogus infeasibility count.
        let costs = vec![vec![], vec![]];
        let groups = vec![0, 0];
        assert!(matches!(
            bounded_exact_assignment(&costs, &groups, 1, &[], &[]),
            Err(FairKmError::EmptyInput)
        ));
    }

    #[test]
    fn upper_caps_report_the_exact_unroutable_count() {
        // Four group-0 points, two clusters, each capped at one group-0
        // member: total capacity 2, so exactly 2 points cannot be routed.
        // The count is part of the error contract (callers surface it to
        // users picking bounds), so it is pinned exactly.
        let costs = vec![
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![0.5, 0.5],
            vec![0.25, 0.75],
        ];
        let groups = vec![0, 0, 0, 0];
        let lower = vec![vec![0], vec![0]];
        let upper = vec![vec![1], vec![1]];
        match bounded_exact_assignment(&costs, &groups, 1, &lower, &upper) {
            Err(FairKmError::InfeasibleBounds { unroutable }) => assert_eq!(unroutable, 2),
            other => panic!("expected InfeasibleBounds, got {other:?}"),
        }
    }

    #[test]
    fn lower_demands_exceeding_supply_report_the_exact_shortfall() {
        // Three clusters each demanding one group-0 member, but only two
        // group-0 points exist: one demand unit must go unmet.
        let costs = vec![vec![0.0, 1.0, 2.0], vec![2.0, 1.0, 0.0]];
        let groups = vec![0, 0];
        let lower = vec![vec![1], vec![1], vec![1]];
        let upper = vec![vec![1], vec![1], vec![1]];
        match bounded_exact_assignment(&costs, &groups, 1, &lower, &upper) {
            Err(FairKmError::InfeasibleBounds { unroutable }) => assert_eq!(unroutable, 1),
            other => panic!("expected InfeasibleBounds, got {other:?}"),
        }
    }

    #[test]
    fn missing_group_demands_count_every_unmet_unit() {
        // Bounds demand a group-1 member in each of two clusters but no
        // group-1 point exists: both demand units are unroutable.
        let costs = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let groups = vec![0, 0];
        let lower = vec![vec![0, 1], vec![0, 1]];
        let upper = vec![vec![2, 2], vec![2, 2]];
        match bounded_exact_assignment(&costs, &groups, 2, &lower, &upper) {
            Err(FairKmError::InfeasibleBounds { unroutable }) => assert_eq!(unroutable, 2),
            other => panic!("expected InfeasibleBounds, got {other:?}"),
        }
    }
}
