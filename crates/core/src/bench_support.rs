//! Scoring-kernel harness for the `scoring_cache` benchmark group and the
//! kernel-equivalence tests: drives the cached dot-product scoring path and
//! the literal pre-cache scoring path over the same frozen state so the two
//! kernels can be timed and cross-checked in isolation, without running the
//! whole fit loop.
//!
//! Not part of the stable API — the module exists so the out-of-crate bench
//! harness (`fairkm-bench`) can reach the crate-private optimizer state.

use crate::config::{DeltaEngine, FairnessNorm, ObjectiveKind};
use crate::fairkm::propose_move;
use crate::state::State;
use fairkm_data::{NumericMatrix, SensitiveSpace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A frozen scoring problem: one `State` built from a seeded random
/// assignment, plus the λ the scan weights fairness with.
pub struct ScoringFixture<'a> {
    state: State<'a>,
    lambda: f64,
}

impl<'a> ScoringFixture<'a> {
    /// Build a fixture over pre-encoded views with a seeded uniform random
    /// assignment into `k` clusters (all attribute weights 1, the paper's
    /// Eq. 4 normalization, single-threaded state).
    pub fn new(
        matrix: &'a NumericMatrix,
        space: &SensitiveSpace,
        k: usize,
        lambda: f64,
        seed: u64,
    ) -> Self {
        Self::with_objective(
            matrix,
            space,
            k,
            lambda,
            seed,
            ObjectiveKind::Representativity,
        )
    }

    /// Same frozen problem, scored under an explicit [`ObjectiveKind`] —
    /// the harness behind the `objective_dispatch` benchmark group, which
    /// times the monomorphized trait dispatch per objective.
    pub fn with_objective(
        matrix: &'a NumericMatrix,
        space: &SensitiveSpace,
        k: usize,
        lambda: f64,
        seed: u64,
        objective: ObjectiveKind,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let assignment = (0..matrix.rows()).map(|_| rng.gen_range(0..k)).collect();
        let weights = vec![1.0; space.n_attrs()];
        let state = State::with_norm(
            matrix,
            space,
            &weights,
            k,
            assignment,
            FairnessNorm::DomainCardinality,
            objective,
            1,
        );
        Self { state, lambda }
    }

    /// The cached scoring scan: best-move δO for every object through the
    /// hot-path kernel (dot-product distances against materialized
    /// prototypes and norms, cached "old" fairness contributions, origin
    /// terms hoisted out of the candidate loop). Returns the sum of the
    /// best deltas so the whole scan stays observable to the optimizer.
    pub fn scan_cached(&self) -> f64 {
        (0..self.state.n)
            .map(|x| propose_move(&self.state, x, self.lambda, DeltaEngine::Incremental).1)
            .sum()
    }

    /// The literal scoring scan: the pre-cache per-pair work, kept as the
    /// benchmark baseline. For every candidate cluster it derives both
    /// prototypes from the running sums with a per-component division and
    /// recomputes all four fairness contributions (nothing hoisted, nothing
    /// cached) — exactly the per-unit work the scoring loop performed
    /// before the cache existed.
    pub fn scan_literal(&self) -> f64 {
        let state = &self.state;
        (0..state.n)
            .map(|x| {
                let from = state.assignment[x];
                let mut best = 0.0f64;
                for to in 0..state.k {
                    if to == from {
                        continue;
                    }
                    let s_from = state.size[from];
                    let d_out = if s_from > 1 {
                        let d = state.sq_dist_to_prototype(x, from);
                        -(s_from as f64 / (s_from as f64 - 1.0)) * d
                    } else {
                        0.0
                    };
                    let s_to = state.size[to];
                    let d_in = if s_to > 0 {
                        let d = state.sq_dist_to_prototype(x, to);
                        (s_to as f64 / (s_to as f64 + 1.0)) * d
                    } else {
                        0.0
                    };
                    let d_fair = state.delta_fairness(x, from, to);
                    let delta = (d_out + d_in) + self.lambda * d_fair;
                    if delta < best {
                        best = delta;
                    }
                }
                best
            })
            .sum()
    }

    /// Number of objects scanned per call.
    pub fn n(&self) -> usize {
        self.state.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairkm_data::{row, DatasetBuilder, Role};

    #[test]
    fn cached_and_literal_scans_agree() {
        let mut b = DatasetBuilder::new();
        b.numeric("x", Role::NonSensitive).unwrap();
        b.numeric("y", Role::NonSensitive).unwrap();
        b.categorical("g", Role::Sensitive, &["a", "b", "c"])
            .unwrap();
        for i in 0..200 {
            let side = (i % 4) as f64 * 3.0;
            let g = ["a", "b", "c"][i % 3];
            b.push_row(row![side + (i % 7) as f64 * 0.1, (i % 5) as f64, g])
                .unwrap();
        }
        let data = b.build().unwrap();
        let matrix = data
            .task_matrix(fairkm_data::Normalization::ZScore)
            .unwrap();
        let space = data.sensitive_space().unwrap();
        for seed in [0u64, 9] {
            let fixture = ScoringFixture::new(&matrix, &space, 4, 50.0, seed);
            let cached = fixture.scan_cached();
            let literal = fixture.scan_literal();
            assert!(
                (cached - literal).abs() <= 1e-9 * (1.0 + literal.abs()),
                "seed {seed}: cached {cached} vs literal {literal}"
            );
        }
    }
}
