//! Crash-safe persistence for the streaming engine: a [`DurableStream`]
//! wraps [`StreamingFairKm`] so every mutation is journaled to a
//! write-ahead log and periodic checksummed snapshots bound replay time.
//!
//! ## Durability contract
//!
//! Every mutating call (`ingest`, `evict`, `evict_oldest`, `reoptimize`,
//! `compact`) applies the operation to the in-memory engine, then appends
//! the operation to the WAL and **fsyncs before returning**. The report the
//! caller externalizes is therefore always covered by the durable log: a
//! crash at any point loses at most operations whose results no caller ever
//! saw. [`DurableStream::open`] recovers by decoding the newest verifying
//! snapshot and replaying the WAL suffix; because the engine is
//! bitwise-deterministic, the recovered state reproduces the uninterrupted
//! run exactly — assignments, objective, and trace compare equal down to
//! the float bits.
//!
//! If appending or syncing the journal fails, the in-memory engine is ahead
//! of the durable log; the stream enters a **wedged** state and every
//! further mutation returns [`PersistError::Wedged`] rather than silently
//! widening the gap. Reads still work; recovery is to reopen from disk.
//!
//! Snapshots serialize the engine's delta-maintained float aggregates
//! verbatim ([`StreamingFairKm::to_snapshot_bytes`]) — a
//! rebuild-from-assignment would re-sum in a different operation order and
//! land on different bits. Corruption anywhere (torn snapshot, flipped WAL
//! bit, truncated tail) surfaces as a typed error or a documented fallback
//! (older snapshot, torn-tail truncation) — never a panic, never silently
//! wrong bits.

use crate::config::FairKmError;
use crate::streaming::{EvictReport, IngestReport, StreamingConfig, StreamingFairKm};
use crate::wire::{self, Reader, WireError};
use fairkm_data::{wire_io, Value};
use fairkm_store::{DurableStore, StorageBackend, StoreError};

/// Error type of the durable streaming layer. Every failure mode is typed:
/// storage faults, corrupt encodings, model-level rejections, and the
/// wedged in-memory-ahead-of-log state.
#[derive(Debug)]
pub enum PersistError {
    /// The storage layer failed (I/O error, checksum mismatch, log gap…).
    Store(StoreError),
    /// A snapshot or journal entry failed to decode.
    Wire(WireError),
    /// The engine rejected the operation (validation failure); nothing was
    /// journaled and the in-memory state is unchanged.
    Model(FairKmError),
    /// The state directory holds no decodable snapshot to recover from.
    NoSnapshot,
    /// Replaying a durable journal entry failed — the entry decoded but the
    /// engine rejected it, which an uninterrupted run never did. This
    /// indicates corruption the checksums missed or a foreign log.
    Replay {
        /// Index of the failing entry within the replayed suffix.
        index: usize,
        /// The engine's rejection.
        source: FairKmError,
    },
    /// A previous journal append or sync failed, leaving the in-memory
    /// engine ahead of the durable log. Mutations are refused; reopen from
    /// disk to recover.
    Wedged,
    /// The operation **was durably journaled and applied** — only the
    /// cadence snapshot that followed failed. The operation must not be
    /// retried (it is committed; retrying would double-apply it). The
    /// stream is not wedged: the snapshot is retried at the next cadence
    /// point or explicitly via [`DurableStream::snapshot_now`]. Because
    /// the op committed, mutators return their report normally and stash
    /// this error for [`DurableStream::take_snapshot_failure`] instead of
    /// failing the call.
    SnapshotAfterCommit {
        /// Why the snapshot write failed.
        source: Box<PersistError>,
    },
    /// The state directory already holds data; `create` refuses to clobber
    /// an existing stream.
    StateDirNotEmpty,
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Store(e) => write!(f, "storage error: {e}"),
            PersistError::Wire(e) => write!(f, "corrupt persisted encoding: {e}"),
            PersistError::Model(e) => write!(f, "engine rejected operation: {e}"),
            PersistError::NoSnapshot => {
                write!(f, "no decodable snapshot in the state directory")
            }
            PersistError::Replay { index, source } => write!(
                f,
                "replaying durable journal entry {index} failed: {source}"
            ),
            PersistError::Wedged => write!(
                f,
                "stream is wedged: a journal write failed earlier, so the \
                 in-memory engine is ahead of the durable log; reopen from disk"
            ),
            PersistError::StateDirNotEmpty => {
                write!(f, "state directory already holds a stream")
            }
            PersistError::SnapshotAfterCommit { source } => write!(
                f,
                "operation committed durably, but the snapshot after it \
                 failed (do not retry the operation): {source}"
            ),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Store(e) => Some(e),
            PersistError::Wire(e) => Some(e),
            PersistError::Model(e) | PersistError::Replay { source: e, .. } => Some(e),
            PersistError::SnapshotAfterCommit { source } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<StoreError> for PersistError {
    fn from(e: StoreError) -> Self {
        PersistError::Store(e)
    }
}

impl From<WireError> for PersistError {
    fn from(e: WireError) -> Self {
        PersistError::Wire(e)
    }
}

impl From<FairKmError> for PersistError {
    fn from(e: FairKmError) -> Self {
        PersistError::Model(e)
    }
}

/// One journaled engine mutation. The WAL stores exactly the *inputs* of
/// each public mutating call; replaying them through the deterministic
/// engine reproduces every result bit.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamOp {
    /// `ingest(rows)`.
    Ingest(Vec<Vec<Value>>),
    /// `evict(slots)`.
    Evict(Vec<usize>),
    /// `evict_oldest(count)`.
    EvictOldest(usize),
    /// Explicit `reoptimize()`.
    Reoptimize,
    /// `compact()`.
    Compact,
}

impl StreamOp {
    /// Serialize (tag byte + payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            StreamOp::Ingest(rows) => {
                out.push(0);
                wire::put_usize(&mut out, rows.len());
                for row in rows {
                    wire_io::put_row(&mut out, row);
                }
            }
            StreamOp::Evict(slots) => {
                out.push(1);
                wire::put_usizes(&mut out, slots);
            }
            StreamOp::EvictOldest(count) => {
                out.push(2);
                wire::put_usize(&mut out, *count);
            }
            StreamOp::Reoptimize => out.push(3),
            StreamOp::Compact => out.push(4),
        }
        out
    }

    /// Decode an operation written by [`StreamOp::to_bytes`]; typed errors
    /// on truncated or malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let op = match r.take(1)?[0] {
            0 => {
                // A row costs at least its 8-byte length prefix.
                let n = r.get_len(8)?;
                let rows = (0..n)
                    .map(|_| wire_io::get_row(&mut r))
                    .collect::<Result<Vec<_>, _>>()?;
                StreamOp::Ingest(rows)
            }
            1 => StreamOp::Evict(r.get_usizes()?),
            2 => StreamOp::EvictOldest(r.get_usize()?),
            3 => StreamOp::Reoptimize,
            4 => StreamOp::Compact,
            t => {
                return Err(WireError::UnknownTag {
                    what: "stream op",
                    tag: t as u64,
                })
            }
        };
        r.expect_empty()?;
        Ok(op)
    }
}

/// What [`DurableStream::open`] did to get back to the pre-crash state.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Sequence number of the snapshot recovery started from.
    pub snapshot_seq: u64,
    /// Journal entries replayed on top of the snapshot.
    pub replayed: usize,
    /// Byte offset at which a torn final-segment tail was truncated, if one
    /// was found (the crash artifact the WAL design expects).
    pub truncated_tail: Option<u64>,
    /// Snapshot files that failed verification and were skipped in favor of
    /// an older base. Non-empty means storage corrupted a snapshot.
    pub skipped_snapshots: Vec<String>,
    /// Defective WAL segments wholly below the recovery base, skipped
    /// because the base snapshot already covers their entries.
    pub skipped_segments: Vec<String>,
}

/// A [`StreamingFairKm`] with crash-safe durability: see the
/// [module docs](self) for the journal-then-return contract.
#[derive(Debug)]
pub struct DurableStream<B: StorageBackend> {
    stream: StreamingFairKm,
    store: DurableStore<B>,
    snapshot_every: Option<u64>,
    ops_since_snapshot: u64,
    wedge_cause: Option<String>,
    deferred_snapshot_failure: Option<PersistError>,
}

impl<B: StorageBackend> DurableStream<B> {
    /// Bootstrap a new durable stream: fit the initial corpus, then write
    /// the bootstrap snapshot. Refuses a state directory that already
    /// holds stream data ([`PersistError::StateDirNotEmpty`]) — recovery
    /// goes through [`Self::open`], and clobbering is never implicit.
    ///
    /// `snapshot_every` bounds replay: after that many journaled
    /// operations a fresh snapshot is written and the WAL rolls. `None`
    /// journals forever (snapshot explicitly via [`Self::snapshot_now`]).
    pub fn create(
        backend: B,
        dataset: fairkm_data::Dataset,
        config: StreamingConfig,
        snapshot_every: Option<u64>,
    ) -> Result<Self, PersistError> {
        let (mut store, recovered) = DurableStore::open(backend)?;
        if recovered.snapshot.is_some() || !recovered.entries.is_empty() {
            return Err(PersistError::StateDirNotEmpty);
        }
        let stream = StreamingFairKm::bootstrap(dataset, config)?;
        store.snapshot(&stream.to_snapshot_bytes())?;
        Ok(Self {
            stream,
            store,
            snapshot_every,
            ops_since_snapshot: 0,
            wedge_cause: None,
            deferred_snapshot_failure: None,
        })
    }

    /// Recover a durable stream from its state directory: decode the newest
    /// verifying snapshot, replay the WAL suffix, and report what happened.
    /// `threads` is the restoring worker-pool request (`None` =
    /// environment/auto) — it never changes result bits.
    pub fn open(
        backend: B,
        threads: Option<usize>,
        snapshot_every: Option<u64>,
    ) -> Result<(Self, RecoveryReport), PersistError> {
        let (store, recovered) = DurableStore::open(backend)?;
        let snap = recovered.snapshot.ok_or(PersistError::NoSnapshot)?;
        let mut stream = StreamingFairKm::from_snapshot_bytes(&snap, threads)?;
        for (index, entry) in recovered.entries.iter().enumerate() {
            let op = StreamOp::from_bytes(entry)?;
            Self::apply(&mut stream, &op)
                .map_err(|source| PersistError::Replay { index, source })?;
        }
        let report = RecoveryReport {
            snapshot_seq: recovered.snapshot_seq,
            replayed: recovered.entries.len(),
            truncated_tail: recovered.truncated_tail,
            skipped_snapshots: recovered.skipped_snapshots,
            skipped_segments: recovered.skipped_segments,
        };
        Ok((
            Self {
                stream,
                store,
                snapshot_every,
                ops_since_snapshot: recovered.entries.len() as u64,
                wedge_cause: None,
                deferred_snapshot_failure: None,
            },
            report,
        ))
    }

    /// Apply one operation to the engine — the single dispatch both live
    /// calls and recovery replay go through, so they cannot diverge.
    fn apply(stream: &mut StreamingFairKm, op: &StreamOp) -> Result<(), FairKmError> {
        match op {
            StreamOp::Ingest(rows) => {
                stream.ingest(rows)?;
            }
            StreamOp::Evict(slots) => {
                stream.evict(slots)?;
            }
            StreamOp::EvictOldest(count) => {
                stream.evict_oldest(*count)?;
            }
            StreamOp::Reoptimize => {
                stream.reoptimize();
            }
            StreamOp::Compact => {
                stream.compact()?;
            }
        }
        Ok(())
    }

    /// Journal `op` durably (append + fsync), then run the snapshot
    /// cadence. Called only after the operation already succeeded in
    /// memory; a journal failure wedges the stream. A failure of the
    /// *cadence snapshot* does not wedge — the WAL already covers the
    /// operation — and it must not read as a failed (retryable) op, so
    /// it is stashed as [`PersistError::SnapshotAfterCommit`] for
    /// [`Self::take_snapshot_failure`] while the call itself succeeds;
    /// the unrolled cadence counter retries the snapshot on the next op.
    fn journal(&mut self, op: &StreamOp) -> Result<(), PersistError> {
        let res = (|| {
            self.store.append(&op.to_bytes())?;
            self.store.sync()
        })();
        if let Err(e) = res {
            self.wedge_cause = Some(e.to_string());
            return Err(e.into());
        }
        self.ops_since_snapshot += 1;
        if let Some(every) = self.snapshot_every {
            if self.ops_since_snapshot >= every {
                if let Err(e) = self.snapshot_now() {
                    self.deferred_snapshot_failure = Some(PersistError::SnapshotAfterCommit {
                        source: Box::new(e),
                    });
                }
            }
        }
        Ok(())
    }

    fn check_wedged(&self) -> Result<(), PersistError> {
        if self.wedge_cause.is_some() {
            Err(PersistError::Wedged)
        } else {
            Ok(())
        }
    }

    /// Durable [`StreamingFairKm::ingest`].
    pub fn ingest(&mut self, rows: &[Vec<Value>]) -> Result<IngestReport, PersistError> {
        self.check_wedged()?;
        let report = self.stream.ingest(rows)?;
        self.journal(&StreamOp::Ingest(rows.to_vec()))?;
        Ok(report)
    }

    /// Durable [`StreamingFairKm::evict`].
    pub fn evict(&mut self, slots: &[usize]) -> Result<EvictReport, PersistError> {
        self.check_wedged()?;
        let report = self.stream.evict(slots)?;
        self.journal(&StreamOp::Evict(slots.to_vec()))?;
        Ok(report)
    }

    /// Durable [`StreamingFairKm::evict_oldest`].
    pub fn evict_oldest(&mut self, count: usize) -> Result<EvictReport, PersistError> {
        self.check_wedged()?;
        let report = self.stream.evict_oldest(count)?;
        self.journal(&StreamOp::EvictOldest(count))?;
        Ok(report)
    }

    /// Durable explicit [`StreamingFairKm::reoptimize`]. Returns the number
    /// of moves.
    pub fn reoptimize(&mut self) -> Result<usize, PersistError> {
        self.check_wedged()?;
        let moves = self.stream.reoptimize();
        self.journal(&StreamOp::Reoptimize)?;
        Ok(moves)
    }

    /// Durable [`StreamingFairKm::compact`]. Returns the kept-slot mapping.
    pub fn compact(&mut self) -> Result<Vec<usize>, PersistError> {
        self.check_wedged()?;
        let kept = self.stream.compact()?;
        self.journal(&StreamOp::Compact)?;
        Ok(kept)
    }

    /// Write a snapshot now (sealing the WAL suffix first) and reset the
    /// snapshot cadence counter. Returns the snapshot's sequence number.
    pub fn snapshot_now(&mut self) -> Result<u64, PersistError> {
        self.check_wedged()?;
        let seq = self.store.snapshot(&self.stream.to_snapshot_bytes())?;
        self.ops_since_snapshot = 0;
        Ok(seq)
    }

    /// Read access to the wrapped engine.
    pub fn stream(&self) -> &StreamingFairKm {
        &self.stream
    }

    /// Read access to the underlying store (sequence numbers, backend).
    pub fn store(&self) -> &DurableStore<B> {
        &self.store
    }

    /// Whether a journal failure has wedged this stream (see
    /// [`PersistError::Wedged`]).
    pub fn is_wedged(&self) -> bool {
        self.wedge_cause.is_some()
    }

    /// The storage failure that wedged this stream, if any — what a
    /// serving layer reports alongside its degraded read-only mode.
    pub fn wedge_cause(&self) -> Option<&str> {
        self.wedge_cause.as_deref()
    }

    /// Take the stashed cadence-snapshot failure, if the last committed
    /// mutation's follow-up snapshot failed. The mutation itself is
    /// durable (see [`PersistError::SnapshotAfterCommit`]); callers that
    /// care about snapshot lag check this after mutating and must not
    /// retry the op.
    pub fn take_snapshot_failure(&mut self) -> Option<PersistError> {
        self.deferred_snapshot_failure.take()
    }

    /// Drop durability and keep the in-memory engine (e.g. to hand off to
    /// the sharded deployment via
    /// [`StreamingFairKm::into_shard_parts`]).
    pub fn into_stream(self) -> StreamingFairKm {
        self.stream
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FairKmConfig, Lambda};
    use fairkm_data::{row, DatasetBuilder, Role};
    use fairkm_store::{BitFlip, FaultPlan, SharedMemBackend, TornWrite};

    fn corpus(n_per_side: usize) -> fairkm_data::Dataset {
        let mut b = DatasetBuilder::new();
        b.numeric("x", Role::NonSensitive).unwrap();
        b.numeric("y", Role::NonSensitive).unwrap();
        b.categorical("g", Role::Sensitive, &["a", "b"]).unwrap();
        for i in 0..n_per_side {
            let jitter = (i % 7) as f64 * 0.05;
            b.push_row(row![jitter, jitter, "a"]).unwrap();
            b.push_row(row![5.0 + jitter, 5.0 - jitter, "b"]).unwrap();
        }
        b.build().unwrap()
    }

    fn arrival(i: usize) -> Vec<Value> {
        let jitter = (i % 5) as f64 * 0.04;
        if i.is_multiple_of(2) {
            row![jitter, jitter, "b"]
        } else {
            row![5.0 - jitter, 5.0 + jitter, "a"]
        }
    }

    fn config(seed: u64) -> StreamingConfig {
        StreamingConfig::from_base(
            FairKmConfig::new(2)
                .with_seed(seed)
                .with_lambda(Lambda::Fixed(50.0))
                .with_threads(1),
        )
    }

    fn fingerprint(s: &StreamingFairKm) -> (Vec<Option<usize>>, u64, Vec<u64>) {
        let assignments = (0..s.n_slots()).map(|i| s.assignment_of(i)).collect();
        let objective = s.objective().to_bits();
        let trace = s.trace().iter().map(|v| v.to_bits()).collect();
        (assignments, objective, trace)
    }

    #[test]
    fn snapshot_bytes_round_trip_bitwise() {
        let mut s = StreamingFairKm::bootstrap(corpus(20), config(3)).unwrap();
        for batch in 0..4 {
            let rows: Vec<Vec<Value>> = (batch * 5..batch * 5 + 5).map(arrival).collect();
            s.ingest(&rows).unwrap();
        }
        s.evict(&[0, 3]).unwrap();
        let bytes = s.to_snapshot_bytes();
        let restored = StreamingFairKm::from_snapshot_bytes(&bytes, Some(1)).unwrap();
        assert_eq!(fingerprint(&s), fingerprint(&restored));
        // Identical future behavior, not just identical current state.
        let mut a = s;
        let mut b = restored;
        for i in 20..30 {
            let ra = a.ingest(std::slice::from_ref(&arrival(i))).unwrap();
            let rb = b.ingest(std::slice::from_ref(&arrival(i))).unwrap();
            assert_eq!(ra.clusters, rb.clusters);
        }
        assert_eq!(fingerprint(&a), fingerprint(&b));
        // Re-encoding the restored engine reproduces the bytes exactly.
        assert_eq!(bytes, b_bytes_of(&b_reset(&bytes)));
    }

    // Helpers so the byte-stability check reads clearly.
    fn b_reset(bytes: &[u8]) -> StreamingFairKm {
        StreamingFairKm::from_snapshot_bytes(bytes, Some(1)).unwrap()
    }
    fn b_bytes_of(s: &StreamingFairKm) -> Vec<u8> {
        s.to_snapshot_bytes()
    }

    #[test]
    fn snapshot_truncations_are_typed_errors() {
        let s = StreamingFairKm::bootstrap(corpus(8), config(1)).unwrap();
        let bytes = s.to_snapshot_bytes();
        for cut in (0..bytes.len()).step_by(7) {
            assert!(StreamingFairKm::from_snapshot_bytes(&bytes[..cut], Some(1)).is_err());
        }
    }

    #[test]
    fn stream_ops_round_trip() {
        let ops = [
            StreamOp::Ingest(vec![arrival(0), arrival(1)]),
            StreamOp::Ingest(Vec::new()),
            StreamOp::Evict(vec![3, 1, 4]),
            StreamOp::EvictOldest(7),
            StreamOp::Reoptimize,
            StreamOp::Compact,
        ];
        for op in &ops {
            let bytes = op.to_bytes();
            assert_eq!(&StreamOp::from_bytes(&bytes).unwrap(), op);
            for cut in 0..bytes.len() {
                assert!(StreamOp::from_bytes(&bytes[..cut]).is_err());
            }
        }
    }

    #[test]
    fn crash_and_reopen_reproduces_the_uninterrupted_run() {
        // Reference: one uninterrupted in-memory run.
        let mut reference = StreamingFairKm::bootstrap(corpus(15), config(9)).unwrap();
        // Durable run over a shared in-memory backend.
        let backend = SharedMemBackend::new();
        let mut durable =
            DurableStream::create(backend.clone(), corpus(15), config(9), Some(3)).unwrap();
        for batch in 0..6 {
            let rows: Vec<Vec<Value>> = (batch * 4..batch * 4 + 4).map(arrival).collect();
            reference.ingest(&rows).unwrap();
            durable.ingest(&rows).unwrap();
        }
        reference.evict_oldest(5).unwrap();
        durable.evict_oldest(5).unwrap();
        assert_eq!(fingerprint(&reference), fingerprint(durable.stream()));

        // Crash: drop the handle, shear unsynced bytes, reopen.
        drop(durable);
        backend.crash();
        let (reopened, report) = DurableStream::open(backend.clone(), Some(1), Some(3)).unwrap();
        assert!(report.skipped_snapshots.is_empty());
        assert_eq!(fingerprint(&reference), fingerprint(reopened.stream()));
    }

    #[test]
    fn torn_journal_write_loses_only_unexternalized_ops() {
        let backend = SharedMemBackend::new();
        let mut durable =
            DurableStream::create(backend.clone(), corpus(12), config(4), None).unwrap();
        durable.ingest(&[arrival(0), arrival(1)]).unwrap();
        let durable_fp = fingerprint(durable.stream());

        // Arm a torn write for the next journal append: the op applies in
        // memory, but its journal record is sheared at the crash.
        backend.set_faults(FaultPlan {
            torn: Some(TornWrite { at_op: 1, keep: 3 }),
            flips: Vec::new(),
        });
        let err = durable.ingest(&[arrival(2)]).unwrap_err();
        assert!(matches!(err, PersistError::Store(_)), "got {err:?}");
        assert!(durable.is_wedged());
        assert!(matches!(
            durable.ingest(&[arrival(3)]),
            Err(PersistError::Wedged)
        ));

        drop(durable);
        backend.crash();
        let (reopened, report) = DurableStream::open(backend, Some(1), None).unwrap();
        // The torn record is truncated away; state matches the last
        // successfully externalized operation.
        assert!(report.truncated_tail.is_some() || report.replayed > 0);
        assert_eq!(durable_fp, fingerprint(reopened.stream()));
    }

    #[test]
    fn failed_cadence_snapshot_reports_the_op_as_committed() {
        let mut reference = StreamingFairKm::bootstrap(corpus(12), config(4)).unwrap();
        let backend = SharedMemBackend::new();
        let mut durable =
            DurableStream::create(backend.clone(), corpus(12), config(4), Some(2)).unwrap();
        reference.ingest(&[arrival(0)]).unwrap();
        durable.ingest(&[arrival(0)]).unwrap();
        reference.ingest(&[arrival(1)]).unwrap();

        // The second ingest triggers the cadence snapshot. Fail exactly
        // that write (op 1 is the WAL append, op 2 the snapshot): the op
        // is already journaled + applied, so the call succeeds with its
        // report and the snapshot failure is stashed as "committed, do
        // not retry" — it must not read as a failed ingest.
        backend.set_faults(FaultPlan {
            torn: Some(TornWrite { at_op: 2, keep: 0 }),
            flips: Vec::new(),
        });
        let report = durable.ingest(&[arrival(1)]).unwrap();
        assert_eq!(report.slots.len(), 1, "the committed op returns its report");
        let deferred = durable.take_snapshot_failure().unwrap();
        assert!(
            matches!(deferred, PersistError::SnapshotAfterCommit { .. }),
            "got {deferred:?}"
        );
        assert!(
            durable.take_snapshot_failure().is_none(),
            "take drains the stashed failure"
        );
        assert!(
            !durable.is_wedged(),
            "a snapshot failure must not wedge: the WAL already covers the op"
        );
        drop(durable);

        // The op really is committed: recovery replays it, so a caller
        // retrying after the deferred failure would have double-applied it.
        backend.crash();
        let (reopened, _) = DurableStream::open(backend, Some(1), Some(2)).unwrap();
        assert_eq!(fingerprint(&reference), fingerprint(reopened.stream()));
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_older_base() {
        let backend = SharedMemBackend::new();
        let mut durable =
            DurableStream::create(backend.clone(), corpus(10), config(2), Some(2)).unwrap();
        for batch in 0..4 {
            let rows: Vec<Vec<Value>> = (batch * 3..batch * 3 + 3).map(arrival).collect();
            durable.ingest(&rows).unwrap();
        }
        let expect = fingerprint(durable.stream());
        drop(durable);

        // Flip one bit in the newest snapshot payload.
        let newest = backend
            .list()
            .unwrap()
            .into_iter()
            .rfind(|n| n.starts_with("snap-"))
            .unwrap();
        backend.set_faults(FaultPlan {
            torn: None,
            flips: vec![BitFlip {
                file: newest.clone(),
                offset: 40,
                bit: 2,
            }],
        });
        backend.crash();

        let (reopened, report) = DurableStream::open(backend, Some(1), Some(2)).unwrap();
        assert_eq!(report.skipped_snapshots.len(), 1);
        assert!(report.skipped_snapshots[0].starts_with(&newest));
        assert_eq!(expect, fingerprint(reopened.stream()));
    }

    #[test]
    fn create_refuses_existing_state() {
        let backend = SharedMemBackend::new();
        let durable = DurableStream::create(backend.clone(), corpus(6), config(1), None).unwrap();
        drop(durable);
        assert!(matches!(
            DurableStream::create(backend, corpus(6), config(1), None),
            Err(PersistError::StateDirNotEmpty)
        ));
    }
}
