//! Large-`n` scheduling: [`MiniBatchFairKm`] drives FairKM through the
//! windowed mini-batch schedule (the paper's §6.1 future-work speedup) on
//! the `fairkm-parallel` execution engine.

use crate::config::{FairKmConfig, FairKmError, UpdateSchedule};
use crate::fairkm::{FairKm, FairKmModel};
use fairkm_data::{Dataset, NumericMatrix, SensitiveSpace};

/// Window-size floor for [`MiniBatchFairKm::auto_batch`]: smaller windows
/// rebuild aggregates too often to amortize anything.
const MIN_AUTO_BATCH: usize = 32;

/// Window-size ceiling for [`MiniBatchFairKm::auto_batch`]: beyond this the
/// aggregates scored against grow too stale and convergence degrades.
const MAX_AUTO_BATCH: usize = 8192;

/// Scheduler wrapper fitting FairKM with the windowed mini-batch schedule —
/// the configuration meant for large-`n` workloads.
///
/// Every window of `batch` objects is scored against aggregates frozen at
/// the window start, which makes the scores independent of each other: the
/// engine evaluates them across worker threads and applies accepted moves
/// in index order, so the result is **bitwise-identical for any thread
/// count** (and identical to a single-threaded scan of the same windows).
///
/// ```
/// use fairkm_core::{FairKmConfig, MiniBatchFairKm};
/// use fairkm_data::{row, DatasetBuilder, Role};
///
/// let mut b = DatasetBuilder::new();
/// b.numeric("x", Role::NonSensitive).unwrap();
/// b.categorical("g", Role::Sensitive, &["a", "b"]).unwrap();
/// for i in 0..40 {
///     let side = if i % 2 == 0 { 0.0 } else { 9.0 };
///     b.push_row(row![side + (i % 3) as f64 * 0.1, if i < 20 { "a" } else { "b" }])
///         .unwrap();
/// }
/// let data = b.build().unwrap();
///
/// let model = MiniBatchFairKm::auto(FairKmConfig::new(2).with_seed(3).with_threads(2))
///     .fit(&data)
///     .unwrap();
/// assert_eq!(model.assignments().len(), 40);
/// ```
#[derive(Debug, Clone)]
pub struct MiniBatchFairKm {
    config: FairKmConfig,
    /// Explicit window size; `None` resolves via [`Self::auto_batch`] once
    /// the dataset size is known.
    batch: Option<usize>,
}

impl MiniBatchFairKm {
    /// Scheduler with an explicit window size (must be positive; a zero
    /// batch is rejected at fit time like [`UpdateSchedule::MiniBatch`]).
    pub fn new(config: FairKmConfig, batch: usize) -> Self {
        Self {
            config,
            batch: Some(batch),
        }
    }

    /// Scheduler that picks the window size from the dataset size at fit
    /// time via [`Self::auto_batch`].
    pub fn auto(config: FairKmConfig) -> Self {
        Self {
            config,
            batch: None,
        }
    }

    /// The automatic window size for `n` objects: `n / 16` clamped to
    /// `[32, 8192]`, and never more than a quarter of the dataset. Large
    /// enough to amortize the per-window rebuild and keep every worker
    /// thread busy, small enough that the frozen aggregates stay fresh
    /// within a pass (whole-dataset windows are where the simultaneous
    /// update approximation degrades hardest).
    pub fn auto_batch(n: usize) -> usize {
        (n / 16)
            .clamp(MIN_AUTO_BATCH, MAX_AUTO_BATCH)
            .min(n.div_ceil(4).max(1))
    }

    /// Fit on a dataset (see [`FairKm::fit`]).
    pub fn fit(&self, dataset: &Dataset) -> Result<FairKmModel, FairKmError> {
        let matrix = dataset.task_matrix(self.config.normalization)?;
        let space = dataset.sensitive_space()?;
        self.fit_views(&matrix, &space)
    }

    /// Fit on pre-built views (see [`FairKm::fit_views`]).
    pub fn fit_views(
        &self,
        matrix: &NumericMatrix,
        space: &SensitiveSpace,
    ) -> Result<FairKmModel, FairKmError> {
        let batch = self
            .batch
            .unwrap_or_else(|| Self::auto_batch(matrix.rows()));
        let config = self
            .config
            .clone()
            .with_schedule(UpdateSchedule::MiniBatch(batch));
        FairKm::new(config).fit_views(matrix, space)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Lambda;
    use fairkm_data::{row, DatasetBuilder, Role};

    fn blobs(n_per_side: usize) -> Dataset {
        let mut b = DatasetBuilder::new();
        b.numeric("x", Role::NonSensitive).unwrap();
        b.categorical("g", Role::Sensitive, &["a", "b"]).unwrap();
        for i in 0..n_per_side {
            let jitter = (i % 5) as f64 * 0.05;
            b.push_row(row![jitter, "a"]).unwrap();
            b.push_row(row![4.0 + jitter, "b"]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn auto_batch_is_clamped() {
        assert_eq!(MiniBatchFairKm::auto_batch(100), 25);
        assert_eq!(MiniBatchFairKm::auto_batch(1_000), 62);
        assert_eq!(MiniBatchFairKm::auto_batch(16_000), 1_000);
        assert_eq!(MiniBatchFairKm::auto_batch(1_000_000), 8_192);
        assert_eq!(MiniBatchFairKm::auto_batch(1), 1);
    }

    #[test]
    fn explicit_and_schedule_configs_agree() {
        let data = blobs(40);
        let scheduler = MiniBatchFairKm::new(FairKmConfig::new(2).with_seed(5), 16)
            .fit(&data)
            .unwrap();
        let direct = FairKm::new(
            FairKmConfig::new(2)
                .with_seed(5)
                .with_schedule(UpdateSchedule::MiniBatch(16)),
        )
        .fit(&data)
        .unwrap();
        assert_eq!(scheduler.assignments(), direct.assignments());
        assert_eq!(
            scheduler.objective().to_bits(),
            direct.objective().to_bits()
        );
    }

    #[test]
    fn scheduler_is_thread_count_invariant() {
        let data = blobs(60);
        let one = MiniBatchFairKm::new(FairKmConfig::new(2).with_seed(9).with_threads(1), 32)
            .fit(&data)
            .unwrap();
        let four = MiniBatchFairKm::new(FairKmConfig::new(2).with_seed(9).with_threads(4), 32)
            .fit(&data)
            .unwrap();
        assert_eq!(one.assignments(), four.assignments());
        assert_eq!(one.objective().to_bits(), four.objective().to_bits());
    }

    #[test]
    fn zero_batch_is_rejected() {
        let data = blobs(4);
        assert!(matches!(
            MiniBatchFairKm::new(FairKmConfig::new(2), 0).fit(&data),
            Err(FairKmError::ZeroBatch)
        ));
    }

    #[test]
    fn stays_in_the_fair_regime() {
        let data = blobs(80);
        let blind = FairKm::new(
            FairKmConfig::new(2)
                .with_seed(2)
                .with_lambda(Lambda::Fixed(0.0)),
        )
        .fit(&data)
        .unwrap();
        let mini = MiniBatchFairKm::auto(FairKmConfig::new(2).with_seed(2))
            .fit(&data)
            .unwrap();
        // The group attribute is perfectly aligned with blob identity, so
        // the blind optimum is maximally unfair; the mini-batch scheduler
        // must land in the fair regime like the exact schedule does.
        assert!(
            mini.fairness_term() < blind.fairness_term() * 0.2,
            "mini {} vs blind {}",
            mini.fairness_term(),
            blind.fairness_term()
        );
    }

    #[test]
    fn objective_trace_stays_monotone_under_windowed_schedule() {
        // Monotone window acceptance: even with staged simultaneous moves
        // the objective trace must never increase.
        let data = blobs(60);
        for batch in [8usize, 30, 120, 1000] {
            let model = MiniBatchFairKm::new(FairKmConfig::new(3).with_seed(11), batch)
                .fit(&data)
                .unwrap();
            for w in model.objective_trace().windows(2) {
                assert!(
                    w[1] <= w[0] + 1e-9,
                    "batch {batch}: objective rose {} -> {}",
                    w[0],
                    w[1]
                );
            }
        }
    }
}
