//! Shard-support primitives: additive per-cluster aggregate deltas, a
//! serializable **rowless replica** of the cached scoring engine, and the
//! per-slot payloads the shard protocol moves around.
//!
//! The FairKM objective is a function of purely additive per-cluster
//! aggregates — `Σx`, `Σ‖x‖²`, per-group member counts, numeric value sums
//! — which is what makes a sharded optimizer possible at all. Correctness
//! of the sharded engine, however, is **bitwise**: the workspace-wide
//! determinism contract says thread counts and shard counts may change
//! wall-clock time, never a single bit of the clustering. Two pieces here
//! make that hold:
//!
//! * [`AggregateDelta`] is the exact per-chunk partial the single-node
//!   `State::rebuild` (crate-private) folds: deltas built
//!   row-by-row in slot order and merged in **chunk-index order from a
//!   zeroed identity** reproduce the single-node aggregate floats bit for
//!   bit, because `fairkm_parallel::fold_chunks` uses a thread-independent
//!   chunk decomposition and a left-fold merge. A distributed rebuild that
//!   chains each chunk's fold through the shards owning its slots (in slot
//!   order) and merges completed chunks in chunk order is therefore
//!   indistinguishable from the single-node rebuild.
//! * [`ShardModel`] replays the cached engine's float arithmetic —
//!   refresh, insert/remove/move deltas, insertion scoring, move proposal
//!   — operation for operation, against rows carried **inline** in
//!   protocol messages (crate-private `PointRef::Row` resolution)
//!   instead of stored attribute columns. Its caches are derived from the
//!   aggregates by the same refresh computation `State` runs, so a replica
//!   that applied the same ordered operation log holds the same bits.
//!
//! Snapshots ([`ShardModel::to_bytes`] / [`AggregateDelta::to_bytes`]) are
//! bit-exact little-endian encodings (see [`crate::wire`]): a shard that
//! crashes and rejoins from a snapshot plus a log suffix converges to the
//! same bitwise state as one that never crashed.

use crate::config::ObjectiveKind;
use crate::objective::{FairView, Objective, PointRef};
use crate::state::{CatAttr, NumAttr};
use crate::wire::{self, Reader, WireError};

/// Acceptance threshold shared by every optimizer path: a staged move (or
/// a whole window) must lower the objective by more than this to be kept.
/// Exposed so the sharded coordinator applies the exact filter the
/// single-node windowed pass uses.
pub const MOVE_EPS: f64 = 1e-10;

/// Cluster sentinel for a backing-store slot that is not part of the
/// clustering (never ingested or already evicted) — the shard-protocol
/// mirror of the engine-internal `UNASSIGNED`.
pub const TOMBSTONE: usize = usize::MAX;

/// One backing-store slot's full payload: task row, sensitive values
/// (categorical then numeric, in attribute order), the cached `‖x‖²`, and
/// the current cluster ([`TOMBSTONE`] when evicted). This is what a shard
/// stores for the slots it owns, and what protocol messages carry so
/// rowless replicas can evaluate deltas for non-owned points.
#[derive(Clone, Debug, PartialEq)]
pub struct SlotRow {
    /// Task-matrix row.
    pub row: Vec<f64>,
    /// Categorical sensitive values, by attribute position.
    pub cat: Vec<u32>,
    /// Numeric sensitive values, by attribute position.
    pub num: Vec<f64>,
    /// Cached `‖x‖²` — computed once at ingest, exactly like the
    /// single-node engine computes `point_sqnorm`.
    pub sqnorm: f64,
    /// Current cluster, or [`TOMBSTONE`].
    pub cluster: usize,
}

impl SlotRow {
    /// Serialize (bit-exact).
    pub fn to_bytes(&self, out: &mut Vec<u8>) {
        wire::put_f64s(out, &self.row);
        wire::put_u32s(out, &self.cat);
        wire::put_f64s(out, &self.num);
        wire::put_f64(out, self.sqnorm);
        wire::put_usize(out, self.cluster);
    }

    /// Decode one slot row; a typed error on truncated or malformed
    /// bytes.
    pub fn from_reader(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            row: r.get_f64s()?,
            cat: r.get_u32s()?,
            num: r.get_f64s()?,
            sqnorm: r.get_f64()?,
            cluster: r.get_usize()?,
        })
    }
}

/// Additive per-cluster aggregates: member counts, prototype sums,
/// per-(attribute, value) member counts, numeric value sums, and member
/// `Σ‖x‖²`. This is both the *partial* of a chunked rebuild and the
/// *snapshot* of a replica's aggregate state (the live count is `Σ size`).
///
/// [`AggregateDelta::add_row`] performs exactly the per-row operations of
/// the single-node rebuild, and [`AggregateDelta::merge`] is its
/// component-wise left-fold — folding rows in slot order within chunks and
/// chunks in chunk-index order from [`AggregateDelta::zeroed`] reproduces
/// the single-node aggregates bitwise (module docs).
#[derive(Clone, Debug, PartialEq)]
pub struct AggregateDelta {
    /// Per-cluster member counts `|C|`.
    pub size: Vec<usize>,
    /// Flat k×dim prototype sums.
    pub centroid_sum: Vec<f64>,
    /// Per categorical attribute: flat k×t member counts.
    pub cat_counts: Vec<Vec<i64>>,
    /// Per numeric attribute: per-cluster value sums.
    pub num_sums: Vec<Vec<f64>>,
    /// Per-cluster `Σ_{i∈c} ‖x_i‖²`.
    pub member_sqnorm: Vec<f64>,
}

impl AggregateDelta {
    /// The zeroed identity for `k` clusters over a `dim`-dimensional task
    /// space with the given categorical cardinalities and numeric
    /// attribute count.
    pub fn zeroed(k: usize, dim: usize, cat_ts: &[usize], n_num: usize) -> Self {
        Self {
            size: vec![0; k],
            centroid_sum: vec![0.0; k * dim],
            cat_counts: cat_ts.iter().map(|&t| vec![0i64; k * t]).collect(),
            num_sums: (0..n_num).map(|_| vec![0.0; k]).collect(),
            member_sqnorm: vec![0.0; k],
        }
    }

    /// Fold one live row assigned to cluster `c` into the delta — the
    /// exact per-row operation sequence of the single-node rebuild (size,
    /// centroid components, categorical counts, numeric sums, `‖x‖²`).
    pub fn add_row(
        &mut self,
        c: usize,
        row: &[f64],
        cat_vals: &[u32],
        num_vals: &[f64],
        sqnorm: f64,
    ) {
        let k = self.size.len();
        self.size[c] += 1;
        let dim = row.len();
        let dst = &mut self.centroid_sum[c * dim..(c + 1) * dim];
        for (d, v) in dst.iter_mut().zip(row) {
            *d += v;
        }
        for (counts, &v) in self.cat_counts.iter_mut().zip(cat_vals) {
            let t = counts.len() / k;
            counts[c * t + v as usize] += 1;
        }
        for (sums, &v) in self.num_sums.iter_mut().zip(num_vals) {
            sums[c] += v;
        }
        self.member_sqnorm[c] += sqnorm;
    }

    /// Fold `other` into `self` component-wise. Chunk partials must be
    /// merged in chunk-index order — that ordering is what keeps the float
    /// sums identical at any thread or shard count.
    pub fn merge(mut self, other: Self) -> Self {
        for (total, add) in self.size.iter_mut().zip(&other.size) {
            *total += add;
        }
        for (total, add) in self.centroid_sum.iter_mut().zip(&other.centroid_sum) {
            *total += add;
        }
        for (totals, adds) in self.cat_counts.iter_mut().zip(&other.cat_counts) {
            for (total, add) in totals.iter_mut().zip(adds) {
                *total += add;
            }
        }
        for (totals, adds) in self.num_sums.iter_mut().zip(&other.num_sums) {
            for (total, add) in totals.iter_mut().zip(adds) {
                *total += add;
            }
        }
        for (total, add) in self.member_sqnorm.iter_mut().zip(&other.member_sqnorm) {
            *total += add;
        }
        self
    }

    /// Serialize (bit-exact).
    pub fn to_bytes(&self, out: &mut Vec<u8>) {
        wire::put_usizes(out, &self.size);
        wire::put_f64s(out, &self.centroid_sum);
        wire::put_usize(out, self.cat_counts.len());
        for counts in &self.cat_counts {
            wire::put_i64s(out, counts);
        }
        wire::put_usize(out, self.num_sums.len());
        for sums in &self.num_sums {
            wire::put_f64s(out, sums);
        }
        wire::put_f64s(out, &self.member_sqnorm);
    }

    /// Decode; a typed error on truncated or malformed bytes.
    pub fn from_reader(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let size = r.get_usizes()?;
        let centroid_sum = r.get_f64s()?;
        let n_cat = r.get_len(8)?;
        let cat_counts = (0..n_cat).map(|_| r.get_i64s()).collect::<Result<_, _>>()?;
        let n_num = r.get_len(8)?;
        let num_sums = (0..n_num).map(|_| r.get_f64s()).collect::<Result<_, _>>()?;
        let member_sqnorm = r.get_f64s()?;
        Ok(Self {
            size,
            centroid_sum,
            cat_counts,
            num_sums,
            member_sqnorm,
        })
    }
}

pub(crate) fn encode_kind(out: &mut Vec<u8>, kind: ObjectiveKind) {
    match kind {
        ObjectiveKind::Representativity => wire::put_u32(out, 0),
        ObjectiveKind::BoundedRepresentation { lower, upper } => {
            wire::put_u32(out, 1);
            wire::put_f64(out, lower);
            wire::put_f64(out, upper);
        }
        ObjectiveKind::Utilitarian => wire::put_u32(out, 2),
        ObjectiveKind::Egalitarian => wire::put_u32(out, 3),
    }
}

pub(crate) fn decode_kind(r: &mut Reader<'_>) -> Result<ObjectiveKind, WireError> {
    Ok(match r.get_u32()? {
        0 => ObjectiveKind::Representativity,
        1 => ObjectiveKind::BoundedRepresentation {
            lower: r.get_f64()?,
            upper: r.get_f64()?,
        },
        2 => ObjectiveKind::Utilitarian,
        3 => ObjectiveKind::Egalitarian,
        tag => {
            return Err(WireError::UnknownTag {
                what: "objective kind",
                tag: tag as u64,
            })
        }
    })
}

/// A **rowless replica** of the cached scoring engine: the per-cluster
/// aggregates, the frozen fairness reference (dataset distributions,
/// value scales, means, weights), the active objective, and the scoring
/// caches — but no point storage. Every operation takes the affected
/// point's row/values inline, which is how shard replicas evaluate deltas
/// for points they don't own.
///
/// Every method replays the corresponding single-node `State` computation
/// float-operation for float-operation (the sharded determinism matrix
/// pins this bitwise), so a replica that applies the same ordered
/// operation log as the single-node engine holds identical aggregates,
/// caches, and objective values.
#[derive(Clone, Debug)]
pub struct ShardModel {
    k: usize,
    dim: usize,
    live: usize,
    size: Vec<usize>,
    centroid_sum: Vec<f64>,
    /// Frozen categorical reference; `values` is intentionally empty.
    cat: Vec<CatAttr>,
    cat_counts: Vec<Vec<i64>>,
    /// Frozen numeric reference; `values` is intentionally empty.
    num: Vec<NumAttr>,
    num_sums: Vec<Vec<f64>>,
    member_sqnorm: Vec<f64>,
    objective: Objective,
    /// Retained for serialization: the objective is reconstructed from the
    /// kind against the frozen reference on decode.
    kind: ObjectiveKind,
    proto: Vec<f64>,
    proto_sqnorm: Vec<f64>,
    fair_cache: Vec<f64>,
    dirty: Vec<bool>,
    dirty_list: Vec<usize>,
}

impl ShardModel {
    /// Assemble a replica from frozen attribute references (whose `values`
    /// are ignored and cleared), the objective kind, and an aggregate
    /// snapshot. Caches are derived by a full refresh — the same
    /// computation the single-node engine runs after a rebuild, so they
    /// carry the same bits as a freshly-rebuilt `State` over the same
    /// aggregates.
    pub(crate) fn assemble(
        k: usize,
        dim: usize,
        mut cat: Vec<CatAttr>,
        mut num: Vec<NumAttr>,
        kind: ObjectiveKind,
        agg: AggregateDelta,
    ) -> Self {
        for attr in &mut cat {
            attr.values = Vec::new();
        }
        for attr in &mut num {
            attr.values = Vec::new();
        }
        let objective = Objective::from_kind(kind, &cat, &num);
        let mut model = Self {
            k,
            dim,
            live: 0,
            size: vec![0; k],
            centroid_sum: vec![0.0; k * dim],
            cat_counts: cat.iter().map(|a| vec![0i64; k * a.t]).collect(),
            num_sums: num.iter().map(|_| vec![0.0; k]).collect(),
            cat,
            num,
            member_sqnorm: vec![0.0; k],
            objective,
            kind,
            proto: vec![0.0; k * dim],
            proto_sqnorm: vec![0.0; k],
            fair_cache: vec![0.0; k],
            dirty: vec![false; k],
            dirty_list: Vec::with_capacity(k),
        };
        model.install(agg);
        model
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Task-space dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Live (assigned) point count `|X|`.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Per-cluster member counts.
    pub fn size(&self) -> &[usize] {
        &self.size
    }

    /// Cached per-cluster fairness contributions (requires a fresh cache).
    pub fn fairness_contribs(&self) -> &[f64] {
        debug_assert!(self.cache_is_fresh());
        &self.fair_cache
    }

    /// Per-attribute categorical cardinalities (shape of the aggregates).
    pub fn cat_ts(&self) -> Vec<usize> {
        self.cat.iter().map(|a| a.t).collect()
    }

    /// Number of numeric sensitive attributes.
    pub fn n_num(&self) -> usize {
        self.num.len()
    }

    /// A zeroed [`AggregateDelta`] shaped like this model's aggregates.
    pub fn zeroed_delta(&self) -> AggregateDelta {
        AggregateDelta::zeroed(self.k, self.dim, &self.cat_ts(), self.num.len())
    }

    /// Snapshot the aggregates (the live count is `Σ size`; caches are
    /// derived state and re-derived on [`Self::install`]).
    pub fn snapshot(&self) -> AggregateDelta {
        AggregateDelta {
            size: self.size.clone(),
            centroid_sum: self.centroid_sum.clone(),
            cat_counts: self.cat_counts.clone(),
            num_sums: self.num_sums.clone(),
            member_sqnorm: self.member_sqnorm.clone(),
        }
    }

    /// Replace the aggregates wholesale and re-derive every cache entry —
    /// the replica-side equivalent of the single-node rebuild's
    /// install-and-refresh tail. Applying the delta produced by an ordered
    /// chunked rebuild makes the replica bitwise-identical to a rebuilt
    /// single-node engine.
    pub fn install(&mut self, agg: AggregateDelta) {
        debug_assert_eq!(agg.size.len(), self.k);
        debug_assert_eq!(agg.centroid_sum.len(), self.k * self.dim);
        self.size = agg.size;
        self.centroid_sum = agg.centroid_sum;
        self.cat_counts = agg.cat_counts;
        self.num_sums = agg.num_sums;
        self.member_sqnorm = agg.member_sqnorm;
        self.live = self.size.iter().sum();
        self.mark_all_dirty();
        self.refresh_cache();
    }

    #[inline]
    fn fair_view(&self) -> FairView<'_> {
        FairView {
            size: &self.size,
            live: self.live,
            cat: &self.cat,
            cat_counts: &self.cat_counts,
            num: &self.num,
            num_sums: &self.num_sums,
        }
    }

    fn mark_dirty(&mut self, c: usize) {
        if !self.dirty[c] {
            self.dirty[c] = true;
            self.dirty_list.push(c);
        }
    }

    fn mark_all_dirty(&mut self) {
        for c in 0..self.k {
            self.mark_dirty(c);
        }
    }

    /// Whether every cache entry is current.
    pub fn cache_is_fresh(&self) -> bool {
        self.dirty_list.is_empty()
    }

    /// Re-derive the cache entries of every dirty cluster — the exact
    /// refresh arithmetic of the single-node engine.
    pub fn refresh_cache(&mut self) {
        while let Some(c) = self.dirty_list.pop() {
            self.dirty[c] = false;
            self.fair_cache[c] =
                self.objective
                    .contrib_adjusted(&self.fair_view(), c, PointRef::None, 0);
            let span = c * self.dim..(c + 1) * self.dim;
            if self.size[c] == 0 {
                self.proto[span].fill(0.0);
                self.proto_sqnorm[c] = 0.0;
            } else {
                let inv = 1.0 / self.size[c] as f64;
                let mut sqnorm = 0.0;
                for (p, s) in self.proto[span.clone()]
                    .iter_mut()
                    .zip(&self.centroid_sum[span])
                {
                    let v = s * inv;
                    *p = v;
                    sqnorm += v * v;
                }
                self.proto_sqnorm[c] = sqnorm;
            }
        }
    }

    /// Insert a point into cluster `c` (aggregate side of the single-node
    /// streaming insert; assignment bookkeeping lives with the caller).
    pub fn insert_row(
        &mut self,
        c: usize,
        row: &[f64],
        cat_vals: &[u32],
        num_vals: &[f64],
        sqnorm: f64,
    ) {
        debug_assert!(c < self.k);
        self.size[c] += 1;
        self.live += 1;
        let dst = &mut self.centroid_sum[c * self.dim..(c + 1) * self.dim];
        for (d, v) in dst.iter_mut().zip(row) {
            *d += v;
        }
        for ((attr, counts), &v) in self.cat.iter().zip(&mut self.cat_counts).zip(cat_vals) {
            counts[c * attr.t + v as usize] += 1;
        }
        for (sums, &v) in self.num_sums.iter_mut().zip(num_vals) {
            sums[c] += v;
        }
        self.member_sqnorm[c] += sqnorm;
        if self.objective.dirties_all_on_live_change() {
            self.mark_all_dirty();
        } else {
            self.mark_dirty(c);
        }
    }

    /// Remove a point from cluster `c` (inverse of [`Self::insert_row`]).
    pub fn remove_row(
        &mut self,
        c: usize,
        row: &[f64],
        cat_vals: &[u32],
        num_vals: &[f64],
        sqnorm: f64,
    ) {
        debug_assert!(self.size[c] > 0);
        self.size[c] -= 1;
        self.live -= 1;
        let dst = &mut self.centroid_sum[c * self.dim..(c + 1) * self.dim];
        for (d, v) in dst.iter_mut().zip(row) {
            *d -= v;
        }
        for ((attr, counts), &v) in self.cat.iter().zip(&mut self.cat_counts).zip(cat_vals) {
            counts[c * attr.t + v as usize] -= 1;
        }
        for (sums, &v) in self.num_sums.iter_mut().zip(num_vals) {
            sums[c] -= v;
        }
        self.member_sqnorm[c] -= sqnorm;
        if self.objective.dirties_all_on_live_change() {
            self.mark_all_dirty();
        } else {
            self.mark_dirty(c);
        }
    }

    /// Move a point `from → to` — the exact fused-update arithmetic of the
    /// single-node `apply_move` (one `-=`/`+=` pair per centroid
    /// component), so the drifted float sums match bit for bit.
    pub fn move_row(
        &mut self,
        from: usize,
        to: usize,
        row: &[f64],
        cat_vals: &[u32],
        num_vals: &[f64],
        sqnorm: f64,
    ) {
        debug_assert_ne!(from, to);
        debug_assert!(self.size[from] > 0);
        self.size[from] -= 1;
        self.size[to] += 1;
        {
            let (lo, hi, from_first) = if from < to {
                (from, to, true)
            } else {
                (to, from, false)
            };
            let (head, tail) = self.centroid_sum.split_at_mut(hi * self.dim);
            let lo_slice = &mut head[lo * self.dim..(lo + 1) * self.dim];
            let hi_slice = &mut tail[..self.dim];
            let (from_slice, to_slice) = if from_first {
                (lo_slice, hi_slice)
            } else {
                (hi_slice, lo_slice)
            };
            for ((f, t), v) in from_slice.iter_mut().zip(to_slice).zip(row) {
                *f -= v;
                *t += v;
            }
        }
        for ((attr, counts), &val) in self.cat.iter().zip(&mut self.cat_counts).zip(cat_vals) {
            let v = val as usize;
            counts[from * attr.t + v] -= 1;
            counts[to * attr.t + v] += 1;
        }
        for (sums, &v) in self.num_sums.iter_mut().zip(num_vals) {
            sums[from] -= v;
            sums[to] += v;
        }
        self.member_sqnorm[from] -= sqnorm;
        self.member_sqnorm[to] += sqnorm;
        if self.objective.dirties_all_on_move() {
            self.mark_all_dirty();
        } else {
            self.mark_dirty(from);
            self.mark_dirty(to);
        }
    }

    /// Squared distance from an external row to cluster `c`'s prototype in
    /// the cached dot-product form; `f64::INFINITY` for an empty cluster.
    #[inline]
    pub fn sq_dist_row_cached(&self, row: &[f64], sqnorm: f64, c: usize) -> f64 {
        debug_assert!(!self.dirty[c], "scoring against a stale prototype cache");
        if self.size[c] == 0 {
            return f64::INFINITY;
        }
        let proto = &self.proto[c * self.dim..(c + 1) * self.dim];
        let mut dot = 0.0;
        for (v, p) in row.iter().zip(proto) {
            dot += v * p;
        }
        (sqnorm - 2.0 * dot + self.proto_sqnorm[c]).max(0.0)
    }

    /// The K-Means term from the cache in O(k) (single-node identity
    /// `SSE_c = Σ‖x‖² − |c|·‖μ_c‖²`, clamped per cluster).
    pub fn kmeans_term_cached(&self) -> f64 {
        debug_assert!(self.cache_is_fresh());
        (0..self.k)
            .map(|c| (self.member_sqnorm[c] - self.size[c] as f64 * self.proto_sqnorm[c]).max(0.0))
            .sum()
    }

    /// The fairness term from the cache in O(k).
    pub fn fairness_term_cached(&self) -> f64 {
        debug_assert!(self.cache_is_fresh());
        self.objective.assemble(&self.fair_cache)
    }

    /// Full objective `kmeans + λ·fairness` from the cache in O(k).
    pub fn objective_cached(&self, lambda: f64) -> f64 {
        self.kmeans_term_cached() + lambda * self.fairness_term_cached()
    }

    /// Write cluster `c`'s prototype (mean) into `out`; zeros if empty —
    /// identical arithmetic to the single-node accessor.
    pub fn prototype_into(&self, c: usize, out: &mut [f64]) {
        let src = &self.centroid_sum[c * self.dim..(c + 1) * self.dim];
        if self.size[c] == 0 {
            out.fill(0.0);
            return;
        }
        let inv = 1.0 / self.size[c] as f64;
        for (o, s) in out.iter_mut().zip(src) {
            *o = s * inv;
        }
    }

    fn insertion_delta_with_total(
        &self,
        c: usize,
        row: &[f64],
        cat_vals: &[u32],
        num_vals: &[f64],
        lambda: f64,
        fair_total: f64,
    ) -> f64 {
        debug_assert!(self.cache_is_fresh());
        let s = self.size[c];
        let d_km = if s > 0 {
            let proto = &self.proto[c * self.dim..(c + 1) * self.dim];
            let mut dot = 0.0;
            let mut row_sqnorm = 0.0;
            for (v, p) in row.iter().zip(proto) {
                dot += v * p;
                row_sqnorm += v * v;
            }
            let d = (row_sqnorm - 2.0 * dot + self.proto_sqnorm[c]).max(0.0);
            (s as f64 / (s as f64 + 1.0)) * d
        } else {
            0.0
        };
        let live = self.live as f64;
        let shrink = self.objective.insertion_rescale(live);
        let new_fair = self
            .objective
            .insertion_contrib(&self.fair_view(), c, cat_vals, num_vals)
            + (fair_total - self.fair_cache[c]) * shrink;
        d_km + lambda * (new_fair - fair_total)
    }

    /// Frozen-prototype assignment of an external point — the exact
    /// single-node arrival-scoring scan (fairness total hoisted once,
    /// strict-improvement candidate loop, ties to the lowest index).
    pub fn score_insertion(
        &self,
        row: &[f64],
        cat_vals: &[u32],
        num_vals: &[f64],
        lambda: f64,
    ) -> (usize, f64) {
        let fair_total: f64 = self.fair_cache.iter().sum();
        let mut best = 0usize;
        let mut best_delta = f64::INFINITY;
        for c in 0..self.k {
            let delta =
                self.insertion_delta_with_total(c, row, cat_vals, num_vals, lambda, fair_total);
            if delta < best_delta {
                best_delta = delta;
                best = c;
            }
        }
        (best, best_delta)
    }

    /// Best-move proposal for a live point currently in `from` — the exact
    /// single-node incremental-engine proposal (outbound distance and
    /// origin contributions hoisted, strict-improvement candidate loop).
    /// Returns `(best_to, best_delta)`; `best_to == from` when no
    /// candidate improves the objective.
    pub fn propose_move_row(
        &self,
        from: usize,
        row: &[f64],
        cat_vals: &[u32],
        num_vals: &[f64],
        sqnorm: f64,
        lambda: f64,
    ) -> (usize, f64) {
        let mut best_to = from;
        let mut best_delta = 0.0f64;
        let s_from = self.size[from];
        let d_out = if s_from > 1 {
            let d = self.sq_dist_row_cached(row, sqnorm, from);
            -(s_from as f64 / (s_from as f64 - 1.0)) * d
        } else {
            // removing the last member: that cluster's SSE was 0
            0.0
        };
        let p = PointRef::Row(cat_vals, num_vals);
        let out_new = self
            .objective
            .contrib_adjusted(&self.fair_view(), from, p, -1);
        let out_old = self.fair_cache[from];
        for to in 0..self.k {
            if to == from {
                continue;
            }
            let s_to = self.size[to];
            let d_in = if s_to > 0 {
                let d = self.sq_dist_row_cached(row, sqnorm, to);
                (s_to as f64 / (s_to as f64 + 1.0)) * d
            } else {
                0.0 // singleton in an empty cluster has SSE 0
            };
            let d_km = d_out + d_in;
            let in_new = self.objective.contrib_adjusted(&self.fair_view(), to, p, 1);
            let in_old = self.fair_cache[to];
            let d_fair = (out_new + in_new) - (out_old + in_old);
            let delta = d_km + lambda * d_fair;
            if delta < best_delta {
                best_delta = delta;
                best_to = to;
            }
        }
        (best_to, best_delta)
    }

    /// Serialize the full replica: frozen reference, objective kind, and
    /// aggregates. Caches are derived state and are re-derived bitwise on
    /// decode (a refreshed cache is a pure function of the aggregates).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        wire::put_usize(&mut out, self.k);
        wire::put_usize(&mut out, self.dim);
        wire::put_usize(&mut out, self.cat.len());
        for attr in &self.cat {
            wire::put_usize(&mut out, attr.t);
            wire::put_f64s(&mut out, &attr.dist);
            wire::put_f64s(&mut out, &attr.value_scale);
            wire::put_f64(&mut out, attr.weight);
        }
        wire::put_usize(&mut out, self.num.len());
        for attr in &self.num {
            wire::put_f64(&mut out, attr.mean);
            wire::put_f64(&mut out, attr.weight);
        }
        encode_kind(&mut out, self.kind);
        self.snapshot().to_bytes(&mut out);
        out
    }

    /// Decode a replica serialized by [`Self::to_bytes`]; a typed error
    /// on a truncated or malformed buffer.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let model = Self::from_reader(&mut r)?;
        r.expect_empty()?;
        Ok(model)
    }

    /// Decode a replica from a sequential reader (for embedding inside
    /// larger snapshots); a typed error on truncated or malformed bytes.
    pub fn from_reader(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let k = r.get_usize()?;
        let dim = r.get_usize()?;
        let n_cat = r.get_len(8)?;
        let mut cat = Vec::with_capacity(n_cat);
        for _ in 0..n_cat {
            cat.push(CatAttr {
                values: Vec::new(),
                t: r.get_usize()?,
                dist: r.get_f64s()?,
                value_scale: r.get_f64s()?,
                weight: r.get_f64()?,
            });
        }
        let n_num = r.get_len(8)?;
        let mut num = Vec::with_capacity(n_num);
        for _ in 0..n_num {
            num.push(NumAttr {
                values: Vec::new(),
                mean: r.get_f64()?,
                weight: r.get_f64()?,
            });
        }
        let kind = decode_kind(r)?;
        let agg = AggregateDelta::from_reader(r)?;
        Ok(Self::assemble(k, dim, cat, num, kind, agg))
    }
}
