//! Minimal little-endian wire codec for shard snapshots and protocol
//! payloads: fixed-width integers, bit-exact floats (`f64::to_bits`), and
//! length-prefixed vectors. Hand-rolled because the workspace's vendored
//! `serde` shim is a no-op — and because snapshots feed a **bitwise**
//! determinism contract, so the encoding must round-trip floats exactly
//! (which text formats do not guarantee without care).

/// Append a `u64` in little-endian order.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `usize` as a `u64`.
pub fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

/// Append an `i64` in little-endian order.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` as its exact bit pattern.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Append a `u32` in little-endian order.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed `f64` slice.
pub fn put_f64s(out: &mut Vec<u8>, vs: &[f64]) {
    put_usize(out, vs.len());
    for &v in vs {
        put_f64(out, v);
    }
}

/// Append a length-prefixed `i64` slice.
pub fn put_i64s(out: &mut Vec<u8>, vs: &[i64]) {
    put_usize(out, vs.len());
    for &v in vs {
        put_i64(out, v);
    }
}

/// Append a length-prefixed `u32` slice.
pub fn put_u32s(out: &mut Vec<u8>, vs: &[u32]) {
    put_usize(out, vs.len());
    for &v in vs {
        put_u32(out, v);
    }
}

/// Append a length-prefixed `usize` slice (as `u64`s).
pub fn put_usizes(out: &mut Vec<u8>, vs: &[usize]) {
    put_usize(out, vs.len());
    for &v in vs {
        put_usize(out, v);
    }
}

/// Sequential reader over an encoded buffer. Every `get_*` consumes from
/// the front and returns `None` on truncation — corrupt snapshots surface
/// as a decode failure, never as a panic or as silently wrong state.
#[derive(Debug)]
pub struct Reader<'b> {
    buf: &'b [u8],
}

impl<'b> Reader<'b> {
    /// Wrap a buffer for sequential decoding.
    pub fn new(buf: &'b [u8]) -> Self {
        Self { buf }
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    fn take(&mut self, n: usize) -> Option<&'b [u8]> {
        if self.buf.len() < n {
            return None;
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Some(head)
    }

    /// Read a `u64`.
    pub fn get_u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Read a `usize` (encoded as `u64`; fails if it overflows `usize`).
    pub fn get_usize(&mut self) -> Option<usize> {
        self.get_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// Read an `i64`.
    pub fn get_i64(&mut self) -> Option<i64> {
        self.take(8)
            .map(|b| i64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Read an `f64` from its exact bit pattern.
    pub fn get_f64(&mut self) -> Option<f64> {
        self.get_u64().map(f64::from_bits)
    }

    /// Read a `u32`.
    pub fn get_u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    /// Read a length-prefixed `f64` vector.
    pub fn get_f64s(&mut self) -> Option<Vec<f64>> {
        let len = self.get_usize()?;
        (0..len).map(|_| self.get_f64()).collect()
    }

    /// Read a length-prefixed `i64` vector.
    pub fn get_i64s(&mut self) -> Option<Vec<i64>> {
        let len = self.get_usize()?;
        (0..len).map(|_| self.get_i64()).collect()
    }

    /// Read a length-prefixed `u32` vector.
    pub fn get_u32s(&mut self) -> Option<Vec<u32>> {
        let len = self.get_usize()?;
        (0..len).map(|_| self.get_u32()).collect()
    }

    /// Read a length-prefixed `usize` vector.
    pub fn get_usizes(&mut self) -> Option<Vec<usize>> {
        let len = self.get_usize()?;
        (0..len).map(|_| self.get_usize()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_bits() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, f64::NAN);
        put_f64s(&mut buf, &[1.0, f64::MIN_POSITIVE, f64::INFINITY]);
        put_i64s(&mut buf, &[-3, 0, i64::MIN]);
        put_u32s(&mut buf, &[7, u32::MAX]);
        put_usizes(&mut buf, &[0, 42]);
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_u64(), Some(u64::MAX));
        assert_eq!(r.get_f64().map(f64::to_bits), Some((-0.0f64).to_bits()));
        assert_eq!(r.get_f64().map(f64::to_bits), Some(f64::NAN.to_bits()));
        let fs = r.get_f64s().unwrap();
        assert_eq!(fs.len(), 3);
        assert_eq!(fs[1], f64::MIN_POSITIVE);
        assert_eq!(r.get_i64s(), Some(vec![-3, 0, i64::MIN]));
        assert_eq!(r.get_u32s(), Some(vec![7, u32::MAX]));
        assert_eq!(r.get_usizes(), Some(vec![0, 42]));
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_is_detected() {
        let mut buf = Vec::new();
        put_f64s(&mut buf, &[1.0, 2.0]);
        let mut r = Reader::new(&buf[..buf.len() - 1]);
        assert_eq!(r.get_f64s(), None);
    }
}
