//! FairKM configuration and error types.

use fairkm_data::{DataError, Normalization};
use std::fmt;

/// The fairness weight λ of Eq. 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Lambda {
    /// The paper's heuristic `λ = (|X|/k)²` (§5.4), which balances the
    /// per-object K-Means term against the cluster-level fairness term.
    /// This resolves to 10⁶ at Adult scale and 10³ at Kinematics scale,
    /// exactly as the paper sets them.
    Heuristic,
    /// An explicit value.
    Fixed(f64),
}

impl Lambda {
    /// Resolve against a dataset size and cluster count.
    pub fn resolve(self, n: usize, k: usize) -> f64 {
        match self {
            Lambda::Heuristic => {
                let ratio = n as f64 / k.max(1) as f64;
                ratio * ratio
            }
            Lambda::Fixed(v) => v,
        }
    }
}

/// How the change in the K-Means term of a candidate move is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeltaEngine {
    /// Closed-form Hartigan–Wong deltas:
    /// `δ_in = |C|/(|C|+1)·‖x−μ_C‖²`, `δ_out = −|C′|/(|C′|−1)·‖x−μ_C′‖²`.
    /// O(|N|) per candidate cluster. Algebraically identical to
    /// [`DeltaEngine::Literal`]; property-tested to match it.
    #[default]
    Incremental,
    /// The paper's literal Eqs. 12/14: re-sum both affected clusters' SSE
    /// around the moved centroids. O(|X|·|N|) per move — this is where the
    /// paper's quadratic complexity (§4.3.1) comes from; kept for fidelity
    /// and as the ablation baseline.
    Literal,
}

/// When cluster prototypes and fractional representations are refreshed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdateSchedule {
    /// After every accepted move (Algorithm 1, steps 6–7).
    #[default]
    PerMove,
    /// Once per scan window of `batch` objects — the §6.1 future-work
    /// mini-batch approximation, and the schedule the parallel execution
    /// engine accelerates. Every object in a window is scored against the
    /// aggregates and scoring cache frozen at the window start (making the
    /// scores independent and evaluated in parallel across threads);
    /// accepted moves are applied as O(dim + Σ|Values(S)|) delta updates
    /// in index order, only the two clusters each move touches have their
    /// cache entries refreshed, and the post-window objective is assembled
    /// from cached per-cluster contributions in O(k) — no full rebuild and
    /// no full-objective recomputation on the accept path (one
    /// drift-cancelling rebuild runs per pass, like the per-move
    /// schedule). Windows that fail to lower the objective are reverted
    /// and re-scanned with exact per-move descent (monotone window
    /// acceptance), so the objective trace never increases. Results are
    /// bitwise-identical for any thread count.
    MiniBatch(usize),
}

/// How a categorical attribute's per-value deviations are normalized
/// inside the fairness term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FairnessNorm {
    /// The paper's Eq. 4: every value weighs `1/|Values(S)|`.
    #[default]
    DomainCardinality,
    /// Skew-aware weighting (the paper's §6.1 second future-work
    /// direction: "ensure good performance even on attributes with highly
    /// skewed distributions"). Each value `s` weighs proportionally to
    /// `1 / (Fr_X(s)·(1 − Fr_X(s)) + 1/|X|)` — the inverse Bernoulli
    /// variance of its indicator — normalized so the weights sum to 1.
    /// A ±δ deviation on a 1%-share value is then treated as seriously as
    /// a ±δ·√(scale) deviation on a 50%-share value, instead of being
    /// drowned by the dominant value (cf. the paper's race attribute,
    /// where 87% of objects share one value).
    SkewAware,
}

/// Which fairness objective the optimizer descends on. Every kind runs
/// through the same cached engine (per-cluster cached contributions,
/// O(dim + t) move/insert/remove deltas, O(k) assembly) and is
/// bitwise-deterministic across thread counts; they differ only in what a
/// cluster's contribution measures.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ObjectiveKind {
    /// The paper's Eq. 7 representativity deviation (+ Eq. 22 numeric
    /// terms): squared distance between each cluster's group shares and
    /// the dataset shares.
    #[default]
    Representativity,
    /// Bounded-representation penalty (Bera et al. 2019, softened):
    /// a group's cluster share is free inside
    /// `[lower·Fr_X(s), upper·Fr_X(s)]` and pays its squared hinge
    /// distance to the nearest bound outside it. The multipliers must
    /// satisfy `0 ≤ lower ≤ 1 ≤ upper`. Numeric sensitive attributes keep
    /// their Eq. 22 mean-parity form.
    BoundedRepresentation {
        /// Lower share multiplier (`β` in Bera et al.), in `[0, 1]`.
        lower: f64,
        /// Upper share multiplier (`α` in Bera et al.), ≥ 1.
        upper: f64,
    },
    /// Multiple-groups utilitarian welfare: mean squared share deviation
    /// over the pool of (attribute, value) groups — every group counts
    /// equally, regardless of its attribute's cardinality.
    Utilitarian,
    /// Multiple-groups egalitarian welfare: each cluster is charged only
    /// its single worst group deviation, so the optimizer chases the
    /// worst-represented group first.
    Egalitarian,
}

impl ObjectiveKind {
    /// The default `(lower, upper)` share multipliers for
    /// [`ObjectiveKind::BoundedRepresentation`]: each group may range
    /// between 80% and 125% of its dataset share before paying a penalty.
    pub const DEFAULT_BOUNDS: (f64, f64) = (0.8, 1.25);

    /// Bounded representation with [`Self::DEFAULT_BOUNDS`].
    pub fn bounded() -> Self {
        let (lower, upper) = Self::DEFAULT_BOUNDS;
        ObjectiveKind::BoundedRepresentation { lower, upper }
    }

    /// Validate the kind's parameters (fit-time check).
    pub(crate) fn validate(&self) -> Result<(), FairKmError> {
        if let ObjectiveKind::BoundedRepresentation { lower, upper } = *self {
            let ok = lower.is_finite()
                && upper.is_finite()
                && (0.0..=1.0).contains(&lower)
                && upper >= 1.0;
            if !ok {
                return Err(FairKmError::InvalidObjectiveBounds { lower, upper });
            }
        }
        Ok(())
    }
}

/// Initial clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FairKmInit {
    /// Uniformly random cluster per object — Algorithm 1 step 1.
    #[default]
    RandomAssignment,
    /// Sample k distinct objects as seeds and assign every object to the
    /// nearest seed. A gentler start that usually converges in fewer
    /// iterations.
    NearestSeeds,
}

/// Configuration for [`crate::FairKm`].
///
/// Built with [`FairKmConfig::new`] plus builder-style `with_*` overrides;
/// the defaults reproduce the paper's setup (heuristic λ, 30 round-robin
/// iterations, per-move updates, z-scored task matrix).
///
/// ```
/// use fairkm_core::{FairKmConfig, Lambda, UpdateSchedule};
///
/// let cfg = FairKmConfig::new(5)
///     .with_seed(7)
///     .with_lambda(Lambda::Fixed(1_000.0))
///     .with_schedule(UpdateSchedule::MiniBatch(512))
///     .with_threads(4)
///     .with_attr_weight("gender", 2.0);
/// assert_eq!(cfg.k, 5);
/// assert_eq!(cfg.threads, Some(4));
/// ```
#[derive(Debug, Clone)]
pub struct FairKmConfig {
    /// Number of clusters `k`.
    pub k: usize,
    /// Fairness weight (default: the paper's heuristic).
    pub lambda: Lambda,
    /// Maximum round-robin iterations (paper: 30).
    pub max_iters: usize,
    /// Initialization.
    pub init: FairKmInit,
    /// Delta computation engine.
    pub delta_engine: DeltaEngine,
    /// Prototype/fraction update schedule.
    pub schedule: UpdateSchedule,
    /// Per-attribute fairness weights `w_S` (Eq. 23), resolved by attribute
    /// name at fit time; attributes not listed get weight 1.
    pub attr_weights: Vec<(String, f64)>,
    /// Per-value normalization inside the deviation term.
    pub fairness_norm: FairnessNorm,
    /// Fairness objective the optimizer descends on (default: the paper's
    /// Eq. 7 representativity).
    pub objective: ObjectiveKind,
    /// Normalization applied when fitting from a [`fairkm_data::Dataset`]
    /// (ignored by [`crate::FairKm::fit_views`]).
    pub normalization: Normalization,
    /// Seed for initialization.
    pub seed: u64,
    /// Worker threads for the parallel execution engine. `None` defers to
    /// the `FAIRKM_THREADS` environment variable and then to the machine's
    /// available parallelism (see [`fairkm_parallel::resolve_threads`]).
    /// Results are bitwise-identical for any value — threads change
    /// wall-clock time, never the clustering.
    pub threads: Option<usize>,
}

impl FairKmConfig {
    /// Defaults: heuristic λ, 30 iterations, random-assignment init,
    /// incremental deltas, per-move updates, z-scored task matrix.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            lambda: Lambda::Heuristic,
            max_iters: 30,
            init: FairKmInit::default(),
            delta_engine: DeltaEngine::default(),
            schedule: UpdateSchedule::default(),
            attr_weights: Vec::new(),
            fairness_norm: FairnessNorm::default(),
            objective: ObjectiveKind::default(),
            normalization: Normalization::ZScore,
            seed: 0,
            threads: None,
        }
    }

    /// Builder-style worker-thread override. Clamped to ≥ 1 at fit time;
    /// use [`FairKmConfig::with_auto_threads`] to return to auto-detection.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Builder-style reset to automatic thread detection (environment
    /// variable, then available parallelism).
    pub fn with_auto_threads(mut self) -> Self {
        self.threads = None;
        self
    }

    /// Builder-style fairness-normalization override.
    pub fn with_fairness_norm(mut self, norm: FairnessNorm) -> Self {
        self.fairness_norm = norm;
        self
    }

    /// Builder-style fairness-objective override.
    pub fn with_objective(mut self, objective: ObjectiveKind) -> Self {
        self.objective = objective;
        self
    }

    /// Builder-style λ override.
    pub fn with_lambda(mut self, lambda: Lambda) -> Self {
        self.lambda = lambda;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style init override.
    pub fn with_init(mut self, init: FairKmInit) -> Self {
        self.init = init;
        self
    }

    /// Builder-style delta-engine override.
    pub fn with_delta_engine(mut self, engine: DeltaEngine) -> Self {
        self.delta_engine = engine;
        self
    }

    /// Builder-style schedule override.
    pub fn with_schedule(mut self, schedule: UpdateSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Builder-style iteration cap override.
    pub fn with_max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }

    /// Builder-style normalization override. The λ heuristic assumes the
    /// K-Means term is on the natural scale of the data; pick
    /// [`Normalization::None`] for spaces that are already homogeneous
    /// (e.g. document embeddings) and [`Normalization::ZScore`] for
    /// heterogeneous attribute tables.
    pub fn with_normalization(mut self, normalization: Normalization) -> Self {
        self.normalization = normalization;
        self
    }

    /// Add (or override) a per-attribute fairness weight (Eq. 23).
    pub fn with_attr_weight(mut self, name: &str, weight: f64) -> Self {
        if let Some(entry) = self.attr_weights.iter_mut().find(|(n, _)| n == name) {
            entry.1 = weight;
        } else {
            self.attr_weights.push((name.to_string(), weight));
        }
        self
    }
}

/// Errors raised by FairKM.
#[derive(Debug, Clone, PartialEq)]
pub enum FairKmError {
    /// `k` was zero or exceeded the number of points.
    InvalidK {
        /// Requested cluster count.
        k: usize,
        /// Number of points available.
        n: usize,
    },
    /// The input has no rows.
    EmptyInput,
    /// A weight referenced an attribute absent from the sensitive space.
    UnknownWeightAttribute(String),
    /// A weight was negative or non-finite.
    InvalidWeight {
        /// Attribute whose weight is invalid.
        attribute: String,
        /// The offending weight.
        weight: f64,
    },
    /// λ was negative or non-finite.
    InvalidLambda(f64),
    /// A mini-batch schedule was configured with batch size 0.
    ZeroBatch,
    /// A streaming operation referenced a backing-store slot that is not
    /// live (never ingested, already evicted, or listed twice in one evict
    /// batch).
    StaleSlot(usize),
    /// The matrix and sensitive space disagree on the number of rows.
    RowMismatch {
        /// Rows in the task matrix.
        matrix: usize,
        /// Rows in the sensitive space.
        space: usize,
    },
    /// The bounded-representation share multipliers were out of range
    /// (require finite `0 ≤ lower ≤ 1 ≤ upper`).
    InvalidObjectiveBounds {
        /// Offending lower multiplier.
        lower: f64,
        /// Offending upper multiplier.
        upper: f64,
    },
    /// No assignment satisfies the requested per-(cluster, group) count
    /// bounds ([`crate::bounded_exact_assignment`]).
    InfeasibleBounds {
        /// Units of mandatory flow that could not be routed.
        unroutable: i64,
    },
    /// Propagated dataset error (view construction).
    Data(DataError),
}

impl fmt::Display for FairKmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FairKmError::InvalidK { k, n } => write!(f, "k = {k} is invalid for {n} points"),
            FairKmError::EmptyInput => write!(f, "input has no rows"),
            FairKmError::UnknownWeightAttribute(name) => {
                write!(f, "weight references unknown sensitive attribute `{name}`")
            }
            FairKmError::InvalidWeight { attribute, weight } => {
                write!(f, "invalid weight {weight} for attribute `{attribute}`")
            }
            FairKmError::InvalidLambda(l) => write!(f, "invalid lambda {l}"),
            FairKmError::ZeroBatch => write!(f, "mini-batch size must be positive"),
            FairKmError::StaleSlot(slot) => write!(
                f,
                "slot {slot} is not live (never ingested, already evicted, or duplicated)"
            ),
            FairKmError::RowMismatch { matrix, space } => write!(
                f,
                "task matrix has {matrix} rows but the sensitive space covers {space}"
            ),
            FairKmError::InvalidObjectiveBounds { lower, upper } => write!(
                f,
                "invalid bounded-representation multipliers lower = {lower}, upper = {upper} \
                 (need finite 0 <= lower <= 1 <= upper)"
            ),
            FairKmError::InfeasibleBounds { unroutable } => write!(
                f,
                "representation bounds are infeasible ({unroutable} units unroutable)"
            ),
            FairKmError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for FairKmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FairKmError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for FairKmError {
    fn from(e: DataError) -> Self {
        FairKmError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristic_lambda_matches_paper_values() {
        // Adult: |X| ≈ 15682, k = 5 → λ ≈ (3136)² ≈ 9.8e6 ~ 10⁶–10⁷;
        // the paper rounds to 10⁶. Kinematics: 161/5 = 32.2 → ≈ 10³.
        let adult = Lambda::Heuristic.resolve(15_682, 5);
        assert!(adult > 1e6 && adult < 1e7);
        let kin = Lambda::Heuristic.resolve(161, 5);
        assert!((kin - 1036.84).abs() < 1.0);
    }

    #[test]
    fn fixed_lambda_passes_through() {
        assert_eq!(Lambda::Fixed(42.0).resolve(1000, 10), 42.0);
    }

    #[test]
    fn builder_weight_overrides() {
        let cfg = FairKmConfig::new(3)
            .with_attr_weight("race", 2.0)
            .with_attr_weight("race", 5.0)
            .with_attr_weight("gender", 1.5);
        assert_eq!(
            cfg.attr_weights,
            vec![("race".to_string(), 5.0), ("gender".to_string(), 1.5)]
        );
    }
}
