//! Streaming FairKM: online ingestion with incremental insert/delete
//! deltas, frozen-prototype serving, and drift-triggered re-optimization.
//!
//! The batch algorithm answers "cluster these |X| records once"; this
//! module answers the ROADMAP's long-lived-service question: points arrive
//! continuously, stale points leave, and assignments must be served with
//! low latency. Three ideas make that work without giving up the paper's
//! objective:
//!
//! 1. **Delta ingestion.** [`StreamingFairKm::ingest`] validates each
//!    arrival against the frozen schema (via [`Dataset::append_rows`]),
//!    encodes it through a [`fairkm_data::FrozenEncoder`] (the normalization
//!    captured at bootstrap — later rows never re-shift the space), scores
//!    the whole batch against the scoring caches **frozen at batch start**,
//!    and then applies the insertions as O(dim + Σ|Values(S)|) aggregate
//!    deltas — the same machinery `apply_move` uses, extended to points
//!    entering and leaving the clustering.
//! 2. **Frozen-prototype serving.** Assignment of a new point never
//!    triggers optimization: it is one read-only pass over the cached
//!    prototypes plus an exact Eq. 7 insertion delta
//!    (`State::insertion_delta`). Bera et al. (*Fair Algorithms for
//!    Clustering*) justify exactly this split — fairness-aware decisions
//!    survive in the assignment phase alone — so the serve path stays
//!    O(k·(dim + Σ|Values(S)|)) per point.
//! 3. **Drift-triggered re-optimization.** Greedy frozen assignment slowly
//!    degrades the objective. The driver tracks the per-live-point
//!    objective against the post-reoptimization baseline and, past a
//!    relative [`StreamingConfig::drift_threshold`], runs windowed
//!    mini-batch passes (`windowed_pass`, the same optimizer the batch
//!    schedule uses; tombstoned slots propose no moves) until convergence
//!    or [`StreamingConfig::reopt_passes`].
//!
//! Eviction ([`StreamingFairKm::evict`]) removes points by the inverse
//! delta; evicted slots stay as tombstones in the backing store until
//! [`StreamingFairKm::compact`] reclaims them. The fairness *reference*
//! (dataset-level distributions, means, and skew weights of Eq. 7/22)
//! stays frozen at bootstrap — the stream is steered toward the
//! distribution the operator bootstrapped with, while
//! [`StreamingFairKm::live_views`] exposes the live partition for
//! monitoring against the *current* distribution (e.g. with
//! `fairkm_metrics::WindowedFairnessMonitor`).
//!
//! Everything is deterministic: scoring batches run on the
//! `fairkm-parallel` engine with fixed chunk boundaries, mutations apply in
//! index order, and the whole ingest/evict/reoptimize trace is
//! bitwise-identical for any thread count.

use crate::config::{DeltaEngine, FairKmConfig, FairKmError, ObjectiveKind, UpdateSchedule};
use crate::fairkm::{initial_assignment, resolve_weights, windowed_pass};
use crate::minibatch::MiniBatchFairKm;
use crate::state::{State, UNASSIGNED};
use fairkm_data::{
    AttrId, Dataset, FrozenEncoder, NumericMatrix, Partition, Role, Schema, SensitiveSpace, Value,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of a [`StreamingFairKm`] driver.
///
/// ```
/// use fairkm_core::{FairKmConfig, StreamingConfig};
///
/// let cfg = StreamingConfig::from_base(FairKmConfig::new(4).with_seed(7))
///     .with_drift_threshold(0.02)
///     .with_reopt_passes(3);
/// assert_eq!(cfg.base.k, 4);
/// assert_eq!(cfg.drift_threshold, 0.02);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingConfig {
    /// Base FairKM configuration: `k`, λ (resolved once at bootstrap and
    /// then frozen, so objectives stay comparable across the stream),
    /// fairness normalization, task normalization, seed, thread count,
    /// init, δ engine, and `max_iters` (the bootstrap pass cap).
    /// `schedule` selects the scan-window size used by the bootstrap and
    /// every re-optimization: `MiniBatch(b)` pins it, the default
    /// `PerMove` lets the driver pick `MiniBatchFairKm::auto_batch`.
    pub base: FairKmConfig,
    /// Relative per-live-point objective drift (against the
    /// post-re-optimization baseline) above which ingest/evict triggers a
    /// re-optimization. Default `0.05`.
    pub drift_threshold: f64,
    /// Maximum windowed passes per re-optimization (the bootstrap uses
    /// `base.max_iters` instead). `0` disables re-optimization entirely —
    /// drift is still tracked but never acted on. Default `5`.
    pub reopt_passes: usize,
}

impl StreamingConfig {
    /// Defaults around `FairKmConfig::new(k)`: 5% drift threshold, up to 5
    /// re-optimization passes.
    pub fn new(k: usize) -> Self {
        Self::from_base(FairKmConfig::new(k))
    }

    /// Wrap an explicit base configuration.
    pub fn from_base(base: FairKmConfig) -> Self {
        Self {
            base,
            drift_threshold: 0.05,
            reopt_passes: 5,
        }
    }

    /// Builder-style drift-threshold override.
    pub fn with_drift_threshold(mut self, threshold: f64) -> Self {
        self.drift_threshold = threshold;
        self
    }

    /// Builder-style re-optimization pass-cap override.
    pub fn with_reopt_passes(mut self, passes: usize) -> Self {
        self.reopt_passes = passes;
        self
    }
}

/// Outcome of one [`StreamingFairKm::ingest`] batch.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// Backing-store slots assigned to the batch, in arrival order.
    pub slots: std::ops::Range<usize>,
    /// Frozen-prototype cluster per arrival (aligned with `slots`). These
    /// are the serving decisions; a later re-optimization may move points.
    pub clusters: Vec<usize>,
    /// Objective after the batch (and after any triggered re-optimization).
    pub objective: f64,
    /// Whether the drift check triggered a re-optimization.
    pub reoptimized: bool,
    /// Moves the triggered re-optimization made (0 when not triggered).
    pub reopt_moves: usize,
}

/// Outcome of one [`StreamingFairKm::evict`] batch.
#[derive(Debug, Clone)]
pub struct EvictReport {
    /// Points removed.
    pub evicted: usize,
    /// Objective after the evictions (and any triggered re-optimization).
    pub objective: f64,
    /// Whether the drift check triggered a re-optimization.
    pub reoptimized: bool,
    /// Moves the triggered re-optimization made (0 when not triggered).
    pub reopt_moves: usize,
}

/// Everything a sharded deployment needs to take over from a bootstrapped
/// single-node streaming engine: the frozen validation/encoding front-end,
/// a rowless replica of the cached scoring engine, the per-slot payloads
/// to distribute across shards, and the driver's frozen parameters and
/// counters. Produced by [`StreamingFairKm::into_shard_parts`].
#[derive(Debug)]
pub struct ShardParts {
    /// Mirror of every ingested row (the coordinator's durable master
    /// copy of the raw data, used for arrival validation and compaction).
    pub mirror: Dataset,
    /// Frozen arrival validation/encoding transforms.
    pub encoder: FrozenEncoder,
    /// Rowless replica of the cached scoring engine at hand-off.
    pub model: crate::agg::ShardModel,
    /// Per-slot payloads `0..n_slots`, cluster [`crate::agg::TOMBSTONE`]
    /// for evicted slots — these get partitioned across shards.
    pub slots: Vec<crate::agg::SlotRow>,
    /// Frozen fairness trade-off λ.
    pub lambda: f64,
    /// Resolved worker-pool width.
    pub threads: usize,
    /// Pinned scan-window size (`None` = auto).
    pub window: Option<usize>,
    /// δ engine (sharding requires [`DeltaEngine::Incremental`]).
    pub engine: DeltaEngine,
    /// Active fairness objective.
    pub objective_kind: ObjectiveKind,
    /// Drift threshold of the re-optimization trigger.
    pub drift_threshold: f64,
    /// Pass cap per re-optimization.
    pub reopt_passes: usize,
    /// Objective at hand-off.
    pub objective: f64,
    /// Per-live-point drift baseline at hand-off.
    pub baseline_per_point: f64,
    /// Eviction cursor for `evict_oldest`.
    pub oldest_hint: usize,
    /// Bounded objective trace accumulated so far.
    pub trace: Vec<f64>,
    /// Points ingested so far.
    pub inserted: usize,
    /// Points evicted so far.
    pub evicted: usize,
    /// Re-optimizations run so far.
    pub reopts: usize,
    /// Sensitive categorical attribute ids, in encoding order.
    pub sens_cat_ids: Vec<AttrId>,
    /// Sensitive numeric attribute ids, in encoding order.
    pub sens_num_ids: Vec<AttrId>,
}

/// A long-lived fair clustering serving a stream of arrivals and
/// departures. See the [module docs](self) for the design.
///
/// ```
/// use fairkm_core::{FairKmConfig, StreamingConfig, StreamingFairKm};
/// use fairkm_data::{row, DatasetBuilder, Role};
///
/// let mut b = DatasetBuilder::new();
/// b.numeric("x", Role::NonSensitive).unwrap();
/// b.categorical("g", Role::Sensitive, &["a", "b"]).unwrap();
/// for i in 0..40 {
///     let side = if i % 2 == 0 { 0.0 } else { 9.0 };
///     b.push_row(row![side + (i % 3) as f64 * 0.1, if i % 4 < 2 { "a" } else { "b" }])
///         .unwrap();
/// }
/// let bootstrap = b.build().unwrap();
///
/// let mut stream = StreamingFairKm::bootstrap(
///     bootstrap,
///     StreamingConfig::from_base(FairKmConfig::new(2).with_seed(3)),
/// )
/// .unwrap();
/// assert_eq!(stream.live(), 40);
///
/// // Serve without mutating, then ingest for real.
/// let served = stream.assign_frozen(&row![0.05, "b"]).unwrap();
/// let report = stream.ingest(&[row![0.05, "b"]]).unwrap();
/// assert_eq!(report.clusters, vec![served]);
/// assert_eq!(stream.live(), 41);
///
/// // Evict the oldest point again.
/// stream.evict(&[0]).unwrap();
/// assert_eq!(stream.live(), 40);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingFairKm {
    /// Slot-aligned raw mirror of everything ever ingested (tombstones
    /// included), used for append validation, sensitive-value resolution,
    /// and live-view construction.
    mirror: Dataset,
    encoder: FrozenEncoder,
    state: State<'static>,
    lambda: f64,
    threads: usize,
    /// Explicit scan-window size for bootstrap/re-optimization passes;
    /// `None` auto-sizes from the current slot count.
    window: Option<usize>,
    engine: DeltaEngine,
    objective_kind: ObjectiveKind,
    drift_threshold: f64,
    reopt_passes: usize,
    objective: f64,
    /// Per-live-point objective right after the last (re-)optimization —
    /// the drift baseline.
    baseline_per_point: f64,
    /// Every slot below this index is known dead — the scan cursor that
    /// keeps repeated [`Self::evict_oldest`] calls from rescanning the
    /// whole backing store.
    oldest_hint: usize,
    trace: Vec<f64>,
    inserted: usize,
    evicted: usize,
    reopts: usize,
    sens_cat_ids: Vec<AttrId>,
    sens_num_ids: Vec<AttrId>,
}

// `Debug` for State is intentionally absent (it holds only derived data);
// keep the driver debuggable without dumping megabytes of aggregates.
impl std::fmt::Debug for State<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("State")
            .field("n", &self.n)
            .field("live", &self.live)
            .field("k", &self.k)
            .field("dim", &self.dim)
            .finish_non_exhaustive()
    }
}

/// Retained objective-trace ceiling. A long-lived stream pushes one entry
/// per ingest/evict batch and per optimization pass; past this many the
/// oldest half is dropped so telemetry memory stays bounded for the
/// service lifetime (drains amortize to O(1) per push).
pub const MAX_TRACE: usize = 8192;

/// Push onto the bounded objective trace (see [`MAX_TRACE`]): past the
/// ceiling the oldest half is dropped before appending. Public so the
/// sharded coordinator's trace bookkeeping is this exact function.
pub fn push_trace_bounded(trace: &mut Vec<f64>, value: f64) {
    if trace.len() >= MAX_TRACE {
        trace.drain(..MAX_TRACE / 2);
    }
    trace.push(value);
}

/// Drive windowed mini-batch passes until one makes no move or `max_passes`
/// is reached, recording the objective after each pass — the single
/// convergence loop shared by the bootstrap fit and every re-optimization
/// (so their rebuild cadence and trace bookkeeping can never diverge).
/// Returns `(objective, total_moves)`.
#[allow(clippy::too_many_arguments)]
fn run_windowed_passes(
    state: &mut State<'static>,
    lambda: f64,
    engine: DeltaEngine,
    window: Option<usize>,
    threads: usize,
    max_passes: usize,
    mut objective: f64,
    trace: &mut Vec<f64>,
) -> (f64, usize) {
    let mut total_moves = 0usize;
    for _ in 0..max_passes {
        let w = window.unwrap_or_else(|| MiniBatchFairKm::auto_batch(state.n));
        let (moved, obj) = windowed_pass(state, lambda, engine, w, threads, objective);
        objective = obj;
        if moved > 0 {
            // Same drift-cancelling rebuild cadence as the batch fit:
            // once per pass, never per window.
            state.rebuild();
            objective = state.objective_cached(lambda);
        }
        push_trace_bounded(trace, objective);
        total_moves += moved;
        if moved == 0 {
            break;
        }
    }
    (objective, total_moves)
}

impl StreamingFairKm {
    /// Bootstrap a streaming clusterer on an initial corpus: capture the
    /// frozen encoder and fairness reference, run windowed mini-batch
    /// passes to convergence (or `base.max_iters`), and set the drift
    /// baseline. The corpus becomes slots `0..n` of the stream.
    pub fn bootstrap(dataset: Dataset, config: StreamingConfig) -> Result<Self, FairKmError> {
        let base = &config.base;
        let n = dataset.n_rows();
        if n == 0 {
            return Err(FairKmError::EmptyInput);
        }
        let k = base.k;
        if k == 0 || k > n {
            return Err(FairKmError::InvalidK { k, n });
        }
        if let UpdateSchedule::MiniBatch(0) = base.schedule {
            return Err(FairKmError::ZeroBatch);
        }
        let lambda = base.lambda.resolve(n, k);
        if !lambda.is_finite() || lambda < 0.0 {
            return Err(FairKmError::InvalidLambda(lambda));
        }
        base.objective.validate()?;
        let matrix = dataset.task_matrix(base.normalization)?;
        let encoder = dataset.frozen_encoder(base.normalization)?;
        let space = dataset.sensitive_space()?;
        let weights = resolve_weights(&base.attr_weights, &space)?;
        let threads = fairkm_parallel::resolve_threads(base.threads);
        let mut rng = StdRng::seed_from_u64(base.seed);
        let assignment = initial_assignment(&matrix, k, base.init, &mut rng, threads);
        let mut state = State::with_norm_owned(
            matrix,
            &space,
            &weights,
            k,
            assignment,
            base.fairness_norm,
            base.objective,
            threads,
        );
        let window = match base.schedule {
            UpdateSchedule::MiniBatch(batch) => Some(batch),
            UpdateSchedule::PerMove => None,
        };
        let engine = base.delta_engine;
        let objective = state.objective_cached(lambda);
        let mut trace = vec![objective];
        let (objective, _) = run_windowed_passes(
            &mut state,
            lambda,
            engine,
            window,
            threads,
            base.max_iters,
            objective,
            &mut trace,
        );
        let mut sens_cat_ids = Vec::new();
        let mut sens_num_ids = Vec::new();
        for (id, attr) in dataset.schema().iter() {
            if attr.role == Role::Sensitive {
                if attr.kind.is_categorical() {
                    sens_cat_ids.push(id);
                } else {
                    sens_num_ids.push(id);
                }
            }
        }
        let baseline_per_point = objective / state.live as f64;
        Ok(Self {
            mirror: dataset,
            encoder,
            state,
            lambda,
            threads,
            window,
            engine,
            objective_kind: base.objective,
            drift_threshold: config.drift_threshold,
            reopt_passes: config.reopt_passes,
            objective,
            baseline_per_point,
            oldest_hint: 0,
            trace,
            inserted: 0,
            evicted: 0,
            reopts: 0,
            sens_cat_ids,
            sens_num_ids,
        })
    }

    /// Serve an assignment for a row **without ingesting it**: validate and
    /// encode through the frozen transforms, then score against the cached
    /// prototypes and Eq. 7 insertion deltas. Read-only and O(k·(dim +
    /// Σ|Values(S)|)) — the low-latency path.
    pub fn assign_frozen(&self, row: &[Value]) -> Result<usize, FairKmError> {
        let task = self.encoder.encode_row(row)?;
        let (cat_vals, num_vals) = self.resolve_sensitive(row)?;
        Ok(self
            .state
            .score_insertion(&task, &cat_vals, &num_vals, self.lambda)
            .0)
    }

    /// Capture an immutable, owned snapshot of the frozen serving path —
    /// everything [`Self::assign_frozen`] needs, detached from the live
    /// engine. A serving layer publishes one behind an `Arc` after each
    /// mutation so reads never block behind writes; [`ServingView::assign`]
    /// reproduces `assign_frozen`'s result bitwise for the state at capture
    /// time.
    pub fn serving_view(&self) -> ServingView {
        debug_assert!(self.state.cache_is_fresh());
        let state = &self.state;
        let model = crate::agg::ShardModel::assemble(
            state.k,
            state.dim,
            state.cat.clone(),
            state.num.clone(),
            self.objective_kind,
            crate::agg::AggregateDelta {
                size: state.size.clone(),
                centroid_sum: state.centroid_sum.clone(),
                cat_counts: state.cat_counts.clone(),
                num_sums: state.num_sums.clone(),
                member_sqnorm: state.member_sqnorm.clone(),
            },
        );
        ServingView {
            schema: self.mirror.schema().clone(),
            encoder: self.encoder.clone(),
            model,
            lambda: self.lambda,
            n_slots: state.n,
            live: state.live,
            objective: self.objective,
            sens_cat_ids: self.sens_cat_ids.clone(),
            sens_num_ids: self.sens_num_ids.clone(),
        }
    }

    /// Ingest a batch of rows: validate against the frozen schema (atomic —
    /// a bad row rejects the whole batch before anything mutates), assign
    /// every row against the caches frozen at batch start (scored in
    /// parallel, deterministically), apply the insertions as aggregate
    /// deltas in arrival order, then run the drift check.
    pub fn ingest(&mut self, rows: &[Vec<Value>]) -> Result<IngestReport, FairKmError> {
        let start = self.state.n;
        if rows.is_empty() {
            return Ok(IngestReport {
                slots: start..start,
                clusters: Vec::new(),
                objective: self.objective,
                reoptimized: false,
                reopt_moves: 0,
            });
        }
        // Validate + encode every row before mutating anything.
        let mut encoded: Vec<(Vec<f64>, Vec<u32>, Vec<f64>)> = Vec::with_capacity(rows.len());
        for row in rows {
            let task = self.encoder.encode_row(row)?;
            let (cat_vals, num_vals) = self.resolve_sensitive(row)?;
            encoded.push((task, cat_vals, num_vals));
        }
        // The mirror re-validates everything (including auxiliary cells)
        // atomically; only after it commits does the state mutate.
        self.mirror.append_rows(rows.to_vec())?;

        // Frozen-prototype assignment for the whole batch.
        debug_assert!(self.state.cache_is_fresh());
        let state = &self.state;
        let lambda = self.lambda;
        let clusters: Vec<usize> =
            fairkm_parallel::map_indexed(self.threads, 0..encoded.len(), |i| {
                let (task, cat_vals, num_vals) = &encoded[i];
                state.score_insertion(task, cat_vals, num_vals, lambda).0
            });

        // Delta-apply in arrival order.
        for ((task, cat_vals, num_vals), &c) in encoded.iter().zip(&clusters) {
            let slot = self.state.push_row(task, cat_vals, num_vals);
            self.state.insert_point(slot, c);
        }
        self.state.refresh_cache();
        self.objective = self.state.objective_cached(self.lambda);
        self.state.debug_validate_cache(self.lambda);
        push_trace_bounded(&mut self.trace, self.objective);
        self.inserted += rows.len();
        let (reoptimized, reopt_moves) = self.maybe_reoptimize();
        Ok(IngestReport {
            slots: start..start + rows.len(),
            clusters,
            objective: self.objective,
            reoptimized,
            reopt_moves,
        })
    }

    /// Evict the given live slots (stale points leaving the stream),
    /// applying the inverse insertion deltas, then run the drift check.
    /// Rejects dead, out-of-range, or duplicated slots before mutating
    /// anything, so a failed call leaves the clustering unchanged.
    pub fn evict(&mut self, slots: &[usize]) -> Result<EvictReport, FairKmError> {
        let mut seen = slots.to_vec();
        seen.sort_unstable();
        for pair in seen.windows(2) {
            if pair[0] == pair[1] {
                return Err(FairKmError::StaleSlot(pair[0]));
            }
        }
        for &slot in slots {
            if !self.is_live(slot) {
                return Err(FairKmError::StaleSlot(slot));
            }
        }
        if slots.is_empty() {
            return Ok(EvictReport {
                evicted: 0,
                objective: self.objective,
                reoptimized: false,
                reopt_moves: 0,
            });
        }
        for &slot in slots {
            self.state.remove_point(slot);
        }
        self.state.refresh_cache();
        self.objective = self.state.objective_cached(self.lambda);
        self.state.debug_validate_cache(self.lambda);
        push_trace_bounded(&mut self.trace, self.objective);
        self.evicted += slots.len();
        let (reoptimized, reopt_moves) = self.maybe_reoptimize();
        Ok(EvictReport {
            evicted: slots.len(),
            objective: self.objective,
            reoptimized,
            reopt_moves,
        })
    }

    /// Evict the `count` oldest live points (lowest slot indices) — the
    /// sliding-window retention policy. The scan starts at a maintained
    /// oldest-live cursor (every slot below it is known dead), so repeated
    /// per-batch calls cost O(count + dead-since-last-call), not O(total
    /// slots ever ingested).
    pub fn evict_oldest(&mut self, count: usize) -> Result<EvictReport, FairKmError> {
        let slots: Vec<usize> = (self.oldest_hint..self.state.n)
            .filter(|&s| self.is_live(s))
            .take(count)
            .collect();
        let report = self.evict(&slots)?;
        // Advance the cursor past the dead prefix (everything < oldest_hint
        // stays dead: arbitrary evicts only kill more slots, ingest appends
        // at the end, and compact resets the cursor).
        while self.oldest_hint < self.state.n && !self.is_live(self.oldest_hint) {
            self.oldest_hint += 1;
        }
        Ok(report)
    }

    /// Run windowed re-optimization passes over the live partition until no
    /// pass moves a point or [`StreamingConfig::reopt_passes`] is reached
    /// (0 passes = re-optimization disabled; drift tracking still resets
    /// its baseline), then reset the drift baseline. Returns the number of
    /// moves.
    pub fn reoptimize(&mut self) -> usize {
        let (objective, total_moves) = run_windowed_passes(
            &mut self.state,
            self.lambda,
            self.engine,
            self.window,
            self.threads,
            self.reopt_passes,
            self.objective,
            &mut self.trace,
        );
        self.objective = objective;
        self.reopts += 1;
        if self.state.live > 0 {
            self.baseline_per_point = self.objective / self.state.live as f64;
        }
        total_moves
    }

    /// Drop every tombstoned slot from the backing store and the mirror,
    /// renumbering the survivors. Returns the old slot index each new slot
    /// held (so external slot bookkeeping can be renumbered). Invalidates
    /// previously returned slot ids.
    pub fn compact(&mut self) -> Result<Vec<usize>, FairKmError> {
        let kept = self.state.compact();
        self.mirror = self.mirror.select_rows(&kept)?;
        self.objective = self.state.objective_cached(self.lambda);
        self.oldest_hint = 0;
        Ok(kept)
    }

    /// Snapshot the live partition for monitoring: the frozen-encoded task
    /// matrix of the live points, their sensitive space (with the **live**
    /// distribution — the optimizer itself steers toward the bootstrap
    /// reference), the partition, and the live slot ids (row `i` of the
    /// views is slot `slots[i]`).
    #[allow(clippy::type_complexity)]
    pub fn live_views(
        &self,
    ) -> Result<(NumericMatrix, SensitiveSpace, Partition, Vec<usize>), FairKmError> {
        let slots = self.live_slots();
        let matrix = self.state.matrix.select_rows(&slots);
        let space = self.mirror.select_rows(&slots)?.sensitive_space()?;
        let clusters: Vec<usize> = slots.iter().map(|&s| self.state.assignment[s]).collect();
        let partition = Partition::new(clusters, self.state.k)?;
        Ok((matrix, space, partition, slots))
    }

    /// Resolve a row's sensitive values (categorical indices first, numeric
    /// second — the attribute order the state expects) with full
    /// validation, without touching the mirror.
    fn resolve_sensitive(&self, row: &[Value]) -> Result<(Vec<u32>, Vec<f64>), FairKmError> {
        let schema = self.mirror.schema();
        if row.len() != schema.len() {
            return Err(FairKmError::Data(fairkm_data::DataError::RowArity {
                expected: schema.len(),
                got: row.len(),
            }));
        }
        let mut cat_vals = Vec::with_capacity(self.sens_cat_ids.len());
        for &id in &self.sens_cat_ids {
            let attr = schema.attr(id)?;
            cat_vals.push(attr.resolve_categorical(&row[id.index()])?);
        }
        let mut num_vals = Vec::with_capacity(self.sens_num_ids.len());
        for &id in &self.sens_num_ids {
            let attr = schema.attr(id)?;
            num_vals.push(attr.resolve_numeric(&row[id.index()], self.state.n)?);
        }
        Ok((cat_vals, num_vals))
    }

    /// Re-optimize when the per-live-point objective has drifted past the
    /// threshold relative to the post-optimization baseline.
    fn maybe_reoptimize(&mut self) -> (bool, usize) {
        if self.state.live == 0 || self.reopt_passes == 0 {
            return (false, 0);
        }
        let per_point = self.objective / self.state.live as f64;
        let scale = self.baseline_per_point.abs().max(f64::EPSILON);
        let drift = (per_point - self.baseline_per_point) / scale;
        if drift <= self.drift_threshold {
            return (false, 0);
        }
        let moves = self.reoptimize();
        (true, moves)
    }

    /// Number of live (assigned) points.
    pub fn live(&self) -> usize {
        self.state.live
    }

    /// Total backing-store slots, tombstones included.
    pub fn n_slots(&self) -> usize {
        self.state.n
    }

    /// Whether a slot currently holds a live point.
    pub fn is_live(&self, slot: usize) -> bool {
        slot < self.state.n && self.state.assignment[slot] != UNASSIGNED
    }

    /// Cluster of a slot, `None` for tombstones and out-of-range slots.
    pub fn assignment_of(&self, slot: usize) -> Option<usize> {
        self.state
            .assignment
            .get(slot)
            .copied()
            .filter(|&c| c != UNASSIGNED)
    }

    /// Live slot ids in ascending (arrival) order.
    pub fn live_slots(&self) -> Vec<usize> {
        (0..self.state.n).filter(|&s| self.is_live(s)).collect()
    }

    /// Number of clusters `k`.
    pub fn k(&self) -> usize {
        self.state.k
    }

    /// The frozen λ of the stream (resolved once at bootstrap).
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The fairness objective the stream was configured with.
    pub fn objective_kind(&self) -> ObjectiveKind {
        self.objective_kind
    }

    /// The active objective's per-cluster cached fairness contributions —
    /// the summands its `assemble` step folds into
    /// [`Self::fairness_term`]. Every public mutation leaves the scoring
    /// cache fresh, so this is a plain read; index `c` is cluster `c`.
    pub fn fairness_contributions(&self) -> Vec<f64> {
        debug_assert!(self.state.cache_is_fresh());
        self.state.fair_cache.clone()
    }

    /// The active objective's assembled fairness term over the live
    /// partition (the `F` of `O = kmeans + λ·F`, whatever objective is
    /// configured — Eq. 7 representativity, the bounded-representation
    /// penalty, or a group-welfare variant).
    pub fn fairness_term(&self) -> f64 {
        self.state.fairness_term_cached()
    }

    /// Current objective `kmeans + λ·fairness` over the live partition.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Objective trace: seeded after bootstrap initialization, then one
    /// entry per bootstrap pass, per ingest/evict batch, and per
    /// re-optimization pass — the golden-trace corpus pins this sequence.
    /// Bounded: past `MAX_TRACE` (8192) entries the oldest half is dropped,
    /// so a long-lived stream retains a recent-history window rather than
    /// growing without bound.
    pub fn trace(&self) -> &[f64] {
        &self.trace
    }

    /// Re-optimizations run so far (drift-triggered plus explicit).
    pub fn reopts(&self) -> usize {
        self.reopts
    }

    /// Points ingested after bootstrap.
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    /// Points evicted.
    pub fn evicted(&self) -> usize {
        self.evicted
    }

    /// Current cluster prototypes (means), zeros for empty clusters —
    /// computed from the running aggregates with the engine's exact
    /// arithmetic, so it is directly comparable bitwise across single-node
    /// and sharded runs.
    pub fn prototypes(&self) -> Vec<Vec<f64>> {
        (0..self.state.k)
            .map(|c| {
                let mut out = vec![0.0; self.state.dim];
                self.state.prototype_into(c, &mut out);
                out
            })
            .collect()
    }

    /// Decompose a bootstrapped engine into [`ShardParts`] — the frozen
    /// front-end, a rowless [`crate::agg::ShardModel`] replica carrying
    /// the exact aggregate and cache bits, per-slot payloads to partition
    /// across shards, and the driver's frozen parameters and counters. The
    /// sharded coordinator resumes from these parts bitwise where the
    /// single-node engine left off.
    pub fn into_shard_parts(mut self) -> ShardParts {
        self.state.refresh_cache();
        let state = &self.state;
        let slots = (0..state.n)
            .map(|i| crate::agg::SlotRow {
                row: state.matrix.row(i).to_vec(),
                cat: state.cat.iter().map(|a| a.values[i]).collect(),
                num: state.num.iter().map(|a| a.values[i]).collect(),
                sqnorm: state.point_sqnorm[i],
                // `UNASSIGNED` and `TOMBSTONE` are the same sentinel.
                cluster: state.assignment[i],
            })
            .collect();
        let model = crate::agg::ShardModel::assemble(
            state.k,
            state.dim,
            state.cat.clone(),
            state.num.clone(),
            self.objective_kind,
            crate::agg::AggregateDelta {
                size: state.size.clone(),
                centroid_sum: state.centroid_sum.clone(),
                cat_counts: state.cat_counts.clone(),
                num_sums: state.num_sums.clone(),
                member_sqnorm: state.member_sqnorm.clone(),
            },
        );
        ShardParts {
            mirror: self.mirror,
            encoder: self.encoder,
            model,
            slots,
            lambda: self.lambda,
            threads: self.threads,
            window: self.window,
            engine: self.engine,
            objective_kind: self.objective_kind,
            drift_threshold: self.drift_threshold,
            reopt_passes: self.reopt_passes,
            objective: self.objective,
            baseline_per_point: self.baseline_per_point,
            oldest_hint: self.oldest_hint,
            trace: self.trace,
            inserted: self.inserted,
            evicted: self.evicted,
            reopts: self.reopts,
            sens_cat_ids: self.sens_cat_ids,
            sens_num_ids: self.sens_num_ids,
        }
    }

    /// Serialize the entire driver — mirror, frozen encoder, optimization
    /// state with its delta-maintained aggregates **verbatim**, frozen
    /// parameters, and counters — into one byte blob. Restoring through
    /// [`Self::from_snapshot_bytes`] reproduces the uninterrupted run
    /// bitwise: every float travels as its exact IEEE-754 bits, and the
    /// scoring caches are re-derived on decode by the same pure computation
    /// that produced them.
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let mirror = self.mirror.to_wire_bytes();
        crate::wire::put_usize(&mut out, mirror.len());
        out.extend_from_slice(&mirror);
        let encoder = self.encoder.to_wire_bytes();
        crate::wire::put_usize(&mut out, encoder.len());
        out.extend_from_slice(&encoder);
        crate::agg::encode_kind(&mut out, self.objective_kind);
        crate::wire::put_f64(&mut out, self.lambda);
        match self.window {
            None => out.push(0),
            Some(w) => {
                out.push(1);
                crate::wire::put_usize(&mut out, w);
            }
        }
        out.push(match self.engine {
            DeltaEngine::Incremental => 0,
            DeltaEngine::Literal => 1,
        });
        crate::wire::put_f64(&mut out, self.drift_threshold);
        crate::wire::put_usize(&mut out, self.reopt_passes);
        crate::wire::put_f64(&mut out, self.objective);
        crate::wire::put_f64(&mut out, self.baseline_per_point);
        crate::wire::put_usize(&mut out, self.oldest_hint);
        crate::wire::put_f64s(&mut out, &self.trace);
        crate::wire::put_usize(&mut out, self.inserted);
        crate::wire::put_usize(&mut out, self.evicted);
        crate::wire::put_usize(&mut out, self.reopts);
        crate::wire::put_usizes(
            &mut out,
            &self
                .sens_cat_ids
                .iter()
                .map(|id| id.index())
                .collect::<Vec<_>>(),
        );
        crate::wire::put_usizes(
            &mut out,
            &self
                .sens_num_ids
                .iter()
                .map(|id| id.index())
                .collect::<Vec<_>>(),
        );
        self.state.write_snapshot(&mut out);
        out
    }

    /// Decode a driver serialized by [`Self::to_snapshot_bytes`].
    ///
    /// `threads` is the *restoring* configuration's worker-pool request
    /// (`None` = environment/auto, exactly like
    /// [`crate::FairKmConfig::with_threads`] absent): the thread count never
    /// changes result bits, so a snapshot taken on one machine restores on
    /// another. Truncated or malformed input — including shape mismatches
    /// between the mirror, encoder, and state — surfaces as a typed
    /// [`crate::wire::WireError`], never a panic.
    pub fn from_snapshot_bytes(
        bytes: &[u8],
        threads: Option<usize>,
    ) -> Result<Self, crate::wire::WireError> {
        use crate::wire::{Reader, WireError};
        let invalid = |what: &'static str| WireError::Invalid { what };
        let mut r = Reader::new(bytes);
        let mirror_len = r.get_len(1)?;
        let mirror = Dataset::from_wire_bytes(r.take(mirror_len)?)?;
        let encoder_len = r.get_len(1)?;
        let encoder = FrozenEncoder::from_wire_bytes(r.take(encoder_len)?)?;
        let objective_kind = crate::agg::decode_kind(&mut r)?;
        let lambda = r.get_f64()?;
        let window = match r.take(1)?[0] {
            0 => None,
            1 => Some(r.get_usize()?),
            t => {
                return Err(WireError::UnknownTag {
                    what: "window option",
                    tag: t as u64,
                })
            }
        };
        let engine = match r.take(1)?[0] {
            0 => DeltaEngine::Incremental,
            1 => DeltaEngine::Literal,
            t => {
                return Err(WireError::UnknownTag {
                    what: "delta engine",
                    tag: t as u64,
                })
            }
        };
        let drift_threshold = r.get_f64()?;
        let reopt_passes = r.get_usize()?;
        let objective = r.get_f64()?;
        let baseline_per_point = r.get_f64()?;
        let oldest_hint = r.get_usize()?;
        let trace = r.get_f64s()?;
        let inserted = r.get_usize()?;
        let evicted = r.get_usize()?;
        let reopts = r.get_usize()?;
        let schema_len = mirror.schema().len();
        let to_ids = |raw: Vec<usize>| -> Result<Vec<AttrId>, WireError> {
            raw.into_iter()
                .map(|i| {
                    if i < schema_len {
                        Ok(AttrId(i))
                    } else {
                        Err(invalid("sensitive attribute id"))
                    }
                })
                .collect()
        };
        let sens_cat_ids = to_ids(r.get_usizes()?)?;
        let sens_num_ids = to_ids(r.get_usizes()?)?;
        let threads = fairkm_parallel::resolve_threads(threads);
        let state = State::read_snapshot(&mut r, objective_kind, threads)?;
        r.expect_empty()?;
        if mirror.n_rows() != state.n {
            return Err(invalid("mirror/state slot count"));
        }
        if encoder.arity() != schema_len {
            return Err(invalid("encoder arity"));
        }
        if sens_cat_ids.len() != state.cat.len() || sens_num_ids.len() != state.num.len() {
            return Err(invalid("sensitive attribute count"));
        }
        Ok(Self {
            mirror,
            encoder,
            state,
            lambda,
            threads,
            window,
            engine,
            objective_kind,
            drift_threshold,
            reopt_passes,
            objective,
            baseline_per_point,
            oldest_hint,
            trace,
            inserted,
            evicted,
            reopts,
            sens_cat_ids,
            sens_num_ids,
        })
    }
}

/// An immutable snapshot of the frozen serving path, captured by
/// [`StreamingFairKm::serving_view`]: the frozen schema + encoder, a
/// rowless [`crate::agg::ShardModel`] replica carrying the exact aggregate
/// and cache bits, and the frozen λ. [`Self::assign`] reproduces
/// [`StreamingFairKm::assign_frozen`] bitwise for the captured state
/// without touching the live engine — the read path a server swaps behind
/// an `Arc` on every successful mutation.
#[derive(Debug, Clone)]
pub struct ServingView {
    schema: Schema,
    encoder: FrozenEncoder,
    model: crate::agg::ShardModel,
    lambda: f64,
    n_slots: usize,
    live: usize,
    objective: f64,
    sens_cat_ids: Vec<AttrId>,
    sens_num_ids: Vec<AttrId>,
}

impl ServingView {
    /// Frozen-prototype assignment of an external row — the exact
    /// [`StreamingFairKm::assign_frozen`] computation (validate, encode
    /// through the frozen transforms, score the Eq. 7 insertion deltas)
    /// over the captured state.
    pub fn assign(&self, row: &[Value]) -> Result<usize, FairKmError> {
        Ok(self.assign_scored(row)?.0)
    }

    /// Like [`Self::assign`], also returning the winning insertion delta —
    /// useful for serving responses that expose the score.
    pub fn assign_scored(&self, row: &[Value]) -> Result<(usize, f64), FairKmError> {
        let task = self.encoder.encode_row(row)?;
        let (cat_vals, num_vals) = self.resolve_sensitive(row)?;
        Ok(self
            .model
            .score_insertion(&task, &cat_vals, &num_vals, self.lambda))
    }

    /// Same resolution order and validation as the engine's private
    /// `resolve_sensitive`: categorical indices first, numeric second.
    fn resolve_sensitive(&self, row: &[Value]) -> Result<(Vec<u32>, Vec<f64>), FairKmError> {
        if row.len() != self.schema.len() {
            return Err(FairKmError::Data(fairkm_data::DataError::RowArity {
                expected: self.schema.len(),
                got: row.len(),
            }));
        }
        let mut cat_vals = Vec::with_capacity(self.sens_cat_ids.len());
        for &id in &self.sens_cat_ids {
            let attr = self.schema.attr(id)?;
            cat_vals.push(attr.resolve_categorical(&row[id.index()])?);
        }
        let mut num_vals = Vec::with_capacity(self.sens_num_ids.len());
        for &id in &self.sens_num_ids {
            let attr = self.schema.attr(id)?;
            num_vals.push(attr.resolve_numeric(&row[id.index()], self.n_slots)?);
        }
        Ok((cat_vals, num_vals))
    }

    /// The frozen schema rows are validated against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of clusters `k`.
    pub fn k(&self) -> usize {
        self.model.k()
    }

    /// Live point count at capture time.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total backing-store slots at capture time.
    pub fn n_slots(&self) -> usize {
        self.n_slots
    }

    /// Objective `kmeans + λ·fairness` at capture time.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// The frozen λ of the stream.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Lambda;
    use fairkm_data::{row, DatasetBuilder};

    /// Two separated blobs, group fully aligned with blob identity.
    fn blobs(n_per_side: usize) -> Dataset {
        let mut b = DatasetBuilder::new();
        b.numeric("x", Role::NonSensitive).unwrap();
        b.numeric("y", Role::NonSensitive).unwrap();
        b.categorical("g", Role::Sensitive, &["a", "b"]).unwrap();
        for i in 0..n_per_side {
            let jitter = (i % 7) as f64 * 0.05;
            b.push_row(row![jitter, jitter, "a"]).unwrap();
            b.push_row(row![5.0 + jitter, 5.0 - jitter, "b"]).unwrap();
        }
        b.build().unwrap()
    }

    fn stream_row(i: usize) -> Vec<Value> {
        let jitter = (i % 5) as f64 * 0.04;
        if i.is_multiple_of(2) {
            row![jitter, jitter, "b"]
        } else {
            row![5.0 - jitter, 5.0 + jitter, "a"]
        }
    }

    fn config(seed: u64) -> StreamingConfig {
        StreamingConfig::from_base(
            FairKmConfig::new(2)
                .with_seed(seed)
                .with_lambda(Lambda::Fixed(50.0))
                .with_threads(1),
        )
    }

    #[test]
    fn bootstrap_then_ingest_grows_the_live_partition() {
        let mut s = StreamingFairKm::bootstrap(blobs(20), config(3)).unwrap();
        assert_eq!(s.live(), 40);
        assert_eq!(s.n_slots(), 40);
        let rows: Vec<Vec<Value>> = (0..10).map(stream_row).collect();
        let report = s.ingest(&rows).unwrap();
        assert_eq!(report.slots, 40..50);
        assert_eq!(report.clusters.len(), 10);
        assert_eq!(s.live(), 50);
        assert_eq!(s.inserted(), 10);
        assert!(report.objective.is_finite());
        // Every ingested slot is live and assigned to the reported cluster
        // unless a re-optimization moved it.
        if !report.reoptimized {
            for (slot, &c) in report.slots.clone().zip(&report.clusters) {
                assert_eq!(s.assignment_of(slot), Some(c));
            }
        }
    }

    #[test]
    fn frozen_assignment_matches_ingest_decision() {
        let mut s = StreamingFairKm::bootstrap(blobs(25), config(5)).unwrap();
        for i in 0..12 {
            let r = stream_row(i);
            let served = s.assign_frozen(&r).unwrap();
            let report = s.ingest(std::slice::from_ref(&r)).unwrap();
            assert_eq!(report.clusters, vec![served], "arrival {i}");
        }
    }

    #[test]
    fn serving_view_reproduces_assign_frozen_bitwise() {
        let mut s = StreamingFairKm::bootstrap(blobs(25), config(5)).unwrap();
        for step in 0..10 {
            // Mutate between captures so views span ingests, evictions,
            // and re-optimizations.
            let rows: Vec<Vec<Value>> = (step * 3..step * 3 + 3).map(stream_row).collect();
            s.ingest(&rows).unwrap();
            if step == 4 {
                s.evict_oldest(5).unwrap();
            }
            if step == 7 {
                s.reoptimize();
            }
            let view = s.serving_view();
            assert_eq!(view.k(), s.k());
            assert_eq!(view.live(), s.live());
            assert_eq!(view.n_slots(), s.n_slots());
            assert_eq!(view.objective().to_bits(), s.objective().to_bits());
            for i in 0..20 {
                let r = stream_row(i);
                assert_eq!(
                    view.assign(&r).unwrap(),
                    s.assign_frozen(&r).unwrap(),
                    "step {step} probe {i}"
                );
            }
            // Same typed rejections as the engine path.
            let short = row![1.0];
            let unknown = row![1.0, 1.0, "zzz"];
            assert!(view.assign(&short).is_err());
            assert!(view.assign(&unknown).is_err());
        }
    }

    #[test]
    fn ingest_validates_atomically() {
        let mut s = StreamingFairKm::bootstrap(blobs(10), config(1)).unwrap();
        let before = s.live();
        let bad = vec![stream_row(0), row![1.0, 1.0, "zzz"]];
        assert!(s.ingest(&bad).is_err());
        assert_eq!(s.live(), before, "failed batch must not partially apply");
        assert_eq!(s.n_slots(), before);
        assert!(s.ingest(&[row![1.0]]).is_err(), "arity is checked");
    }

    #[test]
    fn eviction_removes_points_and_rejects_stale_slots() {
        let mut s = StreamingFairKm::bootstrap(blobs(15), config(2)).unwrap();
        s.evict(&[0, 1, 2]).unwrap();
        assert_eq!(s.live(), 27);
        assert_eq!(s.evicted(), 3);
        assert!(!s.is_live(1));
        assert_eq!(s.assignment_of(1), None);
        // Dead, duplicated, and out-of-range slots are all rejected before
        // anything mutates.
        assert!(matches!(s.evict(&[1]), Err(FairKmError::StaleSlot(1))));
        assert!(matches!(s.evict(&[5, 5]), Err(FairKmError::StaleSlot(5))));
        assert!(matches!(s.evict(&[9999]), Err(FairKmError::StaleSlot(_))));
        assert_eq!(s.live(), 27);
    }

    #[test]
    fn delta_ingest_matches_from_scratch_rebuild() {
        // The debug cross-check (debug_validate_cache) runs inside
        // ingest/evict already; this pins the end state explicitly.
        let mut s = StreamingFairKm::bootstrap(blobs(12), config(7)).unwrap();
        let rows: Vec<Vec<Value>> = (0..9).map(stream_row).collect();
        s.ingest(&rows).unwrap();
        s.evict(&[2, 3, 30]).unwrap();
        let cached = s.objective();
        s.state.rebuild();
        let rebuilt = s.state.objective_cached(s.lambda());
        assert!(
            (cached - rebuilt).abs() <= 1e-9 * (1.0 + cached.abs().max(rebuilt.abs())),
            "delta objective {cached} vs from-scratch {rebuilt}"
        );
    }

    #[test]
    fn drift_triggers_reoptimization() {
        // Adversarial arrivals — mid-gap points far from both prototypes,
        // group labels fighting the frozen reference — must push the
        // per-point objective past a tight threshold and trigger a reopt.
        let mut s =
            StreamingFairKm::bootstrap(blobs(30), config(4).with_drift_threshold(1e-3)).unwrap();
        let mut triggered = false;
        for batch in 0..8 {
            let rows: Vec<Vec<Value>> = (0..8)
                .map(|i| {
                    let j = ((batch * 8 + i) % 5) as f64 * 0.3;
                    row![2.5 + j, 2.5 - j, "a"]
                })
                .collect();
            triggered |= s.ingest(&rows).unwrap().reoptimized;
        }
        assert!(triggered, "drift threshold never triggered a reopt");
        assert!(s.reopts() > 0);
    }

    #[test]
    fn compaction_reclaims_tombstones_and_preserves_the_clustering() {
        let mut s = StreamingFairKm::bootstrap(blobs(15), config(6)).unwrap();
        let rows: Vec<Vec<Value>> = (0..10).map(stream_row).collect();
        s.ingest(&rows).unwrap();
        s.evict_oldest(8).unwrap();
        let live_before: Vec<Option<usize>> =
            s.live_slots().iter().map(|&x| s.assignment_of(x)).collect();
        let objective_before = s.objective();
        let kept = s.compact().unwrap();
        assert_eq!(kept.len(), s.live());
        assert_eq!(s.n_slots(), s.live(), "no tombstones remain");
        let live_after: Vec<Option<usize>> = (0..s.n_slots()).map(|x| s.assignment_of(x)).collect();
        assert_eq!(
            live_before, live_after,
            "clustering preserved across compaction"
        );
        assert!(
            (objective_before - s.objective()).abs() <= 1e-9 * (1.0 + objective_before.abs()),
            "compaction must not change the objective beyond float renormalization"
        );
        // The mirror stayed slot-aligned: live views still build.
        let (m, space, partition, slots) = s.live_views().unwrap();
        assert_eq!(m.rows(), s.live());
        assert_eq!(space.n_rows(), s.live());
        assert_eq!(partition.n_points(), s.live());
        assert_eq!(slots.len(), s.live());
    }

    #[test]
    fn live_views_reflect_the_live_distribution() {
        let mut s = StreamingFairKm::bootstrap(blobs(10), config(9)).unwrap();
        // Ingest only group-"a" rows: the live distribution shifts toward
        // "a" while the optimizer's reference stays frozen.
        let rows: Vec<Vec<Value>> = (0..10)
            .map(|i| {
                let j = (i % 3) as f64 * 0.1;
                row![j, j, "a"]
            })
            .collect();
        s.ingest(&rows).unwrap();
        let (_, space, partition, _) = s.live_views().unwrap();
        let dist = space.categorical()[0].dataset_dist().to_vec();
        assert!(dist[0] > 0.5, "live distribution leans 'a': {dist:?}");
        assert_eq!(partition.n_points(), 30);
    }

    #[test]
    fn streaming_matches_quality_of_batch_refit_on_stationary_stream() {
        // On a stationary stream the streaming clusterer (frozen serving +
        // reopt) must stay in the same fairness regime as a full refit.
        let mut s =
            StreamingFairKm::bootstrap(blobs(40), config(8).with_drift_threshold(0.01)).unwrap();
        let mut all = blobs(40);
        for i in 0..40 {
            let r = stream_row(i);
            all.append_row(r.clone()).unwrap();
            s.ingest(&[r]).unwrap();
        }
        s.reoptimize();
        let refit = crate::FairKm::new(
            FairKmConfig::new(2)
                .with_seed(8)
                .with_lambda(Lambda::Fixed(50.0)),
        )
        .fit(&all)
        .unwrap();
        let (_, space, partition, _) = s.live_views().unwrap();
        let report = fairkm_metrics_free_fairness(&space, &partition);
        let refit_report =
            fairkm_metrics_free_fairness(&all.sensitive_space().unwrap(), refit.partition());
        assert!(
            report <= refit_report * 3.0 + 0.05,
            "streaming fairness {report} vs refit {refit_report}"
        );
    }

    /// Mean squared deviation of cluster distributions from the dataset
    /// distribution — a dependency-free stand-in for the AE metric
    /// (fairkm-metrics is not a dependency of fairkm-core).
    fn fairkm_metrics_free_fairness(space: &SensitiveSpace, partition: &Partition) -> f64 {
        let attr = &space.categorical()[0];
        let reference = attr.dataset_dist();
        let members = partition.members();
        let mut total = 0.0;
        let mut clusters = 0usize;
        for m in members.iter().filter(|m| !m.is_empty()) {
            let counts = attr.counts_over(m);
            let inv = 1.0 / m.len() as f64;
            total += counts
                .iter()
                .zip(reference)
                .map(|(&c, &r)| {
                    let d = c as f64 * inv - r;
                    d * d
                })
                .sum::<f64>();
            clusters += 1;
        }
        total / clusters.max(1) as f64
    }

    #[test]
    fn streaming_is_deterministic_per_seed() {
        let run = || {
            let mut s = StreamingFairKm::bootstrap(blobs(20), config(11)).unwrap();
            for batch in 0..4 {
                let rows: Vec<Vec<Value>> = (batch * 6..batch * 6 + 6).map(stream_row).collect();
                s.ingest(&rows).unwrap();
            }
            s.evict_oldest(10).unwrap();
            (
                s.live_slots()
                    .iter()
                    .map(|&x| s.assignment_of(x).unwrap())
                    .collect::<Vec<_>>(),
                s.objective().to_bits(),
                s.trace().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fairness_contributions_track_the_active_objective() {
        for kind in [
            ObjectiveKind::Representativity,
            ObjectiveKind::bounded(),
            ObjectiveKind::Utilitarian,
            ObjectiveKind::Egalitarian,
        ] {
            let mut s = StreamingFairKm::bootstrap(
                blobs(15),
                config(4).with_base(
                    FairKmConfig::new(2)
                        .with_seed(4)
                        .with_lambda(Lambda::Fixed(50.0))
                        .with_threads(1)
                        .with_objective(kind),
                ),
            )
            .unwrap();
            assert_eq!(s.objective_kind(), kind);
            let rows: Vec<Vec<Value>> = (0..6).map(stream_row).collect();
            s.ingest(&rows).unwrap();
            let contribs = s.fairness_contributions();
            assert_eq!(contribs.len(), s.k());
            // Every shipped objective assembles additively, and the
            // monitored term must be consistent with the objective.
            let total: f64 = contribs.iter().sum();
            assert!(
                (total - s.fairness_term()).abs() <= 1e-12 * (1.0 + total.abs()),
                "{kind:?}: contribs sum {total} vs term {}",
                s.fairness_term()
            );
            let recomposed = s.objective() - s.lambda() * s.fairness_term();
            assert!(
                recomposed.is_finite() && s.fairness_term() >= 0.0,
                "{kind:?}: fairness term {}",
                s.fairness_term()
            );
        }
    }

    #[test]
    fn bootstrap_validates_inputs() {
        assert!(matches!(
            StreamingFairKm::bootstrap(blobs(1), config(0).with_base(FairKmConfig::new(0))),
            Err(FairKmError::InvalidK { .. })
        ));
        assert!(matches!(
            StreamingFairKm::bootstrap(blobs(1), config(0).with_base(FairKmConfig::new(99))),
            Err(FairKmError::InvalidK { .. })
        ));
        assert!(matches!(
            StreamingFairKm::bootstrap(
                blobs(4),
                config(0).with_base(FairKmConfig::new(2).with_lambda(Lambda::Fixed(f64::NAN)))
            ),
            Err(FairKmError::InvalidLambda(_))
        ));
    }

    impl StreamingConfig {
        /// Test helper: swap the base config while keeping streaming knobs.
        fn with_base(mut self, base: FairKmConfig) -> Self {
            self.base = base;
            self
        }
    }
}
