//! # fairkm-core — Fair K-Means over multiple sensitive attributes
//!
//! Implementation of **FairKM** (Abraham, Deepak P, Sundaram — *Fairness in
//! Clustering with Multiple Sensitive Attributes*, EDBT 2020).
//!
//! FairKM clusters a dataset over its task attributes `N` while keeping the
//! distribution of every sensitive attribute `S` (categorical or numeric)
//! inside each cluster close to its dataset-level distribution. The
//! objective (Eq. 1) couples the classical K-Means loss with a fairness
//! deviation term:
//!
//! ```text
//! O = Σ_C Σ_{X∈C} dist_N(X, C)
//!   + λ Σ_C (|C|/|X|)² Σ_S w_S Σ_s (Fr_C(s) − Fr_X(s))² / |Values(S)|
//! ```
//!
//! Optimization is coordinate descent over objects (Algorithm 1): each
//! object moves to the cluster minimizing the objective change δO, with
//! prototypes and fractional representations updated incrementally.
//!
//! ## Features beyond the basic algorithm
//!
//! * **Numeric sensitive attributes** (Eq. 22) — deviation of cluster means
//!   from the dataset mean.
//! * **Per-attribute fairness weights** (Eq. 23) via
//!   [`FairKmConfig::with_attr_weight`].
//! * **Two δ engines** ([`DeltaEngine`]): the paper's literal O(|X|·|N|)
//!   recomputation and an algebraically identical O(|N|) Hartigan–Wong
//!   closed form (default). They are property-tested to agree.
//! * **Mini-batch prototype updates** ([`UpdateSchedule::MiniBatch`]) — the
//!   paper's §6.1 future-work speedup, realized as fixed scan windows.
//! * The **λ heuristic** `(|X|/k)²` from §5.4 ([`Lambda::Heuristic`]).
//! * **Incremental scoring engine** — the per-point per-cluster scan runs
//!   against cached prototypes and norms (dot-product distance form, no
//!   per-pair division) and cached per-cluster fairness contributions;
//!   windowed passes maintain every aggregate and the objective by delta
//!   updates, with only the clusters a move touches re-derived (no full
//!   rebuild on the accept path). See `docs/ARCHITECTURE.md`,
//!   "The incremental scoring engine".
//! * **Deterministic parallel execution** — window scoring, prototype /
//!   deviation recomputation and the nearest-seed init run on the
//!   `fairkm-parallel` persistent worker pool
//!   ([`FairKmConfig::with_threads`], or the `FAIRKM_THREADS` environment
//!   variable). Fixed chunk boundaries and ordered reductions make the
//!   clustering **bitwise-identical for any thread count**.
//! * **[`MiniBatchFairKm`]** — the large-`n` scheduler coupling the
//!   windowed schedule with an automatic window size.
//! * **[`StreamingFairKm`]** — online ingestion with incremental
//!   insert/delete aggregate deltas, frozen-prototype serving, eviction,
//!   and drift-triggered re-optimization: the long-lived-service mode of
//!   the reproduction. See the [`streaming`] module docs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
#[doc(hidden)]
pub mod bench_support;
mod config;
mod fairkm;
mod minibatch;
mod objective;
pub mod persist;
mod state;
pub mod streaming;
pub use fairkm_data::wire;

pub use agg::{AggregateDelta, ShardModel, SlotRow, MOVE_EPS, TOMBSTONE};
pub use config::{
    DeltaEngine, FairKmConfig, FairKmError, FairKmInit, FairnessNorm, Lambda, ObjectiveKind,
    UpdateSchedule,
};
pub use fairkm::{FairKm, FairKmModel};
pub use minibatch::MiniBatchFairKm;
pub use objective::bounded_exact_assignment;
pub use streaming::{
    EvictReport, IngestReport, ServingView, ShardParts, StreamingConfig, StreamingFairKm,
};
