//! Mutable optimization state: cluster sizes, prototype sums, per-attribute
//! value counts, the δ computations of §4.2, and the scoring caches the
//! hot loop runs against.
//!
//! The state maintains, per cluster: its size, the component-wise sum of
//! its members' task vectors (prototype = sum / size), and for every
//! sensitive attribute the per-value member counts (categorical) or value
//! sum (numeric). All of Eqs. 7, 11–19 and 22 are evaluated against these
//! running aggregates; a full [`State::rebuild`] recomputes them from the
//! assignment vector.
//!
//! ## Scoring caches and invalidation
//!
//! On top of the running aggregates the state materializes a **scoring
//! cache** so the per-point per-cluster scan (Eqs. 1, 7, 22) does no
//! per-pair division and no redundant fairness recomputation:
//!
//! * [`State::proto`] — the `k×dim` prototypes (`centroid_sum / size`);
//! * [`State::proto_sqnorm`] — per-cluster `‖μ_c‖²`;
//! * [`State::point_sqnorm`] — per-point `‖x_i‖²`, computed once (points
//!   never change);
//! * [`State::member_sqnorm`] — per-cluster `Σ_{i∈c} ‖x_i‖²`, delta-
//!   maintained by [`State::apply_move`], which together with the norms
//!   above yields the cluster SSE in O(1) via
//!   `SSE_c = Σ‖x‖² − |c|·‖μ_c‖²`;
//! * [`State::fair_cache`] — per-cluster fairness contributions (the Eq. 7
//!   summands plus the Eq. 22 numeric terms).
//!
//! [`State::sq_dist_to_prototype_cached`] evaluates the point-to-prototype
//! distance in the vectorizable dot-product form `‖x‖² − 2·x·μ + ‖μ‖²`.
//! [`State::apply_move`] / [`State::revert_move`] update every running
//! aggregate in O(dim + Σ|Values(S)|) and only mark the two touched
//! clusters dirty; [`State::refresh_cache`] re-derives the cache entries
//! of dirty clusters and leaves every other cluster's entries untouched.
//! [`State::debug_validate_cache`] (debug builds) cross-checks the
//! delta-maintained aggregates against a from-scratch recomputation.
//!
//! Aggregate recomputation ([`State::rebuild`]) and the K-Means term
//! ([`State::kmeans_term`]) run on the `fairkm-parallel` engine: fixed
//! chunks of rows build partial aggregates that are merged in chunk order,
//! so the result is bitwise-identical for any thread count.

use crate::agg::AggregateDelta;
use crate::config::{FairnessNorm, ObjectiveKind};
use crate::objective::{FairView, Objective, PointRef};
use crate::wire::{self, Reader, WireError};
use fairkm_data::{sq_euclidean, NumericMatrix, SensitiveSpace};
use std::borrow::Cow;

/// Assignment sentinel for a backing-store slot that is not currently part
/// of the clustering — never ingested into a cluster, or already evicted.
/// Every scan (rebuild, scoring, K-Means term) skips such slots; streaming
/// insert/remove toggles slots between live and unassigned.
pub(crate) const UNASSIGNED: usize = usize::MAX;

/// One categorical sensitive attribute, flattened for the hot loop.
#[derive(Clone, Debug)]
pub(crate) struct CatAttr {
    /// Per-object value index.
    pub values: Vec<u32>,
    /// Domain cardinality `|Values(S)|`.
    pub t: usize,
    /// Dataset-level fractional representation `Fr_X^S`.
    pub dist: Vec<f64>,
    /// Per-value weight of the squared deviation. The paper's Eq. 4 uses
    /// the uniform `1/t`; the skew-aware variant weighs by inverse
    /// indicator variance (weights always sum to 1).
    pub value_scale: Vec<f64>,
    /// Fairness weight `w_S` (Eq. 23).
    pub weight: f64,
}

/// Per-value deviation weights under the chosen normalization.
fn value_scales(dist: &[f64], n: usize, norm: FairnessNorm) -> Vec<f64> {
    let t = dist.len();
    match norm {
        FairnessNorm::DomainCardinality => vec![1.0 / t as f64; t],
        FairnessNorm::SkewAware => {
            let floor = 1.0 / (n.max(1) as f64);
            let raw: Vec<f64> = dist
                .iter()
                .map(|&p| 1.0 / (p * (1.0 - p) + floor))
                .collect();
            let total: f64 = raw.iter().sum();
            raw.into_iter().map(|w| w / total).collect()
        }
    }
}

/// One numeric sensitive attribute (Eq. 22).
#[derive(Clone, Debug)]
pub(crate) struct NumAttr {
    pub values: Vec<f64>,
    /// Dataset mean `X̄.S`.
    pub mean: f64,
    pub weight: f64,
}

/// The mutable fit state. Batch fits borrow the task matrix
/// ([`State::with_norm`]); the streaming driver owns a growable copy
/// ([`State::with_norm_owned`], `'a = 'static`) so rows can be appended.
/// Sensitive columns are always owned copies (flattened for cache-friendly
/// access).
#[derive(Clone)]
pub(crate) struct State<'a> {
    pub matrix: Cow<'a, NumericMatrix>,
    /// Backing-store slots (matrix rows), including unassigned ones.
    pub n: usize,
    /// Live (assigned) points — the `|X|` of the fairness term (Eq. 7).
    /// Equal to `n` for batch fits; diverges under streaming insert/remove.
    pub live: usize,
    pub k: usize,
    pub dim: usize,
    /// Cluster per slot; [`UNASSIGNED`] marks slots outside the clustering.
    pub assignment: Vec<usize>,
    pub size: Vec<usize>,
    /// Flat k×dim prototype sums.
    pub centroid_sum: Vec<f64>,
    pub cat: Vec<CatAttr>,
    /// Per categorical attribute: flat k×t counts.
    pub cat_counts: Vec<Vec<i64>>,
    pub num: Vec<NumAttr>,
    /// Per numeric attribute: per-cluster value sums.
    pub num_sums: Vec<Vec<f64>>,
    /// The fairness objective every contribution/delta evaluation routes
    /// through (enum-dispatched, monomorphized — see [`crate::objective`]).
    pub objective: Objective,
    /// Worker threads for rebuild / K-Means-term evaluation (≥ 1). The
    /// chunk layout is independent of this, so it never changes results.
    pub threads: usize,
    /// Scoring cache: flat k×dim materialized prototypes (zeros for empty
    /// clusters). Valid for clusters not marked dirty.
    pub proto: Vec<f64>,
    /// Scoring cache: per-cluster `‖μ_c‖²` (0 for empty clusters).
    pub proto_sqnorm: Vec<f64>,
    /// Per-point `‖x_i‖²`, computed once at construction.
    pub point_sqnorm: Vec<f64>,
    /// Per-cluster `Σ_{i∈c} ‖x_i‖²`, delta-maintained by moves.
    pub member_sqnorm: Vec<f64>,
    /// Cached per-cluster fairness contribution (Eq. 7 summand + Eq. 22
    /// terms). Valid for clusters not marked dirty.
    pub fair_cache: Vec<f64>,
    /// Clusters whose `proto` / `proto_sqnorm` / `fair_cache` entries are
    /// stale relative to the running aggregates.
    dirty: Vec<bool>,
    /// Insertion-ordered list of the dirty clusters (mirrors `dirty`).
    dirty_list: Vec<usize>,
    /// Number of full [`State::rebuild`] calls (including the one in the
    /// constructor). Diagnostic: the windowed accept path is rebuild-free,
    /// and the regression tests pin that down through this counter.
    pub rebuilds: usize,
    /// Number of windows that failed monotone acceptance and took the
    /// revert-and-rescan fallback (the only windowed path that rebuilds).
    pub fallbacks: usize,
}

impl<'a> State<'a> {
    /// Build from views and an initial assignment with the paper's Eq. 4
    /// weighting (test convenience; the driver passes the configured norm
    /// through [`Self::with_norm`]).
    #[cfg(test)]
    pub fn new(
        matrix: &'a NumericMatrix,
        space: &SensitiveSpace,
        weights: &[f64],
        k: usize,
        assignment: Vec<usize>,
    ) -> Self {
        Self::with_norm(
            matrix,
            space,
            weights,
            k,
            assignment,
            FairnessNorm::DomainCardinality,
            ObjectiveKind::Representativity,
            1,
        )
    }

    /// Like [`Self::new`] with an explicit deviation normalization,
    /// fairness objective, and worker-thread count.
    #[allow(clippy::too_many_arguments)]
    pub fn with_norm(
        matrix: &'a NumericMatrix,
        space: &SensitiveSpace,
        weights: &[f64],
        k: usize,
        assignment: Vec<usize>,
        norm: FairnessNorm,
        objective: ObjectiveKind,
        threads: usize,
    ) -> Self {
        Self::build(
            Cow::Borrowed(matrix),
            space,
            weights,
            k,
            assignment,
            norm,
            objective,
            threads,
        )
    }

    /// Like [`Self::with_norm`] but owning the matrix, so the state can
    /// outlive its construction site and grow ([`Self::push_row`]) — the
    /// form the streaming driver holds long-term.
    #[allow(clippy::too_many_arguments)]
    pub fn with_norm_owned(
        matrix: NumericMatrix,
        space: &SensitiveSpace,
        weights: &[f64],
        k: usize,
        assignment: Vec<usize>,
        norm: FairnessNorm,
        objective: ObjectiveKind,
        threads: usize,
    ) -> State<'static> {
        State::build(
            Cow::Owned(matrix),
            space,
            weights,
            k,
            assignment,
            norm,
            objective,
            threads,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        matrix: Cow<'a, NumericMatrix>,
        space: &SensitiveSpace,
        weights: &[f64],
        k: usize,
        assignment: Vec<usize>,
        norm: FairnessNorm,
        objective: ObjectiveKind,
        threads: usize,
    ) -> Self {
        let n = matrix.rows();
        let dim = matrix.cols();
        debug_assert_eq!(assignment.len(), n);
        debug_assert_eq!(weights.len(), space.n_attrs());
        let cat: Vec<CatAttr> = space
            .categorical()
            .iter()
            .zip(weights)
            .map(|(a, &w)| CatAttr {
                values: a.values().to_vec(),
                t: a.cardinality(),
                dist: a.dataset_dist().to_vec(),
                value_scale: value_scales(a.dataset_dist(), n, norm),
                weight: w,
            })
            .collect();
        let num: Vec<NumAttr> = space
            .numeric()
            .iter()
            .zip(&weights[space.categorical().len()..])
            .map(|(a, &w)| NumAttr {
                values: a.values().to_vec(),
                mean: a.dataset_mean(),
                weight: w,
            })
            .collect();
        let threads = threads.max(1);
        // Point norms never change, so they are computed exactly once.
        // Per-point sums are sequential within the point, so the values are
        // independent of the thread count.
        let point_sqnorm = fairkm_parallel::map_indexed(threads, 0..n, |i| {
            matrix.row(i).iter().map(|v| v * v).sum::<f64>()
        });
        // The objective is instantiated against the frozen sensitive
        // reference (dataset distributions/means inside the attributes).
        let objective = Objective::from_kind(objective, &cat, &num);
        let mut state = Self {
            matrix,
            n,
            live: 0, // set by the rebuild below
            k,
            dim,
            assignment,
            size: vec![0; k],
            centroid_sum: vec![0.0; k * dim],
            cat_counts: cat.iter().map(|a| vec![0i64; k * a.t]).collect(),
            num_sums: num.iter().map(|_| vec![0.0; k]).collect(),
            cat,
            num,
            objective,
            threads,
            proto: vec![0.0; k * dim],
            proto_sqnorm: vec![0.0; k],
            point_sqnorm,
            member_sqnorm: vec![0.0; k],
            fair_cache: vec![0.0; k],
            dirty: vec![false; k],
            dirty_list: Vec::with_capacity(k),
            rebuilds: 0,
            fallbacks: 0,
        };
        state.rebuild();
        state
    }

    /// A zeroed partial shaped like this state's aggregates.
    fn zeroed_partial(&self) -> AggregateDelta {
        let cat_ts: Vec<usize> = self.cat.iter().map(|a| a.t).collect();
        AggregateDelta::zeroed(self.k, self.dim, &cat_ts, self.num.len())
    }

    /// Aggregate one chunk of rows into a fresh partial (steps of
    /// [`Self::rebuild`], restricted to `range`). Pure in the chunk, so
    /// chunks can be computed concurrently — and the same per-row fold a
    /// shard replays over its owned slots during a distributed rebuild.
    fn rebuild_partial(&self, range: std::ops::Range<usize>) -> AggregateDelta {
        let mut part = self.zeroed_partial();
        for i in range {
            let c = self.assignment[i];
            if c == UNASSIGNED {
                continue;
            }
            part.size[c] += 1;
            let row = self.matrix.row(i);
            let dst = &mut part.centroid_sum[c * self.dim..(c + 1) * self.dim];
            for (d, v) in dst.iter_mut().zip(row) {
                *d += v;
            }
            for (attr, counts) in self.cat.iter().zip(&mut part.cat_counts) {
                counts[c * attr.t + attr.values[i] as usize] += 1;
            }
            for (attr, sums) in self.num.iter().zip(&mut part.num_sums) {
                sums[c] += attr.values[i];
            }
            part.member_sqnorm[c] += self.point_sqnorm[i];
        }
        part
    }

    /// Recompute every running aggregate from the assignment vector, then
    /// refresh the scoring cache of every cluster.
    ///
    /// Chunks of rows are aggregated in parallel and merged in chunk order,
    /// so the sums are bitwise-identical for any [`Self::threads`] value.
    pub fn rebuild(&mut self) {
        let total = fairkm_parallel::fold_chunks(
            self.threads,
            self.n,
            self.zeroed_partial(),
            |range| self.rebuild_partial(range),
            AggregateDelta::merge,
        );
        self.size = total.size;
        self.centroid_sum = total.centroid_sum;
        self.cat_counts = total.cat_counts;
        self.num_sums = total.num_sums;
        self.member_sqnorm = total.member_sqnorm;
        self.live = self.size.iter().sum();
        for c in 0..self.k {
            self.mark_dirty(c);
        }
        self.refresh_cache();
        self.rebuilds += 1;
    }

    /// Mark cluster `c`'s cache entries stale (idempotent).
    fn mark_dirty(&mut self, c: usize) {
        if !self.dirty[c] {
            self.dirty[c] = true;
            self.dirty_list.push(c);
        }
    }

    /// Re-derive the cache entries (prototype, `‖μ‖²`, fairness
    /// contribution) of every dirty cluster from the running aggregates.
    /// O(dirty · (dim + Σ_S |Values(S)|)); clean clusters are untouched.
    pub fn refresh_cache(&mut self) {
        while let Some(c) = self.dirty_list.pop() {
            self.dirty[c] = false;
            self.fair_cache[c] = self.fairness_contrib_adjusted(c, usize::MAX, 0);
            let span = c * self.dim..(c + 1) * self.dim;
            if self.size[c] == 0 {
                self.proto[span].fill(0.0);
                self.proto_sqnorm[c] = 0.0;
            } else {
                let inv = 1.0 / self.size[c] as f64;
                let mut sqnorm = 0.0;
                for (p, s) in self.proto[span.clone()]
                    .iter_mut()
                    .zip(&self.centroid_sum[span])
                {
                    let v = s * inv;
                    *p = v;
                    sqnorm += v * v;
                }
                self.proto_sqnorm[c] = sqnorm;
            }
        }
    }

    /// Whether every cache entry is current (no dirty clusters).
    pub fn cache_is_fresh(&self) -> bool {
        self.dirty_list.is_empty()
    }

    /// Write cluster `c`'s prototype (mean) into `out`; zeros if empty.
    pub fn prototype_into(&self, c: usize, out: &mut [f64]) {
        let src = &self.centroid_sum[c * self.dim..(c + 1) * self.dim];
        if self.size[c] == 0 {
            out.fill(0.0);
            return;
        }
        let inv = 1.0 / self.size[c] as f64;
        for (o, s) in out.iter_mut().zip(src) {
            *o = s * inv;
        }
    }

    /// Squared distance from point `x` to cluster `c`'s prototype;
    /// `f64::INFINITY` for an empty cluster (no prototype exists).
    ///
    /// This is the literal per-pair form (derive the prototype from the
    /// running sum, subtract, square): it reads only the aggregates, so it
    /// never depends on cache freshness. The hot loop uses
    /// [`Self::sq_dist_to_prototype_cached`] instead; this form remains the
    /// reference kernel for [`Self::kmeans_term`], the `scoring_cache`
    /// bench baseline, and the kernel-equivalence tests.
    #[inline]
    pub fn sq_dist_to_prototype(&self, x: usize, c: usize) -> f64 {
        let s = self.size[c];
        if s == 0 {
            return f64::INFINITY;
        }
        let inv = 1.0 / s as f64;
        let sums = &self.centroid_sum[c * self.dim..(c + 1) * self.dim];
        let row = self.matrix.row(x);
        let mut acc = 0.0;
        for (v, sum) in row.iter().zip(sums) {
            let d = v - sum * inv;
            acc += d * d;
        }
        acc
    }

    /// Squared distance from point `x` to cluster `c`'s prototype in the
    /// cached dot-product form `‖x‖² − 2·x·μ_c + ‖μ_c‖²`: one fused
    /// multiply-add pass over the row, no per-pair division, both norms
    /// read from the cache. Clamped at 0 (the expansion can go marginally
    /// negative under cancellation); `f64::INFINITY` for an empty cluster.
    ///
    /// Requires cluster `c`'s cache entry to be fresh (debug-asserted).
    #[inline]
    pub fn sq_dist_to_prototype_cached(&self, x: usize, c: usize) -> f64 {
        debug_assert!(!self.dirty[c], "scoring against a stale prototype cache");
        if self.size[c] == 0 {
            return f64::INFINITY;
        }
        let proto = &self.proto[c * self.dim..(c + 1) * self.dim];
        let row = self.matrix.row(x);
        let mut dot = 0.0;
        for (v, p) in row.iter().zip(proto) {
            dot += v * p;
        }
        (self.point_sqnorm[x] - 2.0 * dot + self.proto_sqnorm[c]).max(0.0)
    }

    /// The K-Means term of the objective (Eq. 1, left): total
    /// within-cluster SSE against the current prototypes. Chunk-parallel
    /// with ordered reduction — bitwise-stable across thread counts.
    pub fn kmeans_term(&self) -> f64 {
        fairkm_parallel::sum_chunks(self.threads, self.n, |range| {
            let mut total = 0.0;
            for i in range {
                let c = self.assignment[i];
                if c != UNASSIGNED && self.size[c] > 0 {
                    total += self.sq_dist_to_prototype(i, c);
                }
            }
            total
        })
    }

    /// The K-Means term from the cache in O(k), via the identity
    /// `SSE_c = Σ_{i∈c} ‖x_i‖² − |c|·‖μ_c‖²` (clamped at 0 per cluster
    /// against cancellation). Requires a fresh cache.
    pub fn kmeans_term_cached(&self) -> f64 {
        debug_assert!(self.cache_is_fresh(), "cached K-Means term needs a refresh");
        (0..self.k)
            .map(|c| (self.member_sqnorm[c] - self.size[c] as f64 * self.proto_sqnorm[c]).max(0.0))
            .sum()
    }

    /// The fairness term from the cache in O(k), assembled by the active
    /// objective. Requires a fresh cache; each cached entry is
    /// bitwise-identical to [`Self::fairness_contrib`] (the refresh runs
    /// the very same computation).
    pub fn fairness_term_cached(&self) -> f64 {
        debug_assert!(
            self.cache_is_fresh(),
            "cached fairness term needs a refresh"
        );
        self.objective.assemble(&self.fair_cache)
    }

    /// Full objective `kmeans + λ·fairness` from the cache in O(k).
    pub fn objective_cached(&self, lambda: f64) -> f64 {
        self.kmeans_term_cached() + lambda * self.fairness_term_cached()
    }

    /// Fairness contribution of cluster `c` (one summand of Eq. 7 plus the
    /// Eq. 22 numeric terms, with Eq. 23 weights):
    /// `(|C|/|X|)² · [ Σ_S w_S Σ_s (Fr_C(s) − Fr_X(s))²/|Values(S)|
    ///               + Σ_S w_S (C.S̄ − X.S̄)² ]`.
    pub fn fairness_contrib(&self, c: usize) -> f64 {
        self.fairness_contrib_adjusted(c, usize::MAX, 0)
    }

    /// The aggregate view the pluggable objective evaluates against
    /// (everything but the task matrix).
    #[inline]
    fn fair_view(&self) -> FairView<'_> {
        FairView {
            size: &self.size,
            live: self.live,
            cat: &self.cat,
            cat_counts: &self.cat_counts,
            num: &self.num,
            num_sums: &self.num_sums,
        }
    }

    /// Like [`Self::fairness_contrib`] but evaluated as if object `x` were
    /// added to (`delta = +1`) or removed from (`delta = -1`) cluster `c`.
    /// Pass `x = usize::MAX, delta = 0` for the unadjusted value.
    ///
    /// This realizes Eqs. 16–18 by exact local recomputation in
    /// O(Σ_S |Values(S)|) — the same asymptotic cost as the paper's
    /// expanded algebraic forms, with no room for sign errors. The actual
    /// arithmetic lives in the active [`Objective`]; dispatch is one
    /// predicted branch, with each arm monomorphized.
    #[inline]
    pub fn fairness_contrib_adjusted(&self, c: usize, x: usize, delta: i64) -> f64 {
        let p = if delta == 0 {
            PointRef::None
        } else {
            PointRef::Slot(x)
        };
        self.objective
            .contrib_adjusted(&self.fair_view(), c, p, delta)
    }

    /// The full fairness term `deviation_S(C, X)` (Eq. 7 / 22 / 23),
    /// assembled from freshly scanned per-cluster contributions by the
    /// active objective.
    pub fn fairness_term(&self) -> f64 {
        let contribs: Vec<f64> = (0..self.k).map(|c| self.fairness_contrib(c)).collect();
        self.objective.assemble(&contribs)
    }

    /// Change in the fairness term if `x` moved `from → to` (Eq. 19).
    pub fn delta_fairness(&self, x: usize, from: usize, to: usize) -> f64 {
        if from == to {
            return 0.0;
        }
        let out_new = self.fairness_contrib_adjusted(from, x, -1);
        let in_new = self.fairness_contrib_adjusted(to, x, 1);
        let out_old = self.fairness_contrib(from);
        let in_old = self.fairness_contrib(to);
        (out_new + in_new) - (out_old + in_old)
    }

    /// Change in the K-Means term if `x` moved `from → to`, via the
    /// Hartigan–Wong closed form over the cached distance kernel.
    /// `μ_from` includes `x`; `μ_to` does not. Requires a fresh cache for
    /// both clusters.
    ///
    /// The hot loop (`propose_move`) inlines this arithmetic with the
    /// origin terms hoisted; this form is the uncomposed reference the
    /// δ-equivalence tests exercise.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn delta_kmeans_incremental(&self, x: usize, from: usize, to: usize) -> f64 {
        if from == to {
            return 0.0;
        }
        let s_from = self.size[from];
        let d_out = if s_from > 1 {
            let d = self.sq_dist_to_prototype_cached(x, from);
            -(s_from as f64 / (s_from as f64 - 1.0)) * d
        } else {
            0.0 // removing the last member: that cluster's SSE was 0
        };
        let s_to = self.size[to];
        let d_in = if s_to > 0 {
            let d = self.sq_dist_to_prototype_cached(x, to);
            (s_to as f64 / (s_to as f64 + 1.0)) * d
        } else {
            0.0 // singleton in an empty cluster has SSE 0
        };
        d_out + d_in
    }

    /// Change in the K-Means term via the paper's literal Eqs. 11–14:
    /// recompute both affected clusters' SSE around the shifted prototypes
    /// by iterating over the whole dataset. O(|X|·|N|) per call.
    pub fn delta_kmeans_literal(&self, x: usize, from: usize, to: usize) -> f64 {
        if from == to {
            return 0.0;
        }
        let dim = self.dim;
        let mut mu_from_old = vec![0.0; dim];
        let mut mu_to_old = vec![0.0; dim];
        self.prototype_into(from, &mut mu_from_old);
        self.prototype_into(to, &mut mu_to_old);
        let row_x = self.matrix.row(x);

        // Eq. 11: the origin prototype after excluding x.
        let s_from = self.size[from] as f64;
        let mu_from_new: Vec<f64> = if self.size[from] > 1 {
            mu_from_old
                .iter()
                .zip(row_x)
                .map(|(&m, &v)| (m - v / s_from) * (s_from / (s_from - 1.0)))
                .collect()
        } else {
            vec![0.0; dim] // cluster empties out; no members remain
        };
        // Eq. 13: the target prototype after including x.
        let s_to = self.size[to] as f64;
        let mu_to_new: Vec<f64> = mu_to_old
            .iter()
            .zip(row_x)
            .map(|(&m, &v)| m * (s_to / (s_to + 1.0)) + v / (s_to + 1.0))
            .collect();

        // Eq. 12: δXout = Σ_{x'∈from, x'≠x} ‖x'−μ_new‖² −
        //                 [Σ_{x'∈from, x'≠x} ‖x'−μ_old‖² + ‖x−μ_old‖²]
        let mut d_out = -sq_euclidean(row_x, &mu_from_old);
        // Eq. 14: δXin  = [Σ_{x'∈to} ‖x'−μ_new‖² + ‖x−μ_new‖²] −
        //                 Σ_{x'∈to} ‖x'−μ_old‖²
        let mut d_in = sq_euclidean(row_x, &mu_to_new);
        for i in 0..self.n {
            if i == x {
                continue;
            }
            let c = self.assignment[i];
            if c == from {
                let row = self.matrix.row(i);
                d_out += sq_euclidean(row, &mu_from_new) - sq_euclidean(row, &mu_from_old);
            } else if c == to {
                let row = self.matrix.row(i);
                d_in += sq_euclidean(row, &mu_to_new) - sq_euclidean(row, &mu_to_old);
            }
        }
        d_out + d_in
    }

    /// Apply the move `x: from → to`, updating every running aggregate
    /// (steps 6–7 of Algorithm 1; Eqs. 20–21 for the fractions).
    pub fn apply_move(&mut self, x: usize, from: usize, to: usize) {
        debug_assert_ne!(from, to);
        debug_assert!(self.size[from] > 0);
        self.assignment[x] = to;
        self.size[from] -= 1;
        self.size[to] += 1;
        let row = self.matrix.row(x);
        {
            let (lo, hi, from_first) = if from < to {
                (from, to, true)
            } else {
                (to, from, false)
            };
            let (head, tail) = self.centroid_sum.split_at_mut(hi * self.dim);
            let lo_slice = &mut head[lo * self.dim..(lo + 1) * self.dim];
            let hi_slice = &mut tail[..self.dim];
            let (from_slice, to_slice) = if from_first {
                (lo_slice, hi_slice)
            } else {
                (hi_slice, lo_slice)
            };
            for ((f, t), v) in from_slice.iter_mut().zip(to_slice).zip(row) {
                *f -= v;
                *t += v;
            }
        }
        for (attr, counts) in self.cat.iter().zip(&mut self.cat_counts) {
            let v = attr.values[x] as usize;
            counts[from * attr.t + v] -= 1;
            counts[to * attr.t + v] += 1;
        }
        for (attr, sums) in self.num.iter().zip(&mut self.num_sums) {
            sums[from] -= attr.values[x];
            sums[to] += attr.values[x];
        }
        self.member_sqnorm[from] -= self.point_sqnorm[x];
        self.member_sqnorm[to] += self.point_sqnorm[x];
        // The objective declares its move dirty-set: every shipped one
        // confines it to the two touched clusters (`live` is unchanged).
        if self.objective.dirties_all_on_move() {
            self.mark_all_dirty();
        } else {
            self.mark_dirty(from);
            self.mark_dirty(to);
        }
    }

    /// Undo [`Self::apply_move`]`(x, from, to)`: restores the assignment
    /// and every running aggregate by the inverse delta. Integer aggregates
    /// (sizes, categorical counts) are restored exactly; float sums are
    /// restored up to one rounding step per component ([`Self::rebuild`]
    /// re-derives them exactly when needed). Marks both clusters dirty.
    ///
    /// The windowed fallback restores assignments directly and rebuilds
    /// (an exact restore that would discard these deltas anyway); this
    /// inverse is for callers running speculative move sequences without
    /// paying O(n) — the move-sequence property tests drive it.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn revert_move(&mut self, x: usize, from: usize, to: usize) {
        debug_assert_eq!(self.assignment[x], to, "reverting a move never applied");
        self.apply_move(x, to, from);
    }

    /// Mark every cluster's cache entry stale. Insert/remove deltas change
    /// the live count `|X|`, which enters every cluster's Eq. 7 weight
    /// `(|C|/|X|)²` — so unlike a move, they invalidate all fairness
    /// contributions, not just the touched cluster's.
    fn mark_all_dirty(&mut self) {
        for c in 0..self.k {
            self.mark_dirty(c);
        }
    }

    /// Append a backing-store slot for a new point: task row, sensitive
    /// values (categorical first, numeric second — the attribute order of
    /// the construction-time space), `‖x‖²`. The slot starts
    /// [`UNASSIGNED`]; activate it with [`Self::insert_point`]. Returns the
    /// slot index. Requires an owned matrix ([`Self::with_norm_owned`]).
    pub fn push_row(&mut self, row: &[f64], cat_vals: &[u32], num_vals: &[f64]) -> usize {
        debug_assert_eq!(row.len(), self.dim);
        debug_assert_eq!(cat_vals.len(), self.cat.len());
        debug_assert_eq!(num_vals.len(), self.num.len());
        let slot = self.n;
        self.matrix.to_mut().push_row(row);
        self.point_sqnorm
            .push(row.iter().map(|v| v * v).sum::<f64>());
        for (attr, &v) in self.cat.iter_mut().zip(cat_vals) {
            debug_assert!((v as usize) < attr.t, "sensitive value outside domain");
            attr.values.push(v);
        }
        for (attr, &v) in self.num.iter_mut().zip(num_vals) {
            attr.values.push(v);
        }
        self.assignment.push(UNASSIGNED);
        self.n += 1;
        slot
    }

    /// Insert the unassigned point `x` into cluster `c`, delta-updating
    /// every running aggregate exactly like [`Self::apply_move`] does for
    /// the target side of a move: O(dim + Σ|Values(S)|). All clusters are
    /// marked dirty (the live count changed — see [`Self::mark_all_dirty`]).
    pub fn insert_point(&mut self, x: usize, c: usize) {
        debug_assert_eq!(self.assignment[x], UNASSIGNED, "inserting a live point");
        debug_assert!(c < self.k);
        self.assignment[x] = c;
        self.size[c] += 1;
        self.live += 1;
        let row = self.matrix.row(x);
        let dst = &mut self.centroid_sum[c * self.dim..(c + 1) * self.dim];
        for (d, v) in dst.iter_mut().zip(row) {
            *d += v;
        }
        for (attr, counts) in self.cat.iter().zip(&mut self.cat_counts) {
            counts[c * attr.t + attr.values[x] as usize] += 1;
        }
        for (attr, sums) in self.num.iter().zip(&mut self.num_sums) {
            sums[c] += attr.values[x];
        }
        self.member_sqnorm[c] += self.point_sqnorm[x];
        if self.objective.dirties_all_on_live_change() {
            self.mark_all_dirty();
        } else {
            self.mark_dirty(c);
        }
    }

    /// Remove the live point `x` from its cluster (streaming eviction),
    /// delta-updating every running aggregate by the inverse of
    /// [`Self::insert_point`]. The slot stays in the backing store as a
    /// tombstone until [`Self::compact`]. Returns the cluster it left.
    pub fn remove_point(&mut self, x: usize) -> usize {
        let c = self.assignment[x];
        debug_assert_ne!(c, UNASSIGNED, "removing an unassigned point");
        debug_assert!(self.size[c] > 0);
        self.assignment[x] = UNASSIGNED;
        self.size[c] -= 1;
        self.live -= 1;
        let row = self.matrix.row(x);
        let dst = &mut self.centroid_sum[c * self.dim..(c + 1) * self.dim];
        for (d, v) in dst.iter_mut().zip(row) {
            *d -= v;
        }
        for (attr, counts) in self.cat.iter().zip(&mut self.cat_counts) {
            counts[c * attr.t + attr.values[x] as usize] -= 1;
        }
        for (attr, sums) in self.num.iter().zip(&mut self.num_sums) {
            sums[c] -= attr.values[x];
        }
        self.member_sqnorm[c] -= self.point_sqnorm[x];
        if self.objective.dirties_all_on_live_change() {
            self.mark_all_dirty();
        } else {
            self.mark_dirty(c);
        }
        c
    }

    /// Drop every tombstoned slot from the backing store, renumbering the
    /// survivors. Returns the old slot indices that were kept, in order
    /// (new slot `i` held old slot `kept[i]`) so callers can renumber
    /// parallel stores. The frozen fairness reference (dataset
    /// distributions, means, value scales) is untouched. Requires an owned
    /// matrix.
    ///
    /// The per-cluster aggregates and caches are preserved **verbatim**:
    /// they are cluster-indexed and reference no slot ids, so renumbering
    /// the points cannot change them. Re-deriving them here (a `rebuild`)
    /// would sum the same members in a different op order than the
    /// incremental add/remove history and perturb the low bits — breaking
    /// the contract that compaction is bitwise transparent to the stream
    /// (pinned by `tests/compact_regression.rs`).
    pub fn compact(&mut self) -> Vec<usize> {
        let kept: Vec<usize> = (0..self.n)
            .filter(|&i| self.assignment[i] != UNASSIGNED)
            .collect();
        if kept.len() == self.n {
            return kept;
        }
        let compacted = self.matrix.select_rows(&kept);
        *self.matrix.to_mut() = compacted;
        self.point_sqnorm = kept.iter().map(|&i| self.point_sqnorm[i]).collect();
        for attr in &mut self.cat {
            attr.values = kept.iter().map(|&i| attr.values[i]).collect();
        }
        for attr in &mut self.num {
            attr.values = kept.iter().map(|&i| attr.values[i]).collect();
        }
        self.assignment = kept.iter().map(|&i| self.assignment[i]).collect();
        self.n = kept.len();
        debug_assert_eq!(self.live, self.n, "every surviving slot is live");
        kept
    }

    /// Exact objective change of inserting an external point (task row +
    /// sensitive values) into cluster `c`, against the current caches:
    ///
    /// * K-Means side: the Hartigan–Wong insertion form
    ///   `|C|/(|C|+1)·‖x−μ_C‖²` over the cached dot-product kernel (zero
    ///   for an empty cluster — a singleton has no SSE);
    /// * fairness side: cluster `c`'s contribution recomputed with the
    ///   point added and `|X|+1` live points, **plus** every other
    ///   cluster's cached contribution rescaled by `(|X|/(|X|+1))²` — the
    ///   global re-weighting an insertion causes — minus the current total.
    ///
    /// Requires a fresh cache. O(dim + Σ|Values(S)| + k).
    ///
    /// The serve path ([`Self::score_insertion`]) uses the `_with_total`
    /// form with the fairness total hoisted out of the candidate loop; this
    /// uncomposed form is the reference the brute-force proptests exercise.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn insertion_delta(
        &self,
        c: usize,
        row: &[f64],
        cat_vals: &[u32],
        num_vals: &[f64],
        lambda: f64,
    ) -> f64 {
        let fair_total: f64 = self.fair_cache.iter().sum();
        self.insertion_delta_with_total(c, row, cat_vals, num_vals, lambda, fair_total)
    }

    /// [`Self::insertion_delta`] with the current fairness total passed in,
    /// so a full [`Self::score_insertion`] scan sums `fair_cache` once
    /// instead of once per candidate.
    fn insertion_delta_with_total(
        &self,
        c: usize,
        row: &[f64],
        cat_vals: &[u32],
        num_vals: &[f64],
        lambda: f64,
        fair_total: f64,
    ) -> f64 {
        debug_assert!(
            self.cache_is_fresh(),
            "insertion scoring needs a fresh cache"
        );
        let s = self.size[c];
        let d_km = if s > 0 {
            let proto = &self.proto[c * self.dim..(c + 1) * self.dim];
            let mut dot = 0.0;
            let mut row_sqnorm = 0.0;
            for (v, p) in row.iter().zip(proto) {
                dot += v * p;
                row_sqnorm += v * v;
            }
            let d = (row_sqnorm - 2.0 * dot + self.proto_sqnorm[c]).max(0.0);
            (s as f64 / (s as f64 + 1.0)) * d
        } else {
            0.0
        };
        let live = self.live as f64;
        let shrink = self.objective.insertion_rescale(live);
        let new_fair = self.insertion_contrib(c, cat_vals, num_vals)
            + (fair_total - self.fair_cache[c]) * shrink;
        d_km + lambda * (new_fair - fair_total)
    }

    /// Cluster `c`'s fairness contribution as if the external point joined
    /// it, with `|X| + 1` live points — the insertion analogue of
    /// [`Self::fairness_contrib_adjusted`], taking the sensitive values
    /// directly instead of a slot index.
    #[inline]
    fn insertion_contrib(&self, c: usize, cat_vals: &[u32], num_vals: &[f64]) -> f64 {
        self.objective
            .insertion_contrib(&self.fair_view(), c, cat_vals, num_vals)
    }

    /// Frozen-prototype assignment of an external point: the cluster
    /// minimizing [`Self::insertion_delta`] (ties break to the lowest
    /// index), plus that delta. Read-only, so batches of arrivals can be
    /// scored concurrently against caches frozen at batch start.
    pub fn score_insertion(
        &self,
        row: &[f64],
        cat_vals: &[u32],
        num_vals: &[f64],
        lambda: f64,
    ) -> (usize, f64) {
        let fair_total: f64 = self.fair_cache.iter().sum();
        let mut best = 0usize;
        let mut best_delta = f64::INFINITY;
        for c in 0..self.k {
            let delta =
                self.insertion_delta_with_total(c, row, cat_vals, num_vals, lambda, fair_total);
            if delta < best_delta {
                best_delta = delta;
                best = c;
            }
        }
        (best, best_delta)
    }

    /// Debug-build cross-check of the delta-maintained state against a
    /// from-scratch recomputation: integer aggregates must agree exactly,
    /// float aggregates and the cached objective within a tight relative
    /// tolerance (exact bitwise agreement is unattainable for float sums —
    /// `(s − v) + v` does not round-trip in IEEE 754). No-op in release
    /// builds.
    pub fn debug_validate_cache(&self, lambda: f64) {
        #[cfg(debug_assertions)]
        {
            let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()));
            let fresh = self.rebuild_partial(0..self.n);
            assert_eq!(self.size, fresh.size, "delta-maintained sizes diverged");
            assert_eq!(
                self.live,
                fresh.size.iter().sum::<usize>(),
                "delta-maintained live count diverged"
            );
            assert_eq!(
                self.cat_counts, fresh.cat_counts,
                "delta-maintained categorical counts diverged"
            );
            for (a, b) in self.centroid_sum.iter().zip(&fresh.centroid_sum) {
                assert!(close(*a, *b), "centroid sum diverged: {a} vs {b}");
            }
            for (ours, theirs) in self.num_sums.iter().zip(&fresh.num_sums) {
                for (a, b) in ours.iter().zip(theirs) {
                    assert!(close(*a, *b), "numeric sum diverged: {a} vs {b}");
                }
            }
            for (a, b) in self.member_sqnorm.iter().zip(&fresh.member_sqnorm) {
                assert!(close(*a, *b), "member ‖x‖² sum diverged: {a} vs {b}");
            }
            if self.cache_is_fresh() {
                let cached = self.objective_cached(lambda);
                let scanned = self.kmeans_term() + lambda * self.fairness_term();
                assert!(
                    close(cached, scanned),
                    "cached objective diverged: {cached} vs {scanned}"
                );
            }
        }
        let _ = lambda;
    }

    /// Serialize every field that is **not** a pure per-cluster function of
    /// the others: the backing matrix, assignment, sensitive values, the
    /// frozen fairness reference, and — crucially — the delta-maintained
    /// float aggregates **verbatim**. A rebuild-from-assignment would
    /// recompute sums in a different operation order and land on different
    /// bits; serializing the running aggregates is what makes restore
    /// reproduce the uninterrupted run exactly. Caches (`proto`,
    /// `proto_sqnorm`, `fair_cache`) are excluded: they are pure per-cluster
    /// functions of the aggregates and are re-derived on decode by the same
    /// `refresh_cache` computation that produced them.
    pub fn write_snapshot(&self, out: &mut Vec<u8>) {
        debug_assert!(
            self.cache_is_fresh(),
            "snapshotting with stale caches: restore would silently refresh them"
        );
        wire::put_usize(out, self.matrix.rows());
        wire::put_usize(out, self.matrix.cols());
        for name in self.matrix.col_names() {
            wire::put_str(out, name);
        }
        wire::put_f64s(out, self.matrix.as_slice());
        wire::put_usize(out, self.live);
        wire::put_usize(out, self.k);
        wire::put_usizes(out, &self.assignment);
        wire::put_usizes(out, &self.size);
        wire::put_f64s(out, &self.centroid_sum);
        wire::put_usize(out, self.cat.len());
        for (attr, counts) in self.cat.iter().zip(&self.cat_counts) {
            wire::put_u32s(out, &attr.values);
            wire::put_usize(out, attr.t);
            wire::put_f64s(out, &attr.dist);
            wire::put_f64s(out, &attr.value_scale);
            wire::put_f64(out, attr.weight);
            wire::put_i64s(out, counts);
        }
        wire::put_usize(out, self.num.len());
        for (attr, sums) in self.num.iter().zip(&self.num_sums) {
            wire::put_f64s(out, &attr.values);
            wire::put_f64(out, attr.mean);
            wire::put_f64(out, attr.weight);
            wire::put_f64s(out, sums);
        }
        wire::put_f64s(out, &self.point_sqnorm);
        wire::put_f64s(out, &self.member_sqnorm);
        wire::put_usize(out, self.rebuilds);
        wire::put_usize(out, self.fallbacks);
    }

    /// Decode a state written by [`Self::write_snapshot`]. Shape mismatches
    /// between the decoded vectors (a corruption the checksums missed, or a
    /// foreign snapshot) surface as [`WireError::Invalid`] — never a panic.
    /// The scoring caches are re-derived from the decoded aggregates, and
    /// `threads` comes from the *restoring* configuration: the worker-pool
    /// width never changes result bits, so a snapshot can be restored on a
    /// machine with a different thread count.
    pub fn read_snapshot(
        r: &mut Reader<'_>,
        kind: ObjectiveKind,
        threads: usize,
    ) -> Result<State<'static>, WireError> {
        let invalid = |what: &'static str| WireError::Invalid { what };
        let n = r.get_usize()?;
        let dim = r.get_usize()?;
        let col_names = (0..dim)
            .map(|_| r.get_string())
            .collect::<Result<Vec<_>, _>>()?;
        let data = r.get_f64s()?;
        if Some(data.len()) != n.checked_mul(dim) {
            return Err(invalid("matrix shape"));
        }
        let matrix = NumericMatrix::from_parts(data, n, dim, col_names);
        let live = r.get_usize()?;
        let k = r.get_usize()?;
        let assignment = r.get_usizes()?;
        let size = r.get_usizes()?;
        let centroid_sum = r.get_f64s()?;
        if assignment.len() != n || size.len() != k || centroid_sum.len() != k * dim {
            return Err(invalid("aggregate shape"));
        }
        if assignment.iter().any(|&c| c != UNASSIGNED && c >= k) {
            return Err(invalid("assignment cluster"));
        }
        if live != size.iter().sum::<usize>() {
            return Err(invalid("live count"));
        }
        // Each categorical attribute costs at least its values length prefix.
        let n_cat = r.get_len(8)?;
        let mut cat = Vec::with_capacity(n_cat);
        let mut cat_counts = Vec::with_capacity(n_cat);
        for _ in 0..n_cat {
            let values = r.get_u32s()?;
            let t = r.get_usize()?;
            let dist = r.get_f64s()?;
            let value_scale = r.get_f64s()?;
            let weight = r.get_f64()?;
            let counts = r.get_i64s()?;
            if values.len() != n || dist.len() != t || value_scale.len() != t {
                return Err(invalid("categorical attribute shape"));
            }
            if Some(counts.len()) != k.checked_mul(t) {
                return Err(invalid("categorical count shape"));
            }
            if values.iter().any(|&v| v as usize >= t) {
                return Err(invalid("categorical value index"));
            }
            cat.push(CatAttr {
                values,
                t,
                dist,
                value_scale,
                weight,
            });
            cat_counts.push(counts);
        }
        let n_num = r.get_len(8)?;
        let mut num = Vec::with_capacity(n_num);
        let mut num_sums = Vec::with_capacity(n_num);
        for _ in 0..n_num {
            let values = r.get_f64s()?;
            let mean = r.get_f64()?;
            let weight = r.get_f64()?;
            let sums = r.get_f64s()?;
            if values.len() != n || sums.len() != k {
                return Err(invalid("numeric attribute shape"));
            }
            num.push(NumAttr {
                values,
                mean,
                weight,
            });
            num_sums.push(sums);
        }
        let point_sqnorm = r.get_f64s()?;
        let member_sqnorm = r.get_f64s()?;
        if point_sqnorm.len() != n || member_sqnorm.len() != k {
            return Err(invalid("norm cache shape"));
        }
        let rebuilds = r.get_usize()?;
        let fallbacks = r.get_usize()?;
        let objective = Objective::from_kind(kind, &cat, &num);
        let mut state = State {
            matrix: Cow::Owned(matrix),
            n,
            live,
            k,
            dim,
            assignment,
            size,
            centroid_sum,
            cat,
            cat_counts,
            num,
            num_sums,
            objective,
            threads: threads.max(1),
            proto: vec![0.0; k * dim],
            proto_sqnorm: vec![0.0; k],
            point_sqnorm,
            member_sqnorm,
            fair_cache: vec![0.0; k],
            dirty: vec![false; k],
            dirty_list: Vec::with_capacity(k),
            rebuilds,
            fallbacks,
        };
        state.mark_all_dirty();
        state.refresh_cache();
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairkm_data::{row, DatasetBuilder, NumericMatrix, Role};

    fn fixture() -> (NumericMatrix, SensitiveSpace) {
        let mut b = DatasetBuilder::new();
        b.numeric("x", Role::NonSensitive).unwrap();
        b.numeric("y", Role::NonSensitive).unwrap();
        b.categorical("g", Role::Sensitive, &["a", "b", "c"])
            .unwrap();
        b.numeric("age", Role::Sensitive).unwrap();
        let rows = [
            (0.0, 0.1, "a", 20.0),
            (0.2, 0.0, "b", 30.0),
            (5.0, 5.1, "a", 40.0),
            (5.2, 5.0, "c", 50.0),
            (0.1, 0.2, "c", 25.0),
            (5.1, 5.2, "b", 45.0),
        ];
        for (x, y, g, age) in rows {
            b.push_row(row![x, y, g, age]).unwrap();
        }
        let d = b.build().unwrap();
        let m = d.task_matrix(fairkm_data::Normalization::None).unwrap();
        let s = d.sensitive_space().unwrap();
        (m, s)
    }

    fn state<'a>(m: &'a NumericMatrix, s: &SensitiveSpace, assignment: Vec<usize>) -> State<'a> {
        State::new(m, s, &[1.0, 1.0], 2, assignment)
    }

    /// Brute-force objective recomputation used as ground truth.
    fn objective_brute(st: &State<'_>, lambda: f64) -> f64 {
        st.kmeans_term() + lambda * st.fairness_term()
    }

    #[test]
    fn rebuild_matches_incremental_updates() {
        let (m, s) = fixture();
        let mut st = state(&m, &s, vec![0, 0, 1, 1, 0, 1]);
        st.apply_move(0, 0, 1);
        st.apply_move(3, 1, 0);
        let sizes = st.size.clone();
        let sums = st.centroid_sum.clone();
        let cats = st.cat_counts.clone();
        let nums = st.num_sums.clone();
        st.rebuild();
        assert_eq!(st.size, sizes);
        for (a, b) in st.centroid_sum.iter().zip(&sums) {
            assert!((a - b).abs() < 1e-9);
        }
        assert_eq!(st.cat_counts, cats);
        for (av, bv) in st.num_sums.iter().zip(&nums) {
            for (a, b) in av.iter().zip(bv) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn incremental_delta_equals_literal_delta() {
        let (m, s) = fixture();
        let st = state(&m, &s, vec![0, 0, 1, 1, 0, 1]);
        for x in 0..6 {
            let from = st.assignment[x];
            let to = 1 - from;
            let inc = st.delta_kmeans_incremental(x, from, to);
            let lit = st.delta_kmeans_literal(x, from, to);
            assert!(
                (inc - lit).abs() < 1e-9,
                "x={x}: incremental {inc} vs literal {lit}"
            );
        }
    }

    #[test]
    fn deltas_equal_true_objective_change() {
        let (m, s) = fixture();
        let lambda = 3.5;
        for x in 0..6 {
            let mut st = state(&m, &s, vec![0, 0, 1, 1, 0, 1]);
            let from = st.assignment[x];
            let to = 1 - from;
            let before = objective_brute(&st, lambda);
            let predicted =
                st.delta_kmeans_incremental(x, from, to) + lambda * st.delta_fairness(x, from, to);
            st.apply_move(x, from, to);
            let after = objective_brute(&st, lambda);
            assert!(
                (after - before - predicted).abs() < 1e-9,
                "x={x}: predicted {predicted}, actual {}",
                after - before
            );
        }
    }

    #[test]
    fn emptying_a_cluster_is_handled() {
        let (m, s) = fixture();
        let mut st = state(&m, &s, vec![0, 1, 1, 1, 1, 1]);
        // moving object 0 out of cluster 0 empties it
        let delta_km = st.delta_kmeans_incremental(0, 0, 1);
        let delta_fair = st.delta_fairness(0, 0, 1);
        assert!(delta_km.is_finite());
        assert!(delta_fair.is_finite());
        st.apply_move(0, 0, 1);
        assert_eq!(st.size[0], 0);
        assert_eq!(st.fairness_contrib(0), 0.0);
        assert!(st.kmeans_term().is_finite());
    }

    #[test]
    fn fairness_term_zero_when_clusters_mirror_dataset() {
        // 4 points, 2 per group, split so each cluster has one of each.
        let mut b = DatasetBuilder::new();
        b.numeric("x", Role::NonSensitive).unwrap();
        b.categorical("g", Role::Sensitive, &["a", "b"]).unwrap();
        b.push_row(row![0.0, "a"]).unwrap();
        b.push_row(row![1.0, "b"]).unwrap();
        b.push_row(row![2.0, "a"]).unwrap();
        b.push_row(row![3.0, "b"]).unwrap();
        let d = b.build().unwrap();
        let m = d.task_matrix(fairkm_data::Normalization::None).unwrap();
        let s = d.sensitive_space().unwrap();
        let st = State::new(&m, &s, &[1.0], 2, vec![0, 0, 1, 1]);
        assert!(st.fairness_term().abs() < 1e-15);
        let st2 = State::new(&m, &s, &[1.0], 2, vec![0, 1, 0, 1]);
        assert!(st2.fairness_term() > 0.01);
    }

    #[test]
    fn zero_weight_removes_attribute_from_deviation() {
        let (m, s) = fixture();
        let assignment = vec![0, 1, 0, 1, 0, 1];
        let full = State::new(&m, &s, &[1.0, 1.0], 2, assignment.clone());
        let cat_only = State::new(&m, &s, &[1.0, 0.0], 2, assignment.clone());
        let none = State::new(&m, &s, &[0.0, 0.0], 2, assignment);
        assert!(full.fairness_term() > cat_only.fairness_term());
        assert_eq!(none.fairness_term(), 0.0);
    }

    #[test]
    fn heavier_weight_amplifies_that_attributes_deviation() {
        let (m, s) = fixture();
        let assignment = vec![0, 1, 0, 1, 0, 1];
        let base = State::new(&m, &s, &[1.0, 0.0], 2, assignment.clone());
        let heavy = State::new(&m, &s, &[3.0, 0.0], 2, assignment);
        assert!((heavy.fairness_term() - 3.0 * base.fairness_term()).abs() < 1e-12);
    }

    #[test]
    fn cluster_weighting_uses_squared_fractional_cardinality() {
        // One cluster holding everything: weight (6/6)² = 1; its deviation
        // is 0 because its distribution IS the dataset distribution.
        let (m, s) = fixture();
        let st = state(&m, &s, vec![0; 6]);
        assert!(st.fairness_contrib(0).abs() < 1e-15);
        assert_eq!(st.fairness_contrib(1), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    //! The central correctness property of the whole algorithm: every δ
    //! computation must equal the brute-force objective difference, on
    //! arbitrary data, assignments and moves.

    use super::*;
    use fairkm_data::{AttrId, SensitiveCat, SensitiveNum, SensitiveSpace};
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    struct Instance {
        n: usize,
        k: usize,
        dim: usize,
        points: Vec<f64>,
        cat_values: Vec<u32>,
        cat_t: usize,
        num_values: Vec<f64>,
        assignment: Vec<usize>,
        x: usize,
        to: usize,
        lambda: f64,
    }

    fn instance() -> impl Strategy<Value = Instance> {
        (3usize..=12, 2usize..=4, 1usize..=3, 2usize..=4).prop_flat_map(|(n, k, dim, t)| {
            (
                proptest::collection::vec(-10.0f64..10.0, n * dim),
                proptest::collection::vec(0u32..t as u32, n),
                proptest::collection::vec(-5.0f64..5.0, n),
                proptest::collection::vec(0usize..k, n),
                0usize..n,
                0usize..k,
                0.0f64..100.0,
            )
                .prop_map(
                    move |(points, cat_values, num_values, assignment, x, to, lambda)| Instance {
                        n,
                        k,
                        dim,
                        points,
                        cat_values,
                        cat_t: t,
                        num_values,
                        assignment,
                        x,
                        to,
                        lambda,
                    },
                )
        })
    }

    fn build(inst: &Instance) -> (NumericMatrix, SensitiveSpace) {
        let names = (0..inst.dim).map(|i| format!("c{i}")).collect();
        let matrix = NumericMatrix::from_parts(inst.points.clone(), inst.n, inst.dim, names);
        let labels: Vec<String> = (0..inst.cat_t).map(|v| format!("v{v}")).collect();
        let cat = SensitiveCat::new(AttrId(0), "g".into(), labels, inst.cat_values.clone());
        let num = SensitiveNum::new(AttrId(1), "z".into(), inst.num_values.clone());
        let space = SensitiveSpace::new(inst.n, vec![cat], vec![num]);
        (matrix, space)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn deltas_match_brute_force_objective_difference(inst in instance()) {
            let (matrix, space) = build(&inst);
            let mut st = State::new(&matrix, &space, &[1.0, 1.0], inst.k, inst.assignment.clone());
            let from = st.assignment[inst.x];
            prop_assume!(from != inst.to);

            let before = st.kmeans_term() + inst.lambda * st.fairness_term();
            let d_inc = st.delta_kmeans_incremental(inst.x, from, inst.to);
            let d_lit = st.delta_kmeans_literal(inst.x, from, inst.to);
            let d_fair = st.delta_fairness(inst.x, from, inst.to);

            // Engines agree with each other...
            prop_assert!((d_inc - d_lit).abs() < 1e-6,
                "incremental {d_inc} vs literal {d_lit}");

            st.apply_move(inst.x, from, inst.to);
            st.rebuild(); // brute-force ground truth uses fresh aggregates
            let after = st.kmeans_term() + inst.lambda * st.fairness_term();

            // ...and with the true objective change.
            let predicted = d_inc + inst.lambda * d_fair;
            let actual = after - before;
            let tol = 1e-6 * (1.0 + before.abs() + after.abs());
            prop_assert!((predicted - actual).abs() < tol,
                "predicted {predicted} vs actual {actual}");
        }

        #[test]
        fn fractional_representations_stay_consistent(inst in instance()) {
            // Running counts (Eqs. 20–21 analogue) must equal a recount
            // after an arbitrary accepted move.
            let (matrix, space) = build(&inst);
            let mut st = State::new(&matrix, &space, &[1.0, 1.0], inst.k, inst.assignment.clone());
            let from = st.assignment[inst.x];
            prop_assume!(from != inst.to);
            st.apply_move(inst.x, from, inst.to);

            let counts = st.cat_counts[0].clone();
            let sums = st.num_sums[0].clone();
            st.rebuild();
            prop_assert_eq!(&counts, &st.cat_counts[0]);
            for (a, b) in sums.iter().zip(&st.num_sums[0]) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }

        #[test]
        fn move_sequences_match_from_scratch_rebuild(
            inst in instance(),
            ops in proptest::collection::vec((0usize..64, 0usize..8, 0usize..3), 1..24),
        ) {
            // Random interleavings of apply_move / revert_move must leave
            // every running aggregate and cache entry equal to a state
            // built from scratch over the final assignment: integer
            // aggregates exactly, float sums and the cached objective
            // within one-rounding-step tolerance (see
            // `State::debug_validate_cache` for why bitwise float
            // agreement is unattainable).
            let (matrix, space) = build(&inst);
            let mut st = State::new(&matrix, &space, &[1.0, 1.0], inst.k, inst.assignment.clone());
            let mut undo: Vec<(usize, usize, usize)> = Vec::new();
            for (xi, ti, kind) in ops {
                if kind == 2 {
                    if let Some((x, from, to)) = undo.pop() {
                        st.revert_move(x, from, to);
                    }
                    continue;
                }
                let x = xi % inst.n;
                let from = st.assignment[x];
                let to = ti % inst.k;
                if to != from {
                    st.apply_move(x, from, to);
                    undo.push((x, from, to));
                }
            }
            st.refresh_cache();
            st.debug_validate_cache(inst.lambda);

            let fresh = State::new(&matrix, &space, &[1.0, 1.0], inst.k, st.assignment.clone());
            let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()));
            prop_assert_eq!(&st.size, &fresh.size);
            for (ours, theirs) in st.cat_counts.iter().zip(&fresh.cat_counts) {
                prop_assert_eq!(ours, theirs);
            }
            for (a, b) in st.centroid_sum.iter().zip(&fresh.centroid_sum) {
                prop_assert!(close(*a, *b), "centroid sum {a} vs {b}");
            }
            for (ours, theirs) in st.num_sums.iter().zip(&fresh.num_sums) {
                for (a, b) in ours.iter().zip(theirs) {
                    prop_assert!(close(*a, *b), "numeric sum {a} vs {b}");
                }
            }
            for (a, b) in st.member_sqnorm.iter().zip(&fresh.member_sqnorm) {
                prop_assert!(close(*a, *b), "member sqnorm {a} vs {b}");
            }
            let cached = st.objective_cached(inst.lambda);
            let scanned = fresh.kmeans_term() + inst.lambda * fresh.fairness_term();
            prop_assert!(close(cached, scanned),
                "cached objective {cached} vs from-scratch {scanned}");
        }

        #[test]
        fn insert_remove_move_sequences_match_from_scratch_rebuild(
            inst in instance(),
            ops in proptest::collection::vec((0usize..64, 0usize..8, 0usize..5), 1..32),
        ) {
            // Random interleavings of the three delta mutators — apply_move,
            // remove_point (eviction), insert_point (re-ingestion) — must
            // leave every running aggregate, the live count, and the cache
            // equal to a state rebuilt from scratch over the final
            // assignment (UNASSIGNED tombstones included): integers
            // exactly, float sums within rounding tolerance. This is the
            // streaming analogue of
            // `move_sequences_match_from_scratch_rebuild`.
            let (matrix, space) = build(&inst);
            let mut st = State::with_norm_owned(
                matrix.clone(),
                &space,
                &[1.0, 1.0],
                inst.k,
                inst.assignment.clone(),
                FairnessNorm::DomainCardinality,
                ObjectiveKind::Representativity,
                1,
            );
            for (xi, ti, kind) in ops {
                let x = xi % inst.n;
                let to = ti % inst.k;
                match kind {
                    // moves (2 in 5) on live points
                    0 | 1 => {
                        let from = st.assignment[x];
                        if from != UNASSIGNED && from != to {
                            st.apply_move(x, from, to);
                        }
                    }
                    // eviction (2 in 5) of live points
                    2 | 3 => {
                        if st.assignment[x] != UNASSIGNED {
                            st.remove_point(x);
                        }
                    }
                    // re-insertion of tombstoned points
                    _ => {
                        if st.assignment[x] == UNASSIGNED {
                            st.insert_point(x, to);
                        }
                    }
                }
            }
            st.refresh_cache();
            st.debug_validate_cache(inst.lambda);

            let fresh = State::new(&matrix, &space, &[1.0, 1.0], inst.k, st.assignment.clone());
            let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()));
            prop_assert_eq!(&st.size, &fresh.size);
            prop_assert_eq!(st.live, fresh.live);
            prop_assert_eq!(st.live, st.size.iter().sum::<usize>());
            for (ours, theirs) in st.cat_counts.iter().zip(&fresh.cat_counts) {
                prop_assert_eq!(ours, theirs);
            }
            for (a, b) in st.centroid_sum.iter().zip(&fresh.centroid_sum) {
                prop_assert!(close(*a, *b), "centroid sum {} vs {}", a, b);
            }
            for (ours, theirs) in st.num_sums.iter().zip(&fresh.num_sums) {
                for (a, b) in ours.iter().zip(theirs) {
                    prop_assert!(close(*a, *b), "numeric sum {} vs {}", a, b);
                }
            }
            for (a, b) in st.member_sqnorm.iter().zip(&fresh.member_sqnorm) {
                prop_assert!(close(*a, *b), "member sqnorm {} vs {}", a, b);
            }
            let cached = st.objective_cached(inst.lambda);
            let scanned = fresh.kmeans_term() + inst.lambda * fresh.fairness_term();
            prop_assert!(close(cached, scanned),
                "cached objective {} vs from-scratch {}", cached, scanned);
        }

        #[test]
        fn insertion_delta_matches_brute_force_objective_change(inst in instance()) {
            // Evict a point, then: the frozen-prototype insertion delta of
            // putting it back into ANY cluster must equal the brute-force
            // objective difference (rebuild + full scan before vs after).
            let (matrix, space) = build(&inst);
            let mut st = State::with_norm_owned(
                matrix.clone(),
                &space,
                &[1.0, 1.0],
                inst.k,
                inst.assignment.clone(),
                FairnessNorm::DomainCardinality,
                ObjectiveKind::Representativity,
                1,
            );
            let x = inst.x;
            st.remove_point(x);
            st.refresh_cache();
            let before = st.kmeans_term() + inst.lambda * st.fairness_term();
            let row = st.matrix.row(x).to_vec();
            let cat_vals = [inst.cat_values[x]];
            let num_vals = [inst.num_values[x]];
            let (best, best_delta) =
                st.score_insertion(&row, &cat_vals, &num_vals, inst.lambda);
            // All predictions against the same frozen caches (the later
            // insert/rebuild cycles perturb float sums in the last bits).
            let deltas: Vec<f64> = (0..inst.k)
                .map(|c| st.insertion_delta(c, &row, &cat_vals, &num_vals, inst.lambda))
                .collect();
            for (c, &predicted) in deltas.iter().enumerate() {
                st.insert_point(x, c);
                st.rebuild();
                let after = st.kmeans_term() + inst.lambda * st.fairness_term();
                st.remove_point(x);
                st.rebuild();
                let actual = after - before;
                let tol = 1e-6 * (1.0 + before.abs() + after.abs());
                prop_assert!((predicted - actual).abs() < tol,
                    "cluster {}: predicted {} vs actual {}", c, predicted, actual);
            }
            // score_insertion picks the argmin with lowest-index ties.
            let min = deltas.iter().cloned().fold(f64::INFINITY, f64::min);
            prop_assert_eq!(best_delta, min);
            prop_assert!(deltas[best] == min);
        }

        #[test]
        fn new_objective_interleavings_match_from_scratch_rebuild(
            inst in instance(),
            ops in proptest::collection::vec((0usize..64, 0usize..8, 0usize..5), 1..32),
        ) {
            // Rebuild parity for every non-default objective: random
            // apply/remove/insert interleavings must leave the cached
            // per-cluster contributions and the cached objective equal to
            // a from-scratch state over the final assignment — the same
            // contract `insert_remove_move_sequences_match_from_scratch_rebuild`
            // pins for Eq. 7, replayed through the pluggable dispatch.
            for kind in [
                ObjectiveKind::bounded(),
                ObjectiveKind::BoundedRepresentation { lower: 0.5, upper: 2.0 },
                ObjectiveKind::Utilitarian,
                ObjectiveKind::Egalitarian,
            ] {
                let (matrix, space) = build(&inst);
                let mut st = State::with_norm_owned(
                    matrix.clone(),
                    &space,
                    &[1.0, 1.0],
                    inst.k,
                    inst.assignment.clone(),
                    FairnessNorm::DomainCardinality,
                    kind,
                    1,
                );
                for &(xi, ti, op) in &ops {
                    let x = xi % inst.n;
                    let to = ti % inst.k;
                    match op {
                        0 | 1 => {
                            let from = st.assignment[x];
                            if from != UNASSIGNED && from != to {
                                st.apply_move(x, from, to);
                            }
                        }
                        2 | 3 => {
                            if st.assignment[x] != UNASSIGNED {
                                st.remove_point(x);
                            }
                        }
                        _ => {
                            if st.assignment[x] == UNASSIGNED {
                                st.insert_point(x, to);
                            }
                        }
                    }
                }
                st.refresh_cache();
                st.debug_validate_cache(inst.lambda);

                let fresh = State::with_norm(
                    &matrix,
                    &space,
                    &[1.0, 1.0],
                    inst.k,
                    st.assignment.clone(),
                    FairnessNorm::DomainCardinality,
                    kind,
                    1,
                );
                let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()));
                prop_assert_eq!(&st.size, &fresh.size);
                prop_assert_eq!(st.live, fresh.live);
                for (ours, theirs) in st.cat_counts.iter().zip(&fresh.cat_counts) {
                    prop_assert_eq!(ours, theirs);
                }
                for (c, (a, b)) in st.fair_cache.iter().zip(&fresh.fair_cache).enumerate() {
                    prop_assert!(close(*a, *b),
                        "{:?} cluster {} contribution {} vs from-scratch {}", kind, c, a, b);
                }
                let cached = st.objective_cached(inst.lambda);
                let scanned = fresh.kmeans_term() + inst.lambda * fresh.fairness_term();
                prop_assert!(close(cached, scanned),
                    "{:?} cached objective {} vs from-scratch {}", kind, cached, scanned);
            }
        }

        #[test]
        fn new_objective_insertion_deltas_match_brute_force(inst in instance()) {
            // The frozen-cache insertion delta (insertion_contrib + the
            // rescale of untouched contributions) must equal the
            // brute-force objective difference for every non-default
            // objective — the rescale shortcut is exact whenever a
            // contribution factors as (|C|/|X|)²·dev(aggregates), which
            // each shipped objective guarantees.
            for kind in [
                ObjectiveKind::bounded(),
                ObjectiveKind::Utilitarian,
                ObjectiveKind::Egalitarian,
            ] {
                let (matrix, space) = build(&inst);
                let mut st = State::with_norm_owned(
                    matrix.clone(),
                    &space,
                    &[1.0, 1.0],
                    inst.k,
                    inst.assignment.clone(),
                    FairnessNorm::DomainCardinality,
                    kind,
                    1,
                );
                let x = inst.x;
                st.remove_point(x);
                st.refresh_cache();
                let before = st.kmeans_term() + inst.lambda * st.fairness_term();
                let row = st.matrix.row(x).to_vec();
                let cat_vals = [inst.cat_values[x]];
                let num_vals = [inst.num_values[x]];
                let deltas: Vec<f64> = (0..inst.k)
                    .map(|c| st.insertion_delta(c, &row, &cat_vals, &num_vals, inst.lambda))
                    .collect();
                for (c, &predicted) in deltas.iter().enumerate() {
                    st.insert_point(x, c);
                    st.rebuild();
                    let after = st.kmeans_term() + inst.lambda * st.fairness_term();
                    st.remove_point(x);
                    st.rebuild();
                    let actual = after - before;
                    let tol = 1e-6 * (1.0 + before.abs() + after.abs());
                    prop_assert!((predicted - actual).abs() < tol,
                        "{:?} cluster {}: predicted {} vs actual {}", kind, c, predicted, actual);
                }
            }
        }

        #[test]
        fn bounded_penalty_is_zero_inside_the_band(inst in instance()) {
            // With the widest-open band (lower 0, upper well past any
            // share) no categorical violation exists, so the bounded
            // objective reduces to the numeric Eq. 22 terms only; and the
            // penalty is never negative.
            let (matrix, space) = build(&inst);
            let wide = State::with_norm(
                &matrix,
                &space,
                &[1.0, 0.0], // numeric attr muted: pure categorical view
                inst.k,
                inst.assignment.clone(),
                FairnessNorm::DomainCardinality,
                ObjectiveKind::BoundedRepresentation { lower: 0.0, upper: 1.0 / f64::EPSILON },
                1,
            );
            prop_assert!(wide.fairness_term().abs() == 0.0,
                "wide-open band must cost nothing, got {}", wide.fairness_term());

            let tight = State::with_norm(
                &matrix,
                &space,
                &[1.0, 1.0],
                inst.k,
                inst.assignment.clone(),
                FairnessNorm::DomainCardinality,
                ObjectiveKind::BoundedRepresentation { lower: 1.0, upper: 1.0 },
                1,
            );
            prop_assert!(tight.fairness_term() >= 0.0);
        }

        #[test]
        fn fairness_term_is_nonnegative_and_zero_only_at_parity(inst in instance()) {
            let (matrix, space) = build(&inst);
            let st = State::new(&matrix, &space, &[1.0, 1.0], inst.k, inst.assignment.clone());
            let dev = st.fairness_term();
            prop_assert!(dev >= 0.0);
            // Single-cluster configurations mirror the dataset exactly.
            let st_one = State::new(&matrix, &space, &[1.0, 1.0], inst.k, vec![0; inst.n]);
            prop_assert!(st_one.fairness_term().abs() < 1e-12);
        }
    }
}
