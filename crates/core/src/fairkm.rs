//! The FairKM algorithm (Algorithm 1 of the paper).

use crate::config::{DeltaEngine, FairKmConfig, FairKmError, FairKmInit, UpdateSchedule};
use crate::state::{State, UNASSIGNED};
use fairkm_data::{Dataset, NumericMatrix, Partition, SensitiveSpace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// Accept a move only if it improves the objective by more than this —
// guards against float-noise oscillation between equal-objective states
// (shared with the sharded coordinator, so both apply the same filter).
use crate::agg::MOVE_EPS;

/// A fitted FairKM model.
#[derive(Debug, Clone)]
pub struct FairKmModel {
    partition: Partition,
    prototypes: Vec<Option<Vec<f64>>>,
    kmeans_term: f64,
    fairness_term: f64,
    lambda: f64,
    iterations: usize,
    converged: bool,
    moves: usize,
    objective_trace: Vec<f64>,
}

impl FairKmModel {
    /// Final cluster assignments.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Final assignments as a slice (row-aligned with the input).
    pub fn assignments(&self) -> &[usize] {
        self.partition.assignments()
    }

    /// Final cluster prototypes in the encoded task space, one slot per
    /// cluster index `0..k`.
    ///
    /// A slot is `None` exactly when that cluster ended the run **empty**:
    /// an empty cluster has no members, hence no mean, and the paper's
    /// objective (Eq. 3) assigns it zero cost rather than a placeholder
    /// centroid. Callers that only need one cluster's coordinates should
    /// prefer [`FairKmModel::prototype`], which borrows instead of forcing
    /// a clone-and-unwrap of the whole vector.
    pub fn prototypes(&self) -> &[Option<Vec<f64>>] {
        &self.prototypes
    }

    /// Borrow cluster `c`'s prototype, or `None` when the cluster is empty
    /// (see [`FairKmModel::prototypes`] for the empty-cluster semantics).
    ///
    /// # Panics
    ///
    /// Panics when `c >= k`.
    pub fn prototype(&self, c: usize) -> Option<&[f64]> {
        self.prototypes[c].as_deref()
    }

    /// Final K-Means term (cluster coherence; Eq. 1 left).
    pub fn kmeans_term(&self) -> f64 {
        self.kmeans_term
    }

    /// Final fairness deviation term (Eq. 7/22/23, *without* the λ factor).
    pub fn fairness_term(&self) -> f64 {
        self.fairness_term
    }

    /// The λ the run used (heuristic resolved to its numeric value).
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Full objective `O = kmeans_term + λ · fairness_term` (Eq. 1).
    pub fn objective(&self) -> f64 {
        self.kmeans_term + self.lambda * self.fairness_term
    }

    /// Round-robin iterations executed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Whether the run stopped because an entire pass made no move.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Total accepted single-object moves across all iterations.
    pub fn moves(&self) -> usize {
        self.moves
    }

    /// Objective value recorded after initialization and after every
    /// iteration — useful for convergence plots and λ studies.
    pub fn objective_trace(&self) -> &[f64] {
        &self.objective_trace
    }
}

/// Fair K-Means over multiple categorical and/or numeric sensitive
/// attributes.
///
/// ```
/// use fairkm_core::{FairKm, FairKmConfig, Lambda};
/// use fairkm_data::{row, DatasetBuilder, Role};
///
/// let mut b = DatasetBuilder::new();
/// b.numeric("score", Role::NonSensitive).unwrap();
/// b.categorical("gender", Role::Sensitive, &["f", "m"]).unwrap();
/// for i in 0..30 {
///     let side = if i % 2 == 0 { 0.0 } else { 10.0 };
///     let g = if i < 15 { "f" } else { "m" };
///     b.push_row(row![side + (i % 3) as f64 * 0.1, g]).unwrap();
/// }
/// let data = b.build().unwrap();
/// let model = FairKm::new(FairKmConfig::new(2).with_seed(1)).fit(&data).unwrap();
/// assert_eq!(model.assignments().len(), 30);
/// ```
#[derive(Debug, Clone)]
pub struct FairKm {
    config: FairKmConfig,
}

impl FairKm {
    /// New instance with the given configuration.
    pub fn new(config: FairKmConfig) -> Self {
        Self { config }
    }

    /// Fit on a dataset: encodes the task matrix with the configured
    /// normalization, materializes the sensitive space, and runs
    /// Algorithm 1.
    ///
    /// The same seed always produces the same model, independent of the
    /// configured thread count:
    ///
    /// ```
    /// use fairkm_core::{FairKm, FairKmConfig};
    /// use fairkm_data::{row, DatasetBuilder, Role};
    ///
    /// let mut b = DatasetBuilder::new();
    /// b.numeric("x", Role::NonSensitive).unwrap();
    /// b.categorical("g", Role::Sensitive, &["a", "b"]).unwrap();
    /// for i in 0..20 {
    ///     b.push_row(row![i as f64, if i % 2 == 0 { "a" } else { "b" }]).unwrap();
    /// }
    /// let data = b.build().unwrap();
    ///
    /// let one = FairKm::new(FairKmConfig::new(2).with_seed(7).with_threads(1))
    ///     .fit(&data)
    ///     .unwrap();
    /// let four = FairKm::new(FairKmConfig::new(2).with_seed(7).with_threads(4))
    ///     .fit(&data)
    ///     .unwrap();
    /// assert_eq!(one.assignments(), four.assignments());
    /// assert_eq!(one.objective().to_bits(), four.objective().to_bits());
    /// ```
    pub fn fit(&self, dataset: &Dataset) -> Result<FairKmModel, FairKmError> {
        let matrix = dataset.task_matrix(self.config.normalization)?;
        let space = dataset.sensitive_space()?;
        self.fit_views(&matrix, &space)
    }

    /// Fit on pre-built views. Use this for the paper's single-attribute
    /// `FairKM(S)` runs (restrict the space first) or for custom encodings.
    pub fn fit_views(
        &self,
        matrix: &NumericMatrix,
        space: &SensitiveSpace,
    ) -> Result<FairKmModel, FairKmError> {
        let n = matrix.rows();
        let k = self.config.k;
        if n == 0 {
            return Err(FairKmError::EmptyInput);
        }
        if k == 0 || k > n {
            return Err(FairKmError::InvalidK { k, n });
        }
        if space.n_rows() != n {
            return Err(FairKmError::RowMismatch {
                matrix: n,
                space: space.n_rows(),
            });
        }
        if let UpdateSchedule::MiniBatch(0) = self.config.schedule {
            return Err(FairKmError::ZeroBatch);
        }
        let lambda = self.config.lambda.resolve(n, k);
        if !lambda.is_finite() || lambda < 0.0 {
            return Err(FairKmError::InvalidLambda(lambda));
        }
        self.config.objective.validate()?;
        let weights = resolve_weights(&self.config.attr_weights, space)?;
        let threads = fairkm_parallel::resolve_threads(self.config.threads);

        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let assignment = initial_assignment(matrix, k, self.config.init, &mut rng, threads);
        let mut state = State::with_norm(
            matrix,
            space,
            &weights,
            k,
            assignment,
            self.config.fairness_norm,
            self.config.objective,
            threads,
        );

        // The windowed schedule maintains its objective from the cached
        // per-cluster contributions, so its running value (including the
        // trace seed) uses the cached form for consistency; the per-move
        // schedule keeps the literal scan form it recomputes each pass.
        let mut objective = match self.config.schedule {
            UpdateSchedule::PerMove => state.kmeans_term() + lambda * state.fairness_term(),
            UpdateSchedule::MiniBatch(_) => state.objective_cached(lambda),
        };
        let mut trace = vec![objective];
        let mut total_moves = 0usize;
        let mut iterations = 0usize;
        let mut converged = false;

        for iter in 0..self.config.max_iters {
            iterations = iter + 1;
            let moved_this_pass = match self.config.schedule {
                UpdateSchedule::PerMove => {
                    let moved = per_move_pass(&mut state, lambda, self.config.delta_engine);
                    // Per-move passes update the running sums incrementally;
                    // rebuild once per pass to cancel floating-point drift.
                    state.rebuild();
                    objective = state.kmeans_term() + lambda * state.fairness_term();
                    moved
                }
                UpdateSchedule::MiniBatch(batch) => {
                    // The windowed pass keeps the objective current at every
                    // window boundary, so the pass both consumes and returns
                    // it — no extra full evaluation per pass.
                    let (moved, obj) = windowed_pass(
                        &mut state,
                        lambda,
                        self.config.delta_engine,
                        batch,
                        threads,
                        objective,
                    );
                    objective = obj;
                    if moved > 0 {
                        // Delta updates gain ~one rounding step per move;
                        // like the per-move schedule, rebuild once per pass
                        // (never per window) so drift stays bounded by a
                        // single pass's moves instead of the whole fit.
                        state.rebuild();
                        objective = state.objective_cached(lambda);
                    }
                    moved
                }
            };
            total_moves += moved_this_pass;
            trace.push(objective);
            if moved_this_pass == 0 {
                converged = true;
                break;
            }
        }

        let mut prototypes = Vec::with_capacity(k);
        let mut buf = vec![0.0; matrix.cols()];
        for c in 0..k {
            if state.size[c] == 0 {
                prototypes.push(None);
            } else {
                state.prototype_into(c, &mut buf);
                prototypes.push(Some(buf.clone()));
            }
        }
        let kmeans_term = state.kmeans_term();
        let fairness_term = state.fairness_term();
        Ok(FairKmModel {
            partition: Partition::new(state.assignment, k).expect("assignments < k"),
            prototypes,
            kmeans_term,
            fairness_term,
            lambda,
            iterations,
            converged,
            moves: total_moves,
            objective_trace: trace,
        })
    }
}

/// Score the best move for object `x` against the current (frozen)
/// aggregates and scoring cache: the candidate target minimizing
/// δO = δKM + λ·δfair (Algorithm 1, steps 3–5). Returns
/// `(best_to, best_delta)`; `best_to == from` when no candidate improves
/// the objective.
///
/// Everything that depends only on the origin cluster is hoisted out of
/// the candidate loop — the outbound K-Means delta (one cached distance
/// instead of one per candidate), the origin's adjusted fairness
/// contribution, and both "old" contributions, which come straight from
/// `fair_cache` instead of being recomputed per pair. The remaining
/// per-candidate work is one cached dot-product distance plus one adjusted
/// fairness contribution. The per-candidate arithmetic associates exactly
/// like [`State::delta_kmeans_incremental`] + [`State::delta_fairness`],
/// so the scores are bit-for-bit what the unhoisted forms produce.
///
/// Reads shared state only, so windows of proposals can be evaluated
/// concurrently with results identical to a sequential scan.
pub(crate) fn propose_move(
    state: &State<'_>,
    x: usize,
    lambda: f64,
    engine: DeltaEngine,
) -> (usize, f64) {
    let from = state.assignment[x];
    if from == UNASSIGNED {
        // Tombstoned streaming slot: not part of the clustering, no move to
        // propose. Callers skip the slot because `best_to == from`.
        return (from, 0.0);
    }
    let mut best_to = from;
    let mut best_delta = 0.0f64;
    let s_from = state.size[from];
    // Only the incremental engine consumes the hoisted outbound distance;
    // the literal engine recomputes both sides per candidate by design.
    let d_out = match engine {
        DeltaEngine::Incremental if s_from > 1 => {
            let d = state.sq_dist_to_prototype_cached(x, from);
            -(s_from as f64 / (s_from as f64 - 1.0)) * d
        }
        // removing the last member: that cluster's SSE was 0
        DeltaEngine::Incremental | DeltaEngine::Literal => 0.0,
    };
    let out_new = state.fairness_contrib_adjusted(from, x, -1);
    let out_old = state.fair_cache[from];
    for to in 0..state.k {
        if to == from {
            continue;
        }
        let d_km = match engine {
            DeltaEngine::Incremental => {
                let s_to = state.size[to];
                let d_in = if s_to > 0 {
                    let d = state.sq_dist_to_prototype_cached(x, to);
                    (s_to as f64 / (s_to as f64 + 1.0)) * d
                } else {
                    0.0 // singleton in an empty cluster has SSE 0
                };
                d_out + d_in
            }
            DeltaEngine::Literal => state.delta_kmeans_literal(x, from, to),
        };
        let in_new = state.fairness_contrib_adjusted(to, x, 1);
        let in_old = state.fair_cache[to];
        let d_fair = (out_new + in_new) - (out_old + in_old);
        let delta = d_km + lambda * d_fair;
        if delta < best_delta {
            best_delta = delta;
            best_to = to;
        }
    }
    (best_to, best_delta)
}

/// One sequential scan of `range` with per-move aggregate updates
/// (Algorithm 1, steps 2–7 verbatim). Inherently order-dependent: every
/// accepted move changes the aggregates the next object is scored against,
/// so each accepted move refreshes the two dirtied cache entries before
/// the next object is scored.
fn per_move_scan(
    state: &mut State<'_>,
    lambda: f64,
    engine: DeltaEngine,
    range: std::ops::Range<usize>,
) -> usize {
    let mut moved = 0usize;
    for x in range {
        let from = state.assignment[x];
        let (best_to, best_delta) = propose_move(state, x, lambda, engine);
        if best_to != from && best_delta < -MOVE_EPS {
            state.apply_move(x, from, best_to);
            state.refresh_cache();
            moved += 1;
        }
    }
    moved
}

/// One full round-robin pass with per-move updates.
fn per_move_pass(state: &mut State<'_>, lambda: f64, engine: DeltaEngine) -> usize {
    let n = state.n;
    per_move_scan(state, lambda, engine, 0..n)
}

/// One round-robin pass under the windowed mini-batch schedule (§6.1):
/// every object in a `batch`-sized window is scored **in parallel** against
/// the aggregates and scoring cache frozen at the window start, accepted
/// moves are applied as deltas in index order, and only the dirtied
/// clusters' cache entries are refreshed at the window boundary.
///
/// The accept path performs **no full [`State::rebuild`] and no
/// full-objective recomputation**: a window's staged moves run through
/// [`State::apply_move`] (O(dim + Σ|Values(S)|) each), the refresh touches
/// only dirty clusters, and the post-window objective is assembled from
/// the cached per-cluster contributions in O(k) — per-window cost is
/// O(moves·dim + dirty_clusters·t) instead of O(n·dim + n·k·t). In debug
/// builds [`State::debug_validate_cache`] cross-checks the delta-maintained
/// state against a from-scratch recomputation at every window boundary.
///
/// Per-move deltas assume one move at a time; applying a whole window of
/// them simultaneously can *raise* the objective (in the worst case the
/// clustering oscillates between two states forever). The engine therefore
/// enforces **monotone window acceptance**: a window whose staged moves
/// did not lower the cached objective is reverted ([`State::revert_move`]
/// plus an exact rebuild, the one place the windowed schedule still
/// rebuilds) and re-scanned with exact sequential per-move descent
/// instead. The parallel fast path handles the common case; the fallback
/// guarantees the objective trace stays non-increasing and that every
/// counted move is a real improvement.
///
/// Scoring is read-only, every mutation is sequential in index order, and
/// the cached objective is summed in cluster order, so the clustering is
/// bitwise-identical for any thread count.
///
/// `current` must be the cached-form objective of the state as passed in
/// (the caller already holds it from the previous pass); the updated value
/// is returned alongside the move count so no pass pays a redundant full
/// evaluation.
///
/// Streaming re-optimization drives this same pass over its live slots
/// (unassigned tombstones propose no move and are skipped), so the online
/// path and the batch path share one optimizer.
pub(crate) fn windowed_pass(
    state: &mut State<'_>,
    lambda: f64,
    engine: DeltaEngine,
    batch: usize,
    threads: usize,
    current: f64,
) -> (usize, f64) {
    let n = state.n;
    let mut moved = 0usize;
    let mut current = current;
    let mut start = 0usize;
    while start < n {
        let end = start.saturating_add(batch).min(n);
        let frozen: &State<'_> = state;
        let proposals = fairkm_parallel::map_indexed(threads, start..end, |x| {
            propose_move(frozen, x, lambda, engine)
        });
        let mut staged: Vec<(usize, usize, usize)> = Vec::new();
        for (offset, &(best_to, best_delta)) in proposals.iter().enumerate() {
            let x = start + offset;
            let from = state.assignment[x];
            if best_to != from && best_delta < -MOVE_EPS {
                staged.push((x, from, best_to));
            }
        }
        if !staged.is_empty() {
            for &(x, from, to) in &staged {
                state.apply_move(x, from, to);
            }
            state.refresh_cache();
            let after = state.objective_cached(lambda);
            state.debug_validate_cache(lambda);
            if after < current - MOVE_EPS {
                moved += staged.len();
                current = after;
            } else {
                // The simultaneous application hurt: undo the window and
                // descend through it one move at a time. Only the
                // assignments need restoring — the rebuild re-derives
                // every aggregate (exactly) from them, so per-move
                // aggregate reverts would be discarded work.
                state.fallbacks += 1;
                for &(x, from, _) in &staged {
                    state.assignment[x] = from;
                }
                state.rebuild();
                let fallback_moves = per_move_scan(state, lambda, engine, start..end);
                if fallback_moves > 0 {
                    current = state.objective_cached(lambda);
                }
                moved += fallback_moves;
            }
        }
        start = end;
    }
    (moved, current)
}

/// Resolve `(name, weight)` overrides into the per-attribute weight array
/// (categorical attributes first, then numeric — the order `State`
/// expects). Unlisted attributes get weight 1.
pub(crate) fn resolve_weights(
    overrides: &[(String, f64)],
    space: &SensitiveSpace,
) -> Result<Vec<f64>, FairKmError> {
    let names: Vec<&str> = space
        .categorical()
        .iter()
        .map(|a| a.name())
        .chain(space.numeric().iter().map(|a| a.name()))
        .collect();
    let mut weights = vec![1.0; names.len()];
    for (name, w) in overrides {
        if !w.is_finite() || *w < 0.0 {
            return Err(FairKmError::InvalidWeight {
                attribute: name.clone(),
                weight: *w,
            });
        }
        let Some(pos) = names.iter().position(|n| n == name) else {
            return Err(FairKmError::UnknownWeightAttribute(name.clone()));
        };
        weights[pos] = *w;
    }
    Ok(weights)
}

/// Algorithm 1 step 1. Seed sampling consumes the RNG sequentially (so the
/// seed fully determines it); the nearest-seed scan is a read-only per-row
/// map and runs on the parallel engine.
pub(crate) fn initial_assignment(
    matrix: &NumericMatrix,
    k: usize,
    init: FairKmInit,
    rng: &mut StdRng,
    threads: usize,
) -> Vec<usize> {
    let n = matrix.rows();
    match init {
        FairKmInit::RandomAssignment => (0..n).map(|_| rng.gen_range(0..k)).collect(),
        FairKmInit::NearestSeeds => {
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = rng.gen_range(i..n);
                idx.swap(i, j);
            }
            let seeds: Vec<&[f64]> = idx[..k].iter().map(|&i| matrix.row(i)).collect();
            fairkm_parallel::map_indexed(threads, 0..n, |i| {
                let row = matrix.row(i);
                let mut best = 0;
                let mut best_d = f64::INFINITY;
                for (c, seed) in seeds.iter().enumerate() {
                    let d = fairkm_data::sq_euclidean(row, seed);
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                best
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Lambda;
    use fairkm_data::{row, DatasetBuilder, Role};

    /// Two well-separated blobs; group attribute perfectly aligned with
    /// blob identity — blind clustering is maximally unfair.
    fn aligned_dataset(n_per_blob: usize) -> Dataset {
        let mut b = DatasetBuilder::new();
        b.numeric("x", Role::NonSensitive).unwrap();
        b.numeric("y", Role::NonSensitive).unwrap();
        b.categorical("g", Role::Sensitive, &["a", "b"]).unwrap();
        for i in 0..n_per_blob {
            let jitter = (i % 7) as f64 * 0.03;
            b.push_row(row![jitter, 0.0 + jitter, "a"]).unwrap();
            b.push_row(row![3.0 + jitter, 3.0 - jitter, "b"]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn lambda_zero_finds_coherent_clusters() {
        let data = aligned_dataset(20);
        let model = FairKm::new(
            FairKmConfig::new(2)
                .with_lambda(Lambda::Fixed(0.0))
                .with_seed(3),
        )
        .fit(&data)
        .unwrap();
        // With λ=0 the update rule is pure coherence descent; the planted
        // split is the unique good optimum.
        let m = data
            .task_matrix(fairkm_data::Normalization::ZScore)
            .unwrap();
        let first = model.assignments()[0];
        for i in 0..m.rows() {
            let expect = if i % 2 == 0 { first } else { 1 - first };
            assert_eq!(model.assignments()[i], expect, "object {i}");
        }
        assert!(model.fairness_term() > 0.1, "blind split is unfair");
    }

    #[test]
    fn heuristic_lambda_trades_coherence_for_fairness() {
        // The (|X|/k)² heuristic scales quadratically with n, so fairness
        // dominance needs a dataset-scale n (the paper's datasets have
        // n ≥ 161); 150 per blob is plenty.
        let data = aligned_dataset(150);
        let blind = FairKm::new(
            FairKmConfig::new(2)
                .with_lambda(Lambda::Fixed(0.0))
                .with_seed(3),
        )
        .fit(&data)
        .unwrap();
        let fair = FairKm::new(FairKmConfig::new(2).with_seed(3))
            .fit(&data)
            .unwrap();
        assert!(
            fair.fairness_term() < blind.fairness_term() * 0.1,
            "fair deviation {} vs blind {}",
            fair.fairness_term(),
            blind.fairness_term()
        );
        assert!(fair.kmeans_term() >= blind.kmeans_term());
    }

    #[test]
    fn deterministic_per_seed() {
        let data = aligned_dataset(10);
        let a = FairKm::new(FairKmConfig::new(3).with_seed(11))
            .fit(&data)
            .unwrap();
        let b = FairKm::new(FairKmConfig::new(3).with_seed(11))
            .fit(&data)
            .unwrap();
        assert_eq!(a.assignments(), b.assignments());
        assert_eq!(a.objective(), b.objective());
    }

    #[test]
    fn literal_and_incremental_engines_agree() {
        let data = aligned_dataset(6);
        let inc = FairKm::new(
            FairKmConfig::new(2)
                .with_seed(5)
                .with_delta_engine(DeltaEngine::Incremental),
        )
        .fit(&data)
        .unwrap();
        let lit = FairKm::new(
            FairKmConfig::new(2)
                .with_seed(5)
                .with_delta_engine(DeltaEngine::Literal),
        )
        .fit(&data)
        .unwrap();
        assert_eq!(inc.assignments(), lit.assignments());
        assert!((inc.objective() - lit.objective()).abs() < 1e-9);
    }

    #[test]
    fn objective_trace_is_monotone_nonincreasing_per_move_schedule() {
        let data = aligned_dataset(15);
        let model = FairKm::new(FairKmConfig::new(3).with_seed(7))
            .fit(&data)
            .unwrap();
        for w in model.objective_trace().windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9,
                "objective increased: {} -> {}",
                w[0],
                w[1]
            );
        }
        assert!(model.converged() || model.iterations() == 30);
    }

    #[test]
    fn minibatch_schedule_runs_and_stays_fair() {
        let data = aligned_dataset(15);
        let per_move = FairKm::new(FairKmConfig::new(2).with_seed(2))
            .fit(&data)
            .unwrap();
        let mini = FairKm::new(
            FairKmConfig::new(2)
                .with_seed(2)
                .with_schedule(UpdateSchedule::MiniBatch(8)),
        )
        .fit(&data)
        .unwrap();
        assert_eq!(mini.assignments().len(), 30);
        // mini-batch is an approximation; it must stay in the same fairness
        // regime as the exact schedule
        assert!(mini.fairness_term() < per_move.fairness_term() * 10.0 + 1e-6);
    }

    #[test]
    fn errors_are_reported() {
        let data = aligned_dataset(3);
        assert!(matches!(
            FairKm::new(FairKmConfig::new(0)).fit(&data),
            Err(FairKmError::InvalidK { .. })
        ));
        assert!(matches!(
            FairKm::new(FairKmConfig::new(99)).fit(&data),
            Err(FairKmError::InvalidK { .. })
        ));
        assert!(matches!(
            FairKm::new(FairKmConfig::new(2).with_attr_weight("nope", 1.0)).fit(&data),
            Err(FairKmError::UnknownWeightAttribute(_))
        ));
        assert!(matches!(
            FairKm::new(FairKmConfig::new(2).with_attr_weight("g", -1.0)).fit(&data),
            Err(FairKmError::InvalidWeight { .. })
        ));
        assert!(matches!(
            FairKm::new(FairKmConfig::new(2).with_schedule(UpdateSchedule::MiniBatch(0)))
                .fit(&data),
            Err(FairKmError::ZeroBatch)
        ));
        assert!(matches!(
            FairKm::new(FairKmConfig::new(2).with_lambda(Lambda::Fixed(f64::NAN))).fit(&data),
            Err(FairKmError::InvalidLambda(_))
        ));
    }

    #[test]
    fn nearest_seed_init_works() {
        let data = aligned_dataset(150);
        let model = FairKm::new(
            FairKmConfig::new(2)
                .with_seed(4)
                .with_init(FairKmInit::NearestSeeds),
        )
        .fit(&data)
        .unwrap();
        assert!(model.fairness_term() < 0.05);
    }

    #[test]
    fn numeric_sensitive_attribute_extension() {
        // Age aligned with blob identity; heuristic λ must pull cluster
        // mean ages toward the dataset mean.
        let mut b = DatasetBuilder::new();
        b.numeric("x", Role::NonSensitive).unwrap();
        b.numeric("age", Role::Sensitive).unwrap();
        for i in 0..20 {
            let (pos, age) = if i % 2 == 0 { (0.0, 1.0) } else { (6.0, 3.0) };
            b.push_row(row![pos + (i % 5) as f64 * 0.02, age]).unwrap();
        }
        let data = b.build().unwrap();
        let blind = FairKm::new(
            FairKmConfig::new(2)
                .with_lambda(Lambda::Fixed(0.0))
                .with_seed(6),
        )
        .fit(&data)
        .unwrap();
        let fair = FairKm::new(FairKmConfig::new(2).with_seed(6))
            .fit(&data)
            .unwrap();
        assert!(fair.fairness_term() < blind.fairness_term() * 0.2);
    }

    #[test]
    fn empty_cluster_prototype_is_none() {
        // All rows identical: nearest-seed init sends every object to the
        // first seed's cluster (strict `<` comparison), the other cluster
        // starts empty, and no move can improve the objective (every
        // K-Means delta is 0 and a singleton would only raise the fairness
        // deviation) — so one cluster deterministically ends empty.
        let mut b = DatasetBuilder::new();
        b.numeric("x", Role::NonSensitive).unwrap();
        b.categorical("g", Role::Sensitive, &["a", "b"]).unwrap();
        for _ in 0..4 {
            b.push_row(row![1.0, "a"]).unwrap();
        }
        let data = b.build().unwrap();
        let model = FairKm::new(
            FairKmConfig::new(2)
                .with_seed(0)
                .with_init(FairKmInit::NearestSeeds)
                .with_normalization(fairkm_data::Normalization::None),
        )
        .fit(&data)
        .unwrap();
        let sizes = model.partition().cluster_sizes();
        let (full, empty) = if sizes[0] == 0 { (1, 0) } else { (0, 1) };
        assert_eq!(sizes[empty], 0);
        assert_eq!(sizes[full], 4);
        // prototypes(): None marks the empty cluster; prototype() borrows.
        assert!(model.prototypes()[empty].is_none());
        assert_eq!(model.prototype(empty), None);
        assert_eq!(model.prototype(full), Some(&[1.0][..]));
    }

    /// The pre-cache windowed pass exactly as PR 2 shipped it: staged
    /// assignment writes, a full `rebuild()` and a full-objective
    /// recomputation at every window boundary. Retained as the reference
    /// the cached delta engine is regression-tested against.
    fn windowed_pass_reference(
        state: &mut State<'_>,
        lambda: f64,
        engine: DeltaEngine,
        batch: usize,
        threads: usize,
        current: f64,
    ) -> (usize, f64) {
        let n = state.n;
        let mut moved = 0usize;
        let mut current = current;
        let mut start = 0usize;
        while start < n {
            let end = start.saturating_add(batch).min(n);
            let frozen: &State<'_> = state;
            let proposals = fairkm_parallel::map_indexed(threads, start..end, |x| {
                propose_move(frozen, x, lambda, engine)
            });
            let mut staged: Vec<(usize, usize)> = Vec::new();
            for (offset, &(best_to, best_delta)) in proposals.iter().enumerate() {
                let x = start + offset;
                let from = state.assignment[x];
                if best_to != from && best_delta < -MOVE_EPS {
                    staged.push((x, from));
                    state.assignment[x] = best_to;
                }
            }
            if !staged.is_empty() {
                state.rebuild();
                let after = state.kmeans_term() + lambda * state.fairness_term();
                if after < current - MOVE_EPS {
                    moved += staged.len();
                    current = after;
                } else {
                    for &(x, from) in &staged {
                        state.assignment[x] = from;
                    }
                    state.rebuild();
                    let fallback_moves = per_move_scan(state, lambda, engine, start..end);
                    if fallback_moves > 0 {
                        state.rebuild();
                        current = state.kmeans_term() + lambda * state.fairness_term();
                    }
                    moved += fallback_moves;
                }
            }
            start = end;
        }
        (moved, current)
    }

    /// Drive a state through up to 30 windowed passes with either engine,
    /// recording the objective trace exactly like `fit_views` does.
    fn run_windowed(
        state: &mut State<'_>,
        lambda: f64,
        batch: usize,
        reference: bool,
    ) -> (Vec<f64>, usize) {
        let mut objective = if reference {
            state.kmeans_term() + lambda * state.fairness_term()
        } else {
            state.objective_cached(lambda)
        };
        let mut trace = vec![objective];
        let mut moves = 0usize;
        for _ in 0..30 {
            let (moved, obj) = if reference {
                windowed_pass_reference(
                    state,
                    lambda,
                    DeltaEngine::Incremental,
                    batch,
                    1,
                    objective,
                )
            } else {
                windowed_pass(state, lambda, DeltaEngine::Incremental, batch, 1, objective)
            };
            objective = obj;
            moves += moved;
            trace.push(objective);
            if moved == 0 {
                break;
            }
        }
        (trace, moves)
    }

    #[test]
    fn windowed_delta_engine_matches_pre_cache_reference() {
        use crate::config::FairnessNorm;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let data = aligned_dataset(300); // n = 600
        let matrix = data
            .task_matrix(fairkm_data::Normalization::ZScore)
            .unwrap();
        let space = data.sensitive_space().unwrap();
        let k = 3;
        let lambda = Lambda::Heuristic.resolve(matrix.rows(), k);
        let weights = vec![1.0; space.n_attrs()];
        let mut rng = StdRng::seed_from_u64(41);
        let init: Vec<usize> = (0..matrix.rows()).map(|_| rng.gen_range(0..k)).collect();
        let build = |assignment: Vec<usize>| {
            State::with_norm(
                &matrix,
                &space,
                &weights,
                k,
                assignment,
                FairnessNorm::DomainCardinality,
                crate::config::ObjectiveKind::Representativity,
                1,
            )
        };

        let mut cached = build(init.clone());
        let (cached_trace, cached_moves) = run_windowed(&mut cached, lambda, 64, false);
        let mut reference = build(init);
        let (reference_trace, reference_moves) = run_windowed(&mut reference, lambda, 64, true);

        // The cached delta engine reproduces the pre-cache schedule: same
        // clustering, same move count, same objective trace (up to float
        // noise between the cached O(k) objective and the full scan).
        assert_eq!(cached.assignment, reference.assignment);
        assert_eq!(cached_moves, reference_moves);
        assert_eq!(cached_trace.len(), reference_trace.len());
        for (i, (a, b)) in cached_trace.iter().zip(&reference_trace).enumerate() {
            assert!(
                (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs())),
                "trace[{i}]: cached {a} vs reference {b}"
            );
        }

        // And the accept path is genuinely rebuild-free: every rebuild the
        // cached run performed is accounted for by the constructor (1) or
        // a monotone-acceptance fallback window (1 each) — accepted
        // windows contributed none. The reference instead rebuilt at every
        // window boundary that staged moves.
        assert_eq!(
            cached.rebuilds,
            1 + cached.fallbacks,
            "accept path must not rebuild ({} rebuilds, {} fallbacks)",
            cached.rebuilds,
            cached.fallbacks
        );
        assert!(
            cached.fallbacks < 3,
            "fixed-seed run unexpectedly fallback-heavy: {}",
            cached.fallbacks
        );
        assert!(
            reference.rebuilds > cached.rebuilds,
            "reference rebuilt {} times, cached {}",
            reference.rebuilds,
            cached.rebuilds
        );
    }

    #[test]
    fn windowed_schedule_is_thread_count_invariant() {
        let data = aligned_dataset(120);
        let fit = |threads: usize| {
            FairKm::new(
                FairKmConfig::new(3)
                    .with_seed(13)
                    .with_schedule(UpdateSchedule::MiniBatch(64))
                    .with_threads(threads),
            )
            .fit(&data)
            .unwrap()
        };
        let reference = fit(1);
        for threads in [2, 8] {
            let model = fit(threads);
            assert_eq!(reference.assignments(), model.assignments());
            assert_eq!(
                reference.objective().to_bits(),
                model.objective().to_bits(),
                "threads = {threads}"
            );
            let pairs = reference
                .objective_trace()
                .iter()
                .zip(model.objective_trace());
            for (a, b) in pairs {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn prototypes_match_partition() {
        let data = aligned_dataset(8);
        let model = FairKm::new(FairKmConfig::new(2).with_seed(9))
            .fit(&data)
            .unwrap();
        let m = data
            .task_matrix(fairkm_data::Normalization::ZScore)
            .unwrap();
        for (c, proto) in model.prototypes().iter().enumerate() {
            let members: Vec<usize> = (0..m.rows())
                .filter(|&i| model.assignments()[i] == c)
                .collect();
            match proto {
                None => assert!(members.is_empty()),
                Some(p) => {
                    assert!(!members.is_empty());
                    for (d, pd) in p.iter().enumerate() {
                        let mean: f64 = members.iter().map(|&i| m.row(i)[d]).sum::<f64>()
                            / members.len() as f64;
                        assert!((mean - pd).abs() < 1e-9);
                    }
                }
            }
        }
    }
}
