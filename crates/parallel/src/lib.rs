//! # fairkm-parallel — deterministic chunked map/reduce on a worker pool
//!
//! The FairKM hot paths (point-to-prototype scoring, prototype/deviation
//! recomputation, cost-matrix construction, metric evaluation) are all
//! embarrassingly parallel maps over row ranges. This crate is the single
//! execution engine behind them: a dependency-free chunked map/reduce
//! dispatched to a **persistent worker pool**.
//!
//! ## Worker-pool lifecycle
//!
//! Workers are OS threads spawned lazily on the first parallel call that
//! needs them and kept parked on their dispatch channels for the rest of
//! the process — the mini-batch hot loop issues thousands of small
//! map/reduce calls per fit, and re-spawning OS threads per call (the PR 2
//! design, built on [`std::thread::scope`]) cost tens of microseconds of
//! spawn/join per window. A call with `threads = t` over `c` chunks
//! dispatches one batch handle to `min(t, c) − 1` workers and the calling
//! thread joins in as the final participant, pulling chunk indices from a
//! shared atomic cursor until the batch is drained. The caller always
//! participates, so every call makes progress even if all workers are busy
//! (nested calls degrade to sequential instead of deadlocking), and the
//! call only returns once a completion latch counts every chunk done — the
//! borrowed closure can never be observed by a worker after the call
//! returns. The pool never shrinks; it holds `max` over all calls of
//! `min(threads, chunks) − 1` threads ([`worker_pool_size`]).
//!
//! ## Determinism contract
//!
//! Every helper here guarantees **bitwise-identical results for any thread
//! count**, which is what makes thread-count sweeps comparable and lets the
//! workspace promise "same seed ⇒ same clustering" regardless of hardware:
//!
//! * work is split into chunks whose boundaries depend only on the input
//!   length `n` (see [`chunk_size`]) — never on the thread count;
//! * each chunk is mapped by a pure closure reading shared state;
//! * chunk results are reduced **in chunk-index order**, so floating-point
//!   sums associate identically whether one thread or sixteen computed the
//!   chunks.
//!
//! Threads only decide *who* computes each chunk, never *what* is computed
//! or *in which order* results combine.
//!
//! ## Thread-count resolution
//!
//! [`resolve_threads`] implements the workspace-wide policy: an explicit
//! request (e.g. `FairKmConfig::with_threads` or the CLI's `--threads`)
//! wins, otherwise the `FAIRKM_THREADS` environment variable, otherwise
//! [`std::thread::available_parallelism`].
//!
//! ```
//! // An ordered parallel sum is bitwise-stable across thread counts.
//! let data: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
//! let sum = |threads: usize| {
//!     fairkm_parallel::sum_chunks(threads, data.len(), |r| {
//!         data[r].iter().sum::<f64>()
//!     })
//! };
//! assert_eq!(sum(1).to_bits(), sum(8).to_bits());
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;
use std::sync::Mutex;

/// Environment variable consulted by [`resolve_threads`] when no explicit
/// thread count is given.
pub const THREADS_ENV: &str = "FAIRKM_THREADS";

/// Resolve the number of worker threads to use.
///
/// Priority: `explicit` (clamped to ≥ 1) → the [`THREADS_ENV`] variable
/// (ignored if unset, unparsable, or zero) → the machine's available
/// parallelism → 1.
///
/// Because every primitive in this crate is deterministic in the thread
/// count, auto-resolution never changes results — only wall-clock time.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    if let Some(t) = explicit {
        return t.max(1);
    }
    if let Some(t) = env_threads() {
        return t;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The thread count requested via [`THREADS_ENV`], if set to a positive
/// integer.
pub fn env_threads() -> Option<usize> {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t > 0)
}

/// The chunk length used to split `n` items — a pure function of `n` only,
/// **never** of the thread count (that is the determinism invariant).
///
/// Targets ~64 chunks with a 64-item floor, so small inputs collapse to a
/// single chunk (taking the exact sequential code path) while large inputs
/// expose enough chunks to keep any realistic thread count busy.
pub fn chunk_size(n: usize) -> usize {
    n.div_ceil(64).max(64)
}

/// The chunk decomposition of `0..n`: half-open ranges of [`chunk_size`]
/// items (the last chunk may be shorter), in index order.
pub fn chunk_ranges(n: usize) -> impl ExactSizeIterator<Item = Range<usize>> {
    let chunk = chunk_size(n);
    let n_chunks = if n == 0 { 0 } else { n.div_ceil(chunk) };
    (0..n_chunks).map(move |i| i * chunk..((i + 1) * chunk).min(n))
}

/// Inputs shorter than this run sequentially even when more threads are
/// requested: even with the persistent pool, a dispatch costs a channel
/// send plus a condvar wake-up per worker, which dwarfs the work in a few
/// hundred items (e.g. a small mini-batch window's rebuild). The chunk
/// decomposition and reduction order are the same on both paths, so this
/// cutoff — like the thread count — can never change a result.
const MIN_PARALLEL_ITEMS: usize = 1024;

/// The persistent worker pool behind every parallel primitive in this
/// crate.
mod pool {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::mpsc::{channel, Receiver, Sender};
    use std::sync::{Arc, Condvar, Mutex, OnceLock};

    /// One dispatched map call: a type-erased chunk task plus the shared
    /// cursor/latch state the participants coordinate through.
    struct Batch {
        /// The caller's chunk task, type-erased to a raw pointer so the
        /// handle stays `'static`-free. Dereferenced only for claimed
        /// indices `< n_tasks`; [`run`] keeps the closure alive (it does
        /// not return) until the latch counts every task done, and a
        /// worker that pops a drained batch late breaks on the cursor
        /// check without ever touching this pointer.
        task: *const (dyn Fn(usize) + Sync),
        /// Number of tasks in the batch.
        n_tasks: usize,
        /// Claim cursor: `fetch_add` hands each task index to exactly one
        /// participant.
        next: AtomicUsize,
        /// Completion latch: tasks not yet finished. Guards the results
        /// too — a participant's writes happen-before the caller observing
        /// the counter reach zero.
        remaining: Mutex<usize>,
        /// Signalled when `remaining` reaches zero.
        done: Condvar,
        /// Set when any task panicked; the caller re-raises after the
        /// latch opens.
        panicked: AtomicBool,
    }

    // SAFETY: `task` points at a `Sync` closure that `run` keeps borrowed
    // until every task completed, so sharing the pointer across the pool
    // threads is sound; every other field is already `Send + Sync`.
    #[allow(unsafe_code)]
    unsafe impl Send for Batch {}
    #[allow(unsafe_code)]
    unsafe impl Sync for Batch {}

    impl Batch {
        /// Pull and execute task indices until the cursor drains. Called
        /// by workers and by the dispatching caller alike.
        fn work(&self) {
            loop {
                let i = self.next.fetch_add(1, Ordering::Relaxed);
                if i >= self.n_tasks {
                    return;
                }
                // SAFETY: `i < n_tasks`, so the batch is still live: `run`
                // is blocked on the latch below and the closure it borrows
                // is still in scope.
                #[allow(unsafe_code)]
                let task = unsafe { &*self.task };
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(i)));
                if outcome.is_err() {
                    self.panicked.store(true, Ordering::Relaxed);
                }
                let mut remaining = self.remaining.lock().expect("batch latch poisoned");
                *remaining -= 1;
                if *remaining == 0 {
                    self.done.notify_all();
                }
            }
        }

        /// Block until every task of the batch has finished.
        fn wait(&self) {
            let mut remaining = self.remaining.lock().expect("batch latch poisoned");
            while *remaining > 0 {
                remaining = self.done.wait(remaining).expect("batch latch poisoned");
            }
        }
    }

    /// Dispatch channels of the spawned workers, in spawn order. Workers
    /// park on `recv` between batches and live for the process lifetime.
    static WORKERS: OnceLock<Mutex<Vec<Sender<Arc<Batch>>>>> = OnceLock::new();

    fn workers() -> &'static Mutex<Vec<Sender<Arc<Batch>>>> {
        WORKERS.get_or_init(|| Mutex::new(Vec::new()))
    }

    /// Number of pool threads spawned so far (diagnostic; grows on demand,
    /// never shrinks).
    pub fn size() -> usize {
        workers().lock().expect("worker pool poisoned").len()
    }

    fn worker_loop(inbox: Receiver<Arc<Batch>>) {
        // The senders live in a process-global registry, so `recv` only
        // fails at process teardown.
        while let Ok(batch) = inbox.recv() {
            batch.work();
        }
    }

    /// Run `task(0..n_tasks)` across up to `participants` threads: the
    /// caller plus `participants − 1` pool workers. Returns only once every
    /// task completed; panics (after the latch opens) if any task panicked.
    pub fn run(participants: usize, n_tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        if participants <= 1 || n_tasks <= 1 {
            for i in 0..n_tasks {
                task(i);
            }
            return;
        }
        // SAFETY: this only erases the reference's lifetime so the pointer
        // fits the `'static`-defaulted field type; validity is enforced by
        // the latch protocol documented on `Batch::task`.
        #[allow(unsafe_code)]
        let task: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute(task as *const (dyn Fn(usize) + Sync + '_)) };
        let batch = Arc::new(Batch {
            task,
            n_tasks,
            next: AtomicUsize::new(0),
            remaining: Mutex::new(n_tasks),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        });
        {
            let helpers = participants - 1;
            let mut senders = workers().lock().expect("worker pool poisoned");
            while senders.len() < helpers {
                let (tx, rx) = channel::<Arc<Batch>>();
                std::thread::Builder::new()
                    .name(format!("fairkm-worker-{}", senders.len()))
                    .spawn(move || worker_loop(rx))
                    .expect("failed to spawn pool worker");
                senders.push(tx);
            }
            for tx in senders.iter().take(helpers) {
                // A send can only fail if a worker thread died; the batch
                // still completes because the caller participates.
                let _ = tx.send(Arc::clone(&batch));
            }
        }
        batch.work();
        batch.wait();
        if batch.panicked.load(Ordering::Relaxed) {
            panic!("parallel worker panicked");
        }
    }
}

/// Number of persistent pool threads spawned so far. Workers are created
/// lazily by the first call that needs them and are kept parked between
/// calls; the count never shrinks. Diagnostic only — it has no effect on
/// results.
pub fn worker_pool_size() -> usize {
    pool::size()
}

/// Map every chunk of `0..n` through `map`, returning the chunk results in
/// chunk-index order.
///
/// `map` must be pure with respect to chunk identity: it is invoked exactly
/// once per chunk, possibly concurrently, on whichever pool participant
/// grabs the chunk first. The returned `Vec` is index-ordered, so
/// downstream folds are independent of scheduling.
pub fn map_chunks<R, F>(threads: usize, n: usize, map: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let ranges: Vec<Range<usize>> = chunk_ranges(n).collect();
    let n_chunks = ranges.len();
    if threads <= 1 || n_chunks <= 1 || n < MIN_PARALLEL_ITEMS {
        return ranges.into_iter().map(map).collect();
    }
    // One slot per chunk keeps results in chunk-index order regardless of
    // which participant computed them; the per-slot locks are touched once
    // per chunk (~64 per call), so contention is negligible.
    let slots: Vec<Mutex<Option<R>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();
    let task = |i: usize| {
        let result = map(ranges[i].clone());
        *slots[i].lock().expect("chunk slot poisoned") = Some(result);
    };
    pool::run(threads.min(n_chunks), n_chunks, &task);
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("chunk slot poisoned")
                .expect("every chunk is computed exactly once")
        })
        .collect()
}

/// Chunked parallel sum with ordered reduction: each chunk's partial sum is
/// accumulated sequentially within the chunk, and partials are added in
/// chunk-index order — bitwise-identical for any thread count.
pub fn sum_chunks<F>(threads: usize, n: usize, partial: F) -> f64
where
    F: Fn(Range<usize>) -> f64 + Sync,
{
    map_chunks(threads, n, partial).into_iter().sum()
}

/// Parallel per-index map over `range`, returning one value per index in
/// index order (exactly what a sequential `range.map(f).collect()` yields).
///
/// `f` must depend only on its index argument and shared read-only state,
/// which makes the output independent of both thread count and chunk
/// layout.
pub fn map_indexed<T, F>(threads: usize, range: Range<usize>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let start = range.start;
    let len = range.end.saturating_sub(start);
    let per_chunk = map_chunks(threads, len, |r| {
        (r.start..r.end).map(|i| f(start + i)).collect::<Vec<T>>()
    });
    let mut out = Vec::with_capacity(len);
    for chunk in per_chunk {
        out.extend(chunk);
    }
    out
}

/// Merge per-chunk partial aggregates in chunk-index order.
///
/// Convenience wrapper for accumulator-style reductions (prototype sums,
/// per-value counts): `build` maps a chunk to a partial aggregate and
/// `merge` folds it into the accumulator. `merge` is always called in
/// chunk-index order on the caller's thread.
pub fn fold_chunks<A, R, B, M>(threads: usize, n: usize, init: A, build: B, mut merge: M) -> A
where
    R: Send,
    B: Fn(Range<usize>) -> R + Sync,
    M: FnMut(A, R) -> A,
{
    let mut acc = init;
    for partial in map_chunks(threads, n, build) {
        acc = merge(acc, partial);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_layout_depends_only_on_n() {
        for n in [0usize, 1, 63, 64, 65, 4096, 4097, 100_000] {
            let ranges: Vec<_> = chunk_ranges(n).collect();
            assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), n);
            // Contiguous, ordered, non-empty.
            let mut pos = 0;
            for r in &ranges {
                assert_eq!(r.start, pos);
                assert!(!r.is_empty());
                pos = r.end;
            }
            assert_eq!(pos, n);
        }
    }

    #[test]
    fn small_inputs_are_a_single_chunk() {
        assert_eq!(chunk_ranges(50).count(), 1);
        assert_eq!(chunk_ranges(64).count(), 1);
        assert_eq!(chunk_ranges(0).count(), 0);
    }

    #[test]
    fn map_indexed_matches_sequential_map() {
        let expected: Vec<u64> = (10..9_010).map(|i| (i as u64).wrapping_mul(31)).collect();
        for threads in [1, 2, 3, 8] {
            let got = map_indexed(threads, 10..9_010, |i| (i as u64).wrapping_mul(31));
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn sum_is_bitwise_stable_across_thread_counts() {
        let data: Vec<f64> = (0..50_000)
            .map(|i| ((i * 7919) as f64).sin() * 1e3)
            .collect();
        let reference = sum_chunks(1, data.len(), |r| data[r].iter().sum::<f64>());
        for threads in [2, 4, 16] {
            let got = sum_chunks(threads, data.len(), |r| data[r].iter().sum::<f64>());
            assert_eq!(got.to_bits(), reference.to_bits(), "threads = {threads}");
        }
    }

    #[test]
    fn map_chunks_results_arrive_in_chunk_order() {
        let n = 70_000;
        let starts = map_chunks(8, n, |r| r.start);
        let expected: Vec<usize> = chunk_ranges(n).map(|r| r.start).collect();
        assert_eq!(starts, expected);
    }

    #[test]
    fn fold_chunks_merges_in_order() {
        let n = 70_000;
        let concat = fold_chunks(
            8,
            n,
            Vec::new(),
            |r| r.clone(),
            |mut acc: Vec<Range<usize>>, r| {
                acc.push(r);
                acc
            },
        );
        let expected: Vec<_> = chunk_ranges(n).collect();
        assert_eq!(concat, expected);
    }

    #[test]
    fn explicit_thread_count_wins_and_is_clamped() {
        assert_eq!(resolve_threads(Some(6)), 6);
        assert_eq!(resolve_threads(Some(0)), 1);
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn zero_and_tiny_inputs_work_at_any_thread_count() {
        for threads in [1, 4] {
            assert_eq!(sum_chunks(threads, 0, |_| 1.0), 0.0);
            assert_eq!(map_indexed::<usize, _>(threads, 3..3, |i| i), vec![]);
            assert_eq!(map_indexed(threads, 0..1, |i| i), vec![0]);
        }
    }

    #[test]
    fn pool_threads_are_reused_across_calls() {
        // The pool is process-global and sibling tests run concurrently, so
        // this test demands the crate-wide maximum worker count (threads=16
        // over the 64 chunks of n=50k → 15 helpers, matching the largest
        // sibling demand): after the first call the pool is saturated at
        // that maximum, no concurrently scheduled test can grow it further,
        // and the equality below is race-free.
        let run = || {
            let total: usize = map_chunks(16, 50_000, |r| r.len()).into_iter().sum();
            assert_eq!(total, 50_000);
        };
        run();
        let spawned_after_first = worker_pool_size();
        assert!(
            spawned_after_first >= 15,
            "first call must saturate the pool, got {spawned_after_first}"
        );
        for _ in 0..16 {
            run();
        }
        // Persistent pool: repeated same-shaped calls re-dispatch to the
        // parked workers instead of spawning fresh threads every call (the
        // pre-pool engine would have spawned 15 × 16 threads here).
        assert_eq!(worker_pool_size(), spawned_after_first);
    }

    #[test]
    fn pool_task_panics_propagate_to_the_caller() {
        let outcome = std::panic::catch_unwind(|| {
            map_chunks(4, 50_000, |r| {
                if r.start == 0 {
                    panic!("boom");
                }
                r.len()
            })
        });
        assert!(outcome.is_err(), "panic inside a chunk must propagate");
        // The pool survives a panicked batch and still serves later calls.
        let total: usize = map_chunks(4, 50_000, |r| r.len()).into_iter().sum();
        assert_eq!(total, 50_000);
    }

    #[test]
    fn nested_parallel_calls_complete() {
        // Inner calls issued from pool workers must not deadlock: the
        // issuing participant always works its own batch to completion.
        let outer = map_chunks(4, 8_192, |r| {
            sum_chunks(2, 2_048, |inner| inner.len() as f64) + r.len() as f64
        });
        for (i, v) in outer.iter().enumerate() {
            let expected = 2_048.0 + chunk_ranges(8_192).nth(i).unwrap().len() as f64;
            assert_eq!(*v, expected);
        }
    }
}
