//! # fairkm-parallel — deterministic chunked map/reduce on scoped threads
//!
//! The FairKM hot paths (point-to-prototype scoring, prototype/deviation
//! recomputation, cost-matrix construction, metric evaluation) are all
//! embarrassingly parallel maps over row ranges. This crate is the single
//! execution engine behind them: a dependency-free chunked map/reduce built
//! on [`std::thread::scope`].
//!
//! ## Determinism contract
//!
//! Every helper here guarantees **bitwise-identical results for any thread
//! count**, which is what makes thread-count sweeps comparable and lets the
//! workspace promise "same seed ⇒ same clustering" regardless of hardware:
//!
//! * work is split into chunks whose boundaries depend only on the input
//!   length `n` (see [`chunk_size`]) — never on the thread count;
//! * each chunk is mapped by a pure closure reading shared state;
//! * chunk results are reduced **in chunk-index order**, so floating-point
//!   sums associate identically whether one thread or sixteen computed the
//!   chunks.
//!
//! Threads only decide *who* computes each chunk, never *what* is computed
//! or *in which order* results combine.
//!
//! ## Thread-count resolution
//!
//! [`resolve_threads`] implements the workspace-wide policy: an explicit
//! request (e.g. `FairKmConfig::with_threads` or the CLI's `--threads`)
//! wins, otherwise the `FAIRKM_THREADS` environment variable, otherwise
//! [`std::thread::available_parallelism`].
//!
//! ```
//! // An ordered parallel sum is bitwise-stable across thread counts.
//! let data: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
//! let sum = |threads: usize| {
//!     fairkm_parallel::sum_chunks(threads, data.len(), |r| {
//!         data[r].iter().sum::<f64>()
//!     })
//! };
//! assert_eq!(sum(1).to_bits(), sum(8).to_bits());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable consulted by [`resolve_threads`] when no explicit
/// thread count is given.
pub const THREADS_ENV: &str = "FAIRKM_THREADS";

/// Resolve the number of worker threads to use.
///
/// Priority: `explicit` (clamped to ≥ 1) → the [`THREADS_ENV`] variable
/// (ignored if unset, unparsable, or zero) → the machine's available
/// parallelism → 1.
///
/// Because every primitive in this crate is deterministic in the thread
/// count, auto-resolution never changes results — only wall-clock time.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    if let Some(t) = explicit {
        return t.max(1);
    }
    if let Some(t) = env_threads() {
        return t;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The thread count requested via [`THREADS_ENV`], if set to a positive
/// integer.
pub fn env_threads() -> Option<usize> {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t > 0)
}

/// The chunk length used to split `n` items — a pure function of `n` only,
/// **never** of the thread count (that is the determinism invariant).
///
/// Targets ~64 chunks with a 64-item floor, so small inputs collapse to a
/// single chunk (taking the exact sequential code path) while large inputs
/// expose enough chunks to keep any realistic thread count busy.
pub fn chunk_size(n: usize) -> usize {
    n.div_ceil(64).max(64)
}

/// The chunk decomposition of `0..n`: half-open ranges of [`chunk_size`]
/// items (the last chunk may be shorter), in index order.
pub fn chunk_ranges(n: usize) -> impl ExactSizeIterator<Item = Range<usize>> {
    let chunk = chunk_size(n);
    let n_chunks = if n == 0 { 0 } else { n.div_ceil(chunk) };
    (0..n_chunks).map(move |i| i * chunk..((i + 1) * chunk).min(n))
}

/// Inputs shorter than this run sequentially even when more threads are
/// requested: spawning OS threads costs tens of microseconds each, which
/// dwarfs the work in a few hundred items (e.g. a small mini-batch window's
/// rebuild). The chunk decomposition and reduction order are the same on
/// both paths, so this cutoff — like the thread count — can never change a
/// result.
const MIN_PARALLEL_ITEMS: usize = 1024;

/// Map every chunk of `0..n` through `map`, returning the chunk results in
/// chunk-index order.
///
/// `map` must be pure with respect to chunk identity: it is invoked exactly
/// once per chunk, possibly concurrently, on whichever worker grabs the
/// chunk first. The returned `Vec` is index-ordered, so downstream folds
/// are independent of scheduling.
pub fn map_chunks<R, F>(threads: usize, n: usize, map: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let ranges: Vec<Range<usize>> = chunk_ranges(n).collect();
    let n_chunks = ranges.len();
    if threads <= 1 || n_chunks <= 1 || n < MIN_PARALLEL_ITEMS {
        return ranges.into_iter().map(map).collect();
    }
    let next = AtomicUsize::new(0);
    let workers = threads.min(n_chunks);
    let mut slots: Vec<Option<R>> = (0..n_chunks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let map = &map;
                let next = &next;
                let ranges = &ranges;
                scope.spawn(move || {
                    let mut done: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_chunks {
                            break;
                        }
                        done.push((i, map(ranges[i].clone())));
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            for (i, r) in handle.join().expect("parallel worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every chunk is computed exactly once"))
        .collect()
}

/// Chunked parallel sum with ordered reduction: each chunk's partial sum is
/// accumulated sequentially within the chunk, and partials are added in
/// chunk-index order — bitwise-identical for any thread count.
pub fn sum_chunks<F>(threads: usize, n: usize, partial: F) -> f64
where
    F: Fn(Range<usize>) -> f64 + Sync,
{
    map_chunks(threads, n, partial).into_iter().sum()
}

/// Parallel per-index map over `range`, returning one value per index in
/// index order (exactly what a sequential `range.map(f).collect()` yields).
///
/// `f` must depend only on its index argument and shared read-only state,
/// which makes the output independent of both thread count and chunk
/// layout.
pub fn map_indexed<T, F>(threads: usize, range: Range<usize>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let start = range.start;
    let len = range.end.saturating_sub(start);
    let per_chunk = map_chunks(threads, len, |r| {
        (r.start..r.end).map(|i| f(start + i)).collect::<Vec<T>>()
    });
    let mut out = Vec::with_capacity(len);
    for chunk in per_chunk {
        out.extend(chunk);
    }
    out
}

/// Merge per-chunk partial aggregates in chunk-index order.
///
/// Convenience wrapper for accumulator-style reductions (prototype sums,
/// per-value counts): `build` maps a chunk to a partial aggregate and
/// `merge` folds it into the accumulator. `merge` is always called in
/// chunk-index order on the caller's thread.
pub fn fold_chunks<A, R, B, M>(threads: usize, n: usize, init: A, build: B, mut merge: M) -> A
where
    R: Send,
    B: Fn(Range<usize>) -> R + Sync,
    M: FnMut(A, R) -> A,
{
    let mut acc = init;
    for partial in map_chunks(threads, n, build) {
        acc = merge(acc, partial);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_layout_depends_only_on_n() {
        for n in [0usize, 1, 63, 64, 65, 4096, 4097, 100_000] {
            let ranges: Vec<_> = chunk_ranges(n).collect();
            assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), n);
            // Contiguous, ordered, non-empty.
            let mut pos = 0;
            for r in &ranges {
                assert_eq!(r.start, pos);
                assert!(!r.is_empty());
                pos = r.end;
            }
            assert_eq!(pos, n);
        }
    }

    #[test]
    fn small_inputs_are_a_single_chunk() {
        assert_eq!(chunk_ranges(50).count(), 1);
        assert_eq!(chunk_ranges(64).count(), 1);
        assert_eq!(chunk_ranges(0).count(), 0);
    }

    #[test]
    fn map_indexed_matches_sequential_map() {
        let expected: Vec<u64> = (10..9_010).map(|i| (i as u64).wrapping_mul(31)).collect();
        for threads in [1, 2, 3, 8] {
            let got = map_indexed(threads, 10..9_010, |i| (i as u64).wrapping_mul(31));
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn sum_is_bitwise_stable_across_thread_counts() {
        let data: Vec<f64> = (0..50_000)
            .map(|i| ((i * 7919) as f64).sin() * 1e3)
            .collect();
        let reference = sum_chunks(1, data.len(), |r| data[r].iter().sum::<f64>());
        for threads in [2, 4, 16] {
            let got = sum_chunks(threads, data.len(), |r| data[r].iter().sum::<f64>());
            assert_eq!(got.to_bits(), reference.to_bits(), "threads = {threads}");
        }
    }

    #[test]
    fn map_chunks_results_arrive_in_chunk_order() {
        let n = 70_000;
        let starts = map_chunks(8, n, |r| r.start);
        let expected: Vec<usize> = chunk_ranges(n).map(|r| r.start).collect();
        assert_eq!(starts, expected);
    }

    #[test]
    fn fold_chunks_merges_in_order() {
        let n = 70_000;
        let concat = fold_chunks(
            8,
            n,
            Vec::new(),
            |r| r.clone(),
            |mut acc: Vec<Range<usize>>, r| {
                acc.push(r);
                acc
            },
        );
        let expected: Vec<_> = chunk_ranges(n).collect();
        assert_eq!(concat, expected);
    }

    #[test]
    fn explicit_thread_count_wins_and_is_clamped() {
        assert_eq!(resolve_threads(Some(6)), 6);
        assert_eq!(resolve_threads(Some(0)), 1);
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn zero_and_tiny_inputs_work_at_any_thread_count() {
        for threads in [1, 4] {
            assert_eq!(sum_chunks(threads, 0, |_| 1.0), 0.0);
            assert_eq!(map_indexed::<usize, _>(threads, 3..3, |i| i), vec![]);
            assert_eq!(map_indexed(threads, 0..1, |i| i), vec![0]);
        }
    }
}
