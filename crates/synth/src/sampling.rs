//! Seeded sampling primitives shared by the generators.

use fairkm_data::{AttrId, Dataset};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Draw an index proportionally to `weights` (need not be normalized;
/// non-positive weights are treated as zero).
///
/// # Panics
///
/// Panics if `weights` is empty or sums to zero — generator tables are
/// static, so this is a construction bug.
pub fn weighted_choice<R: Rng>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "weighted_choice needs weights");
    let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
    assert!(total > 0.0, "weights must not all be zero");
    let mut x = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        let w = w.max(0.0);
        if x < w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1 // numeric edge: fall back to the last index
}

/// A standard-normal draw via the Marsaglia polar method (`rand_distr` is
/// outside the sanctioned dependency set, so Gaussians are hand-rolled).
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u = rng.gen::<f64>() * 2.0 - 1.0;
        let v = rng.gen::<f64>() * 2.0 - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Normal draw with the given mean and standard deviation.
pub fn normal<R: Rng>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    mean + sd * standard_normal(rng)
}

/// Undersample the dataset so that every value of the (categorical)
/// attribute `class_attr` appears equally often, mirroring the paper's
/// Adult preprocessing ("we first undersample the dataset to ensure parity
/// across this income class attribute", §5.1).
///
/// Rows are shuffled deterministically by `seed`; each class keeps its
/// first `min_class_count` rows; the surviving rows are returned in their
/// original relative order.
pub fn undersample_balanced(
    dataset: &Dataset,
    class_attr: AttrId,
    seed: u64,
) -> Result<Dataset, fairkm_data::DataError> {
    let column = dataset.categorical_column(class_attr)?;
    let cardinality = dataset
        .schema()
        .attr(class_attr)?
        .kind
        .cardinality()
        .expect("categorical attribute has a cardinality");
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); cardinality];
    for (row, &v) in column.iter().enumerate() {
        per_class[v as usize].push(row);
    }
    let target = per_class
        .iter()
        .filter(|rows| !rows.is_empty())
        .map(Vec::len)
        .min()
        .unwrap_or(0);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_bace_u64);
    let mut keep: Vec<usize> = Vec::with_capacity(target * cardinality);
    for rows in &mut per_class {
        rows.shuffle(&mut rng);
        keep.extend(rows.iter().copied().take(target));
    }
    keep.sort_unstable();
    dataset.select_rows(&keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairkm_data::{row, DatasetBuilder, Role};

    #[test]
    fn weighted_choice_respects_zero_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let i = weighted_choice(&mut rng, &[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn weighted_choice_is_roughly_proportional() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[weighted_choice(&mut rng, &[1.0, 2.0, 7.0])] += 1;
        }
        let p2 = counts[2] as f64 / 30_000.0;
        assert!((p2 - 0.7).abs() < 0.02, "p2 = {p2}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn undersample_reaches_parity() {
        let mut b = DatasetBuilder::new();
        b.numeric("x", Role::NonSensitive).unwrap();
        b.categorical("cls", Role::Auxiliary, &["a", "b"]).unwrap();
        for i in 0..30 {
            let cls = if i < 20 { "a" } else { "b" };
            b.push_row(row![i as f64, cls]).unwrap();
        }
        let d = b.build().unwrap();
        let (cls_id, _) = d.schema().attr_by_name("cls").unwrap();
        let balanced = undersample_balanced(&d, cls_id, 9).unwrap();
        assert_eq!(balanced.n_rows(), 20);
        let col = balanced.categorical_column(cls_id).unwrap();
        let a_count = col.iter().filter(|&&v| v == 0).count();
        assert_eq!(a_count, 10);
    }

    #[test]
    fn undersample_is_deterministic_per_seed() {
        let mut b = DatasetBuilder::new();
        b.numeric("x", Role::NonSensitive).unwrap();
        b.categorical("cls", Role::Auxiliary, &["a", "b"]).unwrap();
        for i in 0..40 {
            let cls = if i % 3 == 0 { "b" } else { "a" };
            b.push_row(row![i as f64, cls]).unwrap();
        }
        let d = b.build().unwrap();
        let (cls_id, _) = d.schema().attr_by_name("cls").unwrap();
        let b1 = undersample_balanced(&d, cls_id, 5).unwrap();
        let b2 = undersample_balanced(&d, cls_id, 5).unwrap();
        let b3 = undersample_balanced(&d, cls_id, 6).unwrap();
        assert_eq!(b1, b2);
        assert!(b1 != b3 || b1.n_rows() == b3.n_rows());
    }
}
