//! # fairkm-synth — synthetic workload generators
//!
//! The paper evaluates FairKM on two real datasets that cannot be shipped
//! with this reproduction: the UCI **Adult** census extract and a corpus of
//! 161 **kinematics word problems** embedded with Doc2Vec. This crate
//! builds deterministic synthetic counterparts that preserve every property
//! the experiments rely on (see DESIGN.md §4 for the substitution
//! argument):
//!
//! * [`census`] — Adult stand-in: 5 sensitive attributes with the exact
//!   Table 3 cardinalities (7/6/5/2/41) and documented skews, 8 numeric
//!   task attributes that *implicitly encode* the sensitive ones, and the
//!   §5.1 income-parity undersampling;
//! * [`kinematics`] — word-problem generator with the exact Table 4 type
//!   counts (60/36/15/31/19) and per-type vocabulary;
//! * [`embed`] — the Doc2Vec stand-in: hashed bag-of-words + seeded
//!   Gaussian random projection to 100 dimensions;
//! * [`planted`] — controlled Gaussian-blob workloads for tests and the
//!   §6.1 scaling studies;
//! * [`sampling`] — seeded sampling primitives (weighted choice, normals,
//!   class-parity undersampling).
//!
//! Everything is deterministic in a `u64` seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod census;
pub mod embed;
pub mod kinematics;
pub mod planted;
pub mod sampling;
