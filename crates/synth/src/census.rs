//! Synthetic census workload — the Adult/UCI stand-in.
//!
//! The paper's primary dataset is the 1994 US Census "Adult" extract:
//! 32 561 rows, 5 sensitive attributes `S = {marital status, relationship
//! status, race, gender, native country}` with domain sizes 7/6/5/2/41
//! (Table 3), 8 numeric task attributes, and an income class label that is
//! *not* clustered on but used to undersample the data to class parity
//! (32 561 → 15 682 rows, §5.1).
//!
//! The real extract is not shipped here, so this module generates a
//! faithful synthetic counterpart. What the experiments actually require
//! from the data (see DESIGN.md §4):
//!
//! 1. the same sensitive-attribute structure — five categorical attributes
//!    with the cardinalities above, including the strong single-value skews
//!    the paper calls out (≈87% single race value, ≈90% single country);
//! 2. task attributes that **implicitly encode** the sensitive attributes,
//!    so a sensitive-blind K-Means produces demographically skewed
//!    clusters (the phenomenon FairKM exists to fix);
//! 3. the same scale and the same class-parity undersampling step.
//!
//! Rows are drawn from a latent-profile mixture: a hidden socio-economic
//! profile drives both the sensitive attributes and the numeric means, and
//! additional gender/marital shifts on the numeric attributes create the
//! leakage in (2).

use crate::sampling::{normal, undersample_balanced, weighted_choice};
use fairkm_data::{AttrId, Dataset, DatasetBuilder, Role, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of numeric task attributes (mirrors the paper's 8).
pub const N_TASK_ATTRS: usize = 8;

/// Names of the numeric task attributes.
pub const TASK_ATTRS: [&str; N_TASK_ATTRS] = [
    "age",
    "education_num",
    "education_years",
    "occupation_rank",
    "capital_gain",
    "capital_loss",
    "hours_per_week",
    "workclass_code",
];

/// Domain of the `marital_status` attribute (7 values, as in Table 3).
pub const MARITAL: [&str; 7] = [
    "married-civ-spouse",
    "never-married",
    "divorced",
    "separated",
    "widowed",
    "married-spouse-absent",
    "married-af-spouse",
];

/// Domain of the `relationship` attribute (6 values).
pub const RELATIONSHIP: [&str; 6] = [
    "husband",
    "not-in-family",
    "own-child",
    "unmarried",
    "wife",
    "other-relative",
];

/// Domain of the `race` attribute (5 values; the first carries ≈87% of the
/// mass — the skew §5.6 of the paper discusses).
pub const RACE: [&str; 5] = [
    "white",
    "black",
    "asian-pac-islander",
    "amer-indian-eskimo",
    "other",
];

/// Domain of the `gender` attribute (2 values).
pub const GENDER: [&str; 2] = ["male", "female"];

/// Number of native-country values (41, as in Table 3).
pub const N_COUNTRIES: usize = 41;

/// Income class labels (auxiliary; used only for undersampling).
pub const INCOME: [&str; 2] = ["<=50K", ">50K"];

/// Configuration for [`CensusGenerator`].
#[derive(Debug, Clone)]
pub struct CensusConfig {
    /// Raw rows to generate before undersampling (paper: 32 561).
    pub n_rows: usize,
    /// Master seed; every derived stream is deterministic in it.
    pub seed: u64,
}

impl Default for CensusConfig {
    fn default() -> Self {
        Self {
            n_rows: 32_561,
            seed: 0xada1_7000,
        }
    }
}

impl CensusConfig {
    /// Config with a given scale and seed (useful for fast tests).
    pub fn with_rows(n_rows: usize, seed: u64) -> Self {
        Self { n_rows, seed }
    }
}

/// Latent socio-economic profile: drives numeric means and tilts the
/// sensitive-attribute conditionals.
struct Profile {
    weight: f64,
    /// Means of the 8 numeric attributes.
    num_means: [f64; N_TASK_ATTRS],
    /// Standard deviations of the 8 numeric attributes.
    num_sds: [f64; N_TASK_ATTRS],
    /// P(male | profile).
    p_male: f64,
    /// Race conditional.
    race: [f64; 5],
    /// Marital conditional.
    marital: [f64; 7],
    /// P(native country = index 0 | profile).
    p_home_country: f64,
    /// Base log-odds of the >50K income class.
    income_bias: f64,
}

/// Six profiles spanning young workers to retirees. The absolute numbers
/// are loosely modeled on Adult's marginals; what matters downstream is
/// that profiles separate in N-space while carrying different S mixes.
fn profiles() -> Vec<Profile> {
    vec![
        // young service workers
        Profile {
            weight: 0.22,
            num_means: [27.0, 9.0, 11.5, 3.0, 300.0, 30.0, 38.0, 2.0],
            num_sds: [5.0, 1.5, 1.5, 1.2, 400.0, 60.0, 6.0, 0.8],
            p_male: 0.52,
            race: [0.82, 0.12, 0.03, 0.02, 0.01],
            marital: [0.18, 0.62, 0.09, 0.04, 0.01, 0.05, 0.01],
            p_home_country: 0.86,
            income_bias: -2.2,
        },
        // established professionals
        Profile {
            weight: 0.20,
            num_means: [44.0, 13.5, 16.5, 7.5, 3500.0, 120.0, 46.0, 3.2],
            num_sds: [7.0, 1.2, 1.2, 1.0, 2500.0, 150.0, 7.0, 0.7],
            p_male: 0.74,
            race: [0.88, 0.05, 0.05, 0.01, 0.01],
            marital: [0.70, 0.10, 0.12, 0.02, 0.02, 0.03, 0.01],
            p_home_country: 0.90,
            income_bias: 1.5,
        },
        // skilled trades
        Profile {
            weight: 0.21,
            num_means: [38.0, 10.0, 12.5, 5.0, 800.0, 70.0, 43.0, 1.5],
            num_sds: [8.0, 1.3, 1.3, 1.1, 800.0, 100.0, 5.0, 0.6],
            p_male: 0.85,
            race: [0.87, 0.08, 0.02, 0.02, 0.01],
            marital: [0.55, 0.22, 0.14, 0.04, 0.01, 0.03, 0.01],
            p_home_country: 0.92,
            income_bias: -0.4,
        },
        // clerical / administrative
        Profile {
            weight: 0.17,
            num_means: [36.0, 11.0, 13.5, 4.2, 500.0, 50.0, 37.0, 2.6],
            num_sds: [9.0, 1.2, 1.2, 1.0, 600.0, 90.0, 5.0, 0.7],
            p_male: 0.33,
            race: [0.86, 0.09, 0.03, 0.01, 0.01],
            marital: [0.38, 0.28, 0.20, 0.06, 0.03, 0.04, 0.01],
            p_home_country: 0.91,
            income_bias: -0.9,
        },
        // recent immigrants, mixed occupations
        Profile {
            weight: 0.10,
            num_means: [33.0, 9.5, 12.0, 3.8, 400.0, 45.0, 41.0, 1.8],
            num_sds: [8.0, 2.2, 2.0, 1.4, 500.0, 80.0, 8.0, 0.9],
            p_male: 0.62,
            race: [0.55, 0.14, 0.22, 0.03, 0.06],
            marital: [0.52, 0.28, 0.08, 0.05, 0.01, 0.05, 0.01],
            p_home_country: 0.42,
            income_bias: -1.4,
        },
        // older / retired
        Profile {
            weight: 0.10,
            num_means: [61.0, 10.5, 13.0, 4.5, 1800.0, 200.0, 28.0, 2.2],
            num_sds: [7.0, 2.0, 1.8, 1.5, 2000.0, 250.0, 10.0, 1.0],
            p_male: 0.55,
            race: [0.90, 0.06, 0.02, 0.01, 0.01],
            marital: [0.48, 0.05, 0.16, 0.03, 0.22, 0.05, 0.01],
            p_home_country: 0.93,
            income_bias: -0.8,
        },
    ]
}

/// Gender shift applied to each numeric attribute (added for male,
/// subtracted for female) — this is the "attributes in N could implicitly
/// encode gender" leakage from §3 of the paper.
const GENDER_SHIFT: [f64; N_TASK_ATTRS] = [0.8, 0.1, 0.1, 0.45, 420.0, 12.0, 2.6, 0.15];

/// Extra age shift per marital status (index-aligned with [`MARITAL`]).
const MARITAL_AGE_SHIFT: [f64; 7] = [4.0, -7.0, 3.0, 1.0, 14.0, 2.0, 0.0];

/// Decaying weights for the 40 non-home countries.
fn country_tail_weights() -> Vec<f64> {
    (0..N_COUNTRIES - 1)
        .map(|i| 1.0 / (1.0 + i as f64))
        .collect()
}

/// Deterministic generator of Adult-like datasets.
#[derive(Debug, Clone)]
pub struct CensusGenerator {
    config: CensusConfig,
}

impl CensusGenerator {
    /// New generator with the given config.
    pub fn new(config: CensusConfig) -> Self {
        Self { config }
    }

    /// Generator at the paper's scale (32 561 raw rows).
    pub fn paper_scale(seed: u64) -> Self {
        Self::new(CensusConfig {
            n_rows: 32_561,
            seed,
        })
    }

    /// Names of the sensitive attributes, in schema order.
    pub fn sensitive_names() -> [&'static str; 5] {
        [
            "marital_status",
            "relationship",
            "race",
            "gender",
            "native_country",
        ]
    }

    /// Generate the raw (pre-undersampling) dataset.
    pub fn generate(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let profiles = profiles();
        let profile_weights: Vec<f64> = profiles.iter().map(|p| p.weight).collect();
        let tail = country_tail_weights();

        let mut b = DatasetBuilder::new();
        for name in TASK_ATTRS {
            b.numeric(name, Role::NonSensitive).expect("static schema");
        }
        b.categorical("marital_status", Role::Sensitive, &MARITAL)
            .expect("static schema");
        b.categorical("relationship", Role::Sensitive, &RELATIONSHIP)
            .expect("static schema");
        b.categorical("race", Role::Sensitive, &RACE)
            .expect("static schema");
        b.categorical("gender", Role::Sensitive, &GENDER)
            .expect("static schema");
        let countries: Vec<String> = std::iter::once("united-states".to_string())
            .chain((1..N_COUNTRIES).map(|i| format!("country-{i:02}")))
            .collect();
        let country_refs: Vec<&str> = countries.iter().map(String::as_str).collect();
        b.categorical("native_country", Role::Sensitive, &country_refs)
            .expect("static schema");
        b.categorical("income", Role::Auxiliary, &INCOME)
            .expect("static schema");

        for _ in 0..self.config.n_rows {
            let p = &profiles[weighted_choice(&mut rng, &profile_weights)];

            let male = rng.gen::<f64>() < p.p_male;
            let race = weighted_choice(&mut rng, &p.race);
            let marital = weighted_choice(&mut rng, &p.marital);
            let relationship = sample_relationship(&mut rng, male, marital);
            let country = if rng.gen::<f64>() < p.p_home_country {
                0
            } else {
                1 + weighted_choice(&mut rng, &tail)
            };

            let gsign = if male { 1.0 } else { -1.0 };
            let mut nums = [0.0f64; N_TASK_ATTRS];
            for (a, num) in nums.iter_mut().enumerate() {
                let mut v = normal(&mut rng, p.num_means[a], p.num_sds[a]);
                v += gsign * GENDER_SHIFT[a];
                if a == 0 {
                    v += MARITAL_AGE_SHIFT[marital];
                    v = v.clamp(17.0, 90.0);
                }
                if a == 4 || a == 5 {
                    v = v.max(0.0); // capital gain/loss cannot be negative
                }
                *num = v;
            }

            // Income: logistic in profile bias + standardized-ish numerics.
            // The global −2.45 offset calibrates P(>50K) to ≈ 24%, the real
            // Adult class balance, so that income-parity undersampling cuts
            // 32 561 raw rows to ≈ 15.6k — the paper's 15 682 (§5.1).
            let score = p.income_bias - 2.45
                + 0.04 * (nums[0] - 38.0)
                + 0.25 * (nums[1] - 10.0)
                + 0.35 * (nums[3] - 4.5)
                + 0.0002 * nums[4]
                + 0.03 * (nums[6] - 40.0)
                + if male { 0.45 } else { -0.45 };
            let p_high = 1.0 / (1.0 + (-score).exp());
            let income = usize::from(rng.gen::<f64>() < p_high);

            let mut row: Vec<Value> = nums.iter().map(|&x| Value::Num(x)).collect();
            row.push(Value::CatIndex(marital as u32));
            row.push(Value::CatIndex(relationship as u32));
            row.push(Value::CatIndex(race as u32));
            row.push(Value::CatIndex(u32::from(!male)));
            row.push(Value::CatIndex(country as u32));
            row.push(Value::CatIndex(income as u32));
            b.push_row(row)
                .expect("generated row always matches schema");
        }
        b.build().expect("non-empty schema")
    }

    /// Generate and undersample to income-class parity — the §5.1
    /// preprocessing. At the paper scale this yields a dataset in the same
    /// size range as the paper's 15 682 rows.
    pub fn generate_balanced(&self) -> Dataset {
        let raw = self.generate();
        let (income_id, _) = raw
            .schema()
            .attr_by_name("income")
            .expect("schema has income");
        undersample_balanced(&raw, income_id, self.config.seed.wrapping_add(1))
            .expect("income is categorical")
    }

    /// Attribute id of the income class label in generated datasets.
    pub fn income_attr(dataset: &Dataset) -> AttrId {
        dataset
            .schema()
            .attr_by_name("income")
            .expect("generated datasets carry income")
            .0
    }
}

/// Relationship is driven by gender and marital status: married men are
/// overwhelmingly `husband`, married women `wife`, never-married skew
/// `own-child`/`not-in-family` — this is the cross-attribute correlation
/// structure that makes multi-attribute fairness non-trivial.
fn sample_relationship<R: Rng>(rng: &mut R, male: bool, marital: usize) -> usize {
    let married = matches!(marital, 0 | 6); // civ or af spouse present
    let weights: [f64; 6] = if married {
        if male {
            [0.91, 0.04, 0.01, 0.01, 0.0, 0.03]
        } else {
            [0.0, 0.05, 0.01, 0.03, 0.86, 0.05]
        }
    } else if marital == 1 {
        // never married
        [0.0, 0.42, 0.38, 0.14, 0.0, 0.06]
    } else {
        // previously married
        [0.0, 0.46, 0.06, 0.42, 0.0, 0.06]
    };
    weighted_choice(rng, &weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairkm_data::Normalization;

    fn small() -> Dataset {
        CensusGenerator::new(CensusConfig::with_rows(4000, 7)).generate()
    }

    #[test]
    fn schema_matches_table3() {
        let d = small();
        let s = d.sensitive_space().unwrap();
        let cards: Vec<usize> = s.categorical().iter().map(|c| c.cardinality()).collect();
        assert_eq!(cards, vec![7, 6, 5, 2, 41]);
        assert_eq!(s.numeric().len(), 0);
        let m = d.task_matrix(Normalization::ZScore).unwrap();
        assert_eq!(m.cols(), N_TASK_ATTRS);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = CensusGenerator::new(CensusConfig::with_rows(500, 3)).generate();
        let b = CensusGenerator::new(CensusConfig::with_rows(500, 3)).generate();
        let c = CensusGenerator::new(CensusConfig::with_rows(500, 4)).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn race_and_country_skews_match_papers_narrative() {
        let d = small();
        let s = d.sensitive_space().unwrap();
        let race = s.categorical().iter().find(|c| c.name() == "race").unwrap();
        assert!(
            race.dataset_dist()[0] > 0.80 && race.dataset_dist()[0] < 0.92,
            "white share = {}",
            race.dataset_dist()[0]
        );
        let country = s
            .categorical()
            .iter()
            .find(|c| c.name() == "native_country")
            .unwrap();
        assert!(
            country.dataset_dist()[0] > 0.80,
            "home-country share = {}",
            country.dataset_dist()[0]
        );
    }

    #[test]
    fn undersampling_balances_income() {
        let g = CensusGenerator::new(CensusConfig::with_rows(4000, 11));
        let balanced = g.generate_balanced();
        let id = CensusGenerator::income_attr(&balanced);
        let col = balanced.categorical_column(id).unwrap();
        let hi = col.iter().filter(|&&v| v == 1).count();
        assert_eq!(hi * 2, balanced.n_rows());
        assert!(balanced.n_rows() < 4000);
    }

    #[test]
    fn gender_leaks_into_numeric_attributes() {
        // Mean male vs female hours-per-week must differ noticeably — this
        // is the implicit encoding that makes blind clustering unfair.
        let d = small();
        let (gender_id, _) = d.schema().attr_by_name("gender").unwrap();
        let (hours_id, _) = d.schema().attr_by_name("hours_per_week").unwrap();
        let genders = d.categorical_column(gender_id).unwrap();
        let hours = d.numeric_column(hours_id).unwrap();
        let (mut m_sum, mut m_n, mut f_sum, mut f_n) = (0.0, 0usize, 0.0, 0usize);
        for (&g, &h) in genders.iter().zip(hours) {
            if g == 0 {
                m_sum += h;
                m_n += 1;
            } else {
                f_sum += h;
                f_n += 1;
            }
        }
        let gap = m_sum / m_n as f64 - f_sum / f_n as f64;
        assert!(gap > 2.0, "male-female hours gap = {gap}");
    }

    #[test]
    fn relationship_correlates_with_gender() {
        let d = small();
        let (rel_id, _) = d.schema().attr_by_name("relationship").unwrap();
        let (gender_id, _) = d.schema().attr_by_name("gender").unwrap();
        let rels = d.categorical_column(rel_id).unwrap();
        let genders = d.categorical_column(gender_id).unwrap();
        // every husband is male, every wife female
        for (&r, &g) in rels.iter().zip(genders) {
            if r == 0 {
                assert_eq!(g, 0, "husband must be male");
            }
            if r == 4 {
                assert_eq!(g, 1, "wife must be female");
            }
        }
    }

    #[test]
    fn numeric_attributes_are_finite_and_plausible() {
        let d = small();
        let (age_id, _) = d.schema().attr_by_name("age").unwrap();
        for &age in d.numeric_column(age_id).unwrap() {
            assert!((17.0..=90.0).contains(&age));
        }
        let (gain_id, _) = d.schema().attr_by_name("capital_gain").unwrap();
        for &g in d.numeric_column(gain_id).unwrap() {
            assert!(g >= 0.0 && g.is_finite());
        }
    }
}
