//! Kinematics word-problem workload (the paper's second dataset).
//!
//! The paper clusters 161 kinematics word problems into questionnaires such
//! that each questionnaire carries a fair mix of the five problem types of
//! Table 2 (counts 60/36/15/31/19, Table 4). Each problem is represented by
//! a 100-dimensional document embedding (Doc2Vec in the paper; our
//! [`crate::embed::DocEmbedder`] here — see DESIGN.md §4), and the five
//! types become five **binary** sensitive attributes.
//!
//! This module generates the problems themselves: parameterized natural-
//! language templates per type, with type-specific vocabulary (highways and
//! trains for horizontal motion, cliffs and wells for free fall, angles and
//! ranges for two-dimensional projectiles, …) so that the embedding space
//! implicitly encodes the problem type — which is what makes type-blind
//! clustering produce skewed questionnaires.

use crate::embed::{DocEmbedder, EmbedderConfig};
use fairkm_data::{Dataset, DatasetBuilder, Role, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The five kinematics problem types (Table 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProblemType {
    /// Object in straight-line horizontal motion.
    HorizontalMotion,
    /// Object thrown straight up or down with an initial velocity.
    VerticalWithInitialVelocity,
    /// Object in free fall.
    FreeFall,
    /// Object projected horizontally from a height.
    HorizontallyProjected,
    /// Object projected at an angle to the horizontal.
    TwoDimensional,
}

impl ProblemType {
    /// All five types, in Table 2 order.
    pub const ALL: [ProblemType; 5] = [
        ProblemType::HorizontalMotion,
        ProblemType::VerticalWithInitialVelocity,
        ProblemType::FreeFall,
        ProblemType::HorizontallyProjected,
        ProblemType::TwoDimensional,
    ];

    /// 0-based index in Table 2 order.
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&t| t == self).expect("in ALL")
    }

    /// Sensitive-attribute name used in the generated schema
    /// (`type1` … `type5`).
    pub fn attr_name(self) -> &'static str {
        ["type1", "type2", "type3", "type4", "type5"][self.index()]
    }

    /// Table 2 description.
    pub fn description(self) -> &'static str {
        match self {
            ProblemType::HorizontalMotion => {
                "The object involved is in a horizontal straight line motion."
            }
            ProblemType::VerticalWithInitialVelocity => {
                "The object is thrown straight up or down with a velocity."
            }
            ProblemType::FreeFall => "The object is in a free fall.",
            ProblemType::HorizontallyProjected => {
                "The object is projected horizontally from a height."
            }
            ProblemType::TwoDimensional => {
                "The body is projected with a velocity at an angle to the horizontal."
            }
        }
    }
}

/// One generated word problem.
#[derive(Debug, Clone, PartialEq)]
pub struct Problem {
    /// Its type (the sensitive information).
    pub problem_type: ProblemType,
    /// Surface text.
    pub text: String,
}

/// Configuration for [`KinematicsGenerator`].
#[derive(Debug, Clone)]
pub struct KinematicsConfig {
    /// Problems per type, Table 4 order. Paper: `[60, 36, 15, 31, 19]`.
    pub counts: [usize; 5],
    /// Master seed.
    pub seed: u64,
    /// Embedding substrate configuration (dim 100 to match the paper).
    pub embedder: EmbedderConfig,
    /// Standard deviation of iid Gaussian noise added to each embedding
    /// (total noise norm ≈ this value, spread over all dimensions).
    ///
    /// Doc2Vec trained on only 161 documents is very noisy: the paper's
    /// type-blind K-Means scores a silhouette of just 0.039 (Table 7) while
    /// still being type-skewed (Table 8). A clean bag-of-words projection
    /// is far too separable; this noise floor restores the paper's
    /// geometry (weak but present type signal). Calibrated so the blind
    /// baseline reproduces Table 7/8's SH ≈ 0.04 and mean AE ≈ 0.17.
    pub noise: f64,
}

impl Default for KinematicsConfig {
    fn default() -> Self {
        Self {
            counts: [60, 36, 15, 31, 19],
            seed: 0x14ea_17e5,
            embedder: EmbedderConfig::default(),
            noise: 1.0,
        }
    }
}

/// The generated corpus: the clustering dataset plus the raw problems (for
/// inspection and the questionnaire example).
#[derive(Debug, Clone)]
pub struct KinematicsCorpus {
    /// Dataset: 100 numeric N attributes (`emb_*`) + 5 binary S attributes
    /// (`type1` … `type5`).
    pub dataset: Dataset,
    /// The problems, row-aligned with `dataset`.
    pub problems: Vec<Problem>,
}

/// Deterministic generator of kinematics word-problem corpora.
#[derive(Debug, Clone)]
pub struct KinematicsGenerator {
    config: KinematicsConfig,
}

impl KinematicsGenerator {
    /// New generator with the given config.
    pub fn new(config: KinematicsConfig) -> Self {
        Self { config }
    }

    /// Generator with the paper's 161-problem layout and a given seed.
    pub fn paper_scale(seed: u64) -> Self {
        Self::new(KinematicsConfig {
            seed,
            ..Default::default()
        })
    }

    /// Generate the corpus. Rows are interleaved across types (not grouped)
    /// so that row order carries no type signal.
    pub fn generate(&self) -> KinematicsCorpus {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let embedder = DocEmbedder::new(&self.config.embedder);

        let mut problems: Vec<Problem> = Vec::new();
        for (ti, &count) in self.config.counts.iter().enumerate() {
            let ptype = ProblemType::ALL[ti];
            for _ in 0..count {
                problems.push(Problem {
                    problem_type: ptype,
                    text: render(ptype, &mut rng),
                });
            }
        }
        // Deterministic interleave: sort by a seeded shuffle key.
        let mut order: Vec<usize> = (0..problems.len()).collect();
        let mut keys: Vec<u64> = (0..problems.len()).map(|_| rng.gen()).collect();
        order.sort_by_key(|&i| keys[i]);
        keys.clear();
        let problems: Vec<Problem> = order.into_iter().map(|i| problems[i].clone()).collect();

        let dim = embedder.dim();
        let mut b = DatasetBuilder::new();
        for d in 0..dim {
            b.numeric(&format!("emb_{d:03}"), Role::NonSensitive)
                .expect("static schema");
        }
        for t in ProblemType::ALL {
            b.binary(t.attr_name(), Role::Sensitive)
                .expect("static schema");
        }
        let noise_sd = self.config.noise / (dim as f64).sqrt();
        for p in &problems {
            let mut row: Vec<Value> = embedder
                .embed(&p.text)
                .into_iter()
                .map(|v| Value::Num(v + crate::sampling::normal(&mut rng, 0.0, noise_sd)))
                .collect();
            for t in ProblemType::ALL {
                row.push(Value::CatIndex(u32::from(t == p.problem_type)));
            }
            b.push_row(row).expect("generated row matches schema");
        }
        KinematicsCorpus {
            dataset: b.build().expect("non-empty schema"),
            problems,
        }
    }
}

const VEHICLES: [&str; 6] = ["car", "train", "cyclist", "truck", "runner", "motorbike"];
const THROWN: [&str; 5] = ["ball", "stone", "cricket ball", "coin", "tennis ball"];
const HIGH_PLACES: [&str; 5] = ["cliff", "tower", "bridge", "rooftop", "balcony"];
const DROPPED: [&str; 5] = ["stone", "hammer", "apple", "brick", "marble"];
const PROJECTILES: [&str; 5] = ["cannonball", "arrow", "golf ball", "javelin", "football"];

fn pick<'a, R: Rng>(rng: &mut R, options: &[&'a str]) -> &'a str {
    options[rng.gen_range(0..options.len())]
}

/// Render one problem of the given type with randomized parameters and one
/// of several per-type phrasings.
fn render<R: Rng>(ptype: ProblemType, rng: &mut R) -> String {
    match ptype {
        ProblemType::HorizontalMotion => {
            let v = rng.gen_range(5..40);
            let t = rng.gen_range(4..60);
            let a = rng.gen_range(1..5);
            let subject = pick(rng, &VEHICLES);
            match rng.gen_range(0..4) {
                0 => format!(
                    "A {subject} moves along a straight level highway at a constant speed of \
                     {v} metres per second. How far does it travel in {t} seconds?"
                ),
                1 => format!(
                    "A {subject} starts from rest on a straight horizontal track and \
                     accelerates uniformly at {a} metres per second squared. What is its \
                     velocity after {t} seconds?"
                ),
                2 => format!(
                    "A {subject} travelling on a flat straight road at {v} metres per second \
                     brakes uniformly and stops in {t} seconds. Find the deceleration and the \
                     stopping distance."
                ),
                _ => format!(
                    "Two {subject}s leave the same point on a straight level road, one at \
                     {v} metres per second and the other {a} metres per second faster. \
                     How far apart are they after {t} seconds?"
                ),
            }
        }
        ProblemType::VerticalWithInitialVelocity => {
            let v = rng.gen_range(5..35);
            let obj = pick(rng, &THROWN);
            match rng.gen_range(0..4) {
                0 => format!(
                    "A {obj} is thrown vertically upward with an initial velocity of {v} \
                     metres per second. How high does it rise before coming momentarily to rest?"
                ),
                1 => format!(
                    "A {obj} is thrown straight up at {v} metres per second. How long does it \
                     take to return to the thrower's hand?"
                ),
                2 => format!(
                    "A {obj} is hurled vertically downward from a window with initial speed \
                     {v} metres per second. What is its velocity after falling for two seconds?"
                ),
                _ => format!(
                    "With what upward velocity must a {obj} be thrown so that it reaches a \
                     maximum height of {v} metres?"
                ),
            }
        }
        ProblemType::FreeFall => {
            let h = rng.gen_range(10..180);
            let t = rng.gen_range(1..7);
            let obj = pick(rng, &DROPPED);
            let place = pick(rng, &HIGH_PLACES);
            match rng.gen_range(0..3) {
                0 => format!(
                    "A {obj} is dropped from rest from the top of a {place} {h} metres high \
                     and falls freely under gravity. How long does it take to reach the ground?"
                ),
                1 => format!(
                    "A {obj} is released from rest and falls freely. What distance does it \
                     fall during the first {t} seconds?"
                ),
                _ => format!(
                    "A {obj} falls freely from rest down a deep well and hits the water after \
                     {t} seconds. How deep is the well?"
                ),
            }
        }
        ProblemType::HorizontallyProjected => {
            let v = rng.gen_range(4..30);
            let h = rng.gen_range(20..150);
            let obj = pick(rng, &THROWN);
            let place = pick(rng, &HIGH_PLACES);
            match rng.gen_range(0..3) {
                0 => format!(
                    "A {obj} is thrown horizontally at {v} metres per second from the top of \
                     a {place} {h} metres high. How far from the base does it land?"
                ),
                1 => format!(
                    "A {obj} rolls off the edge of a horizontal {place} ledge {h} metres \
                     above the ground with speed {v} metres per second. Find the time of \
                     flight and the horizontal range."
                ),
                _ => format!(
                    "An aeroplane flying horizontally at {v} metres per second releases a \
                     {obj} from a height of {h} metres. How far ahead of the release point \
                     does it strike the ground?"
                ),
            }
        }
        ProblemType::TwoDimensional => {
            let v = rng.gen_range(10..60);
            let angle = [15, 30, 37, 45, 53, 60, 75][rng.gen_range(0..7usize)];
            let obj = pick(rng, &PROJECTILES);
            match rng.gen_range(0..3) {
                0 => format!(
                    "A {obj} is projected with a velocity of {v} metres per second at an \
                     angle of {angle} degrees to the horizontal. Find the maximum height \
                     reached and the horizontal range."
                ),
                1 => format!(
                    "A {obj} is launched at {angle} degrees above the horizontal with speed \
                     {v} metres per second. How long is it in the air?"
                ),
                _ => format!(
                    "At what projection angle will a {obj} fired at {v} metres per second \
                     achieve its maximum range, and what is that range? Consider an angle of \
                     {angle} degrees for comparison."
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairkm_data::Normalization;

    #[test]
    fn paper_scale_layout() {
        let c = KinematicsGenerator::paper_scale(5).generate();
        assert_eq!(c.dataset.n_rows(), 161);
        assert_eq!(c.problems.len(), 161);
        let s = c.dataset.sensitive_space().unwrap();
        assert_eq!(s.categorical().len(), 5);
        assert!(s.categorical().iter().all(|a| a.cardinality() == 2));
        let m = c.dataset.task_matrix(Normalization::None).unwrap();
        assert_eq!(m.cols(), 100);
    }

    #[test]
    fn type_counts_match_table4() {
        let c = KinematicsGenerator::paper_scale(5).generate();
        let mut counts = [0usize; 5];
        for p in &c.problems {
            counts[p.problem_type.index()] += 1;
        }
        assert_eq!(counts, [60, 36, 15, 31, 19]);
    }

    #[test]
    fn binary_attrs_are_one_hot_of_type() {
        let c = KinematicsGenerator::paper_scale(9).generate();
        let s = c.dataset.sensitive_space().unwrap();
        for (row, p) in c.problems.iter().enumerate() {
            for (ti, attr) in s.categorical().iter().enumerate() {
                let expected = u32::from(ti == p.problem_type.index());
                assert_eq!(attr.value(row), expected);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = KinematicsGenerator::paper_scale(3).generate();
        let b = KinematicsGenerator::paper_scale(3).generate();
        assert_eq!(a.dataset, b.dataset);
        assert_eq!(a.problems, b.problems);
    }

    #[test]
    fn rows_are_interleaved_across_types() {
        // The first 60 rows must not all be type 1.
        let c = KinematicsGenerator::paper_scale(4).generate();
        let first: Vec<usize> = c.problems[..30]
            .iter()
            .map(|p| p.problem_type.index())
            .collect();
        assert!(first.iter().any(|&t| t != first[0]));
    }

    #[test]
    fn embeddings_separate_types_better_than_chance() {
        // Mean within-type distance must be below mean cross-type distance:
        // the type is implicitly encoded in N, as required by §3.
        let c = KinematicsGenerator::paper_scale(6).generate();
        let m = c.dataset.task_matrix(Normalization::None).unwrap();
        let d2 =
            |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum() };
        let (mut within, mut wn, mut cross, mut cn) = (0.0, 0usize, 0.0, 0usize);
        for i in 0..c.problems.len() {
            for j in (i + 1)..c.problems.len() {
                let dist = d2(m.row(i), m.row(j));
                if c.problems[i].problem_type == c.problems[j].problem_type {
                    within += dist;
                    wn += 1;
                } else {
                    cross += dist;
                    cn += 1;
                }
            }
        }
        assert!(within / (wn as f64) < cross / (cn as f64));
    }

    #[test]
    fn custom_counts_respected() {
        let c = KinematicsGenerator::new(KinematicsConfig {
            counts: [3, 1, 2, 0, 4],
            seed: 1,
            embedder: EmbedderConfig {
                buckets: 64,
                dim: 10,
                seed: 1,
            },
            noise: 0.5,
        })
        .generate();
        assert_eq!(c.dataset.n_rows(), 10);
        let m = c.dataset.task_matrix(Normalization::None).unwrap();
        assert_eq!(m.cols(), 10);
    }

    #[test]
    fn descriptions_exist_for_all_types() {
        for t in ProblemType::ALL {
            assert!(!t.description().is_empty());
            assert_eq!(ProblemType::ALL[t.index()], t);
        }
    }
}
