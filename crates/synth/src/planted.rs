//! Planted-structure generator: Gaussian blobs with sensitive attributes
//! aligned (to a controllable degree) with blob identity.
//!
//! This is the controlled workload used by tests and by the scaling /
//! ablation benches (the paper's §6.1 future-work study of "performance
//! trends with increasing number of sensitive attributes as well as
//! increasing number of values per sensitive attribute"). With
//! `alignment = 1.0` each blob is demographically homogeneous — the worst
//! case for a sensitive-blind clustering and therefore the cleanest setting
//! in which a fair method must show its value.

use crate::sampling::{normal, weighted_choice};
use fairkm_data::{Dataset, DatasetBuilder, Role, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`PlantedGenerator`].
#[derive(Debug, Clone)]
pub struct PlantedConfig {
    /// Number of rows.
    pub n_rows: usize,
    /// Number of Gaussian blobs (the "true" clusters).
    pub n_blobs: usize,
    /// Dimension of the numeric task space.
    pub dim: usize,
    /// Number of categorical sensitive attributes.
    pub n_sensitive_attrs: usize,
    /// Domain cardinality of every sensitive attribute.
    pub cardinality: usize,
    /// Probability that a row's sensitive value equals
    /// `blob_index mod cardinality` instead of a uniform draw. `1.0` plants
    /// maximal unfairness for blind clustering; `0.0` makes every blob
    /// demographically balanced already.
    pub alignment: f64,
    /// Distance scale between blob centers.
    pub separation: f64,
    /// Within-blob standard deviation.
    pub spread: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for PlantedConfig {
    fn default() -> Self {
        Self {
            n_rows: 600,
            n_blobs: 4,
            dim: 6,
            n_sensitive_attrs: 2,
            cardinality: 3,
            alignment: 0.9,
            separation: 12.0,
            spread: 1.0,
            seed: 0x9a_b10b,
        }
    }
}

/// Output of [`PlantedGenerator::generate`].
#[derive(Debug, Clone)]
pub struct PlantedData {
    /// Dataset: `dim` numeric N attributes `x_*` and `n_sensitive_attrs`
    /// categorical S attributes `s_*`.
    pub dataset: Dataset,
    /// Ground-truth blob index per row.
    pub blob_of: Vec<usize>,
}

/// Deterministic planted-blob generator.
#[derive(Debug, Clone)]
pub struct PlantedGenerator {
    config: PlantedConfig,
}

impl PlantedGenerator {
    /// New generator with the given config.
    pub fn new(config: PlantedConfig) -> Self {
        assert!(config.n_blobs > 0 && config.dim > 0, "degenerate config");
        assert!(
            config.cardinality >= 2,
            "sensitive attributes need >= 2 values"
        );
        assert!(
            (0.0..=1.0).contains(&config.alignment),
            "alignment is a probability"
        );
        Self { config }
    }

    /// Generate the dataset plus ground-truth blob labels.
    pub fn generate(&self) -> PlantedData {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Blob centers: vertices of a random simplex-ish cloud.
        let centers: Vec<Vec<f64>> = (0..cfg.n_blobs)
            .map(|_| {
                (0..cfg.dim)
                    .map(|_| normal(&mut rng, 0.0, cfg.separation))
                    .collect()
            })
            .collect();
        let blob_weights = vec![1.0; cfg.n_blobs];

        let mut b = DatasetBuilder::new();
        for d in 0..cfg.dim {
            b.numeric(&format!("x_{d}"), Role::NonSensitive)
                .expect("static schema");
        }
        let value_labels: Vec<String> = (0..cfg.cardinality).map(|v| format!("v{v}")).collect();
        let value_refs: Vec<&str> = value_labels.iter().map(String::as_str).collect();
        for a in 0..cfg.n_sensitive_attrs {
            b.categorical(&format!("s_{a}"), Role::Sensitive, &value_refs)
                .expect("static schema");
        }

        let mut blob_of = Vec::with_capacity(cfg.n_rows);
        for _ in 0..cfg.n_rows {
            let blob = weighted_choice(&mut rng, &blob_weights);
            blob_of.push(blob);
            let mut row: Vec<Value> = centers[blob]
                .iter()
                .map(|&c| Value::Num(normal(&mut rng, c, cfg.spread)))
                .collect();
            for _ in 0..cfg.n_sensitive_attrs {
                let v = if rng.gen::<f64>() < cfg.alignment {
                    blob % cfg.cardinality
                } else {
                    rng.gen_range(0..cfg.cardinality)
                };
                row.push(Value::CatIndex(v as u32));
            }
            b.push_row(row).expect("generated row matches schema");
        }
        PlantedData {
            dataset: b.build().expect("non-empty schema"),
            blob_of,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_config() {
        let d = PlantedGenerator::new(PlantedConfig {
            n_rows: 50,
            n_blobs: 3,
            dim: 4,
            n_sensitive_attrs: 3,
            cardinality: 5,
            ..Default::default()
        })
        .generate();
        assert_eq!(d.dataset.n_rows(), 50);
        assert_eq!(d.blob_of.len(), 50);
        let s = d.dataset.sensitive_space().unwrap();
        assert_eq!(s.categorical().len(), 3);
        assert!(s.categorical().iter().all(|c| c.cardinality() == 5));
    }

    #[test]
    fn full_alignment_makes_blobs_homogeneous() {
        let d = PlantedGenerator::new(PlantedConfig {
            alignment: 1.0,
            ..Default::default()
        })
        .generate();
        let s = d.dataset.sensitive_space().unwrap();
        let attr = &s.categorical()[0];
        for (row, &blob) in d.blob_of.iter().enumerate() {
            assert_eq!(attr.value(row) as usize, blob % 3);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = PlantedGenerator::new(PlantedConfig::default()).generate();
        let b = PlantedGenerator::new(PlantedConfig::default()).generate();
        assert_eq!(a.dataset, b.dataset);
        assert_eq!(a.blob_of, b.blob_of);
    }

    #[test]
    fn blobs_are_separated_in_task_space() {
        let d = PlantedGenerator::new(PlantedConfig::default()).generate();
        let m = d
            .dataset
            .task_matrix(fairkm_data::Normalization::None)
            .unwrap();
        // Mean within-blob distance far below mean cross-blob distance.
        let d2 =
            |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum() };
        let (mut within, mut wn, mut cross, mut cn) = (0.0, 0usize, 0.0, 0usize);
        for i in 0..d.dataset.n_rows() {
            for j in (i + 1)..d.dataset.n_rows() {
                let dist = d2(m.row(i), m.row(j));
                if d.blob_of[i] == d.blob_of[j] {
                    within += dist;
                    wn += 1;
                } else {
                    cross += dist;
                    cn += 1;
                }
            }
        }
        assert!(within / (wn as f64) * 5.0 < cross / (cn as f64));
    }
}
