//! Document embedding substrate — the Doc2Vec stand-in.
//!
//! The paper represents each kinematics word problem as a 100-dimensional
//! Doc2Vec vector (§5.1). Training a paragraph-vector model is outside the
//! scope of a clustering reproduction; what the experiments actually need
//! is an embedding where *lexical content (and hence problem type) is
//! implicitly encoded in the numeric space*, so that a sensitive-blind
//! clustering comes out type-skewed. A hashed bag-of-words followed by a
//! seeded Gaussian random projection provides exactly that property
//! (Johnson–Lindenstrauss: inner products of the sparse BoW vectors are
//! approximately preserved), deterministically and with zero training.
//!
//! Pipeline: [`tokenize`] → FNV-1a hash into `buckets` counts → ℓ₂
//! normalize → dense `buckets × dim` Gaussian projection → final vector.

use crate::sampling::standard_normal;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for [`DocEmbedder`].
#[derive(Debug, Clone)]
pub struct EmbedderConfig {
    /// Number of hash buckets for the bag-of-words layer.
    pub buckets: usize,
    /// Output embedding dimension (the paper uses 100).
    pub dim: usize,
    /// Seed for the Gaussian projection matrix.
    pub seed: u64,
}

impl Default for EmbedderConfig {
    fn default() -> Self {
        Self {
            buckets: 512,
            dim: 100,
            seed: 0x00c2_7e4e,
        }
    }
}

/// Deterministic document embedder (hashed BoW + random projection).
#[derive(Debug, Clone)]
pub struct DocEmbedder {
    buckets: usize,
    dim: usize,
    /// Row-major `buckets x dim` projection matrix.
    projection: Vec<f64>,
}

impl DocEmbedder {
    /// Build the embedder; the projection matrix is fully determined by
    /// the config.
    pub fn new(config: &EmbedderConfig) -> Self {
        assert!(config.buckets > 0 && config.dim > 0, "degenerate embedder");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let scale = 1.0 / (config.dim as f64).sqrt();
        let projection = (0..config.buckets * config.dim)
            .map(|_| standard_normal(&mut rng) * scale)
            .collect();
        Self {
            buckets: config.buckets,
            dim: config.dim,
            projection,
        }
    }

    /// Output dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Embed a document into a `dim`-length vector. The empty document maps
    /// to the zero vector.
    pub fn embed(&self, text: &str) -> Vec<f64> {
        let mut counts = vec![0.0f64; self.buckets];
        let mut any = false;
        for token in tokenize(text) {
            let bucket = (fnv1a(token.as_bytes()) % self.buckets as u64) as usize;
            counts[bucket] += 1.0;
            any = true;
        }
        let mut out = vec![0.0f64; self.dim];
        if !any {
            return out;
        }
        let norm = counts.iter().map(|c| c * c).sum::<f64>().sqrt();
        let inv = 1.0 / norm;
        for (bucket, &c) in counts.iter().enumerate() {
            if c == 0.0 {
                continue;
            }
            let w = c * inv;
            let row = &self.projection[bucket * self.dim..(bucket + 1) * self.dim];
            for (o, p) in out.iter_mut().zip(row) {
                *o += w * p;
            }
        }
        out
    }
}

/// Lowercased alphanumeric tokenization; everything else separates tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            tokens.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

/// FNV-1a 64-bit hash — tiny, fast, good-enough dispersion for bucketing.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_splits_and_lowercases() {
        assert_eq!(
            tokenize("A ball, thrown at 9.8 m/s!"),
            vec!["a", "ball", "thrown", "at", "9", "8", "m", "s"]
        );
        assert!(tokenize("...").is_empty());
    }

    #[test]
    fn embedding_is_deterministic() {
        let e1 = DocEmbedder::new(&EmbedderConfig::default());
        let e2 = DocEmbedder::new(&EmbedderConfig::default());
        assert_eq!(e1.embed("a ball falls"), e2.embed("a ball falls"));
    }

    #[test]
    fn different_seeds_give_different_projections() {
        let a = DocEmbedder::new(&EmbedderConfig {
            seed: 1,
            ..Default::default()
        });
        let b = DocEmbedder::new(&EmbedderConfig {
            seed: 2,
            ..Default::default()
        });
        assert_ne!(a.embed("a ball falls"), b.embed("a ball falls"));
    }

    #[test]
    fn empty_document_is_zero_vector() {
        let e = DocEmbedder::new(&EmbedderConfig::default());
        assert!(e.embed("!!!").iter().all(|&x| x == 0.0));
    }

    #[test]
    fn similar_documents_are_closer_than_dissimilar() {
        let e = DocEmbedder::new(&EmbedderConfig::default());
        let a = e.embed("a car drives along a straight flat highway at constant speed");
        let b = e.embed("a truck drives along a straight flat highway at constant speed");
        let c = e.embed("a stone is dropped from a tall cliff and falls freely under gravity");
        let d2 =
            |x: &[f64], y: &[f64]| -> f64 { x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum() };
        assert!(d2(&a, &b) < d2(&a, &c));
    }

    #[test]
    fn word_order_does_not_matter_for_bow() {
        let e = DocEmbedder::new(&EmbedderConfig::default());
        assert_eq!(e.embed("ball red falls"), e.embed("falls red ball"));
    }

    #[test]
    fn dimension_matches_config() {
        let e = DocEmbedder::new(&EmbedderConfig {
            buckets: 64,
            dim: 17,
            seed: 3,
        });
        assert_eq!(e.embed("hello world").len(), 17);
    }
}
