//! # fairkm-sim — deterministic discrete-event message-passing simulation
//!
//! A minimal dslab-mp-style harness for testing distributed protocols
//! under injected faults, built for the `fairkm-shard` coordinator/shard
//! protocol but fully generic: nodes implement [`SimNode`] over an
//! arbitrary message type, and the simulation drives them through a
//! virtual clock, a totally ordered event queue, and a seeded PRNG.
//!
//! ## Determinism
//!
//! Every run is a pure function of `(node logic, posted workload, fault
//! schedule, seed)`:
//!
//! * The virtual clock is a `u64`; every event carries a `(time, seq)`
//!   key where `seq` is a global creation counter, so the heap pops in a
//!   unique total order — there are no ties to break nondeterministically.
//! * Message delays are sampled from a seeded [`rand::rngs::StdRng`] in
//!   the order messages are sent, which is itself deterministic.
//! * Wall-clock time, OS scheduling, and real I/O never enter the loop.
//!
//! ## Fault model
//!
//! [`FaultSchedule`] injects network faults and **storage faults**, all
//! deterministic:
//!
//! * **Bounded random delay** (`max_extra_delay`): each message's latency
//!   is `1 + U[0, max_extra_delay]` virtual ticks. Unequal delays reorder
//!   messages between the same pair of nodes — there are no FIFO links.
//! * **Node lag** (`lag`): a per-node latency multiplier; messages to or
//!   from a lagging node are slowed by that factor (a "slow shard").
//! * **Crash** (`crashes`): at the scheduled tick the node loses its
//!   in-memory state AND its storage backend crashes — unsynced appends
//!   vanish, armed bit flips land. Messages addressed to a down node are
//!   **dropped at delivery time**; in-flight messages it already sent
//!   still arrive.
//! * **Restart** (`restarts`): the node is rebuilt by the recovery
//!   factory from its durable state — the snapshot blob saved via
//!   [`Ctx::save`] and/or its [`SharedMemBackend`] storage — and told via
//!   [`SimNode::on_restart`], from where it can run the protocol's
//!   resynchronization handshake.
//! * **Storage faults** (`storage`): each node owns a fault-injecting
//!   [`SharedMemBackend`]; [`FaultSchedule::with_torn_write`] tears the
//!   n-th mutating storage operation mid-payload and
//!   [`FaultSchedule::with_bit_flip`] corrupts a durable byte at the next
//!   crash — composing disk-level faults with reorder, lag, and crash
//!   schedules in one deterministic run.
//!
//! **Checkpoints** (`checkpoints`) are scheduled prompts to persist: the
//! node's [`SimNode::on_checkpoint`] typically serializes its state via
//! [`Ctx::save`] into the simulated durable store, bounding how much a
//! later restart has to recover through the protocol.
//!
//! A protocol "survives" a schedule when [`Simulation::run_until_quiescent`]
//! drains the queue and the surviving nodes' states satisfy the test's
//! invariants — for `fairkm-shard`, bitwise equality with a single-node
//! run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

pub use fairkm_store::{BitFlip, FaultPlan, SharedMemBackend, TornWrite};

/// Index of a node in the simulation (dense, `0..n_nodes`).
pub type NodeId = usize;

/// Sender id for messages injected from outside the simulation via
/// [`Simulation::post`] — the "client" of the protocol under test.
pub const EXTERNAL: NodeId = usize::MAX;

/// A protocol participant. Handlers run atomically at a virtual instant:
/// they mutate local state and stage sends/saves on the [`Ctx`]; the
/// simulation commits those effects when the handler returns.
pub trait SimNode<M> {
    /// Deliver one message. `from` is [`EXTERNAL`] for posted workload.
    fn on_message(&mut self, from: NodeId, msg: M, ctx: &mut Ctx<M>);

    /// Called after the node was rebuilt from its durable snapshot
    /// following a crash — the hook for resynchronization handshakes.
    fn on_restart(&mut self, ctx: &mut Ctx<M>) {
        let _ = ctx;
    }

    /// Scheduled prompt to persist state (typically via [`Ctx::save`]).
    fn on_checkpoint(&mut self, ctx: &mut Ctx<M>) {
        let _ = ctx;
    }
}

/// Handler-side effects: staged sends and a staged durable write, plus
/// read access to the virtual clock. Committed by the simulation after the
/// handler returns — a handler that panics commits nothing.
#[derive(Debug)]
pub struct Ctx<M> {
    node: NodeId,
    time: u64,
    out: Vec<(NodeId, M)>,
    saved: Option<Vec<u8>>,
}

impl<M> Ctx<M> {
    fn new(node: NodeId, time: u64) -> Self {
        Self {
            node,
            time,
            out: Vec::new(),
            saved: None,
        }
    }

    /// This node's id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current virtual time.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Stage a message to `to`; the simulation samples its delay and
    /// enqueues it when the handler returns.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.out.push((to, msg));
    }

    /// Stage a durable snapshot of this node; overwrites the previous one
    /// when the handler returns. Survives crashes — the recovery factory
    /// receives the latest saved bytes.
    pub fn save(&mut self, bytes: Vec<u8>) {
        self.saved = Some(bytes);
    }
}

/// Deterministic fault schedule (see the [module docs](self)).
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    /// Upper bound of the uniform extra per-message delay (0 = every
    /// message takes exactly one tick, so delivery is send-ordered).
    pub max_extra_delay: u64,
    /// Per-node latency multipliers `(node, factor)`; a message's delay is
    /// scaled by the larger factor of its two endpoints.
    pub lag: Vec<(NodeId, u64)>,
    /// Crash instants `(time, node)`.
    pub crashes: Vec<(u64, NodeId)>,
    /// Restart instants `(time, node)` — rebuild from the durable store.
    pub restarts: Vec<(u64, NodeId)>,
    /// Checkpoint prompts `(time, node)`.
    pub checkpoints: Vec<(u64, NodeId)>,
    /// Per-node storage fault plans, armed on the node's
    /// [`SharedMemBackend`] at simulation start.
    pub storage: Vec<(NodeId, FaultPlan)>,
}

impl FaultSchedule {
    /// No faults: unit delays, no lag, no crashes.
    pub fn none() -> Self {
        Self::default()
    }

    /// Builder: bound the uniform extra per-message delay (enables
    /// reordering as soon as it is ≥ 1).
    pub fn with_max_extra_delay(mut self, ticks: u64) -> Self {
        self.max_extra_delay = ticks;
        self
    }

    /// Builder: multiply all latencies touching `node` by `factor`.
    pub fn with_lag(mut self, node: NodeId, factor: u64) -> Self {
        assert!(factor >= 1, "lag factor must be >= 1");
        self.lag.push((node, factor));
        self
    }

    /// Builder: crash `node` at `at` and restart it at `restart_at`.
    pub fn with_crash(mut self, node: NodeId, at: u64, restart_at: u64) -> Self {
        assert!(restart_at > at, "restart must come after the crash");
        self.crashes.push((at, node));
        self.restarts.push((restart_at, node));
        self
    }

    /// Builder: prompt `node` to persist a snapshot at `at`.
    pub fn with_checkpoint(mut self, node: NodeId, at: u64) -> Self {
        self.checkpoints.push((at, node));
        self
    }

    /// Builder: tear `node`'s `at_op`-th mutating storage operation
    /// (1-based, counted from simulation start), keeping only the first
    /// `keep` bytes of its payload. The backend then reports crashed
    /// until the node's next scheduled crash/restart.
    pub fn with_torn_write(mut self, node: NodeId, at_op: u64, keep: usize) -> Self {
        self.plan_for(node).torn = Some(TornWrite { at_op, keep });
        self
    }

    /// Builder: flip bit `bit` of byte `offset` in `node`'s durable file
    /// `file` at the node's next crash (no-op if the file or offset does
    /// not survive).
    pub fn with_bit_flip(mut self, node: NodeId, file: &str, offset: usize, bit: u8) -> Self {
        self.plan_for(node).flips.push(BitFlip {
            file: file.to_string(),
            offset,
            bit,
        });
        self
    }

    fn plan_for(&mut self, node: NodeId) -> &mut FaultPlan {
        if let Some(i) = self.storage.iter().position(|(n, _)| *n == node) {
            &mut self.storage[i].1
        } else {
            self.storage.push((node, FaultPlan::default()));
            &mut self.storage.last_mut().expect("just pushed").1
        }
    }

    fn lag_factor(&self, node: NodeId) -> u64 {
        self.lag
            .iter()
            .filter(|(n, _)| *n == node)
            .map(|(_, f)| *f)
            .max()
            .unwrap_or(1)
    }
}

enum EventKind<M> {
    Deliver { from: NodeId, to: NodeId, msg: M },
    Crash(NodeId),
    Restart(NodeId),
    Checkpoint(NodeId),
}

/// Heap entry ordered by the unique `(time, seq)` key; the payload never
/// participates in the ordering.
struct Event<M> {
    at: u64,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The simulation: nodes, durable store, event queue, virtual clock, and
/// seeded delay sampler. `F` is the recovery factory — it builds every
/// node at start (`snapshot = None`) and rebuilds crashed nodes from
/// their durable state: the latest [`Ctx::save`] bytes and/or the node's
/// [`SharedMemBackend`] (handed to every factory call).
pub struct Simulation<M, N, F>
where
    N: SimNode<M>,
    F: FnMut(NodeId, Option<&[u8]>, &SharedMemBackend) -> N,
{
    nodes: Vec<N>,
    up: Vec<bool>,
    disk: Vec<Option<Vec<u8>>>,
    /// Per-node fault-injecting storage (for nodes that journal through a
    /// `StorageBackend` rather than the snapshot blob).
    backends: Vec<SharedMemBackend>,
    recover: F,
    faults: FaultSchedule,
    queue: BinaryHeap<Reverse<Event<M>>>,
    clock: u64,
    seq: u64,
    steps: u64,
    delivered: u64,
    dropped: u64,
    rng: StdRng,
}

impl<M, N, F> Simulation<M, N, F>
where
    N: SimNode<M>,
    F: FnMut(NodeId, Option<&[u8]>, &SharedMemBackend) -> N,
{
    /// Build `n_nodes` nodes via the recovery factory (with no snapshot)
    /// and schedule the fault events. `seed` drives delay sampling only —
    /// node logic must source any randomness it needs elsewhere.
    pub fn new(n_nodes: usize, seed: u64, faults: FaultSchedule, mut recover: F) -> Self {
        let backends: Vec<SharedMemBackend> =
            (0..n_nodes).map(|_| SharedMemBackend::new()).collect();
        for (node, plan) in &faults.storage {
            backends[*node].set_faults(plan.clone());
        }
        let nodes = (0..n_nodes)
            .map(|id| recover(id, None, &backends[id]))
            .collect();
        let mut sim = Self {
            nodes,
            up: vec![true; n_nodes],
            disk: vec![None; n_nodes],
            backends,
            recover,
            queue: BinaryHeap::new(),
            clock: 0,
            seq: 0,
            steps: 0,
            delivered: 0,
            dropped: 0,
            rng: StdRng::seed_from_u64(seed),
            faults: faults.clone(),
        };
        for &(at, node) in &faults.crashes {
            sim.push(at, EventKind::Crash(node));
        }
        for &(at, node) in &faults.restarts {
            sim.push(at, EventKind::Restart(node));
        }
        for &(at, node) in &faults.checkpoints {
            sim.push(at, EventKind::Checkpoint(node));
        }
        sim
    }

    fn push(&mut self, at: u64, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Event { at, seq, kind }));
    }

    /// Sample the delivery instant for a message sent now from `from` to
    /// `to`: `now + (1 + U[0, max_extra_delay]) · max(lag(from), lag(to))`.
    fn delivery_at(&mut self, from: NodeId, to: NodeId) -> u64 {
        let extra = if self.faults.max_extra_delay > 0 {
            self.rng.gen_range(0..=self.faults.max_extra_delay)
        } else {
            0
        };
        let from_lag = if from == EXTERNAL {
            1
        } else {
            self.faults.lag_factor(from)
        };
        let factor = from_lag.max(self.faults.lag_factor(to));
        self.clock + (1 + extra) * factor
    }

    /// Inject a workload message from [`EXTERNAL`] arriving at exactly
    /// `at` (no sampled delay — the test controls workload timing).
    pub fn post(&mut self, to: NodeId, msg: M, at: u64) {
        assert!(at >= self.clock, "cannot post into the past");
        self.push(
            at,
            EventKind::Deliver {
                from: EXTERNAL,
                to,
                msg,
            },
        );
    }

    /// Commit a handler's staged effects: enqueue sends (sampling each
    /// delay in staging order) and write the staged snapshot.
    fn commit(&mut self, ctx: Ctx<M>) {
        for (to, msg) in ctx.out {
            let at = self.delivery_at(ctx.node, to);
            self.push(
                at,
                EventKind::Deliver {
                    from: ctx.node,
                    to,
                    msg,
                },
            );
        }
        if let Some(bytes) = ctx.saved {
            self.disk[ctx.node] = Some(bytes);
        }
    }

    /// Drain the event queue. Panics if more than `max_steps` events fire
    /// — the backstop against a protocol that never quiesces. Returns the
    /// virtual time of the last event.
    pub fn run_until_quiescent(&mut self, max_steps: u64) -> u64 {
        while let Some(Reverse(event)) = self.queue.pop() {
            self.steps += 1;
            assert!(
                self.steps <= max_steps,
                "simulation did not quiesce within {max_steps} events"
            );
            debug_assert!(event.at >= self.clock, "virtual clock went backwards");
            self.clock = event.at;
            match event.kind {
                EventKind::Deliver { from, to, msg } => {
                    if !self.up[to] {
                        self.dropped += 1;
                        continue;
                    }
                    self.delivered += 1;
                    let mut ctx = Ctx::new(to, self.clock);
                    self.nodes[to].on_message(from, msg, &mut ctx);
                    self.commit(ctx);
                }
                EventKind::Crash(node) => {
                    self.up[node] = false;
                    // The node's storage dies with it: unsynced appends
                    // vanish, armed bit flips land on what survives.
                    self.backends[node].crash();
                }
                EventKind::Restart(node) => {
                    assert!(!self.up[node], "restart of a node that is up");
                    self.nodes[node] =
                        (self.recover)(node, self.disk[node].as_deref(), &self.backends[node]);
                    self.up[node] = true;
                    let mut ctx = Ctx::new(node, self.clock);
                    self.nodes[node].on_restart(&mut ctx);
                    self.commit(ctx);
                }
                EventKind::Checkpoint(node) => {
                    if self.up[node] {
                        let mut ctx = Ctx::new(node, self.clock);
                        self.nodes[node].on_checkpoint(&mut ctx);
                        self.commit(ctx);
                    }
                }
            }
        }
        self.clock
    }

    /// Immutable access to a node's state (for post-quiescence asserts).
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id]
    }

    /// Whether `id` is currently up.
    pub fn is_up(&self, id: NodeId) -> bool {
        self.up[id]
    }

    /// Current virtual time.
    pub fn time(&self) -> u64 {
        self.clock
    }

    /// Messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Messages dropped at delivery because the target was down.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// A node's latest durable snapshot, if any.
    pub fn disk(&self, id: NodeId) -> Option<&[u8]> {
        self.disk[id].as_deref()
    }

    /// Pre-populate a node's durable snapshot (provisioning): a node that
    /// crashes before its first checkpoint recovers from these bytes
    /// instead of from scratch.
    pub fn seed_disk(&mut self, id: NodeId, bytes: Vec<u8>) {
        self.disk[id] = Some(bytes);
    }

    /// A clonable handle to `id`'s fault-injecting storage backend (for
    /// post-quiescence integrity checks and out-of-band corruption).
    pub fn backend(&self, id: NodeId) -> SharedMemBackend {
        self.backends[id].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test node: echoes every payload to node 0 and records what it saw;
    /// persists its counter on checkpoint and restores it on recovery.
    struct Recorder {
        id: NodeId,
        seen: Vec<(NodeId, u64)>,
        count: u64,
        resyncs: u64,
    }

    impl Recorder {
        fn recover(id: NodeId, snapshot: Option<&[u8]>, _backend: &SharedMemBackend) -> Self {
            let count = snapshot
                .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                .unwrap_or(0);
            Self {
                id,
                seen: Vec::new(),
                count,
                resyncs: 0,
            }
        }
    }

    impl SimNode<u64> for Recorder {
        fn on_message(&mut self, from: NodeId, msg: u64, ctx: &mut Ctx<u64>) {
            self.seen.push((from, msg));
            self.count += 1;
            if self.id != 0 && from == EXTERNAL {
                ctx.send(0, msg);
            }
        }

        fn on_restart(&mut self, _ctx: &mut Ctx<u64>) {
            self.resyncs += 1;
        }

        fn on_checkpoint(&mut self, ctx: &mut Ctx<u64>) {
            ctx.save(self.count.to_le_bytes().to_vec());
        }
    }

    fn run(seed: u64, faults: FaultSchedule) -> (Vec<(NodeId, u64)>, u64) {
        let mut sim = Simulation::new(3, seed, faults, Recorder::recover);
        for i in 0..20u64 {
            sim.post(1 + (i % 2) as usize, i, 1 + i);
        }
        sim.run_until_quiescent(10_000);
        (sim.node(0).seen.clone(), sim.delivered())
    }

    #[test]
    fn identical_runs_are_bitwise_identical() {
        let faults = FaultSchedule::none().with_max_extra_delay(9).with_lag(2, 3);
        let (a, da) = run(42, faults.clone());
        let (b, db) = run(42, faults);
        assert_eq!(a, b);
        assert_eq!(da, db);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_reorder_messages() {
        let faults = FaultSchedule::none().with_max_extra_delay(50);
        let (a, _) = run(1, faults.clone());
        let (b, _) = run(2, faults);
        // Same multiset of echoes, different arrival order.
        let mut sa = a.clone();
        let mut sb = b.clone();
        sa.sort();
        sb.sort();
        assert_eq!(sa, sb);
        assert_ne!(a, b, "50-tick jitter should reorder at least one pair");
    }

    #[test]
    fn unit_delay_delivery_is_send_ordered() {
        let (a, _) = run(7, FaultSchedule::none());
        let payloads: Vec<u64> = a.iter().map(|&(_, m)| m).collect();
        assert_eq!(payloads, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn crashed_nodes_drop_messages_until_restart() {
        // Node 1 is down for t ∈ [3, 30): posts to it in that window drop.
        let faults = FaultSchedule::none().with_crash(1, 3, 30);
        let mut sim = Simulation::new(3, 0, faults, Recorder::recover);
        for i in 0..20u64 {
            sim.post(1, i, 2 + 2 * i);
        }
        sim.run_until_quiescent(10_000);
        assert!(sim.dropped() > 0);
        assert_eq!(sim.node(1).resyncs, 1);
        let echoed = sim.node(0).seen.len() as u64;
        assert_eq!(echoed + sim.dropped(), 20);
    }

    #[test]
    fn restart_recovers_the_latest_checkpoint() {
        // Checkpoint at t=12 persists the count; the crash at t=13 loses
        // in-memory state; recovery restores the persisted counter.
        let faults = FaultSchedule::none()
            .with_checkpoint(1, 12)
            .with_crash(1, 13, 40);
        let mut sim = Simulation::new(2, 0, faults, Recorder::recover);
        for i in 0..10u64 {
            sim.post(1, i, 1 + i); // arrive at t=1..=10, before the checkpoint
        }
        for i in 0..5u64 {
            sim.post(1, 100 + i, 50 + i); // after the restart
        }
        sim.run_until_quiescent(10_000);
        assert_eq!(sim.node(1).count, 10 + 5);
        assert_eq!(sim.node(1).seen.len(), 5, "in-memory history was lost");
    }

    #[test]
    fn checkpoints_of_down_nodes_are_skipped() {
        let faults = FaultSchedule::none()
            .with_crash(1, 5, 20)
            .with_checkpoint(1, 10);
        let mut sim = Simulation::new(2, 0, faults, Recorder::recover);
        sim.post(1, 7, 1);
        sim.run_until_quiescent(1_000);
        assert!(sim.disk(1).is_none(), "down node must not checkpoint");
    }
}
