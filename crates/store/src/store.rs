//! [`DurableStore`]: checksummed snapshots plus a segmented write-ahead
//! log over any [`StorageBackend`].
//!
//! ## On-disk layout
//!
//! - `snap-<seq:020>.fks` — one atomic snapshot file: `FKSNAP1\0` magic,
//!   the covered sequence number, one CRC-framed record holding the
//!   caller's snapshot payload. A snapshot at sequence `S` captures the
//!   effect of entries `[0, S)`.
//! - `wal-<first:020>.fkl` — one log segment: `FKWAL1\0\0` magic, the
//!   sequence number of its first entry, then one CRC-framed record per
//!   entry. Entry sequence numbers are implicit (`first + index`).
//!   Segments roll at every snapshot, so segment boundaries always align
//!   with snapshot coverage.
//!
//! ## Fsync discipline
//!
//! [`append`](DurableStore::append) stages bytes; nothing is durable until
//! [`sync`](DurableStore::sync) returns. Callers that externalize effects
//! (broadcasting a log entry, acknowledging a client) must sync first —
//! the recovery contract is only "durable log ⊇ externalized effects" if
//! they do. Snapshots are durable on return (temp file + fsync + rename +
//! parent-directory fsync on the filesystem backend).
//!
//! ## Recovery
//!
//! [`open`](DurableStore::open) picks the newest snapshot that passes its
//! checksum (falling back to older snapshots, then to empty-state replay
//! from sequence 0 if none ever existed), replays the contiguous log
//! suffix from there, truncates a torn tail on the *final* segment (the
//! signature of a crash mid-append), and surfaces every other corruption
//! mode as a typed [`StoreError`]. Two snapshots are retained, so one
//! corrupt snapshot never strands the store.

use crate::backend::StorageBackend;
use crate::error::StoreError;
use crate::frame::{
    put_header, put_record, read_header, read_records, Tail, HEADER_LEN, SNAP_MAGIC, WAL_MAGIC,
};

/// Number of most-recent snapshots [`DurableStore::snapshot`] retains;
/// log segments are pruned only once no retained snapshot needs them.
pub const RETAINED_SNAPSHOTS: usize = 2;

fn snap_name(seq: u64) -> String {
    format!("snap-{seq:020}.fks")
}

fn wal_name(first: u64) -> String {
    format!("wal-{first:020}.fkl")
}

fn parse_name(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse::<u64>()
        .ok()
}

/// What [`DurableStore::open`] reconstructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovered {
    /// Payload of the snapshot the recovery is based on; `None` means no
    /// snapshot was ever written and the caller starts from empty state.
    pub snapshot: Option<Vec<u8>>,
    /// Sequence the base snapshot covers (0 without a snapshot): replay
    /// starts here.
    pub snapshot_seq: u64,
    /// Log entry payloads `snapshot_seq..snapshot_seq + entries.len()`,
    /// in order, to replay on top of the snapshot.
    pub entries: Vec<Vec<u8>>,
    /// Byte offset the final segment was truncated to, when a torn tail
    /// (crash mid-append) was repaired.
    pub truncated_tail: Option<u64>,
    /// Corrupt snapshot files that were skipped in favor of an older base
    /// — recovery succeeded, but an operator should know.
    pub skipped_snapshots: Vec<String>,
    /// Defective log segments lying wholly below the recovery base —
    /// every entry they cover is already captured by the base snapshot,
    /// so recovery proceeds without them, but an operator should know.
    pub skipped_segments: Vec<String>,
}

/// Per-file outcome of [`DurableStore::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileCheck {
    /// File name.
    pub file: String,
    /// Complete, checksum-valid records in the file.
    pub records: u64,
    /// Whether the whole file verified clean.
    pub ok: bool,
    /// Human-readable status (`"ok"`, or what is wrong).
    pub detail: String,
}

/// Read-only integrity report over every snapshot and segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// One entry per recognized file, sorted by name.
    pub checks: Vec<FileCheck>,
    /// Sequence of the newest snapshot that verifies (`None` = recovery
    /// would replay from sequence 0 without a snapshot).
    pub base_seq: Option<u64>,
    /// First sequence replay would start at.
    pub replay_from: u64,
    /// One past the last entry recovery can reach from the base — the
    /// recoverable log prefix is `[replay_from, recoverable_to)`.
    pub recoverable_to: u64,
    /// Torn-tail byte offset in the final segment, if one would be
    /// truncated on open.
    pub torn_tail: Option<u64>,
}

impl VerifyReport {
    /// Whether every file verified clean end to end.
    pub fn all_ok(&self) -> bool {
        self.checks.iter().all(|c| c.ok)
    }
}

#[derive(Debug)]
struct Segment {
    name: String,
    first: u64,
    payloads: Vec<Vec<u8>>,
    /// Parse problem (bad header, torn tail, checksum mismatch) whose
    /// classification is deferred until the recovery base is known: it is
    /// fatal only if the segment intersects the replay range.
    defect: Option<StoreError>,
}

/// Snapshots + write-ahead log over a [`StorageBackend`]. See the
/// crate docs for the format and the recovery algorithm.
#[derive(Debug)]
pub struct DurableStore<B: StorageBackend> {
    backend: B,
    /// Sequence number the next appended entry receives.
    next_seq: u64,
    /// Name of the open (final) log segment.
    segment: String,
    /// Sequence covered by the newest durable snapshot.
    snapshot_seq: u64,
}

impl<B: StorageBackend> DurableStore<B> {
    /// Open the store, running recovery: returns the store positioned for
    /// new appends plus everything the caller must replay.
    pub fn open(mut backend: B) -> Result<(Self, Recovered), StoreError> {
        let names = backend.list()?;
        let mut snap_names: Vec<(u64, String)> = Vec::new();
        let mut seg_names: Vec<(u64, String)> = Vec::new();
        for name in names {
            if let Some(seq) = parse_name(&name, "snap-", ".fks") {
                snap_names.push((seq, name));
            } else if let Some(first) = parse_name(&name, "wal-", ".fkl") {
                seg_names.push((first, name));
            }
            // Unrecognized names are left alone — they are not ours.
        }
        snap_names.sort();
        seg_names.sort();

        // Parse every segment; only the final one may end torn. The
        // final segment is the open one (future appends extend it), so
        // its defects are fatal immediately; a non-final segment's
        // defect is *deferred* — it only matters if the segment
        // intersects the replay range, which is unknown until the base
        // snapshot is chosen below.
        let mut segments = Vec::with_capacity(seg_names.len());
        let last_idx = seg_names.len().saturating_sub(1);
        let mut truncated_tail = None;
        for (idx, (first, name)) in seg_names.iter().enumerate() {
            let bytes = backend.read(name)?.unwrap_or_default();
            let is_last = idx == last_idx;
            if bytes.len() < HEADER_LEN {
                if is_last {
                    // A crash tore the header append of a fresh segment:
                    // it holds no entries; rewrite it whole.
                    let mut buf = Vec::new();
                    put_header(&mut buf, WAL_MAGIC, *first);
                    backend.write_atomic(name, &buf)?;
                    truncated_tail = Some(bytes.len() as u64);
                    segments.push(Segment {
                        name: name.clone(),
                        first: *first,
                        payloads: Vec::new(),
                        defect: None,
                    });
                    continue;
                }
                segments.push(Segment {
                    name: name.clone(),
                    first: *first,
                    payloads: Vec::new(),
                    defect: Some(StoreError::TruncatedRecord {
                        file: name.clone(),
                        offset: bytes.len() as u64,
                    }),
                });
                continue;
            }
            let mut defect = None;
            match read_header(&bytes, WAL_MAGIC) {
                None => {
                    let err = StoreError::BadMagic { file: name.clone() };
                    if is_last {
                        return Err(err);
                    }
                    segments.push(Segment {
                        name: name.clone(),
                        first: *first,
                        payloads: Vec::new(),
                        defect: Some(err),
                    });
                    continue;
                }
                Some(header_seq) if header_seq != *first => {
                    let err = StoreError::Corrupt {
                        file: name.clone(),
                        detail: format!(
                            "header sequence {header_seq} disagrees with file name ({first})"
                        ),
                    };
                    if is_last {
                        return Err(err);
                    }
                    defect = Some(err);
                }
                Some(_) => {}
            }
            let (records, tail) = read_records(&bytes);
            match tail {
                Tail::Clean => {}
                Tail::Torn { offset } if is_last => {
                    // Crash mid-append: truncate the torn bytes on disk so
                    // future appends extend a clean frame boundary.
                    backend.write_atomic(name, &bytes[..offset as usize])?;
                    truncated_tail = Some(offset);
                }
                Tail::Torn { offset } => {
                    defect.get_or_insert(StoreError::TruncatedRecord {
                        file: name.clone(),
                        offset,
                    });
                }
                Tail::Corrupt { offset } => {
                    let err = StoreError::ChecksumMismatch {
                        file: name.clone(),
                        offset,
                    };
                    if is_last {
                        return Err(err);
                    }
                    defect.get_or_insert(err);
                }
            }
            segments.push(Segment {
                name: name.clone(),
                first: *first,
                payloads: records.into_iter().map(<[u8]>::to_vec).collect(),
                defect,
            });
        }

        // Newest snapshot that verifies wins; corrupt ones are skipped
        // (write_atomic never leaves a half-snapshot, so a bad one is
        // real corruption, worth reporting upward).
        let mut skipped_snapshots = Vec::new();
        let mut base: Option<(u64, Vec<u8>)> = None;
        for (seq, name) in snap_names.iter().rev() {
            match Self::read_snapshot(&backend, *seq, name) {
                Ok(payload) => {
                    base = Some((*seq, payload));
                    break;
                }
                Err(err) => skipped_snapshots.push(format!("{name}: {err}")),
            }
        }
        if base.is_none() && !snap_names.is_empty() && segments.first().is_none_or(|s| s.first > 0)
        {
            return Err(StoreError::NoRecoveryBase {
                detail: skipped_snapshots.join("; "),
            });
        }
        let (snapshot_seq, snapshot) = match base {
            Some((seq, payload)) => (seq, Some(payload)),
            None => (0, None),
        };

        // Collect the replay suffix: entries with sequence >= snapshot_seq.
        // A segment wholly below the base (its *nominal* coverage — up to
        // the next segment's first sequence — ends at or before the base)
        // carries only entries the snapshot already captures: its health
        // does not gate recovery, matching [`Self::verify`]'s recoverable
        // verdict. Defects there are reported, not fatal. From the base
        // onward, segments must be defect-free and tile contiguously.
        let mut entries = Vec::new();
        let mut skipped_segments = Vec::new();
        let mut expected_next: Option<u64> = None;
        for (idx, seg) in segments.iter().enumerate() {
            let nominal_end = match segments.get(idx + 1) {
                Some(next) => next.first,
                None => seg.first + seg.payloads.len() as u64,
            };
            if nominal_end <= snapshot_seq {
                if let Some(defect) = &seg.defect {
                    skipped_segments.push(format!("{}: {defect}", seg.name));
                }
                continue;
            }
            if let Some(defect) = &seg.defect {
                return Err(defect.clone());
            }
            match expected_next {
                None => {
                    if seg.first > snapshot_seq {
                        return Err(StoreError::LogGap {
                            expected: snapshot_seq,
                            found: seg.first,
                        });
                    }
                }
                Some(expected) => {
                    if seg.first != expected {
                        return Err(StoreError::LogGap {
                            expected,
                            found: seg.first,
                        });
                    }
                }
            }
            expected_next = Some(seg.first + seg.payloads.len() as u64);
            let skip = snapshot_seq.saturating_sub(seg.first) as usize;
            entries.extend(seg.payloads.iter().skip(skip).cloned());
        }
        let log_end = segments
            .last()
            .map_or(0, |s| s.first + s.payloads.len() as u64);
        let next_seq = log_end.max(snapshot_seq);

        // Position the open segment (creating one on first open, or when
        // a crash landed between a snapshot and its fresh segment).
        let segment = match segments.last() {
            Some(seg) => seg.name.clone(),
            None => {
                let name = wal_name(next_seq);
                let mut buf = Vec::new();
                put_header(&mut buf, WAL_MAGIC, next_seq);
                backend.append(&name, &buf)?;
                backend.sync(&name)?;
                name
            }
        };

        let store = Self {
            backend,
            next_seq,
            segment,
            snapshot_seq,
        };
        let recovered = Recovered {
            snapshot,
            snapshot_seq,
            entries,
            truncated_tail,
            skipped_snapshots,
            skipped_segments,
        };
        Ok((store, recovered))
    }

    fn read_snapshot(backend: &B, seq: u64, name: &str) -> Result<Vec<u8>, StoreError> {
        let bytes = backend.read(name)?.ok_or_else(|| StoreError::Corrupt {
            file: name.to_string(),
            detail: "listed but unreadable".into(),
        })?;
        let header_seq = read_header(&bytes, SNAP_MAGIC).ok_or_else(|| StoreError::BadMagic {
            file: name.to_string(),
        })?;
        if header_seq != seq {
            return Err(StoreError::Corrupt {
                file: name.to_string(),
                detail: format!("header sequence {header_seq} disagrees with file name ({seq})"),
            });
        }
        let (records, tail) = read_records(&bytes);
        match tail {
            Tail::Clean => {}
            Tail::Torn { offset } => {
                return Err(StoreError::TruncatedRecord {
                    file: name.to_string(),
                    offset,
                })
            }
            Tail::Corrupt { offset } => {
                return Err(StoreError::ChecksumMismatch {
                    file: name.to_string(),
                    offset,
                })
            }
        }
        if records.len() != 1 {
            return Err(StoreError::Corrupt {
                file: name.to_string(),
                detail: format!("expected exactly 1 record, found {}", records.len()),
            });
        }
        Ok(records[0].to_vec())
    }

    /// Stage one log entry; returns its sequence number. **Not durable
    /// until [`sync`](Self::sync)** — callers must sync before letting
    /// any effect of this entry escape the process.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, StoreError> {
        let mut buf = Vec::with_capacity(payload.len() + 8);
        put_record(&mut buf, payload);
        self.backend.append(&self.segment, &buf)?;
        let seq = self.next_seq;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Make every staged append durable.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.backend.sync(&self.segment)
    }

    /// Durably write a snapshot covering every entry appended so far,
    /// roll the log to a fresh segment, and prune snapshots/segments no
    /// retained snapshot needs. Returns the covered sequence.
    pub fn snapshot(&mut self, payload: &[u8]) -> Result<u64, StoreError> {
        // Seal the staged suffix first: the snapshot claims to cover it.
        self.sync()?;
        let seq = self.next_seq;
        let mut buf = Vec::with_capacity(payload.len() + HEADER_LEN + 8);
        put_header(&mut buf, SNAP_MAGIC, seq);
        put_record(&mut buf, payload);
        self.backend.write_atomic(&snap_name(seq), &buf)?;
        let fresh = wal_name(seq);
        // When no entry has been appended since the segment was created,
        // the "fresh" segment IS the open one (same first sequence) — its
        // header is already on disk, and appending another would corrupt
        // the record stream.
        if fresh != self.segment {
            let mut header = Vec::new();
            put_header(&mut header, WAL_MAGIC, seq);
            self.backend.append(&fresh, &header)?;
            self.backend.sync(&fresh)?;
            self.segment = fresh;
        }
        self.snapshot_seq = seq;
        self.prune()?;
        Ok(seq)
    }

    /// Drop snapshots beyond the [`RETAINED_SNAPSHOTS`] newest and every
    /// log segment whose entries all precede the oldest retained one.
    fn prune(&mut self) -> Result<(), StoreError> {
        let names = self.backend.list()?;
        let mut snaps: Vec<(u64, String)> = names
            .iter()
            .filter_map(|n| parse_name(n, "snap-", ".fks").map(|s| (s, n.clone())))
            .collect();
        snaps.sort();
        if snaps.len() > RETAINED_SNAPSHOTS {
            let cutoff = snaps.len() - RETAINED_SNAPSHOTS;
            for (_, name) in snaps.drain(..cutoff) {
                self.backend.remove(&name)?;
            }
        }
        // Segments may only be dropped once a *second* snapshot can serve
        // as fallback — a single (possibly corrupt) snapshot must never be
        // the sole recovery base while the full log still exists.
        let retain_from = if snaps.len() >= 2 { snaps[0].0 } else { 0 };
        let mut segs: Vec<(u64, String)> = names
            .iter()
            .filter_map(|n| parse_name(n, "wal-", ".fkl").map(|s| (s, n.clone())))
            .collect();
        segs.sort();
        // Segment i covers [first_i, first_{i+1}); prunable when wholly
        // below the oldest retained snapshot. The open segment never is.
        for pair in segs.windows(2) {
            if pair[1].0 <= retain_from && pair[0].1 != self.segment {
                self.backend.remove(&pair[0].1)?;
            }
        }
        Ok(())
    }

    /// Sequence number the next [`append`](Self::append) will get (also
    /// the total entries ever appended).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Sequence covered by the newest durable snapshot.
    pub fn snapshot_seq(&self) -> u64 {
        self.snapshot_seq
    }

    /// The backing storage.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Check every checksum without mutating anything, and compute the
    /// recoverable log prefix — what [`open`](Self::open) would replay.
    /// Corruption is *reported*, never returned as `Err` (only real I/O
    /// failures are).
    pub fn verify(backend: &B) -> Result<VerifyReport, StoreError> {
        let names = backend.list()?;
        let mut checks = Vec::new();
        let mut snaps: Vec<(u64, bool)> = Vec::new();
        let mut segs: Vec<(u64, u64, Tail, bool)> = Vec::new();
        for name in &names {
            if let Some(seq) = parse_name(name, "snap-", ".fks") {
                let (ok, records, detail) = match Self::read_snapshot(backend, seq, name) {
                    Ok(_) => (true, 1, "ok".to_string()),
                    Err(e) => (false, 0, e.to_string()),
                };
                snaps.push((seq, ok));
                checks.push(FileCheck {
                    file: name.clone(),
                    records,
                    ok,
                    detail,
                });
            } else if let Some(first) = parse_name(name, "wal-", ".fkl") {
                let bytes = backend.read(name)?.unwrap_or_default();
                let header_ok = read_header(&bytes, WAL_MAGIC) == Some(first);
                let (records, tail) = read_records(&bytes);
                let n_records = if header_ok { records.len() as u64 } else { 0 };
                let ok = header_ok && tail == Tail::Clean;
                let detail = if !header_ok {
                    "bad or torn header".to_string()
                } else {
                    match tail {
                        Tail::Clean => "ok".to_string(),
                        Tail::Torn { offset } => format!("torn tail at byte {offset}"),
                        Tail::Corrupt { offset } => format!("checksum mismatch at byte {offset}"),
                    }
                };
                segs.push((first, n_records, tail, header_ok));
                checks.push(FileCheck {
                    file: name.clone(),
                    records: n_records,
                    ok,
                    detail,
                });
            }
        }
        snaps.sort();
        segs.sort_by_key(|(first, ..)| *first);
        let base_seq = snaps.iter().rev().find(|(_, ok)| *ok).map(|(s, _)| *s);
        let replay_from = base_seq.unwrap_or(0);
        // Walk the contiguous, intact prefix of the log from the base.
        // Segments wholly below the base are irrelevant — their health
        // does not gate recovery.
        let mut recoverable_to = replay_from;
        let mut torn_tail = None;
        let last = segs.len().saturating_sub(1);
        for (idx, &(first, n_records, tail, header_ok)) in segs.iter().enumerate() {
            // Nominal coverage ends where the next segment starts; a
            // segment wholly below the base never gates recovery, even
            // defective — exactly [`Self::open`]'s rule.
            let nominal_end = match segs.get(idx + 1) {
                Some(&(next_first, ..)) => next_first,
                None => first + n_records,
            };
            if nominal_end <= replay_from {
                continue;
            }
            if first > recoverable_to || !header_ok {
                break; // gap, or an unparsable segment in the replay range
            }
            recoverable_to = recoverable_to.max(first + n_records);
            match tail {
                Tail::Clean => {}
                Tail::Torn { offset } if idx == last => {
                    // Recoverable: open() truncates this tail.
                    torn_tail = Some(offset);
                }
                _ => break, // mid-log corruption stops replay here
            }
        }
        Ok(VerifyReport {
            checks,
            base_seq,
            replay_from,
            recoverable_to,
            torn_tail,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BitFlip, FaultPlan, MemBackend, TornWrite};

    fn entry(i: u64) -> Vec<u8> {
        format!("entry-{i}").into_bytes()
    }

    #[test]
    fn fresh_store_replays_nothing_and_round_trips() {
        let (mut store, rec) = DurableStore::open(MemBackend::new()).unwrap();
        assert_eq!(rec.snapshot, None);
        assert!(rec.entries.is_empty());
        for i in 0..5 {
            assert_eq!(store.append(&entry(i)).unwrap(), i);
        }
        store.sync().unwrap();
        let backend = store.backend;
        let (_, rec) = DurableStore::open(backend).unwrap();
        assert_eq!(rec.snapshot_seq, 0);
        assert_eq!(rec.entries, (0..5).map(entry).collect::<Vec<_>>());
        assert_eq!(rec.truncated_tail, None);
    }

    #[test]
    fn snapshot_becomes_the_recovery_base_and_rolls_the_segment() {
        let (mut store, _) = DurableStore::open(MemBackend::new()).unwrap();
        for i in 0..3 {
            store.append(&entry(i)).unwrap();
        }
        assert_eq!(store.snapshot(b"state@3").unwrap(), 3);
        for i in 3..6 {
            store.append(&entry(i)).unwrap();
        }
        store.sync().unwrap();
        let (_, rec) = DurableStore::open(store.backend).unwrap();
        assert_eq!(rec.snapshot.as_deref(), Some(&b"state@3"[..]));
        assert_eq!(rec.snapshot_seq, 3);
        assert_eq!(rec.entries, (3..6).map(entry).collect::<Vec<_>>());
    }

    #[test]
    fn snapshot_before_any_append_leaves_the_open_segment_intact() {
        // Snapshotting at the very start of a segment must not append a
        // second header into the same file: the duplicate would be parsed
        // as a torn frame and recovery would truncate valid entries after
        // it. This is exactly the bootstrap path (open, snapshot, append).
        let disk = crate::backend::SharedMemBackend::new();
        let (mut store, _) = DurableStore::open(disk.clone()).unwrap();
        assert_eq!(store.snapshot(b"boot").unwrap(), 0);
        store.append(&entry(0)).unwrap();
        store.sync().unwrap();
        disk.crash();
        let (_, rec) = DurableStore::open(disk.clone()).unwrap();
        assert_eq!(rec.snapshot.as_deref(), Some(&b"boot"[..]));
        assert_eq!(rec.snapshot_seq, 0);
        assert_eq!(rec.entries, vec![entry(0)]);
        assert_eq!(rec.truncated_tail, None, "no header duplication");
    }

    #[test]
    fn unsynced_suffix_is_lost_cleanly_on_crash() {
        let disk = crate::backend::SharedMemBackend::new();
        let (mut store, _) = DurableStore::open(disk.clone()).unwrap();
        store.append(&entry(0)).unwrap();
        store.sync().unwrap();
        store.append(&entry(1)).unwrap(); // never synced
        disk.crash();
        let (store2, rec) = DurableStore::open(disk.clone()).unwrap();
        assert_eq!(rec.entries, vec![entry(0)]);
        assert_eq!(store2.next_seq(), 1);
    }

    #[test]
    fn torn_append_truncates_to_the_synced_prefix() {
        // Op 1 creates the segment header; op 2 is entry-0's append; tear
        // op 3 (entry-1) after 3 bytes.
        let disk = crate::backend::SharedMemBackend::new();
        disk.set_faults(FaultPlan {
            torn: Some(TornWrite { at_op: 3, keep: 3 }),
            flips: Vec::new(),
        });
        let (mut store, _) = DurableStore::open(disk.clone()).unwrap();
        store.append(&entry(0)).unwrap();
        store.sync().unwrap();
        assert_eq!(store.append(&entry(1)), Err(StoreError::Crashed));
        disk.crash();
        let (_, rec) = DurableStore::open(disk.clone()).unwrap();
        assert_eq!(rec.entries, vec![entry(0)], "torn entry must vanish");
    }

    #[test]
    fn torn_tail_that_survived_a_sync_is_truncated_and_reported() {
        // Simulate a tear whose prefix DID reach the platter: sync after
        // the torn bytes land by writing them directly.
        let mut backend = MemBackend::new();
        let mut buf = Vec::new();
        put_header(&mut buf, WAL_MAGIC, 0);
        put_record(&mut buf, &entry(0));
        buf.extend_from_slice(&[9, 0, 0, 0]); // half a frame header
        backend.write_atomic(&wal_name(0), &buf).unwrap();
        let (store, rec) = DurableStore::open(backend).unwrap();
        assert_eq!(rec.entries, vec![entry(0)]);
        assert!(rec.truncated_tail.is_some());
        // The truncation is durable: reopening is clean.
        let (_, rec2) = DurableStore::open(store.backend).unwrap();
        assert_eq!(rec2.truncated_tail, None);
        assert_eq!(rec2.entries, vec![entry(0)]);
    }

    #[test]
    fn bit_flip_in_the_log_is_a_typed_checksum_error() {
        let disk = crate::backend::SharedMemBackend::new();
        let (mut store, _) = DurableStore::open(disk.clone()).unwrap();
        store.append(&entry(0)).unwrap();
        store.append(&entry(1)).unwrap();
        store.sync().unwrap();
        disk.set_faults(FaultPlan {
            torn: None,
            flips: vec![BitFlip {
                file: wal_name(0),
                offset: (HEADER_LEN + 8 + entry(0).len() + 8) + 2,
                bit: 4,
            }],
        });
        disk.crash();
        match DurableStore::open(disk.clone()) {
            Err(StoreError::ChecksumMismatch { file, .. }) => {
                assert_eq!(file, wal_name(0));
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
        let report = DurableStore::verify(&disk).unwrap();
        assert!(!report.all_ok());
        assert_eq!(report.recoverable_to, 1, "entry-0 is still recoverable");
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_the_older_one() {
        let disk = crate::backend::SharedMemBackend::new();
        let (mut store, _) = DurableStore::open(disk.clone()).unwrap();
        store.append(&entry(0)).unwrap();
        store.snapshot(b"state@1").unwrap();
        store.append(&entry(1)).unwrap();
        store.snapshot(b"state@2").unwrap();
        store.append(&entry(2)).unwrap();
        store.sync().unwrap();
        // Flip a bit inside the newest snapshot's payload.
        disk.set_faults(FaultPlan {
            torn: None,
            flips: vec![BitFlip {
                file: snap_name(2),
                offset: HEADER_LEN + 8 + 3,
                bit: 1,
            }],
        });
        disk.crash();
        let (_, rec) = DurableStore::open(disk.clone()).unwrap();
        assert_eq!(rec.snapshot.as_deref(), Some(&b"state@1"[..]));
        assert_eq!(rec.snapshot_seq, 1);
        assert_eq!(rec.entries, vec![entry(1), entry(2)]);
        assert_eq!(rec.skipped_snapshots.len(), 1);
    }

    #[test]
    fn pruning_keeps_exactly_the_coverage_recovery_needs() {
        let (mut store, _) = DurableStore::open(MemBackend::new()).unwrap();
        for round in 0u64..5 {
            store.append(&entry(round)).unwrap();
            store
                .snapshot(format!("state@{}", round + 1).as_bytes())
                .unwrap();
        }
        let names = store.backend.list().unwrap();
        let snaps: Vec<_> = names.iter().filter(|n| n.starts_with("snap-")).collect();
        assert_eq!(snaps.len(), RETAINED_SNAPSHOTS, "old snapshots pruned");
        // Recovery still works from the older retained snapshot: corrupt
        // the newest via a fresh handle is covered elsewhere; here just
        // confirm open() sees the newest.
        let (_, rec) = DurableStore::open(store.backend).unwrap();
        assert_eq!(rec.snapshot.as_deref(), Some(&b"state@5"[..]));
        assert!(rec.entries.is_empty());
    }

    #[test]
    fn defective_segment_below_the_recovery_base_does_not_block_open() {
        let disk = crate::backend::SharedMemBackend::new();
        let (mut store, _) = DurableStore::open(disk.clone()).unwrap();
        store.append(&entry(0)).unwrap();
        store.snapshot(b"state@1").unwrap();
        store.append(&entry(1)).unwrap();
        store.snapshot(b"state@2").unwrap();
        store.append(&entry(2)).unwrap();
        store.sync().unwrap();
        drop(store);

        // Corrupt wal-1, which covers exactly [1, 2) — wholly below the
        // newest snapshot (seq 2) and retained only as fallback coverage.
        disk.set_faults(FaultPlan {
            torn: None,
            flips: vec![BitFlip {
                file: wal_name(1),
                offset: HEADER_LEN + 8 + 2,
                bit: 3,
            }],
        });
        disk.crash();

        // verify: the defect is reported, but it does not gate recovery.
        let report = DurableStore::verify(&disk).unwrap();
        assert!(!report.all_ok());
        assert_eq!(report.base_seq, Some(2));
        assert_eq!(
            report.recoverable_to, 3,
            "a defect wholly below the base must not shorten the prefix"
        );

        // open agrees with verify's recoverable verdict.
        let (_, rec) = DurableStore::open(disk.clone()).unwrap();
        assert_eq!(rec.snapshot.as_deref(), Some(&b"state@2"[..]));
        assert_eq!(rec.snapshot_seq, 2);
        assert_eq!(rec.entries, vec![entry(2)]);
        assert_eq!(rec.skipped_segments.len(), 1, "{:?}", rec.skipped_segments);
        assert!(rec.skipped_segments[0].starts_with(&wal_name(1)));
    }

    #[test]
    fn corrupt_segment_in_the_replay_range_still_fails_open() {
        let disk = crate::backend::SharedMemBackend::new();
        let (mut store, _) = DurableStore::open(disk.clone()).unwrap();
        store.append(&entry(0)).unwrap();
        store.snapshot(b"state@1").unwrap();
        store.append(&entry(1)).unwrap();
        store.snapshot(b"state@2").unwrap();
        store.append(&entry(2)).unwrap();
        store.sync().unwrap();
        drop(store);

        // Corrupt wal-1 AND the newest snapshot: recovery falls back to
        // snap-1, which needs wal-1 — now the defect is in the replay
        // range and must surface as a typed error.
        disk.set_faults(FaultPlan {
            torn: None,
            flips: vec![
                BitFlip {
                    file: wal_name(1),
                    offset: HEADER_LEN + 8 + 2,
                    bit: 3,
                },
                BitFlip {
                    file: snap_name(2),
                    offset: HEADER_LEN + 8 + 3,
                    bit: 1,
                },
            ],
        });
        disk.crash();
        match DurableStore::open(disk.clone()) {
            Err(StoreError::ChecksumMismatch { file, .. }) => assert_eq!(file, wal_name(1)),
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }

    #[test]
    fn verify_reports_clean_stores_clean() {
        let (mut store, _) = DurableStore::open(MemBackend::new()).unwrap();
        store.append(&entry(0)).unwrap();
        store.snapshot(b"s").unwrap();
        store.append(&entry(1)).unwrap();
        store.sync().unwrap();
        let report = DurableStore::verify(&store.backend).unwrap();
        assert!(report.all_ok(), "{report:?}");
        assert_eq!(report.base_seq, Some(1));
        assert_eq!(report.replay_from, 1);
        assert_eq!(report.recoverable_to, 2);
        assert_eq!(report.torn_tail, None);
    }

    #[test]
    fn missing_coverage_is_a_typed_log_gap() {
        let (mut store, _) = DurableStore::open(MemBackend::new()).unwrap();
        for i in 0..3 {
            store.append(&entry(i)).unwrap();
        }
        store.snapshot(b"state@3").unwrap();
        store.append(&entry(3)).unwrap();
        store.sync().unwrap();
        let mut backend = store.backend;
        // Delete the snapshot AND the early segment: nothing covers 0..3.
        backend.remove(&snap_name(3)).unwrap();
        backend.remove(&wal_name(0)).unwrap();
        match DurableStore::open(backend) {
            Err(StoreError::LogGap { expected, found }) => {
                assert_eq!(expected, 0);
                assert_eq!(found, 3);
            }
            other => panic!("expected LogGap, got {other:?}"),
        }
    }
}
