//! The CRC-framed record format shared by snapshots and write-ahead-log
//! segments: every record is `[len: u32 LE][crc32(payload): u32 LE]
//! [payload]`, preceded in each file by an 8-byte magic and an 8-byte
//! little-endian sequence number.
//!
//! Framing never panics and never guesses: a file either parses into
//! records plus a classified [`Tail`], or reading it is an I/O error. A
//! *torn* tail (fewer bytes than the last frame claims) is recoverable by
//! truncation — exactly what a crash mid-append produces. A *corrupt*
//! tail (a complete record whose checksum fails) is a bit flip or an
//! overwrite and is never silently dropped.

use crate::crc::crc32;

/// Magic header of snapshot files.
pub const SNAP_MAGIC: &[u8; 8] = b"FKSNAP1\0";
/// Magic header of write-ahead-log segment files.
pub const WAL_MAGIC: &[u8; 8] = b"FKWAL1\0\0";
/// Bytes before the first record: magic + sequence number.
pub const HEADER_LEN: usize = 16;
/// Bytes of framing per record: length + checksum.
pub const FRAME_LEN: usize = 8;

/// How a framed file ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tail {
    /// The last record ends exactly at end-of-file.
    Clean,
    /// The file ends mid-frame or mid-payload at `offset` — the signature
    /// of a torn append, recoverable by truncating to `offset`.
    Torn {
        /// Byte offset of the incomplete frame's start.
        offset: u64,
    },
    /// A complete record at `offset` fails its checksum — corruption, not
    /// a crash artifact.
    Corrupt {
        /// Byte offset of the failing frame's start.
        offset: u64,
    },
}

/// Append one framed record to `buf`.
pub fn put_record(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
}

/// Serialize a file header (magic + sequence number).
pub fn put_header(buf: &mut Vec<u8>, magic: &[u8; 8], seq: u64) {
    buf.extend_from_slice(magic);
    buf.extend_from_slice(&seq.to_le_bytes());
}

/// Parse a file header, returning its sequence number. `None` covers both
/// a short buffer and a magic mismatch — callers map it to a typed
/// [`crate::StoreError`] with the file name attached.
pub fn read_header(bytes: &[u8], magic: &[u8; 8]) -> Option<u64> {
    if bytes.len() < HEADER_LEN || &bytes[..8] != magic {
        return None;
    }
    Some(u64::from_le_bytes(bytes[8..16].try_into().ok()?))
}

/// Parse every record after the header, stopping at the first non-clean
/// frame. Returns the record payloads (borrowed from `bytes`) and the
/// tail classification; corruption is a *classification*, not an error,
/// so callers decide whether a torn tail is recoverable in context.
pub fn read_records(bytes: &[u8]) -> (Vec<&[u8]>, Tail) {
    let mut records = Vec::new();
    if bytes.len() < HEADER_LEN {
        // A crash can tear the header append itself; the file holds no
        // records and the tear point is end-of-file.
        return (
            records,
            Tail::Torn {
                offset: bytes.len() as u64,
            },
        );
    }
    let mut at = HEADER_LEN;
    loop {
        let remaining = bytes.len() - at;
        if remaining == 0 {
            return (records, Tail::Clean);
        }
        if remaining < FRAME_LEN {
            return (records, Tail::Torn { offset: at as u64 });
        }
        // Indexing is bounds-checked above; the two try_intos cannot fail.
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
        if remaining - FRAME_LEN < len {
            return (records, Tail::Torn { offset: at as u64 });
        }
        let payload = &bytes[at + FRAME_LEN..at + FRAME_LEN + len];
        if crc32(payload) != crc {
            return (records, Tail::Corrupt { offset: at as u64 });
        }
        records.push(payload);
        at += FRAME_LEN + len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file_with(payloads: &[&[u8]]) -> Vec<u8> {
        let mut buf = Vec::new();
        put_header(&mut buf, WAL_MAGIC, 7);
        for p in payloads {
            put_record(&mut buf, p);
        }
        buf
    }

    #[test]
    fn round_trips_records_and_header() {
        let buf = file_with(&[b"alpha", b"", b"gamma"]);
        assert_eq!(read_header(&buf, WAL_MAGIC), Some(7));
        assert_eq!(read_header(&buf, SNAP_MAGIC), None, "magic is checked");
        let (records, tail) = read_records(&buf);
        assert_eq!(records, vec![&b"alpha"[..], &b""[..], &b"gamma"[..]]);
        assert_eq!(tail, Tail::Clean);
    }

    #[test]
    fn torn_tails_are_classified_not_erred() {
        let full = file_with(&[b"alpha", b"beta"]);
        let second_frame = HEADER_LEN + FRAME_LEN + 5;
        // A cut exactly at the frame boundary is a clean shorter file;
        // every cut strictly inside the second frame is torn.
        for cut in second_frame + 1..full.len() {
            let (records, tail) = read_records(&full[..cut]);
            assert_eq!(records, vec![&b"alpha"[..]], "cut at {cut}");
            assert_eq!(
                tail,
                Tail::Torn {
                    offset: second_frame as u64
                },
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn a_flipped_bit_is_corrupt_not_torn() {
        let mut buf = file_with(&[b"alpha", b"beta"]);
        let beta_at = HEADER_LEN + FRAME_LEN + 5;
        *buf.last_mut().unwrap() ^= 0x04; // flip inside "beta"'s payload
        let (records, tail) = read_records(&buf);
        assert_eq!(records, vec![&b"alpha"[..]]);
        assert_eq!(
            tail,
            Tail::Corrupt {
                offset: beta_at as u64
            }
        );
    }

    #[test]
    fn header_only_and_truncated_header_parse_safely() {
        let mut buf = Vec::new();
        put_header(&mut buf, SNAP_MAGIC, 3);
        assert_eq!(read_records(&buf), (Vec::new(), Tail::Clean));
        assert_eq!(read_header(&buf[..9], SNAP_MAGIC), None);
        let (records, tail) = read_records(&buf[..9]);
        assert!(records.is_empty());
        // A file shorter than its own header is torn at the header
        // boundary; recovery treats it as an empty segment.
        assert_eq!(tail, Tail::Torn { offset: 9 });
    }
}
