//! # fairkm-store
//!
//! Crash-safe durability for the FairKM engines: a pluggable
//! [`StorageBackend`] (real filesystem with atomic renames and explicit
//! fsyncs, or a deterministic fault-injecting in-memory "disk"), a
//! CRC-framed record format, and [`DurableStore`] — checksummed snapshots
//! plus a segmented write-ahead log with torn-tail-truncating recovery.
//!
//! The crate is std-only and knows nothing about clustering: payloads are
//! opaque bytes. `fairkm-core` persists the streaming engine through it,
//! `fairkm-shard` journals the coordinator's mutation log through it, and
//! `fairkm-sim` crashes it on purpose.
//!
//! Design contract (shared with the simulator suite): recovery either
//! reproduces the uninterrupted run **bitwise** from the surviving durable
//! prefix, or fails with a typed [`StoreError`] — never a panic, never
//! silently wrong bits.
//!
//! ```
//! use fairkm_store::{DurableStore, MemBackend};
//!
//! let (mut store, recovered) = DurableStore::open(MemBackend::new()).unwrap();
//! assert!(recovered.entries.is_empty());
//! store.append(b"op 0").unwrap();
//! store.sync().unwrap(); // durable from here on
//! store.snapshot(b"state after op 0").unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod crc;
mod error;
mod frame;
mod store;

pub use backend::{
    BitFlip, FaultPlan, FsBackend, MemBackend, SharedMemBackend, StorageBackend, SyncMemBackend,
    TornWrite,
};
pub use crc::crc32;
pub use error::StoreError;
pub use frame::{Tail, SNAP_MAGIC, WAL_MAGIC};
pub use store::{DurableStore, FileCheck, Recovered, VerifyReport, RETAINED_SNAPSHOTS};
