//! Pluggable storage backends: the [`StorageBackend`] trait, a real
//! filesystem implementation with atomic-rename snapshot writes and
//! explicit fsync discipline, and a deterministic fault-injecting
//! in-memory implementation for crash testing.

use crate::error::StoreError;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

/// A flat namespace of named byte files with the three durability
/// primitives the format layer needs: atomic whole-file replacement,
/// append, and sync. Object-safe, so drivers can hold
/// `Box<dyn StorageBackend>`.
///
/// Durability contract:
/// - [`write_atomic`](Self::write_atomic) either installs the complete new
///   content durably or leaves the previous content untouched — readers
///   never observe a half-written file under this name.
/// - [`append`](Self::append) extends a file but guarantees nothing about
///   durability until [`sync`](Self::sync) returns; a crash between the
///   two may keep any prefix of the appended bytes (a *torn write*) and
///   loses any unsynced suffix.
pub trait StorageBackend: std::fmt::Debug {
    /// Full contents of `name`, or `None` if it does not exist.
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StoreError>;

    /// Atomically replace (or create) `name` with `bytes`, durably.
    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError>;

    /// Append `bytes` to `name` (creating it empty first if absent).
    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError>;

    /// Make every byte previously appended to `name` durable.
    fn sync(&mut self, name: &str) -> Result<(), StoreError>;

    /// All file names, sorted ascending.
    fn list(&self) -> Result<Vec<String>, StoreError>;

    /// Delete `name` (a no-op if it does not exist).
    fn remove(&mut self, name: &str) -> Result<(), StoreError>;
}

impl StorageBackend for Box<dyn StorageBackend> {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StoreError> {
        (**self).read(name)
    }
    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        (**self).write_atomic(name, bytes)
    }
    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        (**self).append(name, bytes)
    }
    fn sync(&mut self, name: &str) -> Result<(), StoreError> {
        (**self).sync(name)
    }
    fn list(&self) -> Result<Vec<String>, StoreError> {
        (**self).list()
    }
    fn remove(&mut self, name: &str) -> Result<(), StoreError> {
        (**self).remove(name)
    }
}

/// Real files under one directory.
///
/// - `write_atomic` = write to a dot-prefixed temp file, `fsync` it,
///   `rename` over the target, then `fsync` the parent directory so the
///   rename itself is durable.
/// - `append`/`sync` = `O_APPEND` writes plus an explicit `File::sync_all`.
/// - Dot-prefixed names are reserved for temp files and never listed, so a
///   crash mid-`write_atomic` leaves at worst an ignored orphan.
#[derive(Debug)]
pub struct FsBackend {
    dir: PathBuf,
}

impl FsBackend {
    /// Open (creating if needed) the directory the files live in.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| StoreError::io("create_dir", dir.display().to_string(), e))?;
        Ok(Self { dir })
    }

    /// The backing directory.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    /// Flush the directory entry table itself — on Linux, renames and
    /// creations are only durable once the parent directory is synced.
    fn sync_dir(&self) -> Result<(), StoreError> {
        let dir = std::fs::File::open(&self.dir)
            .map_err(|e| StoreError::io("open_dir", self.dir.display().to_string(), e))?;
        dir.sync_all()
            .map_err(|e| StoreError::io("fsync_dir", self.dir.display().to_string(), e))
    }
}

impl StorageBackend for FsBackend {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StoreError> {
        match std::fs::read(self.path(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(StoreError::io("read", name, e)),
        }
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        let tmp_name = format!(".{name}.tmp");
        let tmp = self.path(&tmp_name);
        {
            let mut f = std::fs::File::create(&tmp)
                .map_err(|e| StoreError::io("create", tmp_name.clone(), e))?;
            f.write_all(bytes)
                .map_err(|e| StoreError::io("write", tmp_name.clone(), e))?;
            f.sync_all()
                .map_err(|e| StoreError::io("fsync", tmp_name.clone(), e))?;
        }
        std::fs::rename(&tmp, self.path(name)).map_err(|e| StoreError::io("rename", name, e))?;
        self.sync_dir()
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        let created = !self.path(name).exists();
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))
            .map_err(|e| StoreError::io("open", name, e))?;
        f.write_all(bytes)
            .map_err(|e| StoreError::io("append", name, e))?;
        if created {
            // Make the new directory entry durable alongside its first
            // bytes' eventual sync.
            self.sync_dir()?;
        }
        Ok(())
    }

    fn sync(&mut self, name: &str) -> Result<(), StoreError> {
        let f = std::fs::OpenOptions::new()
            .append(true)
            .open(self.path(name))
            .map_err(|e| StoreError::io("open", name, e))?;
        f.sync_all().map_err(|e| StoreError::io("fsync", name, e))
    }

    fn list(&self) -> Result<Vec<String>, StoreError> {
        let mut names = Vec::new();
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| StoreError::io("read_dir", self.dir.display().to_string(), e))?;
        for entry in entries {
            let entry =
                entry.map_err(|e| StoreError::io("read_dir", self.dir.display().to_string(), e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if !name.starts_with('.') {
                names.push(name);
            }
        }
        names.sort();
        Ok(names)
    }

    fn remove(&mut self, name: &str) -> Result<(), StoreError> {
        match std::fs::remove_file(self.path(name)) {
            Ok(()) => self.sync_dir(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StoreError::io("remove", name, e)),
        }
    }
}

/// A torn append: on the `at_op`-th mutating operation (1-based, counting
/// `append` and `write_atomic` calls), keep only the first `keep` bytes of
/// the payload and crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornWrite {
    /// Which mutating operation tears (1-based).
    pub at_op: u64,
    /// Bytes of that operation's payload that reach the file.
    pub keep: usize,
}

/// A single bit flip applied to whatever survives the next crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitFlip {
    /// File to corrupt (a flip aimed at a missing file is a no-op).
    pub file: String,
    /// Byte offset within the file (out-of-range flips are no-ops).
    pub offset: usize,
    /// Bit index `0..8` within that byte.
    pub bit: u8,
}

/// Deterministic storage faults armed on a [`MemBackend`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// At most one torn write per plan (crashing ends the run anyway).
    pub torn: Option<TornWrite>,
    /// Bit flips applied at the next crash, after suffix loss.
    pub flips: Vec<BitFlip>,
}

#[derive(Debug, Clone, Default)]
struct MemFile {
    data: Vec<u8>,
    /// Bytes guaranteed to survive a crash (advanced by `sync` and by
    /// `write_atomic`, which is durable by contract).
    synced: usize,
}

/// Deterministic in-memory backend with fault injection: torn writes at a
/// chosen operation and byte offset, lost-unsynced-suffix on crash, and
/// single bit flips in the surviving bytes.
///
/// The crash model: [`crash`](Self::crash) throws away every byte past
/// each file's last sync point, applies the armed bit flips, and clears
/// the crashed flag so a recovering process can reopen the "disk". While
/// crashed (after a torn write fired), every operation returns
/// [`StoreError::Crashed`] — the simulated process is dead.
#[derive(Debug, Default)]
pub struct MemBackend {
    files: BTreeMap<String, MemFile>,
    plan: FaultPlan,
    ops: u64,
    crashed: bool,
}

impl MemBackend {
    /// A fault-free in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// A backend with a fault plan armed.
    pub fn with_faults(plan: FaultPlan) -> Self {
        Self {
            plan,
            ..Self::default()
        }
    }

    /// Arm (replace) the fault plan. The mutating-op counter restarts, so
    /// `TornWrite::at_op` counts from this call — arming mid-stream targets
    /// "the Nth write from now", not from backend construction.
    pub fn set_faults(&mut self, plan: FaultPlan) {
        self.plan = plan;
        self.ops = 0;
    }

    /// Whether a torn write has fired and the owner is "dead".
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Simulate a machine crash + restart: unsynced suffixes vanish, armed
    /// bit flips corrupt the survivors (then disarm), and the backend is
    /// usable again.
    pub fn crash(&mut self) {
        for file in self.files.values_mut() {
            file.data.truncate(file.synced);
        }
        for flip in std::mem::take(&mut self.plan.flips) {
            if let Some(file) = self.files.get_mut(&flip.file) {
                if let Some(byte) = file.data.get_mut(flip.offset) {
                    *byte ^= 1 << (flip.bit & 7);
                }
            }
        }
        self.crashed = false;
    }

    /// `Err(Crashed)` while dead; otherwise count the mutating op and
    /// report whether the armed torn write fires on it.
    fn gate(&mut self) -> Result<bool, StoreError> {
        if self.crashed {
            return Err(StoreError::Crashed);
        }
        self.ops += 1;
        Ok(self.plan.torn.is_some_and(|t| t.at_op == self.ops))
    }
}

impl StorageBackend for MemBackend {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StoreError> {
        if self.crashed {
            return Err(StoreError::Crashed);
        }
        Ok(self.files.get(name).map(|f| f.data.clone()))
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        if self.gate()? {
            // Atomic replacement that tears = the rename never happened:
            // the old content survives untouched.
            self.crashed = true;
            return Err(StoreError::Crashed);
        }
        let file = self.files.entry(name.to_string()).or_default();
        file.data = bytes.to_vec();
        file.synced = bytes.len();
        Ok(())
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        let torn = self.gate()?;
        let keep = if torn {
            self.plan.torn.map_or(0, |t| t.keep).min(bytes.len())
        } else {
            bytes.len()
        };
        let file = self.files.entry(name.to_string()).or_default();
        file.data.extend_from_slice(&bytes[..keep]);
        if torn {
            // The torn prefix reached the platter before the crash; the
            // sync point does NOT advance past it — `crash()` may still
            // shear it off unless the caller had synced earlier bytes.
            // Model the worst legal outcome: the prefix is visible now but
            // only `synced` bytes survive the crash.
            self.crashed = true;
            return Err(StoreError::Crashed);
        }
        Ok(())
    }

    fn sync(&mut self, name: &str) -> Result<(), StoreError> {
        if self.crashed {
            return Err(StoreError::Crashed);
        }
        if let Some(file) = self.files.get_mut(name) {
            file.synced = file.data.len();
        }
        Ok(())
    }

    fn list(&self) -> Result<Vec<String>, StoreError> {
        if self.crashed {
            return Err(StoreError::Crashed);
        }
        Ok(self.files.keys().cloned().collect())
    }

    fn remove(&mut self, name: &str) -> Result<(), StoreError> {
        if self.crashed {
            return Err(StoreError::Crashed);
        }
        self.files.remove(name);
        Ok(())
    }
}

/// A clonable handle to one [`MemBackend`] "disk", so a simulated node and
/// the simulator harness can share it: the node writes through its handle,
/// the harness injects the crash and hands a fresh handle to the recovered
/// node. Single-threaded by design (the simulator is deterministic and
/// sequential), hence `Rc`.
#[derive(Debug, Clone, Default)]
pub struct SharedMemBackend(Rc<RefCell<MemBackend>>);

impl SharedMemBackend {
    /// A fault-free shared disk.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm (replace) the underlying fault plan.
    pub fn set_faults(&self, plan: FaultPlan) {
        self.0.borrow_mut().set_faults(plan);
    }

    /// Whether the disk's owner tore a write and died.
    pub fn is_crashed(&self) -> bool {
        self.0.borrow().is_crashed()
    }

    /// Crash the disk: lose unsynced suffixes, apply armed flips, revive.
    pub fn crash(&self) {
        self.0.borrow_mut().crash();
    }
}

impl StorageBackend for SharedMemBackend {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StoreError> {
        self.0.borrow().read(name)
    }
    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        self.0.borrow_mut().write_atomic(name, bytes)
    }
    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        self.0.borrow_mut().append(name, bytes)
    }
    fn sync(&mut self, name: &str) -> Result<(), StoreError> {
        self.0.borrow_mut().sync(name)
    }
    fn list(&self) -> Result<Vec<String>, StoreError> {
        self.0.borrow().list()
    }
    fn remove(&mut self, name: &str) -> Result<(), StoreError> {
        self.0.borrow_mut().remove(name)
    }
}

/// The thread-safe sibling of [`SharedMemBackend`]: a clonable,
/// `Send + Sync` handle to one fault-injecting [`MemBackend`] "disk".
/// Built for the multi-threaded serving layer, where a tenant's durable
/// stream lives behind a mutex on one thread while the test harness arms
/// faults and triggers crashes from another. Same fault model, same
/// determinism: which operation tears is fixed by the armed
/// [`FaultPlan`], not by scheduling.
#[derive(Debug, Clone, Default)]
pub struct SyncMemBackend(Arc<Mutex<MemBackend>>);

impl SyncMemBackend {
    /// A fault-free shared disk.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemBackend> {
        // A panic while holding the lock leaves the fake disk in a valid
        // (if mid-operation) state; recovery code should still read it,
        // exactly like a real disk after a process crash.
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Arm (replace) the underlying fault plan.
    pub fn set_faults(&self, plan: FaultPlan) {
        self.lock().set_faults(plan);
    }

    /// Whether the disk's owner tore a write and died.
    pub fn is_crashed(&self) -> bool {
        self.lock().is_crashed()
    }

    /// Crash the disk: lose unsynced suffixes, apply armed flips, revive.
    pub fn crash(&self) {
        self.lock().crash();
    }
}

impl StorageBackend for SyncMemBackend {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StoreError> {
        self.lock().read(name)
    }
    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        self.lock().write_atomic(name, bytes)
    }
    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        self.lock().append(name, bytes)
    }
    fn sync(&mut self, name: &str) -> Result<(), StoreError> {
        self.lock().sync(name)
    }
    fn list(&self) -> Result<Vec<String>, StoreError> {
        self.lock().list()
    }
    fn remove(&mut self, name: &str) -> Result<(), StoreError> {
        self.lock().remove(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backend_round_trips() {
        let mut b = MemBackend::new();
        assert_eq!(b.read("a").unwrap(), None);
        b.append("a", b"hel").unwrap();
        b.append("a", b"lo").unwrap();
        assert_eq!(b.read("a").unwrap().as_deref(), Some(&b"hello"[..]));
        b.write_atomic("b", b"x").unwrap();
        assert_eq!(b.list().unwrap(), vec!["a".to_string(), "b".to_string()]);
        b.remove("a").unwrap();
        assert_eq!(b.list().unwrap(), vec!["b".to_string()]);
    }

    #[test]
    fn crash_loses_the_unsynced_suffix() {
        let mut b = MemBackend::new();
        b.append("log", b"durable").unwrap();
        b.sync("log").unwrap();
        b.append("log", b"volatile").unwrap();
        b.crash();
        assert_eq!(b.read("log").unwrap().as_deref(), Some(&b"durable"[..]));
    }

    #[test]
    fn torn_append_keeps_a_prefix_and_kills_the_owner() {
        let mut b = MemBackend::with_faults(FaultPlan {
            torn: Some(TornWrite { at_op: 2, keep: 3 }),
            flips: Vec::new(),
        });
        b.append("log", b"aaaa").unwrap();
        b.sync("log").unwrap();
        assert_eq!(b.append("log", b"bbbb"), Err(StoreError::Crashed));
        assert_eq!(b.append("log", b"cccc"), Err(StoreError::Crashed));
        b.crash();
        // The torn prefix was never synced, so the crash shears it too.
        assert_eq!(b.read("log").unwrap().as_deref(), Some(&b"aaaa"[..]));
    }

    #[test]
    fn torn_atomic_write_preserves_the_old_content() {
        let mut b = MemBackend::with_faults(FaultPlan {
            torn: Some(TornWrite { at_op: 2, keep: 1 }),
            flips: Vec::new(),
        });
        b.write_atomic("snap", b"old").unwrap();
        assert_eq!(b.write_atomic("snap", b"new"), Err(StoreError::Crashed));
        b.crash();
        assert_eq!(b.read("snap").unwrap().as_deref(), Some(&b"old"[..]));
    }

    #[test]
    fn bit_flips_apply_at_crash_then_disarm() {
        let mut b = MemBackend::with_faults(FaultPlan {
            torn: None,
            flips: vec![BitFlip {
                file: "f".into(),
                offset: 1,
                bit: 0,
            }],
        });
        b.write_atomic("f", &[0x10, 0x20]).unwrap();
        b.crash();
        assert_eq!(b.read("f").unwrap().as_deref(), Some(&[0x10, 0x21][..]));
        b.crash();
        assert_eq!(
            b.read("f").unwrap().as_deref(),
            Some(&[0x10, 0x21][..]),
            "flips fire once"
        );
    }

    #[test]
    fn shared_handles_see_one_disk() {
        let disk = SharedMemBackend::new();
        let mut a = disk.clone();
        a.append("x", b"1").unwrap();
        a.sync("x").unwrap();
        assert_eq!(disk.read("x").unwrap().as_deref(), Some(&b"1"[..]));
    }

    #[test]
    fn sync_handles_share_one_disk_across_threads() {
        let disk = SyncMemBackend::new();
        let mut writer = disk.clone();
        let handle = std::thread::spawn(move || {
            writer.append("x", b"from-thread").unwrap();
            writer.sync("x").unwrap();
        });
        handle.join().unwrap();
        assert_eq!(
            disk.read("x").unwrap().as_deref(),
            Some(&b"from-thread"[..])
        );
        // Same fault model as the single-threaded handle: a torn write
        // kills the owner, a crash shears the unsynced suffix.
        let mut w = disk.clone();
        w.append("x", b"-unsynced").unwrap();
        disk.set_faults(FaultPlan {
            torn: Some(TornWrite { at_op: 1, keep: 1 }),
            flips: Vec::new(),
        });
        assert!(matches!(w.append("x", b"zz"), Err(StoreError::Crashed)));
        assert!(disk.is_crashed());
        disk.crash();
        assert_eq!(
            disk.read("x").unwrap().as_deref(),
            Some(&b"from-thread"[..])
        );
    }

    #[test]
    fn fs_backend_round_trips_and_survives_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "fairkm-store-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut b = FsBackend::open(&dir).unwrap();
        b.write_atomic("snap", b"payload").unwrap();
        b.append("log", b"one").unwrap();
        b.append("log", b"two").unwrap();
        b.sync("log").unwrap();
        assert_eq!(
            b.list().unwrap(),
            vec!["log".to_string(), "snap".to_string()]
        );
        drop(b);
        let mut b = FsBackend::open(&dir).unwrap();
        assert_eq!(b.read("snap").unwrap().as_deref(), Some(&b"payload"[..]));
        assert_eq!(b.read("log").unwrap().as_deref(), Some(&b"onetwo"[..]));
        b.remove("log").unwrap();
        assert_eq!(b.read("log").unwrap(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
