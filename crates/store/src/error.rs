//! Typed storage errors. The acceptance contract of the durability layer
//! is that **every** corruption mode surfaces as one of these variants —
//! never a panic, never silently wrong bits.

/// Everything that can go wrong between a byte buffer and durable storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An operating-system I/O failure (open/write/fsync/rename/...).
    Io {
        /// The operation that failed (`"open"`, `"write"`, `"fsync"`, ...).
        op: &'static str,
        /// The file (or directory) involved.
        file: String,
        /// The OS error message.
        message: String,
    },
    /// The fault-injecting backend has simulated a crash: the process that
    /// owned this handle is "dead" and must go through recovery before
    /// touching storage again.
    Crashed,
    /// A file's magic header does not identify it as the expected format.
    BadMagic {
        /// The offending file.
        file: String,
    },
    /// A complete record is present but its CRC-32 does not match — a bit
    /// flip or overwrite, not a torn tail, so it is never truncated away.
    ChecksumMismatch {
        /// The offending file.
        file: String,
        /// Byte offset of the corrupt record's frame header.
        offset: u64,
    },
    /// A record frame claims more bytes than the file holds somewhere other
    /// than the replayable tail (mid-log truncation, or a torn tail in a
    /// sealed segment that later appends should have extended).
    TruncatedRecord {
        /// The offending file.
        file: String,
        /// Byte offset of the truncated record's frame header.
        offset: u64,
    },
    /// The write-ahead log does not cover the range a recovery base needs:
    /// entries `[expected, ..]` should exist but the segments jump to
    /// `found` (or end early).
    LogGap {
        /// First sequence number the recovery base requires.
        expected: u64,
        /// First sequence number actually available after the gap.
        found: u64,
    },
    /// No snapshot (and no seq-0 log coverage) survived verification —
    /// there is nothing to recover from.
    NoRecoveryBase {
        /// Why each candidate base was rejected, newest first.
        detail: String,
    },
    /// A file name or header is structurally invalid for its format
    /// (unparsable sequence number, header/name disagreement, trailing
    /// bytes after a snapshot record, ...).
    Corrupt {
        /// The offending file.
        file: String,
        /// What was wrong.
        detail: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { op, file, message } => {
                write!(f, "i/o failure during {op} on {file:?}: {message}")
            }
            StoreError::Crashed => write!(f, "storage handle crashed (simulated fault)"),
            StoreError::BadMagic { file } => write!(f, "{file:?}: bad magic header"),
            StoreError::ChecksumMismatch { file, offset } => {
                write!(f, "{file:?}: checksum mismatch at byte {offset}")
            }
            StoreError::TruncatedRecord { file, offset } => {
                write!(f, "{file:?}: truncated record at byte {offset}")
            }
            StoreError::LogGap { expected, found } => {
                write!(
                    f,
                    "write-ahead log gap: need entry {expected}, next is {found}"
                )
            }
            StoreError::NoRecoveryBase { detail } => {
                write!(f, "no usable recovery base: {detail}")
            }
            StoreError::Corrupt { file, detail } => write!(f, "{file:?}: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl StoreError {
    /// Wrap an OS error with the operation and file it hit.
    pub(crate) fn io(op: &'static str, file: impl Into<String>, err: std::io::Error) -> Self {
        StoreError::Io {
            op,
            file: file.into(),
            message: err.to_string(),
        }
    }
}
