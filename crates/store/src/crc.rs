//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the checksum
//! guarding every framed record. Hand-rolled over a const-built table so
//! the durability layer stays dependency-free.

/// The 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32/IEEE of `bytes` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_published_check_value() {
        // The CRC-32/IEEE check value for "123456789" is 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input_and_sensitivity() {
        assert_eq!(crc32(b""), 0);
        let a = crc32(b"fairkm");
        let b = crc32(b"fairkM");
        assert_ne!(a, b, "single-bit-ish change must move the checksum");
    }
}
