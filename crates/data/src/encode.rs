//! Numeric column normalization used when encoding the task matrix, plus
//! the frozen row encoder streaming ingestion scores new points through.

use crate::error::DataError;
use crate::schema::{AttrKind, Attribute};
use crate::value::Value;
use crate::wire::{self, WireError};
use crate::wire_io;

/// Normalization applied to each numeric non-sensitive column before
/// clustering.
///
/// The paper clusters over heterogeneous attributes (age vs. capital gain);
/// without per-column scaling the widest column dominates `dist_N`. ZScore
/// is the default across the reproduction harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Normalization {
    /// Use raw values.
    None,
    /// Subtract the column mean and divide by the (population) standard
    /// deviation. Constant columns map to all-zeros.
    #[default]
    ZScore,
    /// Rescale to `[0, 1]` by column minimum/maximum. Constant columns map
    /// to all-zeros.
    MinMax,
}

impl Normalization {
    /// Normalize `col` in place. Equivalent to fitting the column's codec
    /// (the crate-internal `NumCodec`) and encoding every value through it —
    /// the codec is the single source of truth, so a [`FrozenEncoder`]
    /// reproduces this output bit for bit on the rows it was fitted over.
    pub fn apply(self, col: &mut [f64]) {
        if col.is_empty() {
            return;
        }
        let codec = NumCodec::fit(self, col);
        for x in col.iter_mut() {
            *x = codec.encode(*x);
        }
    }
}

/// The exact affine map a [`Normalization`] applies to one numeric column,
/// captured so later rows can be encoded identically to the fitting corpus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum NumCodec {
    /// Raw pass-through ([`Normalization::None`]).
    Identity,
    /// `x ↦ (x − sub) · mul` — z-score (mean, 1/σ) or min-max (lo, 1/span).
    Affine { sub: f64, mul: f64 },
    /// Constant column: every value maps to 0.
    Zero,
}

impl NumCodec {
    /// Capture the transform `norm` would apply to `col`.
    pub(crate) fn fit(norm: Normalization, col: &[f64]) -> Self {
        match norm {
            Normalization::None => NumCodec::Identity,
            Normalization::ZScore => {
                if col.is_empty() {
                    return NumCodec::Zero;
                }
                let n = col.len() as f64;
                let mean = col.iter().sum::<f64>() / n;
                let var = col.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
                if var <= f64::EPSILON {
                    NumCodec::Zero
                } else {
                    NumCodec::Affine {
                        sub: mean,
                        mul: 1.0 / var.sqrt(),
                    }
                }
            }
            Normalization::MinMax => {
                if col.is_empty() {
                    return NumCodec::Zero;
                }
                let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for &x in col.iter() {
                    lo = lo.min(x);
                    hi = hi.max(x);
                }
                let span = hi - lo;
                if span <= f64::EPSILON {
                    NumCodec::Zero
                } else {
                    NumCodec::Affine {
                        sub: lo,
                        mul: 1.0 / span,
                    }
                }
            }
        }
    }

    /// Encode one value.
    #[inline]
    pub(crate) fn encode(self, x: f64) -> f64 {
        match self {
            NumCodec::Identity => x,
            NumCodec::Affine { sub, mul } => (x - sub) * mul,
            NumCodec::Zero => 0.0,
        }
    }
}

/// One task attribute inside a [`FrozenEncoder`]: its position in a full
/// row, its declaration, and the captured numeric transform (categorical
/// attributes one-hot encode and need no transform).
#[derive(Debug, Clone)]
pub(crate) struct EncoderSpec {
    pub(crate) position: usize,
    pub(crate) attr: Attribute,
    pub(crate) codec: Option<NumCodec>,
}

/// Row encoder with **frozen** per-column transforms.
///
/// [`crate::Dataset::task_matrix`] normalizes each numeric column against
/// the statistics of the rows present at encoding time, so the same row
/// encodes differently as the dataset grows. Streaming ingestion needs the
/// opposite: a transform captured once (at bootstrap) and applied
/// identically to every later row. A `FrozenEncoder` — built with
/// [`crate::Dataset::frozen_encoder`] — captures, per non-sensitive
/// attribute, the exact affine map the chosen [`Normalization`] applied;
/// encoding the fitting corpus's own rows reproduces the `task_matrix`
/// output bit for bit.
///
/// ```
/// use fairkm_data::{row, DatasetBuilder, Normalization, Role};
///
/// let mut b = DatasetBuilder::new();
/// b.numeric("x", Role::NonSensitive).unwrap();
/// b.categorical("g", Role::Sensitive, &["a", "b"]).unwrap();
/// b.push_row(row![1.0, "a"]).unwrap();
/// b.push_row(row![3.0, "b"]).unwrap();
/// let data = b.build().unwrap();
///
/// let encoder = data.frozen_encoder(Normalization::ZScore).unwrap();
/// let matrix = data.task_matrix(Normalization::ZScore).unwrap();
/// let encoded = encoder.encode_row(&row![1.0, "a"]).unwrap();
/// assert_eq!(encoded, matrix.row(0));
/// ```
#[derive(Debug, Clone)]
pub struct FrozenEncoder {
    specs: Vec<EncoderSpec>,
    arity: usize,
    cols: usize,
}

impl FrozenEncoder {
    pub(crate) fn from_specs(specs: Vec<EncoderSpec>, arity: usize) -> Self {
        let cols = specs
            .iter()
            .map(|s| s.attr.kind.cardinality().unwrap_or(1))
            .sum();
        Self { specs, arity, cols }
    }

    /// Number of encoded output columns (one-hot blocks expanded).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Serialize the frozen per-column transforms into the wire format used
    /// by durable snapshots. Codec parameters travel as raw IEEE-754 bits,
    /// so a restored encoder reproduces encodings **bitwise**.
    pub fn to_wire_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        wire::put_usize(&mut out, self.arity);
        wire::put_usize(&mut out, self.specs.len());
        for spec in &self.specs {
            wire::put_usize(&mut out, spec.position);
            wire_io::put_attribute(&mut out, &spec.attr);
            match spec.codec {
                None => out.push(0),
                Some(NumCodec::Identity) => out.push(1),
                Some(NumCodec::Affine { sub, mul }) => {
                    out.push(2);
                    wire::put_f64(&mut out, sub);
                    wire::put_f64(&mut out, mul);
                }
                Some(NumCodec::Zero) => out.push(3),
            }
        }
        out
    }

    /// Decode an encoder written by [`FrozenEncoder::to_wire_bytes`].
    /// Truncated or malformed input surfaces as a typed [`WireError`].
    pub fn from_wire_bytes(bytes: &[u8]) -> Result<FrozenEncoder, WireError> {
        let mut r = wire::Reader::new(bytes);
        let arity = r.get_usize()?;
        // Each spec costs at least its 8-byte position prefix.
        let n = r.get_len(8)?;
        let mut specs = Vec::with_capacity(n);
        for _ in 0..n {
            let position = r.get_usize()?;
            let attr = wire_io::get_attribute(&mut r)?;
            let codec = match r.take(1)?[0] {
                0 => None,
                1 => Some(NumCodec::Identity),
                2 => Some(NumCodec::Affine {
                    sub: r.get_f64()?,
                    mul: r.get_f64()?,
                }),
                3 => Some(NumCodec::Zero),
                t => {
                    return Err(WireError::UnknownTag {
                        what: "numeric codec",
                        tag: t as u64,
                    })
                }
            };
            // The invariant from `frozen_encoder`: numeric specs carry a
            // codec, categorical specs don't.
            if attr.kind.is_categorical() != codec.is_none() {
                return Err(WireError::Invalid {
                    what: "codec vs attribute kind",
                });
            }
            if position >= arity {
                return Err(WireError::Invalid {
                    what: "spec position",
                });
            }
            specs.push(EncoderSpec {
                position,
                attr,
                codec,
            });
        }
        r.expect_empty()?;
        Ok(FrozenEncoder::from_specs(specs, arity))
    }

    /// Number of cells a full input row must have (every schema attribute,
    /// positionally — sensitive and auxiliary cells are skipped, not
    /// encoded).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Encode one full row into the frozen task space. Validates the task
    /// cells exactly like [`crate::DatasetBuilder::push_row`] (type match,
    /// finite numerics, known categories).
    pub fn encode_row(&self, row: &[Value]) -> Result<Vec<f64>, DataError> {
        if row.len() != self.arity {
            return Err(DataError::RowArity {
                expected: self.arity,
                got: row.len(),
            });
        }
        let mut out = Vec::with_capacity(self.cols);
        for spec in &self.specs {
            let cell = &row[spec.position];
            match (&spec.attr.kind, spec.codec) {
                (AttrKind::Numeric, Some(codec)) => {
                    // row index 0 in errors: an encoder row has no global
                    // position (callers report batch context themselves)
                    out.push(codec.encode(spec.attr.resolve_numeric(cell, 0)?));
                }
                (AttrKind::Categorical { values }, _) => {
                    let idx = spec.attr.resolve_categorical(cell)?;
                    for v in 0..values.len() as u32 {
                        out.push(if v == idx { 1.0 } else { 0.0 });
                    }
                }
                (AttrKind::Numeric, None) => unreachable!("numeric specs always carry a codec"),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frozen_encoder_wire_round_trip_is_bitwise() {
        use crate::builder::DatasetBuilder;
        use crate::row;
        use crate::schema::Role;

        let mut b = DatasetBuilder::new();
        b.numeric("x", Role::NonSensitive).unwrap();
        b.categorical("color", Role::NonSensitive, &["red", "blue"])
            .unwrap();
        b.categorical("g", Role::Sensitive, &["a", "b"]).unwrap();
        b.push_row(row![1.0, "red", "a"]).unwrap();
        b.push_row(row![3.0, "blue", "b"]).unwrap();
        let d = b.build().unwrap();

        for norm in [
            Normalization::None,
            Normalization::ZScore,
            Normalization::MinMax,
        ] {
            let enc = d.frozen_encoder(norm).unwrap();
            let bytes = enc.to_wire_bytes();
            let back = FrozenEncoder::from_wire_bytes(&bytes).unwrap();
            assert_eq!(bytes, back.to_wire_bytes());
            let row = row![2.5, "blue", "a"];
            let a = enc.encode_row(&row).unwrap();
            let b2 = back.encode_row(&row).unwrap();
            assert_eq!(
                a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                b2.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
            for cut in 0..bytes.len() {
                assert!(FrozenEncoder::from_wire_bytes(&bytes[..cut]).is_err());
            }
        }
    }

    #[test]
    fn zscore_centers_and_scales() {
        let mut c = vec![2.0, 4.0, 6.0, 8.0];
        Normalization::ZScore.apply(&mut c);
        let mean: f64 = c.iter().sum::<f64>() / 4.0;
        let var: f64 = c.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zscore_constant_column_is_zeroed() {
        let mut c = vec![5.0; 7];
        Normalization::ZScore.apply(&mut c);
        assert!(c.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn minmax_maps_to_unit_interval() {
        let mut c = vec![10.0, 20.0, 15.0];
        Normalization::MinMax.apply(&mut c);
        assert_eq!(c, vec![0.0, 1.0, 0.5]);
    }

    #[test]
    fn minmax_constant_column_is_zeroed() {
        let mut c = vec![3.0; 4];
        Normalization::MinMax.apply(&mut c);
        assert!(c.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn none_is_identity() {
        let mut c = vec![1.0, -2.0];
        Normalization::None.apply(&mut c);
        assert_eq!(c, vec![1.0, -2.0]);
    }

    #[test]
    fn empty_columns_are_fine() {
        let mut c: Vec<f64> = vec![];
        Normalization::ZScore.apply(&mut c);
        Normalization::MinMax.apply(&mut c);
        assert!(c.is_empty());
    }

    mod frozen {
        use super::super::*;
        use crate::builder::DatasetBuilder;
        use crate::schema::Role;
        use crate::{row, Dataset};

        fn sample() -> Dataset {
            let mut b = DatasetBuilder::new();
            b.numeric("x", Role::NonSensitive).unwrap();
            b.categorical("color", Role::NonSensitive, &["red", "blue"])
                .unwrap();
            b.categorical("g", Role::Sensitive, &["a", "b"]).unwrap();
            b.numeric("flat", Role::NonSensitive).unwrap();
            b.push_row(row![1.0, "red", "a", 7.0]).unwrap();
            b.push_row(row![4.0, "blue", "b", 7.0]).unwrap();
            b.push_row(row![7.0, "red", "a", 7.0]).unwrap();
            b.build().unwrap()
        }

        #[test]
        fn encoding_fitting_rows_matches_task_matrix_bitwise() {
            let d = sample();
            for norm in [
                Normalization::None,
                Normalization::ZScore,
                Normalization::MinMax,
            ] {
                let enc = d.frozen_encoder(norm).unwrap();
                let m = d.task_matrix(norm).unwrap();
                assert_eq!(enc.cols(), m.cols());
                for r in 0..d.n_rows() {
                    let cells: Vec<Value> = d
                        .schema()
                        .iter()
                        .map(|(id, _)| d.value(r, id).unwrap())
                        .collect();
                    let encoded = enc.encode_row(&cells).unwrap();
                    for (a, b) in encoded.iter().zip(m.row(r)) {
                        assert_eq!(a.to_bits(), b.to_bits(), "norm {norm:?} row {r}");
                    }
                }
            }
        }

        #[test]
        fn later_rows_use_the_frozen_transform() {
            let d = sample();
            let enc = d.frozen_encoder(Normalization::MinMax).unwrap();
            // x spans [1, 7] at fit time; 13 maps past 1.0 instead of being
            // re-scaled into [0, 1].
            let cells = row![13.0, "red", "b", 7.0];
            let out = enc.encode_row(&cells).unwrap();
            assert_eq!(out[0], 2.0);
            // the constant column stays pinned to 0 regardless of the value
            assert_eq!(out[3], 0.0);
        }

        #[test]
        fn encode_row_validates_cells() {
            let d = sample();
            let enc = d.frozen_encoder(Normalization::ZScore).unwrap();
            let unknown = row![1.0, "green", "a", 7.0];
            assert!(matches!(
                enc.encode_row(&unknown),
                Err(DataError::UnknownCategory { .. })
            ));
            let non_finite = row![f64::NAN, "red", "a", 7.0];
            assert!(matches!(
                enc.encode_row(&non_finite),
                Err(DataError::NonFiniteValue { .. })
            ));
            let mismatched = row!["red", 1.0, "a", 7.0];
            assert!(matches!(
                enc.encode_row(&mismatched),
                Err(DataError::TypeMismatch { .. })
            ));
            let short = row![1.0, "red", "a"];
            assert!(matches!(
                enc.encode_row(&short),
                Err(DataError::RowArity { .. })
            ));
        }

        #[test]
        fn sensitive_only_schema_has_no_encoder() {
            let mut b = DatasetBuilder::new();
            b.categorical("g", Role::Sensitive, &["a", "b"]).unwrap();
            b.push_row(row!["a"]).unwrap();
            let d = b.build().unwrap();
            assert!(matches!(
                d.frozen_encoder(Normalization::ZScore),
                Err(DataError::EmptyView(_))
            ));
        }
    }
}
