//! Numeric column normalization used when encoding the task matrix.

/// Normalization applied to each numeric non-sensitive column before
/// clustering.
///
/// The paper clusters over heterogeneous attributes (age vs. capital gain);
/// without per-column scaling the widest column dominates `dist_N`. ZScore
/// is the default across the reproduction harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Normalization {
    /// Use raw values.
    None,
    /// Subtract the column mean and divide by the (population) standard
    /// deviation. Constant columns map to all-zeros.
    #[default]
    ZScore,
    /// Rescale to `[0, 1]` by column minimum/maximum. Constant columns map
    /// to all-zeros.
    MinMax,
}

impl Normalization {
    /// Normalize `col` in place.
    pub fn apply(self, col: &mut [f64]) {
        match self {
            Normalization::None => {}
            Normalization::ZScore => zscore(col),
            Normalization::MinMax => minmax(col),
        }
    }
}

fn zscore(col: &mut [f64]) {
    if col.is_empty() {
        return;
    }
    let n = col.len() as f64;
    let mean = col.iter().sum::<f64>() / n;
    let var = col.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    if var <= f64::EPSILON {
        col.fill(0.0);
        return;
    }
    let inv_sd = 1.0 / var.sqrt();
    for x in col.iter_mut() {
        *x = (*x - mean) * inv_sd;
    }
}

fn minmax(col: &mut [f64]) {
    if col.is_empty() {
        return;
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &x in col.iter() {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    let span = hi - lo;
    if span <= f64::EPSILON {
        col.fill(0.0);
        return;
    }
    let inv = 1.0 / span;
    for x in col.iter_mut() {
        *x = (*x - lo) * inv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zscore_centers_and_scales() {
        let mut c = vec![2.0, 4.0, 6.0, 8.0];
        Normalization::ZScore.apply(&mut c);
        let mean: f64 = c.iter().sum::<f64>() / 4.0;
        let var: f64 = c.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zscore_constant_column_is_zeroed() {
        let mut c = vec![5.0; 7];
        Normalization::ZScore.apply(&mut c);
        assert!(c.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn minmax_maps_to_unit_interval() {
        let mut c = vec![10.0, 20.0, 15.0];
        Normalization::MinMax.apply(&mut c);
        assert_eq!(c, vec![0.0, 1.0, 0.5]);
    }

    #[test]
    fn minmax_constant_column_is_zeroed() {
        let mut c = vec![3.0; 4];
        Normalization::MinMax.apply(&mut c);
        assert!(c.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn none_is_identity() {
        let mut c = vec![1.0, -2.0];
        Normalization::None.apply(&mut c);
        assert_eq!(c, vec![1.0, -2.0]);
    }

    #[test]
    fn empty_columns_are_fine() {
        let mut c: Vec<f64> = vec![];
        Normalization::ZScore.apply(&mut c);
        Normalization::MinMax.apply(&mut c);
        assert!(c.is_empty());
    }
}
