//! Attribute declarations: names, kinds and fairness roles.

use crate::error::DataError;
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// Stable handle for an attribute within one [`Schema`].
///
/// Ids are dense indices assigned in declaration order, so they can be used
/// to index parallel per-attribute arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttrId(pub usize);

impl AttrId {
    /// The dense index backing this id.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Fairness role of an attribute (§3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// Task-relevant attribute; cluster coherence is measured over these
    /// (the set `N`).
    NonSensitive,
    /// Attribute over which representational fairness must hold (the set
    /// `S`).
    Sensitive,
    /// Carried through the pipeline but excluded from both clustering and
    /// fairness (e.g. the Adult income label, used only for undersampling).
    Auxiliary,
}

impl Role {
    /// Short lowercase tag used in CSV headers and reports.
    pub fn tag(self) -> &'static str {
        match self {
            Role::NonSensitive => "n",
            Role::Sensitive => "s",
            Role::Auxiliary => "aux",
        }
    }
}

/// The kind of data an attribute stores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttrKind {
    /// Real-valued attribute.
    Numeric,
    /// Multi-valued (categorical) attribute with a fixed domain of labels.
    /// Binary attributes are simply categorical attributes with two values.
    Categorical {
        /// The permissible value labels, in index order.
        values: Vec<String>,
    },
}

impl AttrKind {
    /// Number of distinct values (`|Values(S)|` in the paper); `None` for
    /// numeric attributes.
    pub fn cardinality(&self) -> Option<usize> {
        match self {
            AttrKind::Numeric => None,
            AttrKind::Categorical { values } => Some(values.len()),
        }
    }

    /// Whether this is a categorical kind.
    pub fn is_categorical(&self) -> bool {
        matches!(self, AttrKind::Categorical { .. })
    }
}

/// A single attribute declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attribute {
    /// Unique (within a schema) attribute name.
    pub name: String,
    /// Fairness role.
    pub role: Role,
    /// Data kind.
    pub kind: AttrKind,
}

impl Attribute {
    /// Resolve a categorical label to its dense value index.
    pub fn value_index(&self, label: &str) -> Option<u32> {
        match &self.kind {
            AttrKind::Numeric => None,
            AttrKind::Categorical { values } => {
                values.iter().position(|v| v == label).map(|i| i as u32)
            }
        }
    }

    /// Label for a dense value index, if this attribute is categorical and
    /// the index is in range.
    pub fn label(&self, index: u32) -> Option<&str> {
        match &self.kind {
            AttrKind::Numeric => None,
            AttrKind::Categorical { values } => values.get(index as usize).map(String::as_str),
        }
    }

    /// Resolve a cell against this **categorical** attribute: labels are
    /// looked up in the domain, indices range-checked. The single
    /// validation authority shared by dataset building/appending, frozen
    /// row encoding, and streaming ingestion.
    pub fn resolve_categorical(&self, value: &Value) -> Result<u32, DataError> {
        let AttrKind::Categorical { values } = &self.kind else {
            return Err(DataError::TypeMismatch {
                attribute: self.name.clone(),
                expected: "a categorical attribute",
            });
        };
        match value {
            Value::Label(label) => {
                self.value_index(label)
                    .ok_or_else(|| DataError::UnknownCategory {
                        attribute: self.name.clone(),
                        value: label.clone(),
                    })
            }
            Value::CatIndex(i) if (*i as usize) < values.len() => Ok(*i),
            Value::CatIndex(i) => Err(DataError::UnknownCategory {
                attribute: self.name.clone(),
                value: format!("#{i}"),
            }),
            Value::Num(_) => Err(DataError::TypeMismatch {
                attribute: self.name.clone(),
                expected: "a categorical label",
            }),
        }
    }

    /// Resolve a cell against this **numeric** attribute (type + finiteness
    /// check). `row` only feeds the error message.
    pub fn resolve_numeric(&self, value: &Value, row: usize) -> Result<f64, DataError> {
        match value {
            Value::Num(x) if x.is_finite() => Ok(*x),
            Value::Num(_) => Err(DataError::NonFiniteValue {
                attribute: self.name.clone(),
                row,
            }),
            _ => Err(DataError::TypeMismatch {
                attribute: self.name.clone(),
                expected: "a numeric value",
            }),
        }
    }
}

/// An ordered collection of attribute declarations.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Schema {
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an attribute, validating name uniqueness and domain sanity.
    pub fn push(&mut self, attr: Attribute) -> Result<AttrId, DataError> {
        if self.attrs.iter().any(|a| a.name == attr.name) {
            return Err(DataError::DuplicateAttribute(attr.name));
        }
        if let AttrKind::Categorical { values } = &attr.kind {
            if values.is_empty() {
                return Err(DataError::EmptyDomain(attr.name));
            }
            for (i, v) in values.iter().enumerate() {
                if values[..i].contains(v) {
                    return Err(DataError::DuplicateCategory {
                        attribute: attr.name,
                        value: v.clone(),
                    });
                }
            }
        }
        let id = AttrId(self.attrs.len());
        self.attrs.push(attr);
        Ok(id)
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Whether the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Attribute by id.
    pub fn attr(&self, id: AttrId) -> Result<&Attribute, DataError> {
        self.attrs.get(id.0).ok_or(DataError::NoSuchAttribute(id.0))
    }

    /// Attribute by name.
    pub fn attr_by_name(&self, name: &str) -> Option<(AttrId, &Attribute)> {
        self.attrs
            .iter()
            .enumerate()
            .find(|(_, a)| a.name == name)
            .map(|(i, a)| (AttrId(i), a))
    }

    /// Iterate `(id, attribute)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &Attribute)> {
        self.attrs.iter().enumerate().map(|(i, a)| (AttrId(i), a))
    }

    /// Ids of all attributes with the given role, in declaration order.
    pub fn ids_with_role(&self, role: Role) -> Vec<AttrId> {
        self.iter()
            .filter(|(_, a)| a.role == role)
            .map(|(id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cat(name: &str, role: Role, values: &[&str]) -> Attribute {
        Attribute {
            name: name.to_string(),
            role,
            kind: AttrKind::Categorical {
                values: values.iter().map(|s| s.to_string()).collect(),
            },
        }
    }

    #[test]
    fn push_assigns_dense_ids() {
        let mut s = Schema::new();
        let a = s
            .push(Attribute {
                name: "x".into(),
                role: Role::NonSensitive,
                kind: AttrKind::Numeric,
            })
            .unwrap();
        let b = s.push(cat("g", Role::Sensitive, &["a", "b"])).unwrap();
        assert_eq!((a, b), (AttrId(0), AttrId(1)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut s = Schema::new();
        s.push(cat("g", Role::Sensitive, &["a"])).unwrap();
        let err = s.push(cat("g", Role::Sensitive, &["a"])).unwrap_err();
        assert_eq!(err, DataError::DuplicateAttribute("g".into()));
    }

    #[test]
    fn empty_domain_rejected() {
        let mut s = Schema::new();
        let err = s.push(cat("g", Role::Sensitive, &[])).unwrap_err();
        assert_eq!(err, DataError::EmptyDomain("g".into()));
    }

    #[test]
    fn duplicate_category_rejected() {
        let mut s = Schema::new();
        let err = s.push(cat("g", Role::Sensitive, &["a", "a"])).unwrap_err();
        assert!(matches!(err, DataError::DuplicateCategory { .. }));
    }

    #[test]
    fn value_index_roundtrip() {
        let a = cat("g", Role::Sensitive, &["low", "mid", "high"]);
        assert_eq!(a.value_index("mid"), Some(1));
        assert_eq!(a.label(2), Some("high"));
        assert_eq!(a.value_index("absent"), None);
        assert_eq!(a.label(9), None);
    }

    #[test]
    fn ids_with_role_filters() {
        let mut s = Schema::new();
        s.push(Attribute {
            name: "x".into(),
            role: Role::NonSensitive,
            kind: AttrKind::Numeric,
        })
        .unwrap();
        s.push(cat("g", Role::Sensitive, &["a", "b"])).unwrap();
        s.push(cat("h", Role::Sensitive, &["c", "d"])).unwrap();
        assert_eq!(s.ids_with_role(Role::Sensitive), vec![AttrId(1), AttrId(2)]);
        assert_eq!(s.ids_with_role(Role::Auxiliary), vec![]);
    }
}
