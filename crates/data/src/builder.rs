//! Row-by-row dataset construction with validation at push time.

use crate::dataset::{Column, Dataset};
use crate::error::DataError;
use crate::schema::{AttrId, AttrKind, Attribute, Role, Schema};
use crate::value::Value;

/// Builds a [`Dataset`]: declare attributes first, then push rows.
///
/// Validation happens eagerly — a bad cell is rejected at
/// [`DatasetBuilder::push_row`] with the attribute name in the error, and
/// the schema freezes once the first row is in.
///
/// ```
/// use fairkm_data::{row, DatasetBuilder, Role};
///
/// let mut b = DatasetBuilder::new();
/// b.numeric("income", Role::NonSensitive).unwrap();
/// b.categorical("gender", Role::Sensitive, &["female", "male"]).unwrap();
/// b.binary("migrant", Role::Sensitive).unwrap();
///
/// b.push_row(row![52_000.0, "female", true]).unwrap();
/// b.push_row(row![48_500.0, "male", false]).unwrap();
/// // A cell outside the declared domain is rejected, builder unchanged:
/// assert!(b.push_row(row![61_000.0, "unknown", false]).is_err());
/// assert_eq!(b.n_rows(), 2);
///
/// let data = b.build().unwrap();
/// assert_eq!(data.n_rows(), 2);
/// ```
#[derive(Debug, Default)]
pub struct DatasetBuilder {
    schema: Schema,
    columns: Vec<Column>,
    n_rows: usize,
}

impl DatasetBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a numeric attribute.
    pub fn numeric(&mut self, name: &str, role: Role) -> Result<AttrId, DataError> {
        self.declare(Attribute {
            name: name.to_string(),
            role,
            kind: AttrKind::Numeric,
        })
    }

    /// Declare a categorical attribute with the given domain.
    pub fn categorical(
        &mut self,
        name: &str,
        role: Role,
        values: &[&str],
    ) -> Result<AttrId, DataError> {
        self.declare(Attribute {
            name: name.to_string(),
            role,
            kind: AttrKind::Categorical {
                values: values.iter().map(|s| s.to_string()).collect(),
            },
        })
    }

    /// Declare a binary attribute with domain `["false", "true"]`, so
    /// `bool` literals work in [`crate::row!`].
    pub fn binary(&mut self, name: &str, role: Role) -> Result<AttrId, DataError> {
        self.categorical(name, role, &["false", "true"])
    }

    /// Declare an attribute from a full [`Attribute`] value.
    pub fn declare(&mut self, attr: Attribute) -> Result<AttrId, DataError> {
        if self.n_rows > 0 {
            return Err(DataError::SchemaFrozen);
        }
        let col = match &attr.kind {
            AttrKind::Numeric => Column::Num(Vec::new()),
            AttrKind::Categorical { .. } => Column::Cat(Vec::new()),
        };
        let id = self.schema.push(attr)?;
        self.columns.push(col);
        Ok(id)
    }

    /// Number of rows pushed so far.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// The schema as declared so far.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Push one row; cells must match the schema positionally.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<(), DataError> {
        if row.len() != self.schema.len() {
            return Err(DataError::RowArity {
                expected: self.schema.len(),
                got: row.len(),
            });
        }
        // Validate all cells before mutating any column, so a failed push
        // leaves the builder unchanged.
        let mut resolved: Vec<ResolvedCell> = Vec::with_capacity(row.len());
        for (value, (_, attr)) in row.into_iter().zip(self.schema.iter()) {
            resolved.push(resolve(value, attr, self.n_rows)?);
        }
        for (cell, col) in resolved.into_iter().zip(self.columns.iter_mut()) {
            match (cell, col) {
                (ResolvedCell::Num(x), Column::Num(v)) => v.push(x),
                (ResolvedCell::Cat(i), Column::Cat(v)) => v.push(i),
                _ => unreachable!("resolve() returns the column's kind"),
            }
        }
        self.n_rows += 1;
        Ok(())
    }

    /// Finish building. Fails on an empty schema.
    pub fn build(self) -> Result<Dataset, DataError> {
        if self.schema.is_empty() {
            return Err(DataError::EmptyView("build"));
        }
        Ok(Dataset::from_parts(self.schema, self.columns, self.n_rows))
    }
}

/// A validated cell, ready to push into its column. Shared with
/// [`crate::Dataset::append_row`] so append-time validation is identical to
/// build-time validation.
pub(crate) enum ResolvedCell {
    Num(f64),
    Cat(u32),
}

pub(crate) fn resolve(
    value: Value,
    attr: &Attribute,
    row: usize,
) -> Result<ResolvedCell, DataError> {
    match &attr.kind {
        AttrKind::Numeric => Ok(ResolvedCell::Num(attr.resolve_numeric(&value, row)?)),
        AttrKind::Categorical { .. } => Ok(ResolvedCell::Cat(attr.resolve_categorical(&value)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    #[test]
    fn happy_path() {
        let mut b = DatasetBuilder::new();
        b.numeric("x", Role::NonSensitive).unwrap();
        b.categorical("g", Role::Sensitive, &["a", "b"]).unwrap();
        b.push_row(row![1.0, "a"]).unwrap();
        b.push_row(row![2.0, Value::CatIndex(1)]).unwrap();
        let d = b.build().unwrap();
        assert_eq!(d.n_rows(), 2);
        assert_eq!(d.categorical_column(AttrId(1)).unwrap(), &[0, 1]);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut b = DatasetBuilder::new();
        b.numeric("x", Role::NonSensitive).unwrap();
        let err = b.push_row(row![1.0, 2.0]).unwrap_err();
        assert_eq!(
            err,
            DataError::RowArity {
                expected: 1,
                got: 2
            }
        );
    }

    #[test]
    fn unknown_category_rejected() {
        let mut b = DatasetBuilder::new();
        b.categorical("g", Role::Sensitive, &["a"]).unwrap();
        let err = b.push_row(row!["zzz"]).unwrap_err();
        assert!(matches!(err, DataError::UnknownCategory { .. }));
    }

    #[test]
    fn out_of_range_index_rejected() {
        let mut b = DatasetBuilder::new();
        b.categorical("g", Role::Sensitive, &["a", "b"]).unwrap();
        assert!(b.push_row(vec![Value::CatIndex(2)]).is_err());
    }

    #[test]
    fn non_finite_rejected() {
        let mut b = DatasetBuilder::new();
        b.numeric("x", Role::NonSensitive).unwrap();
        assert!(b.push_row(row![f64::NAN]).is_err());
        assert!(b.push_row(row![f64::INFINITY]).is_err());
    }

    #[test]
    fn failed_push_leaves_builder_unchanged() {
        let mut b = DatasetBuilder::new();
        b.numeric("x", Role::NonSensitive).unwrap();
        b.categorical("g", Role::Sensitive, &["a"]).unwrap();
        // first cell valid, second invalid — nothing may be committed
        assert!(b.push_row(row![1.0, "bad"]).is_err());
        assert_eq!(b.n_rows(), 0);
        b.push_row(row![1.0, "a"]).unwrap();
        assert_eq!(b.n_rows(), 1);
    }

    #[test]
    fn schema_freezes_after_first_row() {
        let mut b = DatasetBuilder::new();
        b.numeric("x", Role::NonSensitive).unwrap();
        b.push_row(row![1.0]).unwrap();
        assert_eq!(
            b.numeric("y", Role::NonSensitive).unwrap_err(),
            DataError::SchemaFrozen
        );
    }

    #[test]
    fn empty_schema_cannot_build() {
        assert!(DatasetBuilder::new().build().is_err());
    }

    #[test]
    fn bool_literals_bind_to_binary_domains() {
        let mut b = DatasetBuilder::new();
        b.binary("flag", Role::Sensitive).unwrap();
        b.push_row(row![true]).unwrap();
        b.push_row(row![false]).unwrap();
        let d = b.build().unwrap();
        assert_eq!(d.categorical_column(AttrId(0)).unwrap(), &[1, 0]);
    }
}
