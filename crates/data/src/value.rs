//! Cell values and the [`row!`] construction macro.

use std::fmt;

/// A single dataset cell prior to schema resolution.
///
/// Categorical cells may arrive either as string labels (resolved against
/// the attribute's domain when the row is pushed) or as pre-resolved dense
/// indices.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Numeric cell.
    Num(f64),
    /// Categorical cell given as a label to be resolved.
    Label(String),
    /// Categorical cell given directly as a dense value index.
    CatIndex(u32),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Num(x) => write!(f, "{x}"),
            Value::Label(s) => write!(f, "{s}"),
            Value::CatIndex(i) => write!(f, "#{i}"),
        }
    }
}

/// Conversion into a [`Value`], implemented for the literal types used in
/// row construction.
pub trait IntoValue {
    /// Perform the conversion.
    fn into_value(self) -> Value;
}

impl IntoValue for Value {
    fn into_value(self) -> Value {
        self
    }
}

impl IntoValue for f64 {
    fn into_value(self) -> Value {
        Value::Num(self)
    }
}

impl IntoValue for f32 {
    fn into_value(self) -> Value {
        Value::Num(self as f64)
    }
}

impl IntoValue for i32 {
    fn into_value(self) -> Value {
        Value::Num(self as f64)
    }
}

impl IntoValue for i64 {
    fn into_value(self) -> Value {
        Value::Num(self as f64)
    }
}

impl IntoValue for u32 {
    fn into_value(self) -> Value {
        Value::Num(self as f64)
    }
}

impl IntoValue for usize {
    fn into_value(self) -> Value {
        Value::Num(self as f64)
    }
}

impl IntoValue for &str {
    fn into_value(self) -> Value {
        Value::Label(self.to_string())
    }
}

impl IntoValue for String {
    fn into_value(self) -> Value {
        Value::Label(self)
    }
}

impl IntoValue for bool {
    /// Booleans map to the labels `"true"` / `"false"`, matching the domains
    /// produced by [`crate::DatasetBuilder::binary`].
    fn into_value(self) -> Value {
        Value::Label(if self { "true" } else { "false" }.to_string())
    }
}

/// Build a `Vec<Value>` from mixed literals:
///
/// ```
/// use fairkm_data::row;
/// let r = row![1.5, "female", 3, true];
/// assert_eq!(r.len(), 4);
/// ```
#[macro_export]
macro_rules! row {
    ($($cell:expr),* $(,)?) => {
        vec![$($crate::IntoValue::into_value($cell)),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_convert() {
        assert_eq!(1.5f64.into_value(), Value::Num(1.5));
        assert_eq!(3i32.into_value(), Value::Num(3.0));
        assert_eq!("abc".into_value(), Value::Label("abc".into()));
        assert_eq!(true.into_value(), Value::Label("true".into()));
    }

    #[test]
    fn row_macro_mixes_types() {
        let r = row![1.0, "x", 2, false];
        assert_eq!(
            r,
            vec![
                Value::Num(1.0),
                Value::Label("x".into()),
                Value::Num(2.0),
                Value::Label("false".into())
            ]
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Num(2.5).to_string(), "2.5");
        assert_eq!(Value::Label("a".into()).to_string(), "a");
        assert_eq!(Value::CatIndex(4).to_string(), "#4");
    }
}
