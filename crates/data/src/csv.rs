//! Minimal, dependency-free CSV import/export.
//!
//! The on-disk format is self-describing: each header cell is
//! `role:kind:name` where `role ∈ {n, s, aux}` and `kind ∈ {num, cat}`.
//! Categorical cells hold labels; domains are reconstructed on read in
//! first-appearance order. Cells containing commas, quotes or newlines are
//! quoted per RFC 4180.

use crate::builder::DatasetBuilder;
use crate::dataset::Dataset;
use crate::error::DataError;
use crate::schema::Role;
use crate::value::Value;
use std::io::{BufRead, BufReader, Read, Write};

/// Serialize a dataset to CSV.
pub fn write_csv<W: Write>(dataset: &Dataset, mut w: W) -> Result<(), DataError> {
    let header: Vec<String> = dataset
        .schema()
        .iter()
        .map(|(_, a)| {
            let kind = if a.kind.is_categorical() {
                "cat"
            } else {
                "num"
            };
            escape(&format!("{}:{}:{}", a.role.tag(), kind, a.name))
        })
        .collect();
    writeln!(w, "{}", header.join(","))?;
    for r in 0..dataset.n_rows() {
        let mut cells = Vec::with_capacity(dataset.schema().len());
        for (id, _) in dataset.schema().iter() {
            let cell = match dataset.value(r, id).expect("valid row/attr") {
                Value::Num(x) => format_num(x),
                Value::Label(s) => escape(&s),
                Value::CatIndex(_) => unreachable!("Dataset::value resolves labels"),
            };
            cells.push(cell);
        }
        writeln!(w, "{}", cells.join(","))?;
    }
    Ok(())
}

/// Deserialize a dataset from CSV produced by [`write_csv`] (or any CSV with
/// matching `role:kind:name` headers). Categorical domains are gathered from
/// the data in first-appearance order.
pub fn read_csv<R: Read>(r: R) -> Result<Dataset, DataError> {
    let reader = BufReader::new(r);
    let mut lines = reader.lines();
    let header_line = lines
        .next()
        .ok_or(DataError::Csv {
            line: 1,
            message: "missing header".into(),
        })?
        .map_err(DataError::from)?;
    let header = split_record(&header_line, 1)?;

    struct ColSpec {
        role: Role,
        is_cat: bool,
        name: String,
    }
    let mut specs = Vec::with_capacity(header.len());
    for cell in &header {
        let mut parts = cell.splitn(3, ':');
        let (role, kind, name) = match (parts.next(), parts.next(), parts.next()) {
            (Some(r), Some(k), Some(n)) => (r, k, n),
            _ => {
                return Err(DataError::Csv {
                    line: 1,
                    message: format!("header cell `{cell}` is not role:kind:name"),
                })
            }
        };
        let role = match role {
            "n" => Role::NonSensitive,
            "s" => Role::Sensitive,
            "aux" => Role::Auxiliary,
            other => {
                return Err(DataError::Csv {
                    line: 1,
                    message: format!("unknown role tag `{other}`"),
                })
            }
        };
        let is_cat = match kind {
            "cat" => true,
            "num" => false,
            other => {
                return Err(DataError::Csv {
                    line: 1,
                    message: format!("unknown kind tag `{other}`"),
                })
            }
        };
        specs.push(ColSpec {
            role,
            is_cat,
            name: name.to_string(),
        });
    }

    // First pass: buffer records and gather categorical domains.
    let mut records: Vec<Vec<String>> = Vec::new();
    let mut domains: Vec<Vec<String>> = specs.iter().map(|_| Vec::new()).collect();
    for (lineno, line) in lines.enumerate() {
        let line = line.map_err(DataError::from)?;
        if line.is_empty() {
            continue;
        }
        let rec = split_record(&line, lineno + 2)?;
        if rec.len() != specs.len() {
            return Err(DataError::Csv {
                line: lineno + 2,
                message: format!("expected {} cells, got {}", specs.len(), rec.len()),
            });
        }
        for (cell, (spec, domain)) in rec.iter().zip(specs.iter().zip(domains.iter_mut())) {
            if spec.is_cat && !domain.iter().any(|d| d == cell) {
                domain.push(cell.clone());
            }
        }
        records.push(rec);
    }

    let mut builder = DatasetBuilder::new();
    for (spec, domain) in specs.iter().zip(&domains) {
        if spec.is_cat {
            let refs: Vec<&str> = domain.iter().map(String::as_str).collect();
            builder.categorical(&spec.name, spec.role, &refs)?;
        } else {
            builder.numeric(&spec.name, spec.role)?;
        }
    }
    for (i, rec) in records.into_iter().enumerate() {
        let mut row = Vec::with_capacity(rec.len());
        for (cell, spec) in rec.into_iter().zip(&specs) {
            if spec.is_cat {
                row.push(Value::Label(cell));
            } else {
                let x: f64 = cell.parse().map_err(|_| DataError::Csv {
                    line: i + 2,
                    message: format!("`{cell}` is not a number"),
                })?;
                row.push(Value::Num(x));
            }
        }
        builder.push_row(row)?;
    }
    builder.build()
}

fn format_num(x: f64) -> String {
    // Round-trippable without scientific-notation surprises for our ranges.
    let s = format!("{x}");
    s
}

fn escape(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// RFC-4180 record splitter (quotes, doubled quotes inside quotes).
fn split_record(line: &str, lineno: usize) -> Result<Vec<String>, DataError> {
    let mut cells = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => cur.push(other),
            }
        } else {
            match c {
                '"' => {
                    if cur.is_empty() {
                        in_quotes = true;
                    } else {
                        return Err(DataError::Csv {
                            line: lineno,
                            message: "quote inside unquoted cell".into(),
                        });
                    }
                }
                ',' => {
                    cells.push(std::mem::take(&mut cur));
                }
                other => cur.push(other),
            }
        }
    }
    if in_quotes {
        return Err(DataError::Csv {
            line: lineno,
            message: "unterminated quoted cell".into(),
        });
    }
    cells.push(cur);
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn sample() -> Dataset {
        let mut b = DatasetBuilder::new();
        b.numeric("x", Role::NonSensitive).unwrap();
        b.categorical("g", Role::Sensitive, &["a,with comma", "b\"q\""])
            .unwrap();
        b.categorical("lab", Role::Auxiliary, &["lo", "hi"])
            .unwrap();
        b.push_row(row![1.5, "a,with comma", "lo"]).unwrap();
        b.push_row(row![-2.0, "b\"q\"", "hi"]).unwrap();
        b.push_row(row![0.25, "a,with comma", "hi"]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything_observable() {
        let d = sample();
        let mut buf = Vec::new();
        write_csv(&d, &mut buf).unwrap();
        let d2 = read_csv(&buf[..]).unwrap();
        assert_eq!(d2.n_rows(), d.n_rows());
        assert_eq!(d2.schema().len(), d.schema().len());
        for (_id, attr) in d.schema().iter() {
            let (_, attr2) = d2.schema().attr_by_name(&attr.name).unwrap();
            assert_eq!(attr2.role, attr.role);
            assert_eq!(attr2.kind.is_categorical(), attr.kind.is_categorical());
        }
        for r in 0..d.n_rows() {
            for (id, _) in d.schema().iter() {
                assert_eq!(d2.value(r, id).unwrap(), d.value(r, id).unwrap());
            }
        }
    }

    #[test]
    fn split_record_handles_quotes() {
        assert_eq!(
            split_record("a,\"b,c\",\"d\"\"e\"", 1).unwrap(),
            vec!["a", "b,c", "d\"e"]
        );
    }

    #[test]
    fn bad_number_is_reported_with_line() {
        let csv = "n:num:x\n1.0\nnot_a_number\n";
        let err = read_csv(csv.as_bytes()).unwrap_err();
        assert!(matches!(err, DataError::Csv { line: 3, .. }));
    }

    #[test]
    fn missing_header_is_error() {
        assert!(read_csv("".as_bytes()).is_err());
    }

    #[test]
    fn arity_mismatch_is_error() {
        let csv = "n:num:x,s:cat:g\n1.0\n";
        assert!(read_csv(csv.as_bytes()).is_err());
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert!(split_record("\"abc", 1).is_err());
    }
}
