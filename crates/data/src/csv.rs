//! Minimal, dependency-free CSV import/export.
//!
//! The on-disk format is self-describing: each header cell is
//! `role:kind:name` where `role ∈ {n, s, aux}` and `kind ∈ {num, cat}`.
//! Categorical cells hold labels; domains are reconstructed on read in
//! first-appearance order. Cells containing commas, quotes or newlines are
//! quoted per RFC 4180.

use crate::builder::DatasetBuilder;
use crate::dataset::Dataset;
use crate::error::DataError;
use crate::schema::Role;
use crate::value::Value;
use std::io::{Read, Write};

/// Serialize a dataset to CSV.
pub fn write_csv<W: Write>(dataset: &Dataset, mut w: W) -> Result<(), DataError> {
    let header: Vec<String> = dataset
        .schema()
        .iter()
        .map(|(_, a)| {
            let kind = if a.kind.is_categorical() {
                "cat"
            } else {
                "num"
            };
            escape(&format!("{}:{}:{}", a.role.tag(), kind, a.name))
        })
        .collect();
    writeln!(w, "{}", header.join(","))?;
    for r in 0..dataset.n_rows() {
        let mut cells = Vec::with_capacity(dataset.schema().len());
        for (id, _) in dataset.schema().iter() {
            let cell = match dataset.value(r, id).expect("valid row/attr") {
                Value::Num(x) => format_num(x),
                Value::Label(s) => escape(&s),
                Value::CatIndex(_) => unreachable!("Dataset::value resolves labels"),
            };
            cells.push(cell);
        }
        writeln!(w, "{}", cells.join(","))?;
    }
    Ok(())
}

/// Deserialize a dataset from CSV produced by [`write_csv`] (or any CSV with
/// matching `role:kind:name` headers). Categorical domains are gathered from
/// the data in first-appearance order.
pub fn read_csv<R: Read>(mut r: R) -> Result<Dataset, DataError> {
    let mut text = String::new();
    r.read_to_string(&mut text).map_err(DataError::from)?;
    let mut record_iter = split_records(&text)?.into_iter();
    let (_, header) = record_iter.next().ok_or(DataError::Csv {
        line: 1,
        message: "missing header".into(),
    })?;

    struct ColSpec {
        role: Role,
        is_cat: bool,
        name: String,
    }
    let mut specs = Vec::with_capacity(header.len());
    for cell in &header {
        let mut parts = cell.splitn(3, ':');
        let (role, kind, name) = match (parts.next(), parts.next(), parts.next()) {
            (Some(r), Some(k), Some(n)) => (r, k, n),
            _ => {
                return Err(DataError::Csv {
                    line: 1,
                    message: format!("header cell `{cell}` is not role:kind:name"),
                })
            }
        };
        let role = match role {
            "n" => Role::NonSensitive,
            "s" => Role::Sensitive,
            "aux" => Role::Auxiliary,
            other => {
                return Err(DataError::Csv {
                    line: 1,
                    message: format!("unknown role tag `{other}`"),
                })
            }
        };
        let is_cat = match kind {
            "cat" => true,
            "num" => false,
            other => {
                return Err(DataError::Csv {
                    line: 1,
                    message: format!("unknown kind tag `{other}`"),
                })
            }
        };
        specs.push(ColSpec {
            role,
            is_cat,
            name: name.to_string(),
        });
    }

    // First pass: buffer records and gather categorical domains.
    let mut records: Vec<(usize, Vec<String>)> = Vec::new();
    let mut domains: Vec<Vec<String>> = specs.iter().map(|_| Vec::new()).collect();
    for (lineno, rec) in record_iter {
        if rec.len() != specs.len() {
            return Err(DataError::Csv {
                line: lineno,
                message: format!("expected {} cells, got {}", specs.len(), rec.len()),
            });
        }
        for (cell, (spec, domain)) in rec.iter().zip(specs.iter().zip(domains.iter_mut())) {
            if spec.is_cat && !domain.iter().any(|d| d == cell) {
                domain.push(cell.clone());
            }
        }
        records.push((lineno, rec));
    }

    let mut builder = DatasetBuilder::new();
    for (spec, domain) in specs.iter().zip(&domains) {
        if spec.is_cat {
            let refs: Vec<&str> = domain.iter().map(String::as_str).collect();
            builder.categorical(&spec.name, spec.role, &refs)?;
        } else {
            builder.numeric(&spec.name, spec.role)?;
        }
    }
    for (lineno, rec) in records {
        let mut row = Vec::with_capacity(rec.len());
        for (cell, spec) in rec.into_iter().zip(&specs) {
            if spec.is_cat {
                row.push(Value::Label(cell));
            } else {
                let x: f64 = cell.parse().map_err(|_| DataError::Csv {
                    line: lineno,
                    message: format!("`{cell}` is not a number"),
                })?;
                row.push(Value::Num(x));
            }
        }
        builder.push_row(row)?;
    }
    builder.build()
}

fn format_num(x: f64) -> String {
    // Round-trippable without scientific-notation surprises for our ranges.
    let s = format!("{x}");
    s
}

fn escape(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') || cell.contains('\r') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// RFC-4180 record scanner: splits the whole input into `(start_line,
/// cells)` records, honoring quoting — quoted cells may contain commas,
/// doubled quotes, and line breaks (so a record can span several physical
/// lines). Record separators are `\n` or `\r\n`; blank lines between
/// records are skipped.
fn split_records(text: &str) -> Result<Vec<(usize, Vec<String>)>, DataError> {
    let mut records: Vec<(usize, Vec<String>)> = Vec::new();
    let mut cells: Vec<String> = Vec::new();
    let mut cur = String::new();
    // Whether the current cell already has content that makes a bare quote
    // illegal (any unquoted character, or a completed quoted section).
    let mut cell_started = false;
    let mut in_quotes = false;
    let mut line = 1usize; // current physical line
    let mut record_line = 1usize; // line the current record started on
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    cur.push('\n');
                }
                other => cur.push(other),
            }
            continue;
        }
        match c {
            '"' => {
                if cell_started {
                    return Err(DataError::Csv {
                        line,
                        message: "quote inside unquoted cell".into(),
                    });
                }
                in_quotes = true;
                cell_started = true;
            }
            ',' => {
                cells.push(std::mem::take(&mut cur));
                cell_started = false;
            }
            '\r' if chars.peek() == Some(&'\n') => {} // folded into the \n
            '\n' => {
                line += 1;
                let blank = cells.is_empty() && cur.is_empty() && !cell_started;
                if !blank {
                    cells.push(std::mem::take(&mut cur));
                    records.push((record_line, std::mem::take(&mut cells)));
                }
                cell_started = false;
                record_line = line;
            }
            other => {
                cur.push(other);
                cell_started = true;
            }
        }
    }
    if in_quotes {
        return Err(DataError::Csv {
            line: record_line,
            message: "unterminated quoted cell".into(),
        });
    }
    // Final record when the input lacks a trailing newline.
    if !cells.is_empty() || !cur.is_empty() || cell_started {
        cells.push(cur);
        records.push((record_line, cells));
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{row, AttrId};

    fn sample() -> Dataset {
        let mut b = DatasetBuilder::new();
        b.numeric("x", Role::NonSensitive).unwrap();
        b.categorical("g", Role::Sensitive, &["a,with comma", "b\"q\""])
            .unwrap();
        b.categorical("lab", Role::Auxiliary, &["lo", "hi"])
            .unwrap();
        b.push_row(row![1.5, "a,with comma", "lo"]).unwrap();
        b.push_row(row![-2.0, "b\"q\"", "hi"]).unwrap();
        b.push_row(row![0.25, "a,with comma", "hi"]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything_observable() {
        let d = sample();
        let mut buf = Vec::new();
        write_csv(&d, &mut buf).unwrap();
        let d2 = read_csv(&buf[..]).unwrap();
        assert_eq!(d2.n_rows(), d.n_rows());
        assert_eq!(d2.schema().len(), d.schema().len());
        for (_id, attr) in d.schema().iter() {
            let (_, attr2) = d2.schema().attr_by_name(&attr.name).unwrap();
            assert_eq!(attr2.role, attr.role);
            assert_eq!(attr2.kind.is_categorical(), attr.kind.is_categorical());
        }
        for r in 0..d.n_rows() {
            for (id, _) in d.schema().iter() {
                assert_eq!(d2.value(r, id).unwrap(), d.value(r, id).unwrap());
            }
        }
    }

    #[test]
    fn split_records_handles_quotes() {
        let records = split_records("a,\"b,c\",\"d\"\"e\"").unwrap();
        assert_eq!(
            records,
            vec![(1, vec!["a".into(), "b,c".into(), "d\"e".into()])]
        );
    }

    #[test]
    fn split_records_spans_quoted_newlines() {
        // One record whose middle cell contains a line break; the record
        // after it still reports the correct physical start line.
        let records = split_records("a,\"line1\nline2\",c\nd,e,f\n").unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].0, 1);
        assert_eq!(records[0].1[1], "line1\nline2");
        assert_eq!(records[1].0, 3);
        assert_eq!(records[1].1, vec!["d", "e", "f"]);
    }

    #[test]
    fn roundtrip_preserves_newlines_and_carriage_returns_in_labels() {
        let mut b = DatasetBuilder::new();
        b.numeric("x", Role::NonSensitive).unwrap();
        b.categorical("g", Role::Sensitive, &["multi\nline", "with\rcr", "plain"])
            .unwrap();
        b.push_row(row![1.0, "multi\nline"]).unwrap();
        b.push_row(row![2.0, "with\rcr"]).unwrap();
        b.push_row(row![3.0, "plain"]).unwrap();
        let d = b.build().unwrap();
        let mut buf = Vec::new();
        write_csv(&d, &mut buf).unwrap();
        let d2 = read_csv(&buf[..]).unwrap();
        assert_eq!(d2.n_rows(), 3);
        for r in 0..3 {
            assert_eq!(
                d2.value(r, AttrId(1)).unwrap(),
                d.value(r, AttrId(1)).unwrap()
            );
        }
    }

    #[test]
    fn crlf_line_endings_are_accepted() {
        let csv = "n:num:x,s:cat:g\r\n1.0,a\r\n2.0,b\r\n";
        let d = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(d.n_rows(), 2);
        assert_eq!(d.value(1, AttrId(1)).unwrap(), Value::Label("b".into()));
    }

    #[test]
    fn bad_number_is_reported_with_line() {
        let csv = "n:num:x\n1.0\nnot_a_number\n";
        let err = read_csv(csv.as_bytes()).unwrap_err();
        assert!(matches!(err, DataError::Csv { line: 3, .. }));
    }

    #[test]
    fn missing_numeric_value_is_reported_with_line() {
        // An empty cell in a numeric column is a missing value — rejected
        // with the offending line, never silently coerced.
        let csv = "n:num:x,s:cat:g\n1.0,a\n,b\n";
        let err = read_csv(csv.as_bytes()).unwrap_err();
        assert!(matches!(err, DataError::Csv { line: 3, .. }), "{err}");
    }

    #[test]
    fn empty_categorical_cell_is_a_distinct_label() {
        // Missing categorical cells become the empty label, which gets its
        // own domain slot instead of merging with a real value.
        let csv = "n:num:x,s:cat:g\n1.0,a\n2.0,\n";
        let d = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(d.value(1, AttrId(1)).unwrap(), Value::Label(String::new()));
        let space = d.sensitive_space().unwrap();
        assert_eq!(space.categorical()[0].cardinality(), 2);
    }

    #[test]
    fn duplicate_headers_are_rejected() {
        let csv = "n:num:x,n:num:x\n1.0,2.0\n";
        let err = read_csv(csv.as_bytes()).unwrap_err();
        assert_eq!(err, DataError::DuplicateAttribute("x".into()));
    }

    #[test]
    fn trailing_newlines_and_blank_lines_are_skipped() {
        for csv in [
            "n:num:x\n1.0\n2.0",       // no trailing newline
            "n:num:x\n1.0\n2.0\n",     // one trailing newline
            "n:num:x\n1.0\n2.0\n\n",   // extra blank line at the end
            "n:num:x\n\n1.0\n\n2.0\n", // blank lines between records
        ] {
            let d = read_csv(csv.as_bytes()).unwrap();
            assert_eq!(d.n_rows(), 2, "input {csv:?}");
            assert_eq!(d.numeric_column(AttrId(0)).unwrap(), &[1.0, 2.0]);
        }
    }

    #[test]
    fn missing_header_is_error() {
        assert!(read_csv("".as_bytes()).is_err());
    }

    #[test]
    fn arity_mismatch_is_error() {
        let csv = "n:num:x,s:cat:g\n1.0\n";
        assert!(read_csv(csv.as_bytes()).is_err());
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert!(split_records("\"abc").is_err());
        assert!(read_csv("n:num:x\n\"1.0\n".as_bytes()).is_err());
    }

    #[test]
    fn quote_inside_unquoted_cell_is_error() {
        let err = split_records("ab\"c").unwrap_err();
        assert!(matches!(err, DataError::Csv { line: 1, .. }));
    }
}
