//! Minimal little-endian wire codec for snapshots, write-ahead-log
//! entries, and shard protocol payloads: fixed-width integers, bit-exact
//! floats (`f64::to_bits`), length-prefixed vectors, and UTF-8 strings.
//! Hand-rolled because the workspace's vendored `serde` shim is a no-op —
//! and because snapshots feed a **bitwise** determinism contract, so the
//! encoding must round-trip floats exactly (which text formats do not
//! guarantee without care).
//!
//! Decoding never panics and never over-allocates: every `get_*` returns
//! a typed [`WireError`] on truncated or malformed input, and every
//! length prefix is validated against the bytes actually remaining before
//! any allocation — a corrupt multi-terabyte length claim fails fast as
//! [`WireError::LengthOverflow`] instead of aborting on an impossible
//! `Vec` reservation. Pinned by a decode-never-panics proptest over
//! mutated byte streams (`crates/data/tests/wire_never_panics.rs`).

/// Typed decode failure. Corrupt bytes surface as one of these — never a
/// panic, never silently wrong state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before a fixed-width field.
    Truncated {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes that were left.
        remaining: usize,
    },
    /// A length prefix claims more elements than the remaining bytes can
    /// possibly hold.
    LengthOverflow {
        /// The claimed element count.
        len: u64,
        /// Bytes each element occupies at minimum.
        elem_size: usize,
        /// Bytes that were left after the prefix.
        remaining: usize,
    },
    /// An enum tag (or similar discriminant) had no known meaning.
    UnknownTag {
        /// What was being decoded.
        what: &'static str,
        /// The unrecognized tag value.
        tag: u64,
    },
    /// A value decoded but violates its domain (non-UTF-8 string bytes,
    /// a `u64` that does not fit `usize`, ...).
    Invalid {
        /// What was being decoded.
        what: &'static str,
    },
    /// Decoding finished but unconsumed bytes remain — the buffer does
    /// not frame exactly one value.
    Trailing {
        /// Leftover byte count.
        remaining: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => {
                write!(f, "truncated: needed {needed} bytes, {remaining} remain")
            }
            WireError::LengthOverflow {
                len,
                elem_size,
                remaining,
            } => write!(
                f,
                "length prefix {len} x {elem_size}B exceeds the {remaining} bytes remaining"
            ),
            WireError::UnknownTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            WireError::Invalid { what } => write!(f, "invalid {what}"),
            WireError::Trailing { remaining } => {
                write!(f, "{remaining} trailing bytes after a complete value")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Append a `u64` in little-endian order.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `usize` as a `u64`.
pub fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

/// Append an `i64` in little-endian order.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` as its exact bit pattern.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Append a `u32` in little-endian order.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed `f64` slice.
pub fn put_f64s(out: &mut Vec<u8>, vs: &[f64]) {
    put_usize(out, vs.len());
    for &v in vs {
        put_f64(out, v);
    }
}

/// Append a length-prefixed `i64` slice.
pub fn put_i64s(out: &mut Vec<u8>, vs: &[i64]) {
    put_usize(out, vs.len());
    for &v in vs {
        put_i64(out, v);
    }
}

/// Append a length-prefixed `u32` slice.
pub fn put_u32s(out: &mut Vec<u8>, vs: &[u32]) {
    put_usize(out, vs.len());
    for &v in vs {
        put_u32(out, v);
    }
}

/// Append a length-prefixed `usize` slice (as `u64`s).
pub fn put_usizes(out: &mut Vec<u8>, vs: &[usize]) {
    put_usize(out, vs.len());
    for &v in vs {
        put_usize(out, v);
    }
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_usize(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

/// Sequential reader over an encoded buffer. Every `get_*` consumes from
/// the front; truncated or malformed bytes return a typed [`WireError`].
#[derive(Debug)]
pub struct Reader<'b> {
    buf: &'b [u8],
}

impl<'b> Reader<'b> {
    /// Wrap a buffer for sequential decoding.
    pub fn new(buf: &'b [u8]) -> Self {
        Self { buf }
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Error unless every byte has been consumed — call after decoding a
    /// value that must frame the buffer exactly.
    pub fn expect_empty(&self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::Trailing {
                remaining: self.buf.len(),
            })
        }
    }

    /// Consume and return exactly `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'b [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Truncated {
                needed: n,
                remaining: self.buf.len(),
            });
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Read a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("slice is 8 bytes")))
    }

    /// Read a `usize` (encoded as `u64`; fails if it overflows `usize`).
    pub fn get_usize(&mut self) -> Result<usize, WireError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| WireError::Invalid { what: "usize" })
    }

    /// Read an `i64`.
    pub fn get_i64(&mut self) -> Result<i64, WireError> {
        self.take(8)
            .map(|b| i64::from_le_bytes(b.try_into().expect("slice is 8 bytes")))
    }

    /// Read an `f64` from its exact bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        self.get_u64().map(f64::from_bits)
    }

    /// Read a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("slice is 4 bytes")))
    }

    /// Read and validate a length prefix for elements of at least
    /// `elem_size` bytes: the claimed count must fit in the bytes that
    /// remain, so corrupt prefixes fail *before* any allocation.
    pub fn get_len(&mut self, elem_size: usize) -> Result<usize, WireError> {
        let len = self.get_u64()?;
        let remaining = self.buf.len();
        let fits = usize::try_from(len)
            .ok()
            .and_then(|l| l.checked_mul(elem_size.max(1)))
            .is_some_and(|total| total <= remaining);
        if !fits {
            return Err(WireError::LengthOverflow {
                len,
                elem_size: elem_size.max(1),
                remaining,
            });
        }
        Ok(len as usize)
    }

    /// Read a length-prefixed `f64` vector.
    pub fn get_f64s(&mut self) -> Result<Vec<f64>, WireError> {
        let len = self.get_len(8)?;
        let mut vs = Vec::with_capacity(len);
        for _ in 0..len {
            vs.push(self.get_f64()?);
        }
        Ok(vs)
    }

    /// Read a length-prefixed `i64` vector.
    pub fn get_i64s(&mut self) -> Result<Vec<i64>, WireError> {
        let len = self.get_len(8)?;
        let mut vs = Vec::with_capacity(len);
        for _ in 0..len {
            vs.push(self.get_i64()?);
        }
        Ok(vs)
    }

    /// Read a length-prefixed `u32` vector.
    pub fn get_u32s(&mut self) -> Result<Vec<u32>, WireError> {
        let len = self.get_len(4)?;
        let mut vs = Vec::with_capacity(len);
        for _ in 0..len {
            vs.push(self.get_u32()?);
        }
        Ok(vs)
    }

    /// Read a length-prefixed `usize` vector.
    pub fn get_usizes(&mut self) -> Result<Vec<usize>, WireError> {
        let len = self.get_len(8)?;
        let mut vs = Vec::with_capacity(len);
        for _ in 0..len {
            vs.push(self.get_usize()?);
        }
        Ok(vs)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_string(&mut self) -> Result<String, WireError> {
        let len = self.get_len(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Invalid {
            what: "utf-8 string",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_bits() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, f64::NAN);
        put_f64s(&mut buf, &[1.0, f64::MIN_POSITIVE, f64::INFINITY]);
        put_i64s(&mut buf, &[-3, 0, i64::MIN]);
        put_u32s(&mut buf, &[7, u32::MAX]);
        put_usizes(&mut buf, &[0, 42]);
        put_str(&mut buf, "groupe protégé");
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_u64(), Ok(u64::MAX));
        assert_eq!(r.get_f64().map(f64::to_bits), Ok((-0.0f64).to_bits()));
        assert_eq!(r.get_f64().map(f64::to_bits), Ok(f64::NAN.to_bits()));
        let fs = r.get_f64s().unwrap();
        assert_eq!(fs.len(), 3);
        assert_eq!(fs[1], f64::MIN_POSITIVE);
        assert_eq!(r.get_i64s(), Ok(vec![-3, 0, i64::MIN]));
        assert_eq!(r.get_u32s(), Ok(vec![7, u32::MAX]));
        assert_eq!(r.get_usizes(), Ok(vec![0, 42]));
        assert_eq!(r.get_string().as_deref(), Ok("groupe protégé"));
        assert!(r.is_empty());
        assert_eq!(r.expect_empty(), Ok(()));
    }

    #[test]
    fn truncation_is_detected() {
        let mut buf = Vec::new();
        put_f64s(&mut buf, &[1.0, 2.0]);
        let mut r = Reader::new(&buf[..buf.len() - 1]);
        assert!(matches!(
            r.get_f64s(),
            Err(WireError::LengthOverflow { len: 2, .. })
        ));
        let mut r = Reader::new(&buf[..4]);
        assert!(matches!(r.get_u64(), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn corrupt_length_prefixes_fail_before_allocating() {
        // A length prefix claiming u64::MAX elements must not reserve
        // memory for them.
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX);
        put_f64(&mut buf, 1.0);
        let mut r = Reader::new(&buf);
        assert!(matches!(
            r.get_f64s(),
            Err(WireError::LengthOverflow {
                len: u64::MAX,
                elem_size: 8,
                ..
            })
        ));
    }

    #[test]
    fn trailing_bytes_are_a_typed_error() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 5);
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_u32(), Ok(5));
        assert_eq!(r.expect_empty(), Ok(()));
        let r = Reader::new(&buf);
        assert_eq!(r.expect_empty(), Err(WireError::Trailing { remaining: 4 }));
    }

    #[test]
    fn invalid_utf8_is_a_typed_error() {
        let mut buf = Vec::new();
        put_usize(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        let mut r = Reader::new(&buf);
        assert_eq!(
            r.get_string(),
            Err(WireError::Invalid {
                what: "utf-8 string"
            })
        );
    }
}
