//! Views over the sensitive attribute set `S`.
//!
//! The FairKM fairness term (Eq. 7) and every fairness metric in
//! `fairkm-metrics` need, per sensitive attribute: the per-object value
//! indices, the domain cardinality `|Values(S)|`, and the dataset-level
//! fractional representation `Fr_X^S(s)`. [`SensitiveSpace`] packages these
//! once so algorithms never re-derive them in inner loops.

use crate::schema::AttrId;

/// One categorical sensitive attribute, fully materialized.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitiveCat {
    attr: AttrId,
    name: String,
    labels: Vec<String>,
    values: Vec<u32>,
    dataset_dist: Vec<f64>,
}

impl SensitiveCat {
    /// Build from parts; `values` are dense indices into `labels`, and
    /// `dataset_dist` is recomputed here so it can never drift from
    /// `values`.
    pub fn new(attr: AttrId, name: String, labels: Vec<String>, values: Vec<u32>) -> Self {
        let mut dist = vec![0.0; labels.len()];
        for &v in &values {
            dist[v as usize] += 1.0;
        }
        if !values.is_empty() {
            let inv = 1.0 / values.len() as f64;
            for d in &mut dist {
                *d *= inv;
            }
        }
        Self {
            attr,
            name,
            labels,
            values,
            dataset_dist: dist,
        }
    }

    /// Id of the underlying schema attribute.
    pub fn attr(&self) -> AttrId {
        self.attr
    }

    /// Attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Domain labels in index order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// `|Values(S)|` — the domain cardinality used for domain-cardinality
    /// normalization (Eq. 4).
    #[inline]
    pub fn cardinality(&self) -> usize {
        self.labels.len()
    }

    /// Dense value index for every object, in row order.
    #[inline]
    pub fn values(&self) -> &[u32] {
        &self.values
    }

    /// Value index of object `row`.
    #[inline]
    pub fn value(&self, row: usize) -> u32 {
        self.values[row]
    }

    /// `Fr_X^S(s)` for every `s` — the dataset-level fractional
    /// representation vector.
    #[inline]
    pub fn dataset_dist(&self) -> &[f64] {
        &self.dataset_dist
    }

    /// Histogram (raw counts) of values over an arbitrary subset of rows.
    pub fn counts_over(&self, rows: &[usize]) -> Vec<usize> {
        let mut counts = vec![0usize; self.cardinality()];
        for &r in rows {
            counts[self.values[r] as usize] += 1;
        }
        counts
    }
}

/// One numeric sensitive attribute (the Eq. 22 extension), fully
/// materialized.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitiveNum {
    attr: AttrId,
    name: String,
    values: Vec<f64>,
    dataset_mean: f64,
}

impl SensitiveNum {
    /// Build from parts; the dataset mean is derived from `values`.
    pub fn new(attr: AttrId, name: String, values: Vec<f64>) -> Self {
        let mean = if values.is_empty() {
            0.0
        } else {
            values.iter().sum::<f64>() / values.len() as f64
        };
        Self {
            attr,
            name,
            values,
            dataset_mean: mean,
        }
    }

    /// Id of the underlying schema attribute.
    pub fn attr(&self) -> AttrId {
        self.attr
    }

    /// Attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Per-object values in row order.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Value of object `row`.
    #[inline]
    pub fn value(&self, row: usize) -> f64 {
        self.values[row]
    }

    /// `X̄.S` — the dataset-level mean the fairness term compares cluster
    /// means against (Eq. 22).
    #[inline]
    pub fn dataset_mean(&self) -> f64 {
        self.dataset_mean
    }
}

/// The complete sensitive attribute space of a dataset: all categorical and
/// numeric sensitive attributes plus the row count.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitiveSpace {
    n_rows: usize,
    cat: Vec<SensitiveCat>,
    num: Vec<SensitiveNum>,
}

impl SensitiveSpace {
    /// Assemble a space from materialized attribute views. Every view must
    /// cover exactly `n_rows` objects.
    pub fn new(n_rows: usize, cat: Vec<SensitiveCat>, num: Vec<SensitiveNum>) -> Self {
        Self { n_rows, cat, num }
    }

    /// Number of objects `|X|`.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Categorical sensitive attributes.
    #[inline]
    pub fn categorical(&self) -> &[SensitiveCat] {
        &self.cat
    }

    /// Numeric sensitive attributes.
    #[inline]
    pub fn numeric(&self) -> &[SensitiveNum] {
        &self.num
    }

    /// Total number of sensitive attributes `|S|`.
    pub fn n_attrs(&self) -> usize {
        self.cat.len() + self.num.len()
    }

    /// Maximum categorical domain cardinality (`m` in the paper's
    /// complexity analysis §4.3.1). Zero when there are no categorical
    /// sensitive attributes.
    pub fn max_cardinality(&self) -> usize {
        self.cat
            .iter()
            .map(SensitiveCat::cardinality)
            .max()
            .unwrap_or(0)
    }

    /// Restrict the space to a subset of its attributes by schema id; used
    /// for the paper's single-attribute invocations `FairKM(S)` / `ZGYA(S)`.
    pub fn restricted_to(&self, attrs: &[AttrId]) -> SensitiveSpace {
        SensitiveSpace {
            n_rows: self.n_rows,
            cat: self
                .cat
                .iter()
                .filter(|c| attrs.contains(&c.attr))
                .cloned()
                .collect(),
            num: self
                .num
                .iter()
                .filter(|n| attrs.contains(&n.attr))
                .cloned()
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> SensitiveSpace {
        let cat = SensitiveCat::new(
            AttrId(0),
            "g".into(),
            vec!["a".into(), "b".into()],
            vec![0, 0, 1, 0],
        );
        let num = SensitiveNum::new(AttrId(1), "age".into(), vec![10.0, 20.0, 30.0, 40.0]);
        SensitiveSpace::new(4, vec![cat], vec![num])
    }

    #[test]
    fn dataset_dist_is_fractional_representation() {
        let s = space();
        assert_eq!(s.categorical()[0].dataset_dist(), &[0.75, 0.25]);
    }

    #[test]
    fn numeric_mean() {
        let s = space();
        assert_eq!(s.numeric()[0].dataset_mean(), 25.0);
    }

    #[test]
    fn counts_over_subset() {
        let s = space();
        assert_eq!(s.categorical()[0].counts_over(&[0, 2]), vec![1, 1]);
        assert_eq!(s.categorical()[0].counts_over(&[]), vec![0, 0]);
    }

    #[test]
    fn restriction_keeps_only_requested() {
        let s = space();
        let only_num = s.restricted_to(&[AttrId(1)]);
        assert_eq!(only_num.categorical().len(), 0);
        assert_eq!(only_num.numeric().len(), 1);
        assert_eq!(only_num.n_attrs(), 1);
        assert_eq!(s.max_cardinality(), 2);
        assert_eq!(only_num.max_cardinality(), 0);
    }
}
