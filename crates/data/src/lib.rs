//! # fairkm-data — tabular dataset substrate for fair clustering
//!
//! Fair clustering operates on records defined over two attribute sets
//! (§3 of the paper):
//!
//! * **N** — *non-sensitive* attributes relevant to the task (coherence is
//!   measured over these), and
//! * **S** — *sensitive* attributes (gender, race, problem type, …) over
//!   which representational fairness must hold.
//!
//! This crate provides the typed dataset model shared by every algorithm in
//! the workspace:
//!
//! * [`Schema`] / [`Attribute`] / [`Role`] — attribute declarations with
//!   their fairness role;
//! * [`Dataset`] — column-major storage of numeric and categorical values
//!   with validation;
//! * [`DatasetBuilder`] and the [`row!`] macro — ergonomic construction;
//! * [`NumericMatrix`] — the dense, encoded view of the N attributes that
//!   clustering algorithms consume (one-hot + optional standardization);
//! * [`SensitiveSpace`] — the view of the S attributes: per-attribute value
//!   indices, domain cardinalities and dataset-level distributions, which is
//!   exactly the information the FairKM fairness term (Eq. 7) needs;
//! * CSV import/export for interoperability with external tools.
//!
//! ## Example
//!
//! ```
//! use fairkm_data::{row, DatasetBuilder, Normalization, Role};
//!
//! let mut b = DatasetBuilder::new();
//! b.numeric("score", Role::NonSensitive);
//! b.categorical("gender", Role::Sensitive, &["female", "male"]);
//! b.push_row(row![91.0, "female"]).unwrap();
//! b.push_row(row![78.5, "male"]).unwrap();
//! let data = b.build().unwrap();
//!
//! let n = data.task_matrix(Normalization::ZScore).unwrap();
//! assert_eq!((n.rows(), n.cols()), (2, 1));
//! let s = data.sensitive_space().unwrap();
//! assert_eq!(s.categorical()[0].cardinality(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod csv;
mod dataset;
mod encode;
mod error;
mod matrix;
mod partition;
mod schema;
mod sensitive;
mod value;
pub mod wire;
pub mod wire_io;

pub use builder::DatasetBuilder;
pub use csv::{read_csv, write_csv};
pub use dataset::Dataset;
pub use encode::{FrozenEncoder, Normalization};
pub use error::DataError;
pub use matrix::{sq_euclidean, NumericMatrix};
pub use partition::Partition;
pub use schema::{AttrId, AttrKind, Attribute, Role, Schema};
pub use sensitive::{SensitiveCat, SensitiveNum, SensitiveSpace};
pub use value::{IntoValue, Value};
