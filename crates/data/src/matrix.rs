//! Dense row-major matrix of encoded task attributes.

/// Row-major dense matrix handed to clustering algorithms.
///
/// Produced by [`crate::Dataset::task_matrix`]: numeric non-sensitive
/// attributes (optionally normalized) followed by one-hot blocks for
/// categorical non-sensitive attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct NumericMatrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
    col_names: Vec<String>,
}

impl NumericMatrix {
    /// Construct from parts. Panics if `data.len() != rows * cols` or the
    /// column-name count mismatches — these are programming errors inside
    /// the workspace, not user-facing conditions.
    pub fn from_parts(data: Vec<f64>, rows: usize, cols: usize, col_names: Vec<String>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
        assert_eq!(col_names.len(), cols, "column name count mismatch");
        Self {
            data,
            rows,
            cols,
            col_names,
        }
    }

    /// Number of rows (objects).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (encoded dimensions).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice of length [`Self::cols`].
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        let start = i * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Borrow the full backing buffer (row-major).
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Names of the encoded columns (one-hot columns are `attr=value`).
    pub fn col_names(&self) -> &[String] {
        &self.col_names
    }

    /// Iterate over rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Column-wise mean vector. Returns zeros for an empty matrix.
    pub fn col_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        if self.rows == 0 {
            return means;
        }
        for row in self.iter_rows() {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        let inv = 1.0 / self.rows as f64;
        for m in &mut means {
            *m *= inv;
        }
        means
    }

    /// Squared Euclidean distance between row `i` and an external point.
    #[inline]
    pub fn sq_dist_to(&self, i: usize, point: &[f64]) -> f64 {
        sq_euclidean(self.row(i), point)
    }

    /// Append one row. Panics if `row.len() != cols` — shape mismatches are
    /// programming errors inside the workspace, exactly as in
    /// [`Self::from_parts`].
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "appended row length mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// New matrix containing only the given rows, in the given order (same
    /// columns). Panics on an out-of-range row index.
    pub fn select_rows(&self, rows: &[usize]) -> NumericMatrix {
        let mut data = Vec::with_capacity(rows.len() * self.cols);
        for &r in rows {
            data.extend_from_slice(self.row(r));
        }
        NumericMatrix::from_parts(data, rows.len(), self.cols, self.col_names.clone())
    }
}

/// Squared Euclidean distance between two equal-length slices.
///
/// This is `dist_N(X, C)` from the paper's Eq. 1 / Eq. 24 when applied to
/// encoded task vectors and cluster prototypes.
#[inline]
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("c{i}")).collect()
    }

    #[test]
    fn shape_and_rows() {
        let m = NumericMatrix::from_parts(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3, names(3));
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "matrix shape mismatch")]
    fn bad_shape_panics() {
        let _ = NumericMatrix::from_parts(vec![1.0; 5], 2, 3, names(3));
    }

    #[test]
    fn col_means_average_rows() {
        let m = NumericMatrix::from_parts(vec![1.0, 10.0, 3.0, 30.0], 2, 2, names(2));
        assert_eq!(m.col_means(), vec![2.0, 20.0]);
    }

    #[test]
    fn col_means_empty_is_zero() {
        let m = NumericMatrix::from_parts(vec![], 0, 2, names(2));
        assert_eq!(m.col_means(), vec![0.0, 0.0]);
    }

    #[test]
    fn sq_euclidean_basics() {
        assert_eq!(sq_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(sq_euclidean(&[1.0], &[1.0]), 0.0);
    }
}
