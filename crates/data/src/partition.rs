//! Cluster membership representation shared by every algorithm and metric.

use crate::error::DataError;

/// An assignment of `n` objects to `k` clusters (`0..k`), the common output
/// type of all clustering algorithms in this workspace.
///
/// Clusters may be empty — FairKM's fairness term is explicitly designed
/// around clusters emptying out during optimization (Eq. 3 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    assignments: Vec<usize>,
    k: usize,
}

impl Partition {
    /// Validate and wrap raw assignments. Every entry must be `< k`.
    pub fn new(assignments: Vec<usize>, k: usize) -> Result<Self, DataError> {
        if k == 0 {
            return Err(DataError::EmptyView("partition with k = 0"));
        }
        if let Some(&bad) = assignments.iter().find(|&&c| c >= k) {
            return Err(DataError::Csv {
                line: bad,
                message: format!("cluster id {bad} out of range for k = {k}"),
            });
        }
        Ok(Self { assignments, k })
    }

    /// Number of clusters `k` (including empty ones).
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of objects.
    #[inline]
    pub fn n_points(&self) -> usize {
        self.assignments.len()
    }

    /// Cluster of object `i`.
    #[inline]
    pub fn assignment(&self, i: usize) -> usize {
        self.assignments[i]
    }

    /// All assignments, row-aligned with the dataset.
    #[inline]
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Per-cluster sizes (length `k`; zeros for empty clusters).
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k];
        for &c in &self.assignments {
            sizes[c] += 1;
        }
        sizes
    }

    /// Row indices of every cluster, in row order (length `k`).
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut members = vec![Vec::new(); self.k];
        for (i, &c) in self.assignments.iter().enumerate() {
            members[c].push(i);
        }
        members
    }

    /// Number of non-empty clusters.
    pub fn n_non_empty(&self) -> usize {
        self.cluster_sizes().iter().filter(|&&s| s > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_range() {
        assert!(Partition::new(vec![0, 1, 2], 3).is_ok());
        assert!(Partition::new(vec![0, 3], 3).is_err());
        assert!(Partition::new(vec![], 0).is_err());
    }

    #[test]
    fn sizes_and_members() {
        let p = Partition::new(vec![0, 2, 0, 2, 2], 4).unwrap();
        assert_eq!(p.cluster_sizes(), vec![2, 0, 3, 0]);
        assert_eq!(p.members()[2], vec![1, 3, 4]);
        assert_eq!(p.n_non_empty(), 2);
        assert_eq!(p.n_points(), 5);
        assert_eq!(p.assignment(3), 2);
    }

    #[test]
    fn empty_assignments_with_positive_k_are_fine() {
        let p = Partition::new(vec![], 2).unwrap();
        assert_eq!(p.n_points(), 0);
        assert_eq!(p.cluster_sizes(), vec![0, 0]);
    }
}
