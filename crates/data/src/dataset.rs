//! Column-major dataset storage plus the encoded views consumed by the
//! clustering algorithms.

use crate::builder::{resolve, ResolvedCell};
use crate::encode::{EncoderSpec, FrozenEncoder, Normalization, NumCodec};
use crate::error::DataError;
use crate::matrix::NumericMatrix;
use crate::schema::{AttrId, AttrKind, Role, Schema};
use crate::sensitive::{SensitiveCat, SensitiveNum, SensitiveSpace};
use crate::value::Value;
use crate::wire::{self, WireError};
use crate::wire_io;

/// One stored column.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Column {
    Num(Vec<f64>),
    Cat(Vec<u32>),
}

impl Column {
    fn len(&self) -> usize {
        match self {
            Column::Num(v) => v.len(),
            Column::Cat(v) => v.len(),
        }
    }
}

/// A validated dataset: a [`Schema`] plus column-major storage.
///
/// Construct with [`crate::DatasetBuilder`] or [`crate::read_csv`]. The
/// schema is immutable once built; rows can still be appended with
/// [`Dataset::append_row`] / [`Dataset::append_rows`] under the same
/// validation as build time — the ingestion path of the streaming
/// subsystem. Derived views (task matrices, sensitive spaces, frozen
/// encoders) are snapshots: they do not see rows appended after they were
/// built.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    schema: Schema,
    columns: Vec<Column>,
    n_rows: usize,
}

impl Dataset {
    pub(crate) fn from_parts(schema: Schema, columns: Vec<Column>, n_rows: usize) -> Self {
        debug_assert_eq!(schema.len(), columns.len());
        debug_assert!(columns.iter().all(|c| c.len() == n_rows));
        Self {
            schema,
            columns,
            n_rows,
        }
    }

    /// The schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows `|X|`.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Numeric column by attribute id; errors if the attribute is
    /// categorical or unknown.
    pub fn numeric_column(&self, id: AttrId) -> Result<&[f64], DataError> {
        let attr = self.schema.attr(id)?;
        match &self.columns[id.index()] {
            Column::Num(v) => Ok(v),
            Column::Cat(_) => Err(DataError::TypeMismatch {
                attribute: attr.name.clone(),
                expected: "a numeric column",
            }),
        }
    }

    /// Categorical column (dense value indices) by attribute id; errors if
    /// the attribute is numeric or unknown.
    pub fn categorical_column(&self, id: AttrId) -> Result<&[u32], DataError> {
        let attr = self.schema.attr(id)?;
        match &self.columns[id.index()] {
            Column::Cat(v) => Ok(v),
            Column::Num(_) => Err(DataError::TypeMismatch {
                attribute: attr.name.clone(),
                expected: "a categorical column",
            }),
        }
    }

    /// The cell at `(row, id)` as a resolved [`Value`]
    /// ([`Value::Label`] for categorical cells).
    pub fn value(&self, row: usize, id: AttrId) -> Result<Value, DataError> {
        let attr = self.schema.attr(id)?;
        match &self.columns[id.index()] {
            Column::Num(v) => Ok(Value::Num(v[row])),
            Column::Cat(v) => {
                let label = attr
                    .label(v[row])
                    .expect("stored index always within domain");
                Ok(Value::Label(label.to_string()))
            }
        }
    }

    /// Encode the non-sensitive attributes into a dense row-major matrix:
    /// numeric columns (normalized per `norm`) followed by 0/1 one-hot
    /// blocks for categorical non-sensitive attributes.
    ///
    /// This is the space `N` over which `dist_N` (Eq. 1) and the clustering
    /// quality metrics operate.
    pub fn task_matrix(&self, norm: Normalization) -> Result<NumericMatrix, DataError> {
        self.matrix_for_role(Role::NonSensitive, norm)
    }

    /// Like [`Self::task_matrix`] but over an explicit attribute subset
    /// (order preserved). All listed attributes must exist.
    pub fn matrix_for(
        &self,
        attrs: &[AttrId],
        norm: Normalization,
    ) -> Result<NumericMatrix, DataError> {
        if attrs.is_empty() {
            return Err(DataError::EmptyView("matrix_for"));
        }
        let mut encoded_cols: Vec<Vec<f64>> = Vec::new();
        let mut names: Vec<String> = Vec::new();
        for &id in attrs {
            let attr = self.schema.attr(id)?;
            match (&attr.kind, &self.columns[id.index()]) {
                (AttrKind::Numeric, Column::Num(v)) => {
                    let mut col = v.clone();
                    norm.apply(&mut col);
                    encoded_cols.push(col);
                    names.push(attr.name.clone());
                }
                (AttrKind::Categorical { values }, Column::Cat(idx)) => {
                    // One-hot block, one 0/1 column per domain value.
                    for (vi, vname) in values.iter().enumerate() {
                        let col = idx
                            .iter()
                            .map(|&x| if x as usize == vi { 1.0 } else { 0.0 })
                            .collect();
                        encoded_cols.push(col);
                        names.push(format!("{}={}", attr.name, vname));
                    }
                }
                _ => unreachable!("column kind always matches schema kind"),
            }
        }
        let cols = encoded_cols.len();
        let mut data = Vec::with_capacity(self.n_rows * cols);
        for r in 0..self.n_rows {
            for c in &encoded_cols {
                data.push(c[r]);
            }
        }
        Ok(NumericMatrix::from_parts(data, self.n_rows, cols, names))
    }

    fn matrix_for_role(&self, role: Role, norm: Normalization) -> Result<NumericMatrix, DataError> {
        let ids = self.schema.ids_with_role(role);
        if ids.is_empty() {
            return Err(DataError::EmptyView("task_matrix"));
        }
        self.matrix_for(&ids, norm)
    }

    /// Materialize the full sensitive space `S` (all attributes with
    /// [`Role::Sensitive`]).
    pub fn sensitive_space(&self) -> Result<SensitiveSpace, DataError> {
        let ids = self.schema.ids_with_role(Role::Sensitive);
        self.sensitive_space_for(&ids)
    }

    /// Materialize a sensitive space over an explicit subset of attributes
    /// (the paper's per-attribute `FairKM(S)` / `ZGYA(S)` invocations).
    pub fn sensitive_space_for(&self, attrs: &[AttrId]) -> Result<SensitiveSpace, DataError> {
        let mut cat = Vec::new();
        let mut num = Vec::new();
        for &id in attrs {
            let attr = self.schema.attr(id)?;
            match (&attr.kind, &self.columns[id.index()]) {
                (AttrKind::Categorical { values }, Column::Cat(idx)) => {
                    cat.push(SensitiveCat::new(
                        id,
                        attr.name.clone(),
                        values.clone(),
                        idx.clone(),
                    ));
                }
                (AttrKind::Numeric, Column::Num(v)) => {
                    num.push(SensitiveNum::new(id, attr.name.clone(), v.clone()));
                }
                _ => unreachable!("column kind always matches schema kind"),
            }
        }
        Ok(SensitiveSpace::new(self.n_rows, cat, num))
    }

    /// Materialize row `r` as owned cells in schema order (labels resolved)
    /// — the inverse of [`Self::append_row`], used to replay stored rows as
    /// streaming arrivals.
    pub fn row_values(&self, r: usize) -> Result<Vec<Value>, DataError> {
        self.schema
            .iter()
            .map(|(id, _)| self.value(r, id))
            .collect()
    }

    /// Append one row, returning its row index. Cells must match the frozen
    /// schema positionally and are validated exactly like
    /// [`crate::DatasetBuilder::push_row`]; a failed append leaves the
    /// dataset unchanged.
    pub fn append_row(&mut self, row: Vec<Value>) -> Result<usize, DataError> {
        self.append_rows(vec![row])
            .map(|appended| self.n_rows - appended)
    }

    /// Append many rows atomically: every cell of every row is validated
    /// before any column is mutated, so an error leaves the dataset
    /// unchanged. Returns the number of rows appended.
    pub fn append_rows(&mut self, rows: Vec<Vec<Value>>) -> Result<usize, DataError> {
        let mut resolved: Vec<Vec<ResolvedCell>> = Vec::with_capacity(rows.len());
        for (offset, row) in rows.into_iter().enumerate() {
            if row.len() != self.schema.len() {
                return Err(DataError::RowArity {
                    expected: self.schema.len(),
                    got: row.len(),
                });
            }
            let mut cells = Vec::with_capacity(row.len());
            for (value, (_, attr)) in row.into_iter().zip(self.schema.iter()) {
                cells.push(resolve(value, attr, self.n_rows + offset)?);
            }
            resolved.push(cells);
        }
        let appended = resolved.len();
        for cells in resolved {
            for (cell, col) in cells.into_iter().zip(self.columns.iter_mut()) {
                match (cell, col) {
                    (ResolvedCell::Num(x), Column::Num(v)) => v.push(x),
                    (ResolvedCell::Cat(i), Column::Cat(v)) => v.push(i),
                    _ => unreachable!("resolve() returns the column's kind"),
                }
            }
        }
        self.n_rows += appended;
        Ok(appended)
    }

    /// Capture a [`FrozenEncoder`] over the non-sensitive attributes: the
    /// exact per-column transforms `task_matrix(norm)` applies to the rows
    /// present *now*, reusable verbatim on rows appended later. See
    /// [`FrozenEncoder`] for the streaming-ingestion rationale.
    pub fn frozen_encoder(&self, norm: Normalization) -> Result<FrozenEncoder, DataError> {
        let ids = self.schema.ids_with_role(Role::NonSensitive);
        if ids.is_empty() {
            return Err(DataError::EmptyView("frozen_encoder"));
        }
        let mut specs = Vec::with_capacity(ids.len());
        for id in ids {
            let attr = self.schema.attr(id)?.clone();
            let codec = match (&attr.kind, &self.columns[id.index()]) {
                (AttrKind::Numeric, Column::Num(col)) => Some(NumCodec::fit(norm, col)),
                (AttrKind::Categorical { .. }, Column::Cat(_)) => None,
                _ => unreachable!("column kind always matches schema kind"),
            };
            specs.push(EncoderSpec {
                position: id.index(),
                attr,
                codec,
            });
        }
        Ok(FrozenEncoder::from_specs(specs, self.schema.len()))
    }

    /// Serialize this dataset into the wire format used by durable
    /// snapshots: schema declarations followed by tagged column vectors.
    /// Floats travel as raw IEEE-754 bits, so a decode reproduces the
    /// dataset **bitwise**.
    pub fn to_wire_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        wire_io::put_schema(&mut out, &self.schema);
        wire::put_usize(&mut out, self.n_rows);
        for col in &self.columns {
            match col {
                Column::Num(v) => {
                    out.push(0);
                    wire::put_f64s(&mut out, v);
                }
                Column::Cat(v) => {
                    out.push(1);
                    wire::put_u32s(&mut out, v);
                }
            }
        }
        out
    }

    /// Decode a dataset written by [`Dataset::to_wire_bytes`]. Truncated or
    /// malformed input surfaces as a typed [`WireError`]; columns whose kind
    /// or length disagree with the decoded schema are rejected rather than
    /// constructed.
    pub fn from_wire_bytes(bytes: &[u8]) -> Result<Dataset, WireError> {
        let mut r = wire::Reader::new(bytes);
        let schema = wire_io::get_schema(&mut r)?;
        let n_rows = r.get_usize()?;
        let mut columns = Vec::with_capacity(schema.len());
        for (_, attr) in schema.iter() {
            let col = match (r.take(1)?[0], attr.kind.is_categorical()) {
                (0, false) => Column::Num(r.get_f64s()?),
                (1, true) => {
                    let v = r.get_u32s()?;
                    if let AttrKind::Categorical { values } = &attr.kind {
                        if v.iter().any(|&i| (i as usize) >= values.len()) {
                            return Err(WireError::Invalid {
                                what: "categorical column index",
                            });
                        }
                    }
                    Column::Cat(v)
                }
                (0 | 1, _) => {
                    return Err(WireError::Invalid {
                        what: "column kind vs schema",
                    })
                }
                (t, _) => {
                    return Err(WireError::UnknownTag {
                        what: "column kind",
                        tag: t as u64,
                    })
                }
            };
            if col.len() != n_rows {
                return Err(WireError::Invalid {
                    what: "column length",
                });
            }
            columns.push(col);
        }
        r.expect_empty()?;
        Ok(Dataset::from_parts(schema, columns, n_rows))
    }

    /// New dataset containing only the given rows, in the given order.
    /// Used for undersampling and train/holdout style splits.
    pub fn select_rows(&self, rows: &[usize]) -> Result<Dataset, DataError> {
        for &r in rows {
            if r >= self.n_rows {
                return Err(DataError::Csv {
                    line: r,
                    message: "row index out of bounds in select_rows".into(),
                });
            }
        }
        let columns = self
            .columns
            .iter()
            .map(|c| match c {
                Column::Num(v) => Column::Num(rows.iter().map(|&r| v[r]).collect()),
                Column::Cat(v) => Column::Cat(rows.iter().map(|&r| v[r]).collect()),
            })
            .collect();
        Ok(Dataset::from_parts(
            self.schema.clone(),
            columns,
            rows.len(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DatasetBuilder;
    use crate::row;

    fn sample() -> Dataset {
        let mut b = DatasetBuilder::new();
        b.numeric("x", Role::NonSensitive).unwrap();
        b.categorical("color", Role::NonSensitive, &["red", "blue"])
            .unwrap();
        b.categorical("g", Role::Sensitive, &["a", "b"]).unwrap();
        b.numeric("age", Role::Sensitive).unwrap();
        b.categorical("label", Role::Auxiliary, &["lo", "hi"])
            .unwrap();
        b.push_row(row![1.0, "red", "a", 30.0, "lo"]).unwrap();
        b.push_row(row![3.0, "blue", "b", 50.0, "hi"]).unwrap();
        b.push_row(row![5.0, "red", "a", 40.0, "hi"]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn wire_round_trip_is_bitwise() {
        let d = sample();
        let bytes = d.to_wire_bytes();
        let back = Dataset::from_wire_bytes(&bytes).unwrap();
        assert_eq!(d, back);
        // Re-encoding the decoded dataset reproduces the bytes exactly.
        assert_eq!(bytes, back.to_wire_bytes());
    }

    #[test]
    fn wire_truncation_and_corruption_are_typed_errors() {
        let d = sample();
        let bytes = d.to_wire_bytes();
        for cut in 0..bytes.len() {
            assert!(Dataset::from_wire_bytes(&bytes[..cut]).is_err());
        }
        // Out-of-range categorical index is rejected, not constructed.
        let mut bad = bytes.clone();
        let pos = bad.len() - 4; // last u32 of the final Cat column
        bad[pos..].copy_from_slice(&99u32.to_le_bytes());
        assert!(Dataset::from_wire_bytes(&bad).is_err());
    }

    #[test]
    fn task_matrix_one_hot_and_order() {
        let d = sample();
        let m = d.task_matrix(Normalization::None).unwrap();
        // numeric x, then one-hot color=red,color=blue
        assert_eq!(m.cols(), 3);
        assert_eq!(m.row(0), &[1.0, 1.0, 0.0]);
        assert_eq!(m.row(1), &[3.0, 0.0, 1.0]);
        assert_eq!(
            m.col_names(),
            &[
                "x".to_string(),
                "color=red".to_string(),
                "color=blue".to_string()
            ]
        );
    }

    #[test]
    fn sensitive_space_contains_cat_and_num() {
        let d = sample();
        let s = d.sensitive_space().unwrap();
        assert_eq!(s.categorical().len(), 1);
        assert_eq!(s.numeric().len(), 1);
        assert_eq!(s.categorical()[0].values(), &[0, 1, 0]);
        assert!((s.numeric()[0].dataset_mean() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn aux_attributes_stay_out_of_views() {
        let d = sample();
        let m = d.task_matrix(Normalization::None).unwrap();
        assert!(m.col_names().iter().all(|n| !n.starts_with("label")));
        let s = d.sensitive_space().unwrap();
        assert!(s.categorical().iter().all(|c| c.name() != "label"));
    }

    #[test]
    fn select_rows_reorders_and_subsets() {
        let d = sample();
        let sub = d.select_rows(&[2, 0]).unwrap();
        assert_eq!(sub.n_rows(), 2);
        assert_eq!(sub.numeric_column(AttrId(0)).unwrap(), &[5.0, 1.0]);
        assert_eq!(sub.categorical_column(AttrId(2)).unwrap(), &[0, 0]);
    }

    #[test]
    fn select_rows_rejects_out_of_bounds() {
        let d = sample();
        assert!(d.select_rows(&[0, 99]).is_err());
    }

    #[test]
    fn typed_column_access_checks_kind() {
        let d = sample();
        assert!(d.numeric_column(AttrId(1)).is_err());
        assert!(d.categorical_column(AttrId(0)).is_err());
        assert_eq!(d.numeric_column(AttrId(0)).unwrap(), &[1.0, 3.0, 5.0]);
    }

    #[test]
    fn value_resolves_labels() {
        let d = sample();
        assert_eq!(d.value(1, AttrId(2)).unwrap(), Value::Label("b".into()));
        assert_eq!(d.value(0, AttrId(0)).unwrap(), Value::Num(1.0));
    }

    #[test]
    fn append_row_validates_and_grows() {
        let mut d = sample();
        let idx = d.append_row(row![9.0, "blue", "b", 60.0, "lo"]).unwrap();
        assert_eq!(idx, 3);
        assert_eq!(d.n_rows(), 4);
        assert_eq!(d.numeric_column(AttrId(0)).unwrap(), &[1.0, 3.0, 5.0, 9.0]);
        assert_eq!(d.value(3, AttrId(2)).unwrap(), Value::Label("b".into()));
        // Bad cells are rejected under the build-time rules.
        assert!(matches!(
            d.append_row(row![9.0, "green", "b", 60.0, "lo"]),
            Err(DataError::UnknownCategory { .. })
        ));
        assert!(matches!(
            d.append_row(row![9.0, "blue"]),
            Err(DataError::RowArity { .. })
        ));
        assert_eq!(d.n_rows(), 4, "failed appends leave the dataset unchanged");
    }

    #[test]
    fn append_rows_is_atomic() {
        let mut d = sample();
        let err = d.append_rows(vec![
            row![9.0, "blue", "b", 60.0, "lo"],
            row![f64::NAN, "red", "a", 1.0, "hi"],
        ]);
        assert!(matches!(err, Err(DataError::NonFiniteValue { .. })));
        assert_eq!(d.n_rows(), 3, "no row of a failed batch is committed");
        let appended = d
            .append_rows(vec![
                row![9.0, "blue", "b", 60.0, "lo"],
                row![2.0, "red", "a", 35.0, "hi"],
            ])
            .unwrap();
        assert_eq!(appended, 2);
        assert_eq!(d.n_rows(), 5);
    }

    #[test]
    fn zscore_task_matrix_has_centered_columns() {
        let d = sample();
        let m = d.task_matrix(Normalization::ZScore).unwrap();
        let mean_x: f64 = (0..3).map(|r| m.row(r)[0]).sum::<f64>() / 3.0;
        assert!(mean_x.abs() < 1e-12);
    }
}
