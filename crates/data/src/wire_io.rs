//! Wire serialization for schema-level types ([`Value`], [`Attribute`],
//! [`Schema`]).
//!
//! These encoders feed the durability layer: streaming snapshots persist the
//! mirrored [`crate::Dataset`] and [`crate::FrozenEncoder`], and the
//! write-ahead log journals ingested rows as `Vec<Value>`. Every encoding is
//! byte-exact (floats travel as raw IEEE-754 bits) and every decoder returns
//! a typed [`WireError`] on truncated or malformed input — never a panic.

use crate::schema::{AttrKind, Attribute, Role, Schema};
use crate::value::Value;
use crate::wire::{self, Reader, WireError};

/// Append one [`Value`] (tag byte + payload) to `out`.
pub fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Num(x) => {
            out.push(0);
            wire::put_f64(out, *x);
        }
        Value::Label(s) => {
            out.push(1);
            wire::put_str(out, s);
        }
        Value::CatIndex(i) => {
            out.push(2);
            wire::put_u32(out, *i);
        }
    }
}

/// Decode one [`Value`] written by [`put_value`].
pub fn get_value(r: &mut Reader<'_>) -> Result<Value, WireError> {
    let tag = r.take(1)?[0];
    Ok(match tag {
        0 => Value::Num(r.get_f64()?),
        1 => Value::Label(r.get_string()?),
        2 => Value::CatIndex(r.get_u32()?),
        t => {
            return Err(WireError::UnknownTag {
                what: "value kind",
                tag: t as u64,
            })
        }
    })
}

/// Append a row of values with a leading length.
pub fn put_row(out: &mut Vec<u8>, row: &[Value]) {
    wire::put_usize(out, row.len());
    for v in row {
        put_value(out, v);
    }
}

/// Decode a row written by [`put_row`].
pub fn get_row(r: &mut Reader<'_>) -> Result<Vec<Value>, WireError> {
    // A value is at least 1 tag byte, so the count is bounded by the bytes
    // actually present — a corrupt length fails here, before allocation.
    let n = r.get_len(1)?;
    (0..n).map(|_| get_value(r)).collect()
}

fn role_tag(role: Role) -> u8 {
    match role {
        Role::NonSensitive => 0,
        Role::Sensitive => 1,
        Role::Auxiliary => 2,
    }
}

fn role_from_tag(tag: u8) -> Result<Role, WireError> {
    Ok(match tag {
        0 => Role::NonSensitive,
        1 => Role::Sensitive,
        2 => Role::Auxiliary,
        t => {
            return Err(WireError::UnknownTag {
                what: "attribute role",
                tag: t as u64,
            })
        }
    })
}

/// Append one [`Attribute`] declaration to `out`.
pub fn put_attribute(out: &mut Vec<u8>, attr: &Attribute) {
    wire::put_str(out, &attr.name);
    out.push(role_tag(attr.role));
    match &attr.kind {
        AttrKind::Numeric => out.push(0),
        AttrKind::Categorical { values } => {
            out.push(1);
            wire::put_usize(out, values.len());
            for v in values {
                wire::put_str(out, v);
            }
        }
    }
}

/// Decode one [`Attribute`] written by [`put_attribute`].
pub fn get_attribute(r: &mut Reader<'_>) -> Result<Attribute, WireError> {
    let name = r.get_string()?;
    let role = role_from_tag(r.take(1)?[0])?;
    let kind = match r.take(1)?[0] {
        0 => AttrKind::Numeric,
        1 => {
            // Each label costs at least its 8-byte length prefix.
            let n = r.get_len(8)?;
            let values = (0..n)
                .map(|_| r.get_string())
                .collect::<Result<Vec<_>, _>>()?;
            AttrKind::Categorical { values }
        }
        t => {
            return Err(WireError::UnknownTag {
                what: "attribute kind",
                tag: t as u64,
            })
        }
    };
    Ok(Attribute { name, role, kind })
}

/// Append a whole [`Schema`] to `out`.
pub fn put_schema(out: &mut Vec<u8>, schema: &Schema) {
    wire::put_usize(out, schema.len());
    for (_, attr) in schema.iter() {
        put_attribute(out, attr);
    }
}

/// Decode a [`Schema`] written by [`put_schema`], re-running the same
/// validation as interactive construction (unique names, non-empty unique
/// domains). A decoded schema that would be rejected by
/// [`Schema::push`](crate::Schema) surfaces as [`WireError::Invalid`].
pub fn get_schema(r: &mut Reader<'_>) -> Result<Schema, WireError> {
    // An attribute costs at least an 8-byte name length prefix.
    let n = r.get_len(8)?;
    let mut schema = Schema::new();
    for _ in 0..n {
        let attr = get_attribute(r)?;
        schema
            .push(attr)
            .map_err(|_| WireError::Invalid { what: "schema" })?;
    }
    Ok(schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Reader;

    fn sample_schema() -> Schema {
        let mut s = Schema::new();
        s.push(Attribute {
            name: "score".into(),
            role: Role::NonSensitive,
            kind: AttrKind::Numeric,
        })
        .unwrap();
        s.push(Attribute {
            name: "gender".into(),
            role: Role::Sensitive,
            kind: AttrKind::Categorical {
                values: vec!["female".into(), "male".into()],
            },
        })
        .unwrap();
        s.push(Attribute {
            name: "note".into(),
            role: Role::Auxiliary,
            kind: AttrKind::Categorical {
                values: vec!["a".into(), "b".into(), "c".into()],
            },
        })
        .unwrap();
        s
    }

    #[test]
    fn value_round_trip() {
        for v in [
            Value::Num(1.5),
            Value::Num(f64::NEG_INFINITY),
            Value::Num(-0.0),
            Value::Label("hello".into()),
            Value::Label(String::new()),
            Value::CatIndex(7),
        ] {
            let mut out = Vec::new();
            put_value(&mut out, &v);
            let mut r = Reader::new(&out);
            let back = get_value(&mut r).unwrap();
            r.expect_empty().unwrap();
            // Compare NaN-safely via the display/debug form of raw bits.
            match (&v, &back) {
                (Value::Num(a), Value::Num(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                _ => assert_eq!(v, back),
            }
        }
    }

    #[test]
    fn row_round_trip() {
        let row = vec![
            Value::Num(2.0),
            Value::Label("x".into()),
            Value::CatIndex(3),
        ];
        let mut out = Vec::new();
        put_row(&mut out, &row);
        let mut r = Reader::new(&out);
        assert_eq!(get_row(&mut r).unwrap(), row);
        r.expect_empty().unwrap();
    }

    #[test]
    fn schema_round_trip() {
        let schema = sample_schema();
        let mut out = Vec::new();
        put_schema(&mut out, &schema);
        let mut r = Reader::new(&out);
        let back = get_schema(&mut r).unwrap();
        r.expect_empty().unwrap();
        assert_eq!(schema, back);
    }

    #[test]
    fn unknown_tags_are_typed_errors() {
        let mut out = Vec::new();
        put_value(&mut out, &Value::CatIndex(1));
        out[0] = 9;
        assert!(matches!(
            get_value(&mut Reader::new(&out)),
            Err(WireError::UnknownTag {
                what: "value kind",
                ..
            })
        ));
    }

    #[test]
    fn duplicate_attribute_decodes_to_invalid() {
        let attr = Attribute {
            name: "dup".into(),
            role: Role::NonSensitive,
            kind: AttrKind::Numeric,
        };
        let mut out = Vec::new();
        crate::wire::put_usize(&mut out, 2);
        put_attribute(&mut out, &attr);
        put_attribute(&mut out, &attr);
        assert!(matches!(
            get_schema(&mut Reader::new(&out)),
            Err(WireError::Invalid { what: "schema" })
        ));
    }

    #[test]
    fn truncation_never_panics() {
        let schema = sample_schema();
        let mut out = Vec::new();
        put_schema(&mut out, &schema);
        for cut in 0..out.len() {
            // Every strict prefix must fail with a typed error.
            assert!(get_schema(&mut Reader::new(&out[..cut])).is_err());
        }
    }
}
