//! Error type shared by all dataset operations.

use std::fmt;

/// Errors raised while building, validating, encoding or (de)serializing
/// datasets.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// An attribute name was declared twice in one schema.
    DuplicateAttribute(String),
    /// A categorical attribute was declared with no permissible values.
    EmptyDomain(String),
    /// A categorical attribute was declared with a duplicated value label.
    DuplicateCategory {
        /// Attribute whose domain contains the duplicate.
        attribute: String,
        /// The repeated value label.
        value: String,
    },
    /// A row had a different number of cells than the schema has attributes.
    RowArity {
        /// Number of cells the schema expects.
        expected: usize,
        /// Number of cells the row provided.
        got: usize,
    },
    /// A cell's type did not match its attribute's kind.
    TypeMismatch {
        /// Attribute the cell belongs to.
        attribute: String,
        /// Human-readable description of what was expected.
        expected: &'static str,
    },
    /// A categorical cell referenced a label absent from the domain.
    UnknownCategory {
        /// Attribute the cell belongs to.
        attribute: String,
        /// Label that could not be resolved.
        value: String,
    },
    /// A numeric cell was NaN or infinite.
    NonFiniteValue {
        /// Attribute the cell belongs to.
        attribute: String,
        /// Row index of the offending cell.
        row: usize,
    },
    /// An operation that needs at least one row was invoked on an empty
    /// dataset.
    EmptyDataset,
    /// An attribute was declared after rows had already been pushed.
    SchemaFrozen,
    /// An operation referenced an attribute id not present in the schema.
    NoSuchAttribute(usize),
    /// The requested view has no attributes (e.g. a task matrix over a
    /// schema with no non-sensitive attributes).
    EmptyView(&'static str),
    /// CSV input could not be parsed.
    Csv {
        /// 1-based line number of the offending record.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Underlying I/O failure (message-only so the error stays `Clone`).
    Io(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::DuplicateAttribute(name) => {
                write!(f, "attribute `{name}` declared more than once")
            }
            DataError::EmptyDomain(name) => {
                write!(f, "categorical attribute `{name}` has an empty domain")
            }
            DataError::DuplicateCategory { attribute, value } => {
                write!(f, "attribute `{attribute}` lists value `{value}` twice")
            }
            DataError::RowArity { expected, got } => {
                write!(
                    f,
                    "row has {got} cells but the schema has {expected} attributes"
                )
            }
            DataError::TypeMismatch {
                attribute,
                expected,
            } => {
                write!(f, "attribute `{attribute}` expects {expected}")
            }
            DataError::UnknownCategory { attribute, value } => {
                write!(
                    f,
                    "value `{value}` is not in the domain of attribute `{attribute}`"
                )
            }
            DataError::NonFiniteValue { attribute, row } => {
                write!(
                    f,
                    "attribute `{attribute}` has a non-finite value at row {row}"
                )
            }
            DataError::EmptyDataset => write!(f, "operation requires a non-empty dataset"),
            DataError::SchemaFrozen => {
                write!(f, "cannot declare attributes after rows have been pushed")
            }
            DataError::NoSuchAttribute(id) => write!(f, "no attribute with id {id}"),
            DataError::EmptyView(what) => write!(f, "view `{what}` selects no attributes"),
            DataError::Csv { line, message } => {
                write!(f, "csv parse error at line {line}: {message}")
            }
            DataError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for DataError {}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e.to_string())
    }
}
