//! Decode-never-panics property: every wire decoder in this crate must
//! return `Ok` or a typed [`fairkm_data::wire::WireError`] on *arbitrary*
//! input — mutated valid encodings, truncations, and raw byte soup. A panic
//! (or an attempt to allocate a corrupt length prefix) fails the test.

use fairkm_data::wire::Reader;
use fairkm_data::{row, wire_io, Dataset, DatasetBuilder, FrozenEncoder, Normalization, Role};
use proptest::prelude::*;

fn sample_dataset() -> Dataset {
    let mut b = DatasetBuilder::new();
    b.numeric("x", Role::NonSensitive).unwrap();
    b.categorical("color", Role::NonSensitive, &["red", "blue"])
        .unwrap();
    b.categorical("g", Role::Sensitive, &["a", "b"]).unwrap();
    b.numeric("age", Role::Sensitive).unwrap();
    b.push_row(row![1.0, "red", "a", 30.0]).unwrap();
    b.push_row(row![3.0, "blue", "b", 50.0]).unwrap();
    b.push_row(row![5.0, "red", "a", 40.0]).unwrap();
    b.build().unwrap()
}

/// Apply a mutation plan to a valid encoding: truncate, then flip bytes.
fn mutate(mut bytes: Vec<u8>, cut_frac: u16, edits: &[(u16, u8)]) -> Vec<u8> {
    if !bytes.is_empty() {
        let keep = (cut_frac as usize * bytes.len()) / (u16::MAX as usize);
        bytes.truncate(keep.min(bytes.len()));
    }
    for &(pos, val) in edits {
        if !bytes.is_empty() {
            let i = pos as usize % bytes.len();
            bytes[i] ^= val;
        }
    }
    bytes
}

/// Run every decoder in the crate over the bytes. Reaching the end of this
/// function without panicking IS the property; results are ignored, except
/// that a successful decode must re-encode without panicking too.
fn decode_everything(bytes: &[u8]) {
    if let Ok(d) = Dataset::from_wire_bytes(bytes) {
        let _ = d.to_wire_bytes();
    }
    if let Ok(e) = FrozenEncoder::from_wire_bytes(bytes) {
        let _ = e.to_wire_bytes();
    }
    let _ = wire_io::get_schema(&mut Reader::new(bytes));
    let _ = wire_io::get_attribute(&mut Reader::new(bytes));
    let _ = wire_io::get_row(&mut Reader::new(bytes));
    let _ = wire_io::get_value(&mut Reader::new(bytes));
    let mut r = Reader::new(bytes);
    let _ = r.get_f64s();
    let mut r = Reader::new(bytes);
    let _ = r.get_u32s();
    let mut r = Reader::new(bytes);
    let _ = r.get_string();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn mutated_dataset_encodings_never_panic(
        cut_frac in 0u16..=u16::MAX,
        edits in proptest::collection::vec((0u16..=u16::MAX, 1u8..=255), 0..8),
    ) {
        let bytes = sample_dataset().to_wire_bytes();
        decode_everything(&mutate(bytes, cut_frac, &edits));
    }

    #[test]
    fn mutated_encoder_encodings_never_panic(
        cut_frac in 0u16..=u16::MAX,
        edits in proptest::collection::vec((0u16..=u16::MAX, 1u8..=255), 0..8),
    ) {
        let bytes = sample_dataset()
            .frozen_encoder(Normalization::ZScore)
            .unwrap()
            .to_wire_bytes();
        decode_everything(&mutate(bytes, cut_frac, &edits));
    }

    #[test]
    fn raw_byte_soup_never_panics(
        bytes in proptest::collection::vec(0u8..=255, 0..256),
    ) {
        decode_everything(&bytes);
    }
}
