//! Property tests for the dataset substrate: encodings and serialization
//! must be lossless/consistent on arbitrary inputs.

use fairkm_data::{read_csv, write_csv, DatasetBuilder, Normalization, Partition, Role, Value};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomDataset {
    numeric: Vec<Vec<f64>>,
    categorical: Vec<Vec<u32>>,
    cardinality: usize,
}

fn random_dataset() -> impl Strategy<Value = RandomDataset> {
    (1usize..=12, 1usize..=3, 1usize..=2, 2usize..=4).prop_flat_map(
        |(rows, num_cols, cat_cols, cardinality)| {
            (
                proptest::collection::vec(
                    proptest::collection::vec(-1e6f64..1e6, rows..=rows),
                    num_cols..=num_cols,
                ),
                proptest::collection::vec(
                    proptest::collection::vec(0u32..cardinality as u32, rows..=rows),
                    cat_cols..=cat_cols,
                ),
            )
                .prop_map(move |(numeric, categorical)| RandomDataset {
                    numeric,
                    categorical,
                    cardinality,
                })
        },
    )
}

fn build(rd: &RandomDataset) -> fairkm_data::Dataset {
    let mut b = DatasetBuilder::new();
    for (i, _) in rd.numeric.iter().enumerate() {
        b.numeric(&format!("x{i}"), Role::NonSensitive).unwrap();
    }
    let labels: Vec<String> = (0..rd.cardinality).map(|v| format!("v{v}")).collect();
    let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
    for (i, _) in rd.categorical.iter().enumerate() {
        b.categorical(&format!("g{i}"), Role::Sensitive, &refs)
            .unwrap();
    }
    let rows = rd.numeric[0].len();
    for r in 0..rows {
        let mut row: Vec<Value> = rd.numeric.iter().map(|c| Value::Num(c[r])).collect();
        row.extend(rd.categorical.iter().map(|c| Value::CatIndex(c[r])));
        b.push_row(row).unwrap();
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    #[test]
    fn csv_roundtrip_is_lossless(rd in random_dataset()) {
        let d = build(&rd);
        let mut buf = Vec::new();
        write_csv(&d, &mut buf).unwrap();
        let d2 = read_csv(&buf[..]).unwrap();
        prop_assert_eq!(d2.n_rows(), d.n_rows());
        for (id, _) in d.schema().iter() {
            for r in 0..d.n_rows() {
                prop_assert_eq!(d2.value(r, id).unwrap(), d.value(r, id).unwrap());
            }
        }
    }

    #[test]
    fn one_hot_rows_sum_to_attr_count(rd in random_dataset()) {
        // Encode ONLY the categorical attributes: each row's one-hot block
        // must sum to exactly the number of categorical attributes.
        let d = build(&rd);
        let cat_ids = d.schema().ids_with_role(Role::Sensitive);
        let m = d.matrix_for(&cat_ids, Normalization::None).unwrap();
        for row in m.iter_rows() {
            let sum: f64 = row.iter().sum();
            prop_assert!((sum - cat_ids.len() as f64).abs() < 1e-12);
            prop_assert!(row.iter().all(|&v| v == 0.0 || v == 1.0));
        }
    }

    #[test]
    fn zscore_is_idempotent_up_to_epsilon(rd in random_dataset()) {
        // z-scoring an already z-scored column changes nothing (variance 1,
        // mean 0); verify via double encoding of the numeric block.
        let d = build(&rd);
        let num_ids = d.schema().ids_with_role(Role::NonSensitive);
        let once = d.matrix_for(&num_ids, Normalization::ZScore).unwrap();
        // re-build a dataset from the encoded values and encode again
        let mut b = DatasetBuilder::new();
        for i in 0..once.cols() {
            b.numeric(&format!("z{i}"), Role::NonSensitive).unwrap();
        }
        for r in 0..once.rows() {
            b.push_row(once.row(r).iter().map(|&v| Value::Num(v)).collect()).unwrap();
        }
        let d2 = b.build().unwrap();
        let ids2 = d2.schema().ids_with_role(Role::NonSensitive);
        let twice = d2.matrix_for(&ids2, Normalization::ZScore).unwrap();
        for (a, b) in once.as_slice().iter().zip(twice.as_slice()) {
            prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn minmax_output_is_in_unit_box(rd in random_dataset()) {
        let d = build(&rd);
        let num_ids = d.schema().ids_with_role(Role::NonSensitive);
        let m = d.matrix_for(&num_ids, Normalization::MinMax).unwrap();
        for &v in m.as_slice() {
            prop_assert!((0.0..=1.0).contains(&v), "{v} outside unit box");
        }
    }

    #[test]
    fn sensitive_space_distributions_sum_to_one(rd in random_dataset()) {
        let d = build(&rd);
        let space = d.sensitive_space().unwrap();
        for attr in space.categorical() {
            let sum: f64 = attr.dataset_dist().iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn partition_members_are_a_disjoint_cover(
        assignment in proptest::collection::vec(0usize..5, 0..40),
    ) {
        let p = Partition::new(assignment.clone(), 5).unwrap();
        let members = p.members();
        let mut seen = vec![false; assignment.len()];
        for (c, rows) in members.iter().enumerate() {
            for &r in rows {
                prop_assert_eq!(p.assignment(r), c);
                prop_assert!(!seen[r]);
                seen[r] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}
