//! Property tests for the dataset substrate: encodings and serialization
//! must be lossless/consistent on arbitrary inputs.

use fairkm_data::{read_csv, write_csv, DatasetBuilder, Normalization, Partition, Role, Value};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomDataset {
    numeric: Vec<Vec<f64>>,
    categorical: Vec<Vec<u32>>,
    cardinality: usize,
}

fn random_dataset() -> impl Strategy<Value = RandomDataset> {
    (1usize..=12, 1usize..=3, 1usize..=2, 2usize..=4).prop_flat_map(
        |(rows, num_cols, cat_cols, cardinality)| {
            (
                proptest::collection::vec(
                    proptest::collection::vec(-1e6f64..1e6, rows..=rows),
                    num_cols..=num_cols,
                ),
                proptest::collection::vec(
                    proptest::collection::vec(0u32..cardinality as u32, rows..=rows),
                    cat_cols..=cat_cols,
                ),
            )
                .prop_map(move |(numeric, categorical)| RandomDataset {
                    numeric,
                    categorical,
                    cardinality,
                })
        },
    )
}

fn build(rd: &RandomDataset) -> fairkm_data::Dataset {
    let mut b = DatasetBuilder::new();
    for (i, _) in rd.numeric.iter().enumerate() {
        b.numeric(&format!("x{i}"), Role::NonSensitive).unwrap();
    }
    let labels: Vec<String> = (0..rd.cardinality).map(|v| format!("v{v}")).collect();
    let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
    for (i, _) in rd.categorical.iter().enumerate() {
        b.categorical(&format!("g{i}"), Role::Sensitive, &refs)
            .unwrap();
    }
    let rows = rd.numeric[0].len();
    for r in 0..rows {
        let mut row: Vec<Value> = rd.numeric.iter().map(|c| Value::Num(c[r])).collect();
        row.extend(rd.categorical.iter().map(|c| Value::CatIndex(c[r])));
        b.push_row(row).unwrap();
    }
    b.build().unwrap()
}

/// Raw material for post-bootstrap arrival rows: numeric cells plus
/// categorical picks, clipped to the generated schema by `clip_arrivals`.
fn arrival_rows() -> impl Strategy<Value = Vec<(Vec<f64>, Vec<u32>)>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(-1e6f64..1e6, 3),
            proptest::collection::vec(0u32..4, 2),
        ),
        1..=10,
    )
}

/// Shape raw arrival material into full-arity rows for the schema built
/// from `rd`: `num_cols` numeric cells first, then `cat_cols` categorical
/// indices (reduced mod the schema's cardinality).
fn clip_arrivals(
    raw: &[(Vec<f64>, Vec<u32>)],
    cardinality: usize,
    num_cols: usize,
    cat_cols: usize,
) -> Vec<Vec<Value>> {
    raw.iter()
        .map(|(nums, cats)| {
            let mut row: Vec<Value> = (0..num_cols)
                .map(|i| Value::Num(nums[i % nums.len()]))
                .collect();
            row.extend(
                (0..cat_cols).map(|i| Value::CatIndex(cats[i % cats.len()] % cardinality as u32)),
            );
            row
        })
        .collect()
}

fn pick_norm(pick: u8) -> Normalization {
    match pick {
        0 => Normalization::None,
        1 => Normalization::ZScore,
        _ => Normalization::MinMax,
    }
}

fn bits_of(encoded: &[f64]) -> Vec<u64> {
    encoded.iter().map(|v| v.to_bits()).collect()
}

/// Deterministic Fisher–Yates permutation of `0..n` from a seed (plain
/// splitmix64 so the test does not lean on shuffle support in the
/// proptest shim).
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        idx.swap(i, j);
    }
    idx
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    #[test]
    fn csv_roundtrip_is_lossless(rd in random_dataset()) {
        let d = build(&rd);
        let mut buf = Vec::new();
        write_csv(&d, &mut buf).unwrap();
        let d2 = read_csv(&buf[..]).unwrap();
        prop_assert_eq!(d2.n_rows(), d.n_rows());
        for (id, _) in d.schema().iter() {
            for r in 0..d.n_rows() {
                prop_assert_eq!(d2.value(r, id).unwrap(), d.value(r, id).unwrap());
            }
        }
    }

    #[test]
    fn one_hot_rows_sum_to_attr_count(rd in random_dataset()) {
        // Encode ONLY the categorical attributes: each row's one-hot block
        // must sum to exactly the number of categorical attributes.
        let d = build(&rd);
        let cat_ids = d.schema().ids_with_role(Role::Sensitive);
        let m = d.matrix_for(&cat_ids, Normalization::None).unwrap();
        for row in m.iter_rows() {
            let sum: f64 = row.iter().sum();
            prop_assert!((sum - cat_ids.len() as f64).abs() < 1e-12);
            prop_assert!(row.iter().all(|&v| v == 0.0 || v == 1.0));
        }
    }

    #[test]
    fn zscore_is_idempotent_up_to_epsilon(rd in random_dataset()) {
        // z-scoring an already z-scored column changes nothing (variance 1,
        // mean 0); verify via double encoding of the numeric block.
        let d = build(&rd);
        let num_ids = d.schema().ids_with_role(Role::NonSensitive);
        let once = d.matrix_for(&num_ids, Normalization::ZScore).unwrap();
        // re-build a dataset from the encoded values and encode again
        let mut b = DatasetBuilder::new();
        for i in 0..once.cols() {
            b.numeric(&format!("z{i}"), Role::NonSensitive).unwrap();
        }
        for r in 0..once.rows() {
            b.push_row(once.row(r).iter().map(|&v| Value::Num(v)).collect()).unwrap();
        }
        let d2 = b.build().unwrap();
        let ids2 = d2.schema().ids_with_role(Role::NonSensitive);
        let twice = d2.matrix_for(&ids2, Normalization::ZScore).unwrap();
        for (a, b) in once.as_slice().iter().zip(twice.as_slice()) {
            prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn minmax_output_is_in_unit_box(rd in random_dataset()) {
        let d = build(&rd);
        let num_ids = d.schema().ids_with_role(Role::NonSensitive);
        let m = d.matrix_for(&num_ids, Normalization::MinMax).unwrap();
        for &v in m.as_slice() {
            prop_assert!((0.0..=1.0).contains(&v), "{v} outside unit box");
        }
    }

    #[test]
    fn sensitive_space_distributions_sum_to_one(rd in random_dataset()) {
        let d = build(&rd);
        let space = d.sensitive_space().unwrap();
        for attr in space.categorical() {
            let sum: f64 = attr.dataset_dist().iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn frozen_encoding_is_bitwise_stable_under_reencoding(
        rd in random_dataset(),
        arrivals in arrival_rows(),
        norm_pick in 0u8..3,
    ) {
        // The streaming determinism contract rests on arrival encoding
        // being a pure function of (fitting corpus, normalization, row):
        // encoding the same row again — through the same encoder, a clone,
        // or an encoder re-fitted on the same corpus — must reproduce the
        // exact bits.
        let d = build(&rd);
        let norm = pick_norm(norm_pick);
        let encoder = d.frozen_encoder(norm).unwrap();
        let rows = clip_arrivals(&arrivals, rd.cardinality, rd.numeric.len(), rd.categorical.len());
        let first: Vec<Vec<u64>> = rows
            .iter()
            .map(|r| bits_of(&encoder.encode_row(r).unwrap()))
            .collect();
        let cloned = encoder.clone();
        let refit = d.frozen_encoder(norm).unwrap();
        for (r, expect) in rows.iter().zip(&first) {
            prop_assert_eq!(&bits_of(&encoder.encode_row(r).unwrap()), expect);
            prop_assert_eq!(&bits_of(&cloned.encode_row(r).unwrap()), expect);
            prop_assert_eq!(&bits_of(&refit.encode_row(r).unwrap()), expect);
        }
    }

    #[test]
    fn frozen_encoding_is_bitwise_stable_under_arrival_permutation(
        rd in random_dataset(),
        arrivals in arrival_rows(),
        norm_pick in 0u8..3,
        perm_seed in any::<u64>(),
    ) {
        // A frozen encoder holds no mutable state: the bits a row encodes
        // to cannot depend on which rows were encoded before it. Encode
        // the arrival batch in a random permutation and check every row
        // lands on its original-order bits.
        let d = build(&rd);
        let norm = pick_norm(norm_pick);
        let encoder = d.frozen_encoder(norm).unwrap();
        let rows = clip_arrivals(&arrivals, rd.cardinality, rd.numeric.len(), rd.categorical.len());
        let in_order: Vec<Vec<u64>> = rows
            .iter()
            .map(|r| bits_of(&encoder.encode_row(r).unwrap()))
            .collect();
        for &i in &permutation(rows.len(), perm_seed) {
            prop_assert_eq!(
                &bits_of(&encoder.encode_row(&rows[i]).unwrap()),
                &in_order[i],
                "row {} encoded differently out of order", i
            );
        }
    }

    #[test]
    fn partition_members_are_a_disjoint_cover(
        assignment in proptest::collection::vec(0usize..5, 0..40),
    ) {
        let p = Partition::new(assignment.clone(), 5).unwrap();
        let members = p.members();
        let mut seen = vec![false; assignment.len()];
        for (c, rows) in members.iter().enumerate() {
            for &r in rows {
                prop_assert_eq!(p.assignment(r), c);
                prop_assert!(!seen[r]);
                seen[r] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}
