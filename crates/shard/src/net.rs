//! Running the shard protocol inside the [`fairkm_sim`] discrete-event
//! simulator: node adapter, recovery wiring, and a one-call constructor.

use crate::coordinator::Coordinator;
use crate::plan::ShardPlan;
use crate::protocol::Msg;
use crate::shard::{Outbox, ShardNode};
use fairkm_core::ShardParts;
use fairkm_sim::{Ctx, FaultSchedule, NodeId, SimNode, Simulation};

/// A simulation participant: the coordinator at node 0, shard `s` at node
/// `s + 1`.
#[derive(Debug)]
pub enum Node {
    /// The coordinator (assumed durable — the fault model crashes shards,
    /// not node 0).
    Coordinator(Box<Coordinator>),
    /// A shard replica.
    Shard(Box<ShardNode>),
}

impl Node {
    /// The coordinator, if this is node 0.
    pub fn as_coordinator(&self) -> Option<&Coordinator> {
        match self {
            Node::Coordinator(c) => Some(c),
            Node::Shard(_) => None,
        }
    }

    /// The shard, if this is a shard node.
    pub fn as_shard(&self) -> Option<&ShardNode> {
        match self {
            Node::Coordinator(_) => None,
            Node::Shard(s) => Some(s),
        }
    }
}

impl SimNode<Msg> for Node {
    fn on_message(&mut self, _from: NodeId, msg: Msg, ctx: &mut Ctx<Msg>) {
        let mut out: Outbox = Vec::new();
        match self {
            Node::Coordinator(c) => c.handle(msg, &mut out),
            Node::Shard(s) => s.handle(msg, &mut out),
        }
        for (to, m) in out {
            ctx.send(to, m);
        }
    }

    fn on_restart(&mut self, ctx: &mut Ctx<Msg>) {
        if let Node::Shard(s) = self {
            // Rejoin handshake: ask for the log suffix past the recovered
            // version; the coordinator also re-issues outstanding requests.
            ctx.send(
                0,
                Msg::SyncRequest {
                    shard: s.id(),
                    have: s.version(),
                },
            );
        }
    }

    fn on_checkpoint(&mut self, ctx: &mut Ctx<Msg>) {
        if let Node::Shard(s) = self {
            ctx.save(s.snapshot_bytes());
        }
    }
}

/// Build a simulation of the shard protocol over `parts` (a bootstrapped
/// single-node engine's hand-off state) under `faults`. Every shard's disk
/// is pre-seeded with its provisioning snapshot, so a shard that crashes
/// before its first checkpoint still rejoins from durable state. Post
/// [`Msg::Op`]s to node 0 and run to quiescence.
pub fn build_simulation(
    parts: ShardParts,
    plan: ShardPlan,
    seed: u64,
    faults: FaultSchedule,
) -> Simulation<Msg, Node, impl FnMut(NodeId, Option<&[u8]>) -> Node> {
    let (coordinator, shards) = Coordinator::provision(parts, plan);
    let snapshots: Vec<Vec<u8>> = shards.iter().map(|s| s.snapshot_bytes()).collect();
    let mut initial: Vec<Option<Node>> = Vec::with_capacity(1 + shards.len());
    initial.push(Some(Node::Coordinator(Box::new(coordinator))));
    initial.extend(shards.into_iter().map(|s| Some(Node::Shard(Box::new(s)))));
    let recover = move |id: NodeId, snapshot: Option<&[u8]>| match snapshot {
        Some(bytes) => Node::Shard(Box::new(
            ShardNode::from_snapshot(bytes).expect("corrupt shard snapshot"),
        )),
        None => initial[id].take().expect("restart without a snapshot"),
    };
    let mut sim = Simulation::new(1 + plan.shards, seed, faults, recover);
    for (s, bytes) in snapshots.into_iter().enumerate() {
        sim.seed_disk(s + 1, bytes);
    }
    sim
}
