//! Running the shard protocol inside the [`fairkm_sim`] discrete-event
//! simulator: node adapter, recovery wiring, and a one-call constructor.

use crate::coordinator::Coordinator;
use crate::plan::ShardPlan;
use crate::protocol::Msg;
use crate::shard::{Outbox, ShardNode};
use fairkm_core::ShardParts;
use fairkm_sim::{Ctx, FaultSchedule, NodeId, SharedMemBackend, SimNode, Simulation};

/// Snapshot cadence of the simulated coordinator's journal: roll a fresh
/// durable snapshot after this many completed operations.
pub(crate) const COORDINATOR_SNAPSHOT_EVERY: u64 = 4;

/// A simulation participant: the coordinator at node 0, shard `s` at node
/// `s + 1`.
#[derive(Debug)]
pub enum Node {
    /// The coordinator. It journals every mutation batch through its
    /// node's [`SharedMemBackend`] before broadcasting, so a node-0 crash
    /// recovers from the durable snapshot + WAL suffix
    /// ([`Coordinator::recover`]) without rolling any shard back.
    Coordinator(Box<Coordinator>),
    /// A shard replica.
    Shard(Box<ShardNode>),
}

impl Node {
    /// The coordinator, if this is node 0.
    pub fn as_coordinator(&self) -> Option<&Coordinator> {
        match self {
            Node::Coordinator(c) => Some(c),
            Node::Shard(_) => None,
        }
    }

    /// The shard, if this is a shard node.
    pub fn as_shard(&self) -> Option<&ShardNode> {
        match self {
            Node::Coordinator(_) => None,
            Node::Shard(s) => Some(s),
        }
    }
}

impl SimNode<Msg> for Node {
    fn on_message(&mut self, _from: NodeId, msg: Msg, ctx: &mut Ctx<Msg>) {
        let mut out: Outbox = Vec::new();
        match self {
            Node::Coordinator(c) => c.handle(msg, &mut out),
            Node::Shard(s) => s.handle(msg, &mut out),
        }
        for (to, m) in out {
            ctx.send(to, m);
        }
    }

    fn on_restart(&mut self, ctx: &mut Ctx<Msg>) {
        if let Node::Shard(s) = self {
            // Rejoin handshake: ask for the log suffix past the recovered
            // version; the coordinator also re-issues outstanding requests.
            ctx.send(
                0,
                Msg::SyncRequest {
                    shard: s.id(),
                    have: s.version(),
                },
            );
        }
        // A recovered coordinator sends nothing: its outstanding requests
        // died with the in-flight operation, shards keep any Log batches
        // it broadcast before crashing, and stale responses addressed to
        // it are discarded by request id.
    }

    fn on_checkpoint(&mut self, ctx: &mut Ctx<Msg>) {
        if let Node::Shard(s) = self {
            ctx.save(s.snapshot_bytes());
        }
    }
}

/// Build a simulation of the shard protocol over `parts` (a bootstrapped
/// single-node engine's hand-off state) under `faults`. Every shard's disk
/// is pre-seeded with its provisioning snapshot, so a shard that crashes
/// before its first checkpoint still rejoins from durable state; the
/// coordinator journals through node 0's storage backend from the first
/// operation, so node 0 may crash too. Post [`Msg::Op`]s to node 0 and
/// run to quiescence.
///
/// The recovery closure panics only when the simulated durable state is
/// unusable (no snapshot was ever seeded, or recovery reported a typed
/// error) — that is a broken test schedule, not a protocol outcome.
#[allow(clippy::type_complexity)] // impl-Trait factory can't live in a type alias
pub fn build_simulation(
    parts: ShardParts,
    plan: ShardPlan,
    seed: u64,
    faults: FaultSchedule,
) -> Simulation<Msg, Node, impl FnMut(NodeId, Option<&[u8]>, &SharedMemBackend) -> Node> {
    let (coordinator, shards) = Coordinator::provision(parts, plan);
    let snapshots: Vec<Vec<u8>> = shards.iter().map(|s| s.snapshot_bytes()).collect();
    let mut initial: Vec<Option<Node>> = Vec::with_capacity(1 + shards.len());
    initial.push(Some(Node::Coordinator(Box::new(coordinator))));
    initial.extend(shards.into_iter().map(|s| Some(Node::Shard(Box::new(s)))));
    let recover = move |id: NodeId, snapshot: Option<&[u8]>, backend: &SharedMemBackend| {
        if id == 0 {
            return match initial[0].take() {
                Some(Node::Coordinator(mut c)) => {
                    // First build: attach the journal and write the
                    // provisioning snapshot.
                    c.make_durable(Box::new(backend.clone()), Some(COORDINATOR_SNAPSHOT_EVERY))
                        .expect("fresh coordinator journal");
                    Node::Coordinator(c)
                }
                _ => {
                    let (c, _report) = Coordinator::recover(
                        Box::new(backend.clone()),
                        Some(COORDINATOR_SNAPSHOT_EVERY),
                    )
                    .expect("coordinator recovery from simulated storage");
                    Node::Coordinator(Box::new(c))
                }
            };
        }
        match snapshot {
            Some(bytes) => Node::Shard(Box::new(
                ShardNode::from_snapshot(bytes).expect("corrupt shard snapshot"),
            )),
            None => initial[id].take().expect("restart without a snapshot"),
        }
    };
    let mut sim = Simulation::new(1 + plan.shards, seed, faults, recover);
    for (s, bytes) in snapshots.into_iter().enumerate() {
        sim.seed_disk(s + 1, bytes);
    }
    sim
}
