//! # fairkm-shard — sharded streaming FairKM with bitwise-deterministic merge
//!
//! Scales the incremental streaming engine across `S` shards while keeping
//! the strongest guarantee the single-node engine offers: the merged state
//! — assignments, objective trace, prototypes, every aggregate bit — is
//! **bitwise identical** to a single-node run, at any shard count, under
//! any message schedule the fault model can produce.
//!
//! ## Architecture
//!
//! * **Coordinator (node 0).** Owns the client API, the frozen
//!   validation/encoding front-end, the raw-data mirror, the per-slot
//!   payload table, and a totally ordered **mutation log**. It replays the
//!   single-node driver's control flow exactly; only the embarrassingly
//!   parallel reads (arrival scoring, move proposals, rebuild folds) are
//!   scattered.
//! * **Shards (node `s + 1`).** Each holds a full *rowless* replica of the
//!   cached scoring engine — aggregates, not rows — plus the payloads of
//!   the slots the block-cyclic [`ShardPlan`] assigns to it. Replicas
//!   advance only by applying the log in order.
//!
//! ## Why the merge is bitwise-deterministic
//!
//! 1. **One total order of mutations.** Every state change is a log entry
//!    (`Insert`/`Remove`/`Move`/`Install`) carrying the affected payload.
//!    Applying an entry performs the exact float-operation sequence of the
//!    single-node engine, so a replica at log version `v` is bitwise equal
//!    to every other replica at `v` — regardless of how the network
//!    batched, delayed, or reordered the deliveries.
//! 2. **Pure scatters at a pinned version.** Requests carry the log
//!    version they must be evaluated at; the log never grows while
//!    requests are outstanding, and shards defer requests from the future.
//!    Responses are pure functions of replica state at that version, so
//!    re-issuing a request (crash recovery) cannot change any answer.
//! 3. **Ordered reduction.** Window proposals are merged in ascending slot
//!    order; rebuild chunks are folded shard-to-shard in ascending slot
//!    order and merged chunk-index-first at the coordinator — the same
//!    left-fold `fairkm_parallel::fold_chunks` performs, so the rebuilt
//!    aggregates match the single-node bits exactly.
//!
//! ## Fault model
//!
//! Links are not FIFO: messages may be delayed and reordered arbitrarily
//! (bounded delay), shards may lag, and shards may **crash**, losing all
//! volatile state, then rejoin from their latest durable snapshot via a
//! sync handshake (`SyncRequest` → log suffix + re-issue of outstanding
//! requests). The **coordinator is assumed durable** — it is the system of
//! record, like the metadata service of a distributed store; the
//! simulation suite crashes shards, not node 0. Under every such schedule,
//! once the system quiesces all replicas are bitwise equal to the
//! single-node golden state.
//!
//! Drive it in-process with [`ShardedFairKm`], or inside the
//! deterministic [`fairkm_sim`] simulator with [`build_simulation`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coordinator;
mod driver;
mod net;
mod plan;
mod protocol;
mod shard;

pub use coordinator::Coordinator;
pub use driver::ShardedFairKm;
pub use net::{build_simulation, Node};
pub use plan::ShardPlan;
pub use protocol::{LogEntry, Msg, Op, OpOutcome};
pub use shard::{Outbox, ShardNode};

use fairkm_core::FairKmError;

/// Errors specific to sharded deployment.
#[derive(Debug)]
pub enum ShardError {
    /// Sharding requires the incremental δ engine: the literal engine
    /// recomputes fairness terms from raw rows, which rowless replicas do
    /// not hold.
    LiteralEngine,
    /// A placement plan with zero shards or a zero block size.
    InvalidPlan {
        /// Requested shard count.
        shards: usize,
        /// Requested placement-block size.
        block: usize,
    },
    /// The underlying single-node engine failed.
    Core(FairKmError),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::LiteralEngine => {
                write!(f, "sharding requires DeltaEngine::Incremental")
            }
            ShardError::InvalidPlan { shards, block } => {
                write!(f, "invalid shard plan: shards={shards}, block={block}")
            }
            ShardError::Core(e) => write!(f, "core engine error: {e}"),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FairKmError> for ShardError {
    fn from(e: FairKmError) -> Self {
        ShardError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairkm_core::{DeltaEngine, FairKmConfig, StreamingConfig, StreamingFairKm};
    use fairkm_data::{Dataset, Value};
    use fairkm_synth::planted::{PlantedConfig, PlantedGenerator};

    fn workload() -> Dataset {
        PlantedGenerator::new(PlantedConfig {
            n_rows: 300,
            n_blobs: 3,
            dim: 4,
            n_sensitive_attrs: 2,
            cardinality: 3,
            alignment: 0.8,
            separation: 5.0,
            spread: 1.0,
            seed: 17,
        })
        .generate()
        .dataset
    }

    fn config(seed: u64) -> StreamingConfig {
        StreamingConfig::from_base(
            FairKmConfig::new(3)
                .with_seed(seed)
                .with_max_iters(4)
                .with_threads(1),
        )
        .with_drift_threshold(0.02)
    }

    /// The shared workload: ingest the tail in chunks with sliding-window
    /// retention, an explicit eviction, then one explicit re-optimization.
    /// A macro so the same body drives both engine types.
    macro_rules! drive {
        ($engine:expr, $arrivals:expr) => {{
            for chunk in $arrivals.chunks(40) {
                $engine.ingest(chunk).unwrap();
                if $engine.live() > 220 {
                    $engine.evict_oldest($engine.live() - 220).unwrap();
                }
            }
            $engine.evict(&[205, 207]).unwrap();
            $engine.reoptimize();
        }};
    }

    #[test]
    fn sharded_run_matches_single_node_bitwise() {
        let data = workload();
        let boot_idx: Vec<usize> = (0..200).collect();
        let arrivals: Vec<Vec<Value>> = (200..300).map(|r| data.row_values(r).unwrap()).collect();

        let mut single =
            StreamingFairKm::bootstrap(data.select_rows(&boot_idx).unwrap(), config(11)).unwrap();
        drive!(single, arrivals);

        for shards in [1usize, 2, 4] {
            let mut sharded = ShardedFairKm::bootstrap(
                data.select_rows(&boot_idx).unwrap(),
                config(11),
                shards,
                16,
            )
            .unwrap();
            drive!(sharded, arrivals);

            assert_eq!(
                sharded.objective().to_bits(),
                single.objective().to_bits(),
                "objective diverged at {shards} shards"
            );
            let single_trace: Vec<u64> = single.trace().iter().map(|v| v.to_bits()).collect();
            let sharded_trace: Vec<u64> = sharded.trace().iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                sharded_trace, single_trace,
                "trace diverged at {shards} shards"
            );
            assert_eq!(sharded.live_slots(), single.live_slots());
            for slot in sharded.live_slots() {
                assert_eq!(sharded.assignment_of(slot), single.assignment_of(slot));
            }
            let single_protos: Vec<Vec<u64>> = single
                .prototypes()
                .iter()
                .map(|p| p.iter().map(|v| v.to_bits()).collect())
                .collect();
            let sharded_protos: Vec<Vec<u64>> = sharded
                .prototypes()
                .iter()
                .map(|p| p.iter().map(|v| v.to_bits()).collect())
                .collect();
            assert_eq!(sharded_protos, single_protos);
            assert!(sharded.replicas_agree(), "replica drift at {shards} shards");
        }
    }

    #[test]
    fn error_paths_match_single_node() {
        let data = workload();
        let boot_idx: Vec<usize> = (0..120).collect();
        let mut single =
            StreamingFairKm::bootstrap(data.select_rows(&boot_idx).unwrap(), config(5)).unwrap();
        let mut sharded =
            ShardedFairKm::bootstrap(data.select_rows(&boot_idx).unwrap(), config(5), 2, 16)
                .unwrap();

        // Duplicate and dead slots are rejected identically, with no state
        // change on either side.
        assert_eq!(
            format!("{:?}", single.evict(&[3, 3]).unwrap_err()),
            format!("{:?}", sharded.evict(&[3, 3]).unwrap_err()),
        );
        single.evict(&[7]).unwrap();
        sharded.evict(&[7]).unwrap();
        assert_eq!(
            format!("{:?}", single.evict(&[7]).unwrap_err()),
            format!("{:?}", sharded.evict(&[7]).unwrap_err()),
        );
        // Arity mismatch on ingest is rejected atomically.
        let bad = vec![vec![Value::Num(0.5)]];
        assert_eq!(
            format!("{:?}", single.ingest(&bad).unwrap_err()),
            format!("{:?}", sharded.ingest(&bad).unwrap_err()),
        );
        assert_eq!(sharded.objective().to_bits(), single.objective().to_bits());
        assert!(sharded.replicas_agree());
    }

    #[test]
    fn literal_engine_is_rejected() {
        let data = workload();
        let cfg = StreamingConfig::from_base(
            FairKmConfig::new(3)
                .with_seed(1)
                .with_delta_engine(DeltaEngine::Literal),
        );
        assert!(matches!(
            ShardedFairKm::bootstrap(data, cfg, 2, 16),
            Err(ShardError::LiteralEngine)
        ));
    }
}
