//! # fairkm-shard — sharded streaming FairKM with bitwise-deterministic merge
//!
//! Scales the incremental streaming engine across `S` shards while keeping
//! the strongest guarantee the single-node engine offers: the merged state
//! — assignments, objective trace, prototypes, every aggregate bit — is
//! **bitwise identical** to a single-node run, at any shard count, under
//! any message schedule the fault model can produce.
//!
//! ## Architecture
//!
//! * **Coordinator (node 0).** Owns the client API, the frozen
//!   validation/encoding front-end, the raw-data mirror, the per-slot
//!   payload table, and a totally ordered **mutation log**. It replays the
//!   single-node driver's control flow exactly; only the embarrassingly
//!   parallel reads (arrival scoring, move proposals, rebuild folds) are
//!   scattered.
//! * **Shards (node `s + 1`).** Each holds a full *rowless* replica of the
//!   cached scoring engine — aggregates, not rows — plus the payloads of
//!   the slots the block-cyclic [`ShardPlan`] assigns to it. Replicas
//!   advance only by applying the log in order.
//!
//! ## Why the merge is bitwise-deterministic
//!
//! 1. **One total order of mutations.** Every state change is a log entry
//!    (`Insert`/`Remove`/`Move`/`Install`) carrying the affected payload.
//!    Applying an entry performs the exact float-operation sequence of the
//!    single-node engine, so a replica at log version `v` is bitwise equal
//!    to every other replica at `v` — regardless of how the network
//!    batched, delayed, or reordered the deliveries.
//! 2. **Pure scatters at a pinned version.** Requests carry the log
//!    version they must be evaluated at; the log never grows while
//!    requests are outstanding, and shards defer requests from the future.
//!    Responses are pure functions of replica state at that version, so
//!    re-issuing a request (crash recovery) cannot change any answer.
//! 3. **Ordered reduction.** Window proposals are merged in ascending slot
//!    order; rebuild chunks are folded shard-to-shard in ascending slot
//!    order and merged chunk-index-first at the coordinator — the same
//!    left-fold `fairkm_parallel::fold_chunks` performs, so the rebuilt
//!    aggregates match the single-node bits exactly.
//!
//! ## Fault model
//!
//! Links are not FIFO: messages may be delayed and reordered arbitrarily
//! (bounded delay), shards may lag, and shards may **crash**, losing all
//! volatile state, then rejoin from their latest durable snapshot via a
//! sync handshake (`SyncRequest` → log suffix + re-issue of outstanding
//! requests). The **coordinator crashes too**: it journals every mutation
//! batch through a [`fairkm_store::DurableStore`] write-ahead log *before*
//! broadcasting it (so the durable log always covers everything a shard
//! could have applied) and seals a bookkeeping record before surfacing an
//! operation result. [`Coordinator::recover`] rebuilds node 0 from the
//! newest checksummed snapshot plus the WAL suffix; a crash at an
//! operation boundary recovers **bitwise**, a crash mid-operation loses
//! only the in-flight operation (its already-replicated entries are kept —
//! the log never rolls back, so shards stay consistent) and reports
//! `interrupted`. Storage faults (torn writes, lost unsynced suffixes, bit
//! flips) surface as typed errors at recovery, never panics. Under every
//! such schedule, once the system quiesces all replicas are bitwise equal
//! to the single-node golden state.
//!
//! Drive it in-process with [`ShardedFairKm`], or inside the
//! deterministic [`fairkm_sim`] simulator with [`build_simulation`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coordinator;
mod driver;
mod net;
mod plan;
mod protocol;
mod shard;

pub use coordinator::{Coordinator, CoordinatorRecovery};
pub use driver::ShardedFairKm;
pub use net::{build_simulation, Node};
pub use plan::ShardPlan;
pub use protocol::{LogEntry, Msg, Op, OpOutcome};
pub use shard::{Outbox, ShardNode};

use fairkm_core::wire::WireError;
use fairkm_core::FairKmError;
use fairkm_store::StoreError;

/// Errors specific to sharded deployment.
#[derive(Debug)]
pub enum ShardError {
    /// Sharding requires the incremental δ engine: the literal engine
    /// recomputes fairness terms from raw rows, which rowless replicas do
    /// not hold.
    LiteralEngine,
    /// A placement plan with zero shards or a zero block size.
    InvalidPlan {
        /// Requested shard count.
        shards: usize,
        /// Requested placement-block size.
        block: usize,
    },
    /// The underlying single-node engine failed.
    Core(FairKmError),
    /// The coordinator's durable store failed (I/O, checksum mismatch,
    /// log gap, simulated crash).
    Store(StoreError),
    /// A durable snapshot or journal record failed to decode.
    Wire(WireError),
    /// Coordinator recovery found no snapshot to recover from.
    NoSnapshot,
    /// [`Coordinator::make_durable`] refused a state directory that
    /// already holds snapshots or log entries — recovering over them
    /// would silently shadow existing state.
    StateDirNotEmpty,
    /// A journal write failed earlier, leaving the in-memory coordinator
    /// ahead of the durable log. Snapshots are refused — persisting the
    /// ahead-of-log model would diverge from its own journal. Recover
    /// from the state directory instead.
    Wedged,
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::LiteralEngine => {
                write!(f, "sharding requires DeltaEngine::Incremental")
            }
            ShardError::InvalidPlan { shards, block } => {
                write!(f, "invalid shard plan: shards={shards}, block={block}")
            }
            ShardError::Core(e) => write!(f, "core engine error: {e}"),
            ShardError::Store(e) => write!(f, "coordinator durable store: {e}"),
            ShardError::Wire(e) => write!(f, "coordinator durable state: {e}"),
            ShardError::NoSnapshot => {
                write!(f, "no durable coordinator snapshot to recover from")
            }
            ShardError::StateDirNotEmpty => {
                write!(f, "state directory already holds durable coordinator state")
            }
            ShardError::Wedged => write!(
                f,
                "coordinator is wedged: a journal write failed earlier, so the \
                 in-memory model is ahead of the durable log; recover from disk"
            ),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Core(e) => Some(e),
            ShardError::Store(e) => Some(e),
            ShardError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FairKmError> for ShardError {
    fn from(e: FairKmError) -> Self {
        ShardError::Core(e)
    }
}

impl From<StoreError> for ShardError {
    fn from(e: StoreError) -> Self {
        ShardError::Store(e)
    }
}

impl From<WireError> for ShardError {
    fn from(e: WireError) -> Self {
        ShardError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairkm_core::{DeltaEngine, FairKmConfig, StreamingConfig, StreamingFairKm};
    use fairkm_data::{Dataset, Value};
    use fairkm_synth::planted::{PlantedConfig, PlantedGenerator};

    fn workload() -> Dataset {
        PlantedGenerator::new(PlantedConfig {
            n_rows: 300,
            n_blobs: 3,
            dim: 4,
            n_sensitive_attrs: 2,
            cardinality: 3,
            alignment: 0.8,
            separation: 5.0,
            spread: 1.0,
            seed: 17,
        })
        .generate()
        .dataset
    }

    fn config(seed: u64) -> StreamingConfig {
        StreamingConfig::from_base(
            FairKmConfig::new(3)
                .with_seed(seed)
                .with_max_iters(4)
                .with_threads(1),
        )
        .with_drift_threshold(0.02)
    }

    /// The shared workload: ingest the tail in chunks with sliding-window
    /// retention, an explicit eviction, then one explicit re-optimization.
    /// A macro so the same body drives both engine types.
    macro_rules! drive {
        ($engine:expr, $arrivals:expr) => {{
            for chunk in $arrivals.chunks(40) {
                $engine.ingest(chunk).unwrap();
                if $engine.live() > 220 {
                    $engine.evict_oldest($engine.live() - 220).unwrap();
                }
            }
            $engine.evict(&[205, 207]).unwrap();
            $engine.reoptimize();
        }};
    }

    #[test]
    fn sharded_run_matches_single_node_bitwise() {
        let data = workload();
        let boot_idx: Vec<usize> = (0..200).collect();
        let arrivals: Vec<Vec<Value>> = (200..300).map(|r| data.row_values(r).unwrap()).collect();

        let mut single =
            StreamingFairKm::bootstrap(data.select_rows(&boot_idx).unwrap(), config(11)).unwrap();
        drive!(single, arrivals);

        for shards in [1usize, 2, 4] {
            let mut sharded = ShardedFairKm::bootstrap(
                data.select_rows(&boot_idx).unwrap(),
                config(11),
                shards,
                16,
            )
            .unwrap();
            drive!(sharded, arrivals);

            assert_eq!(
                sharded.objective().to_bits(),
                single.objective().to_bits(),
                "objective diverged at {shards} shards"
            );
            let single_trace: Vec<u64> = single.trace().iter().map(|v| v.to_bits()).collect();
            let sharded_trace: Vec<u64> = sharded.trace().iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                sharded_trace, single_trace,
                "trace diverged at {shards} shards"
            );
            assert_eq!(sharded.live_slots(), single.live_slots());
            for slot in sharded.live_slots() {
                assert_eq!(sharded.assignment_of(slot), single.assignment_of(slot));
            }
            let single_protos: Vec<Vec<u64>> = single
                .prototypes()
                .iter()
                .map(|p| p.iter().map(|v| v.to_bits()).collect())
                .collect();
            let sharded_protos: Vec<Vec<u64>> = sharded
                .prototypes()
                .iter()
                .map(|p| p.iter().map(|v| v.to_bits()).collect())
                .collect();
            assert_eq!(sharded_protos, single_protos);
            assert!(sharded.replicas_agree(), "replica drift at {shards} shards");
        }
    }

    #[test]
    fn error_paths_match_single_node() {
        let data = workload();
        let boot_idx: Vec<usize> = (0..120).collect();
        let mut single =
            StreamingFairKm::bootstrap(data.select_rows(&boot_idx).unwrap(), config(5)).unwrap();
        let mut sharded =
            ShardedFairKm::bootstrap(data.select_rows(&boot_idx).unwrap(), config(5), 2, 16)
                .unwrap();

        // Duplicate and dead slots are rejected identically, with no state
        // change on either side.
        assert_eq!(
            format!("{:?}", single.evict(&[3, 3]).unwrap_err()),
            format!("{:?}", sharded.evict(&[3, 3]).unwrap_err()),
        );
        single.evict(&[7]).unwrap();
        sharded.evict(&[7]).unwrap();
        assert_eq!(
            format!("{:?}", single.evict(&[7]).unwrap_err()),
            format!("{:?}", sharded.evict(&[7]).unwrap_err()),
        );
        // Arity mismatch on ingest is rejected atomically.
        let bad = vec![vec![Value::Num(0.5)]];
        assert_eq!(
            format!("{:?}", single.ingest(&bad).unwrap_err()),
            format!("{:?}", sharded.ingest(&bad).unwrap_err()),
        );
        assert_eq!(sharded.objective().to_bits(), single.objective().to_bits());
        assert!(sharded.replicas_agree());
    }

    // ---- coordinator durability ------------------------------------

    use crate::shard::Outbox;
    use fairkm_core::ShardParts;
    use fairkm_store::{FaultPlan, SharedMemBackend, TornWrite};
    use std::collections::VecDeque;

    fn parts(data: &Dataset, seed: u64) -> ShardParts {
        let boot_idx: Vec<usize> = (0..200).collect();
        StreamingFairKm::bootstrap(data.select_rows(&boot_idx).unwrap(), config(seed))
            .unwrap()
            .into_shard_parts()
    }

    /// Pump the in-process queue until drained; returns the completed
    /// outcome, or `None` if the coordinator withheld one (wedged).
    fn run_op(c: &mut Coordinator, shards: &mut [ShardNode], op: Op) -> Option<OpOutcome> {
        let mut out: Outbox = Vec::new();
        c.handle(Msg::Op(op), &mut out);
        let mut queue: VecDeque<(usize, Msg)> = out.into_iter().collect();
        while let Some((to, msg)) = queue.pop_front() {
            let mut out: Outbox = Vec::new();
            if to == 0 {
                c.handle(msg, &mut out);
            } else {
                shards[to - 1].handle(msg, &mut out);
            }
            queue.extend(out);
        }
        c.take_result()
    }

    /// Everything observable about a quiesced coordinator, bitwise —
    /// except request ids, which recovery deliberately re-blocks.
    #[allow(clippy::type_complexity)]
    fn fingerprint(c: &Coordinator) -> (u64, Vec<u64>, Vec<(usize, usize)>, Vec<u8>, u64) {
        let assignments = c
            .live_slots()
            .iter()
            .map(|&s| (s, c.assignment_of(s).unwrap()))
            .collect();
        (
            c.objective().to_bits(),
            c.trace().iter().map(|v| v.to_bits()).collect(),
            assignments,
            c.model_bytes(),
            c.log_len(),
        )
    }

    fn replicas_agree(c: &Coordinator, shards: &[ShardNode]) -> bool {
        shards
            .iter()
            .all(|s| s.version() == c.log_len() && s.model_bytes() == c.model_bytes())
    }

    #[test]
    fn coordinator_recovers_bitwise_at_an_operation_boundary() {
        let data = workload();
        let arrivals: Vec<Vec<Value>> = (200..280).map(|r| data.row_values(r).unwrap()).collect();
        let plan = ShardPlan::new(2, 16).unwrap();
        let script: Vec<Op> = {
            let mut v: Vec<Op> = arrivals
                .chunks(20)
                .map(|c| Op::Ingest(c.to_vec()))
                .collect();
            v.push(Op::EvictOldest(15));
            v.push(Op::Reoptimize);
            v
        };
        let split = 3;

        // Reference: the same script with no journal and no crash.
        let (mut ref_c, mut ref_s) = Coordinator::provision(parts(&data, 11), plan);
        for op in &script {
            run_op(&mut ref_c, &mut ref_s, op.clone()).unwrap();
        }

        // Durable run: crash after `split` ops, recover, finish the script.
        let disk = SharedMemBackend::new();
        let (mut c, mut s) = Coordinator::provision(parts(&data, 11), plan);
        c.make_durable(Box::new(disk.clone()), Some(2)).unwrap();
        for op in &script[..split] {
            run_op(&mut c, &mut s, op.clone()).unwrap();
        }
        let at_crash = fingerprint(&c);
        let shard_snaps: Vec<Vec<u8>> = s.iter().map(|n| n.snapshot_bytes()).collect();
        drop(c);
        drop(s);

        let (mut c, report) = Coordinator::recover(Box::new(disk.clone()), Some(2)).unwrap();
        assert!(
            !report.interrupted,
            "boundary crash must not be interrupted"
        );
        assert_eq!(fingerprint(&c), at_crash, "recovery is not bitwise");
        let mut s: Vec<ShardNode> = shard_snaps
            .iter()
            .map(|b| ShardNode::from_snapshot(b).unwrap())
            .collect();
        for op in &script[split..] {
            run_op(&mut c, &mut s, op.clone()).unwrap();
        }
        assert_eq!(
            fingerprint(&c),
            fingerprint(&ref_c),
            "post-recovery run diverged from the uncrashed run"
        );
        assert!(replicas_agree(&c, &s));

        // A second crash right here recovers the final state too.
        let final_fp = fingerprint(&c);
        drop(c);
        let (c, report) = Coordinator::recover(Box::new(disk), Some(2)).unwrap();
        assert!(!report.interrupted);
        assert_eq!(fingerprint(&c), final_fp);
    }

    #[test]
    fn make_durable_refuses_a_dirty_backend() {
        let data = workload();
        let plan = ShardPlan::new(2, 16).unwrap();
        let disk = SharedMemBackend::new();
        let (mut c, _s) = Coordinator::provision(parts(&data, 11), plan);
        c.make_durable(Box::new(disk.clone()), None).unwrap();
        let (mut c2, _s2) = Coordinator::provision(parts(&data, 11), plan);
        assert!(matches!(
            c2.make_durable(Box::new(disk), None),
            Err(ShardError::StateDirNotEmpty)
        ));
    }

    #[test]
    fn torn_journal_write_wedges_and_loses_only_the_torn_op() {
        let data = workload();
        let arrivals: Vec<Vec<Value>> = (200..260).map(|r| data.row_values(r).unwrap()).collect();
        let plan = ShardPlan::new(2, 16).unwrap();
        let disk = SharedMemBackend::new();
        let (mut c, mut s) = Coordinator::provision(parts(&data, 11), plan);
        c.make_durable(Box::new(disk.clone()), None).unwrap();
        run_op(&mut c, &mut s, Op::Ingest(arrivals[..30].to_vec())).unwrap();
        let last_completed = fingerprint(&c);

        // The next journal append tears after 3 bytes.
        disk.set_faults(FaultPlan {
            torn: Some(TornWrite { at_op: 1, keep: 3 }),
            flips: Vec::new(),
        });
        let outcome = run_op(&mut c, &mut s, Op::Ingest(arrivals[30..].to_vec()));
        assert!(
            outcome.is_none(),
            "a wedged coordinator must withhold results"
        );
        assert!(c.is_wedged());
        // Wedged means deaf: further operations produce nothing at all.
        let mut out: Outbox = Vec::new();
        c.handle(Msg::Op(Op::Reoptimize), &mut out);
        assert!(out.is_empty());
        assert!(c.take_result().is_none());
        drop(c);

        // Power-cycle the disk (drops the unsynced torn suffix), recover:
        // exactly the pre-tear state, nothing externalized was lost.
        disk.crash();
        let (c, report) = Coordinator::recover(Box::new(disk), None).unwrap();
        assert!(!report.interrupted);
        assert_eq!(fingerprint(&c), last_completed);
    }

    /// A backend whose next append fails *transiently* (ENOSPC-style):
    /// nothing reaches the file and the fault clears by itself, so a
    /// later, smaller append would succeed. Unlike [`TornWrite`], this is
    /// exactly the fault where a leaky wedge lets the small `OP_DONE`
    /// record land over the missing entry batch.
    #[derive(Debug, Clone)]
    struct TransientFailBackend {
        inner: SharedMemBackend,
        fail_next: std::rc::Rc<std::cell::Cell<u32>>,
    }

    impl TransientFailBackend {
        fn new(inner: SharedMemBackend) -> Self {
            Self {
                inner,
                fail_next: std::rc::Rc::new(std::cell::Cell::new(0)),
            }
        }

        fn fail_next_append(&self) {
            self.fail_next.set(1);
        }
    }

    impl fairkm_store::StorageBackend for TransientFailBackend {
        fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StoreError> {
            self.inner.read(name)
        }
        fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
            self.inner.write_atomic(name, bytes)
        }
        fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
            let n = self.fail_next.get();
            if n > 0 {
                self.fail_next.set(n - 1);
                return Err(StoreError::Io {
                    op: "write",
                    file: name.to_string(),
                    message: "no space left on device (injected)".into(),
                });
            }
            self.inner.append(name, bytes)
        }
        fn sync(&mut self, name: &str) -> Result<(), StoreError> {
            self.inner.sync(name)
        }
        fn list(&self) -> Result<Vec<String>, StoreError> {
            self.inner.list()
        }
        fn remove(&mut self, name: &str) -> Result<(), StoreError> {
            self.inner.remove(name)
        }
    }

    /// A journal append that fails once and then recovers must wedge the
    /// *whole* operation: the entry batch never reached the log, so
    /// nothing after it — not the `OP_DONE` record, not the client
    /// result, not a snapshot — may externalize. Recovery from the
    /// surviving journal lands exactly on the last sealed operation.
    #[test]
    fn transient_append_failure_wedges_the_whole_operation() {
        let data = workload();
        let arrivals: Vec<Vec<Value>> = (200..260).map(|r| data.row_values(r).unwrap()).collect();
        let plan = ShardPlan::new(2, 16).unwrap();
        let disk = SharedMemBackend::new();
        let flaky = TransientFailBackend::new(disk.clone());
        let (mut c, mut s) = Coordinator::provision(parts(&data, 11), plan);
        c.make_durable(Box::new(flaky.clone()), None).unwrap();
        run_op(&mut c, &mut s, Op::Ingest(arrivals[..30].to_vec())).unwrap();
        let last_completed = fingerprint(&c);

        // The fault hits the large entry-batch append only; the small
        // bookkeeping append that follows would succeed if attempted.
        flaky.fail_next_append();
        let outcome = run_op(&mut c, &mut s, Op::Ingest(arrivals[30..].to_vec()));
        assert!(
            outcome.is_none(),
            "a result not covered by the durable log escaped the wedge"
        );
        assert!(c.is_wedged());
        // A wedged coordinator's model is ahead of its own journal: a
        // snapshot now would persist that divergence.
        assert!(matches!(c.snapshot_now(), Err(ShardError::Wedged)));
        drop(c);

        // The journal must hold only the sealed prefix — no OP_DONE over
        // a hole, no trailing entry batch.
        let (c, report) = Coordinator::recover(Box::new(disk), None).unwrap();
        assert!(
            !report.interrupted,
            "no part of the wedged operation may reach the journal"
        );
        assert_eq!(fingerprint(&c), last_completed);
    }

    #[test]
    fn interrupted_recovery_keeps_replicated_entries_and_resyncs() {
        let data = workload();
        let arrivals: Vec<Vec<Value>> = (200..300).map(|r| data.row_values(r).unwrap()).collect();
        let plan = ShardPlan::new(2, 16).unwrap();
        let disk = SharedMemBackend::new();
        let (mut c, mut s) = Coordinator::provision(parts(&data, 11), plan);
        c.make_durable(Box::new(disk.clone()), None).unwrap();
        for chunk in arrivals.chunks(25) {
            run_op(&mut c, &mut s, Op::Ingest(chunk.to_vec())).unwrap();
        }
        let base_log = c.log_len();

        // Start a re-optimization and stop pumping as soon as the log has
        // grown: entries are journaled and broadcast, but no operation
        // record seals them — a mid-operation crash.
        let mut out: Outbox = Vec::new();
        c.handle(Msg::Op(Op::Reoptimize), &mut out);
        let mut queue: VecDeque<(usize, Msg)> = out.into_iter().collect();
        while let Some((to, msg)) = queue.pop_front() {
            let mut out: Outbox = Vec::new();
            if to == 0 {
                c.handle(msg, &mut out);
            } else {
                s[to - 1].handle(msg, &mut out);
            }
            queue.extend(out);
            if c.log_len() > base_log {
                break;
            }
        }
        assert!(
            c.log_len() > base_log && c.take_result().is_none(),
            "workload must leave the re-optimization genuinely mid-flight"
        );
        let in_flight_log = c.log_len();
        drop(c);
        drop(queue);

        let (mut c, report) = Coordinator::recover(Box::new(disk), None).unwrap();
        assert!(report.interrupted, "trailing entry batches must be flagged");
        assert!(report.replayed_entries > 0);
        assert_eq!(
            c.log_len(),
            in_flight_log,
            "replicated entries must never roll back"
        );

        // The lagging shards resync from the recovered log and the system
        // completes fresh operations normally.
        let mut queue: VecDeque<(usize, Msg)> = (0..s.len())
            .map(|i| {
                (
                    0usize,
                    Msg::SyncRequest {
                        shard: i,
                        have: s[i].version(),
                    },
                )
            })
            .collect();
        while let Some((to, msg)) = queue.pop_front() {
            let mut out: Outbox = Vec::new();
            if to == 0 {
                c.handle(msg, &mut out);
            } else {
                s[to - 1].handle(msg, &mut out);
            }
            queue.extend(out);
        }
        assert!(replicas_agree(&c, &s), "shards failed to resync");
        run_op(&mut c, &mut s, Op::Reoptimize).unwrap();
        assert!(replicas_agree(&c, &s));
    }

    #[test]
    fn literal_engine_is_rejected() {
        let data = workload();
        let cfg = StreamingConfig::from_base(
            FairKmConfig::new(3)
                .with_seed(1)
                .with_delta_engine(DeltaEngine::Literal),
        );
        assert!(matches!(
            ShardedFairKm::bootstrap(data, cfg, 2, 16),
            Err(ShardError::LiteralEngine)
        ));
    }
}
