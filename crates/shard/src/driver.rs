//! In-process sharded driver: the coordinator and its shards connected by
//! a synchronous FIFO queue.
//!
//! This is the "perfect network" execution of the protocol — useful as the
//! drop-in sharded counterpart of [`fairkm_core::StreamingFairKm`] (the
//! CLI replay mode uses it) and as the reference the simulator's faulty
//! executions are compared against. Determinism does not depend on the
//! FIFO queue; the simulator exercises the reordered/delayed/crashy
//! schedules.

use crate::coordinator::Coordinator;
use crate::plan::ShardPlan;
use crate::protocol::{Msg, Op, OpOutcome};
use crate::shard::{Outbox, ShardNode};
use crate::ShardError;
use fairkm_core::{
    DeltaEngine, EvictReport, FairKmError, IngestReport, StreamingConfig, StreamingFairKm,
};
use fairkm_data::{Dataset, Value};
use std::collections::VecDeque;

/// A sharded streaming FairKM engine with the single-node API: operations
/// run to completion synchronously by pumping the in-process message
/// queue.
#[derive(Debug)]
pub struct ShardedFairKm {
    coordinator: Coordinator,
    shards: Vec<ShardNode>,
    queue: VecDeque<(usize, Msg)>,
}

impl ShardedFairKm {
    /// Bootstrap the single-node engine on `dataset`, then split it across
    /// `shards` shards with `block`-slot placement blocks.
    pub fn bootstrap(
        dataset: Dataset,
        config: StreamingConfig,
        shards: usize,
        block: usize,
    ) -> Result<Self, ShardError> {
        let plan = ShardPlan::new(shards, block)?;
        if config.base.delta_engine == DeltaEngine::Literal {
            return Err(ShardError::LiteralEngine);
        }
        let engine = StreamingFairKm::bootstrap(dataset, config).map_err(ShardError::Core)?;
        Ok(Self::from_parts_inner(engine.into_shard_parts(), plan))
    }

    /// Split an already-running single-node engine's parts across shards.
    pub fn from_parts(parts: fairkm_core::ShardParts, plan: ShardPlan) -> Result<Self, ShardError> {
        if parts.engine == DeltaEngine::Literal {
            return Err(ShardError::LiteralEngine);
        }
        Ok(Self::from_parts_inner(parts, plan))
    }

    fn from_parts_inner(parts: fairkm_core::ShardParts, plan: ShardPlan) -> Self {
        let (coordinator, shards) = Coordinator::provision(parts, plan);
        Self {
            coordinator,
            shards,
            queue: VecDeque::new(),
        }
    }

    /// Run one operation to completion and return its outcome.
    fn run_op(&mut self, op: Op) -> OpOutcome {
        let mut out: Outbox = Vec::new();
        self.coordinator.handle(Msg::Op(op), &mut out);
        self.queue.extend(out);
        while let Some((to, msg)) = self.queue.pop_front() {
            let mut out: Outbox = Vec::new();
            if to == 0 {
                self.coordinator.handle(msg, &mut out);
            } else {
                self.shards[to - 1].handle(msg, &mut out);
            }
            self.queue.extend(out);
        }
        self.coordinator
            .take_result()
            .expect("drained queue without a completed operation")
    }

    /// Ingest a batch of raw rows (single-node semantics, bit for bit).
    pub fn ingest(&mut self, rows: &[Vec<Value>]) -> Result<IngestReport, FairKmError> {
        match self.run_op(Op::Ingest(rows.to_vec())) {
            OpOutcome::Ingest(r) => r,
            _ => unreachable!("ingest produced a non-ingest outcome"),
        }
    }

    /// Evict the given live slots.
    pub fn evict(&mut self, slots: &[usize]) -> Result<EvictReport, FairKmError> {
        match self.run_op(Op::Evict(slots.to_vec())) {
            OpOutcome::Evict(r) => r,
            _ => unreachable!("evict produced a non-evict outcome"),
        }
    }

    /// Evict the `count` oldest live points.
    pub fn evict_oldest(&mut self, count: usize) -> Result<EvictReport, FairKmError> {
        match self.run_op(Op::EvictOldest(count)) {
            OpOutcome::Evict(r) => r,
            _ => unreachable!("evict produced a non-evict outcome"),
        }
    }

    /// Run windowed re-optimization passes; returns the move count.
    pub fn reoptimize(&mut self) -> usize {
        match self.run_op(Op::Reoptimize) {
            OpOutcome::Reoptimize(moves) => moves,
            _ => unreachable!("reoptimize produced a non-reoptimize outcome"),
        }
    }

    /// Whether every shard replica is at the coordinator's log version with
    /// bitwise-identical model bytes.
    pub fn replicas_agree(&self) -> bool {
        let version = self.coordinator.log_len();
        let bytes = self.coordinator.model_bytes();
        self.shards
            .iter()
            .all(|s| s.version() == version && s.model_bytes() == bytes)
    }

    /// The coordinator (read access for reports and fingerprints).
    pub fn coordinator(&self) -> &Coordinator {
        &self.coordinator
    }

    /// The shard nodes (read access for replica checks).
    pub fn shards(&self) -> &[ShardNode] {
        &self.shards
    }

    /// Current objective over the live partition.
    pub fn objective(&self) -> f64 {
        self.coordinator.objective()
    }

    /// Bounded objective trace.
    pub fn trace(&self) -> &[f64] {
        self.coordinator.trace()
    }

    /// Live point count.
    pub fn live(&self) -> usize {
        self.coordinator.live()
    }

    /// Cluster of `slot`, `None` for tombstones.
    pub fn assignment_of(&self, slot: usize) -> Option<usize> {
        self.coordinator.assignment_of(slot)
    }

    /// Live slot ids in ascending order.
    pub fn live_slots(&self) -> Vec<usize> {
        self.coordinator.live_slots()
    }

    /// Cluster prototypes (means).
    pub fn prototypes(&self) -> Vec<Vec<f64>> {
        self.coordinator.prototypes()
    }
}
